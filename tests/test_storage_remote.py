"""Tests for the remote backends: HTTP object store and key-value adapter."""

import threading

import pytest

from repro.storage.remote import (
    HTTPFragmentServer,
    HTTPFragmentStore,
    InMemoryObjectBucket,
    KeyValueFragmentStore,
    ObjectBucket,
    RemoteFragmentStore,
    fragment_key,
    object_key,
)
from repro.storage.store import FragmentStore, ShardedDiskStore, open_store


@pytest.fixture
def http_pair():
    """A server over a seeded in-memory store, plus a connected client."""
    inner = FragmentStore()
    inner.put("pressure", "level0/plane3", b"abc")
    inner.put("a/b..c", "s:1", b"odd-keys-survive")
    inner.put("v", "big", bytes(range(256)) * 8)
    with HTTPFragmentServer(inner) as server:
        client = HTTPFragmentStore.from_url(server.url)
        yield inner, server, client
        client.close()


class TestHTTPFragmentStore:
    def test_satisfies_remote_protocol(self, http_pair):
        _, _, client = http_pair
        assert isinstance(client, RemoteFragmentStore)

    def test_index_snapshot_serves_metadata_locally(self, http_pair):
        inner, _, client = http_pair
        assert set(client.keys()) == set(inner.keys())
        assert client.nbytes() == inner.nbytes()
        assert client.size_of("pressure", "level0/plane3") == 3
        assert client.segments("a/b..c") == ["s:1"]
        assert client.reads == 0  # metadata cost no fragment traffic

    def test_get_roundtrip_and_accounting(self, http_pair):
        _, _, client = http_pair
        assert client.get("pressure", "level0/plane3") == b"abc"
        assert client.get("a/b..c", "s:1") == b"odd-keys-survive"
        assert client.reads == 2 and client.round_trips == 2

    def test_get_missing_raises_keyerror(self, http_pair):
        _, _, client = http_pair
        with pytest.raises(KeyError):
            client.get("nope", "s")

    def test_get_many_one_round_trip(self, http_pair):
        inner, _, client = http_pair
        keys = [("pressure", "level0/plane3"), ("a/b..c", "s:1"), ("v", "big")]
        out = client.get_many(keys)
        assert out[("pressure", "level0/plane3")] == b"abc"
        assert out[("v", "big")] == bytes(range(256)) * 8
        assert client.round_trips == 1 and client.reads == 3
        assert inner.round_trips == 1  # the server batched too

    def test_get_many_missing_lists_every_missing_key(self, http_pair):
        _, _, client = http_pair
        with pytest.raises(KeyError) as exc:
            client.get_many([("v", "big"), ("nope", "x"), ("nope", "y")])
        assert ("nope", "x") in exc.value.args[0]
        assert ("nope", "y") in exc.value.args[0]

    def test_ranged_get(self, http_pair):
        _, _, client = http_pair
        payload = bytes(range(256)) * 8
        assert client.get_range("v", "big", 10, 30) == payload[10:30]
        assert client.get_range("v", "big", 2000, 10**6) == payload[2000:]

    def test_put_writes_through_to_server(self, http_pair):
        inner, _, client = http_pair
        client.put("new", "s0", b"fresh")
        assert inner.get("new", "s0") == b"fresh"
        assert client.has("new", "s0") and client.size_of("new", "s0") == 5

    def test_delete_removes_on_server_and_locally(self, http_pair):
        inner, _, client = http_pair
        client.put("new", "s0", b"fresh")
        client.delete("new", "s0")
        assert not client.has("new", "s0")
        assert not inner.has("new", "s0")
        with pytest.raises(KeyError):
            client.delete("new", "s0")

    def test_refresh_sees_server_side_writes(self, http_pair):
        inner, server, client = http_pair
        inner.put("later", "s0", b"server-side")
        assert not client.has("later", "s0")  # snapshot is stale
        client.refresh()
        assert client.has("later", "s0")
        assert client.get("later", "s0") == b"server-side"

    def test_open_store_url_roundtrip(self, tmp_path):
        disk = ShardedDiskStore(str(tmp_path / "ar"))
        disk.put("v", "s0", b"x" * 50)
        with HTTPFragmentServer(disk) as server:
            client = open_store(server.url)
            assert isinstance(client, HTTPFragmentStore)
            assert client.get("v", "s0") == b"x" * 50
            client.close()

    def test_concurrent_clients_do_not_interfere(self, http_pair):
        _, _, client = http_pair
        errors = []

        def reader():
            try:
                for _ in range(10):
                    assert client.get("pressure", "level0/plane3") == b"abc"
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]
        assert client.reads == 40

    def test_bad_url_rejected(self):
        with pytest.raises(ValueError):
            HTTPFragmentStore.from_url("http://no-port-here")
        with pytest.raises(ValueError):
            HTTPFragmentStore.from_url("file:///somewhere")


class TestObjectKeyCodec:
    def test_roundtrip_odd_names(self):
        for variable, segment in [
            ("a/b..c", "s:1"),
            ("with space", "seg/with/slashes"),
            ("percent%20", "unicode-ε"),
        ]:
            assert fragment_key(object_key(variable, segment)) == (variable, segment)

    def test_foreign_key_rejected(self):
        with pytest.raises(ValueError):
            fragment_key("no-separator-anywhere")


class TestKeyValueFragmentStore:
    def test_satisfies_remote_protocol(self):
        assert isinstance(KeyValueFragmentStore(InMemoryObjectBucket()), RemoteFragmentStore)
        assert isinstance(InMemoryObjectBucket(), ObjectBucket)

    def test_roundtrip_and_reopen_from_listing(self):
        bucket = InMemoryObjectBucket()
        store = KeyValueFragmentStore(bucket)
        store.put("a/b", "s:0", b"hello")
        store.put("v", "s1", bytes(50))
        reopened = KeyValueFragmentStore(bucket)
        assert set(reopened.keys()) == {("a/b", "s:0"), ("v", "s1")}
        assert reopened.nbytes() == 55
        assert reopened.get("a/b", "s:0") == b"hello"

    def test_get_many_uses_batched_bucket_reads(self):
        bucket = InMemoryObjectBucket()
        store = KeyValueFragmentStore(bucket)
        for i in range(8):
            store.put("v", f"s{i}", bytes([i]))
        before = bucket.requests
        out = store.get_many([("v", f"s{i}") for i in range(8)])
        assert len(out) == 8
        assert bucket.requests == before + 1  # one bucket round trip
        assert store.round_trips == 1 and store.reads == 8

    def test_get_many_falls_back_without_batch_support(self):
        class PlainBucket(InMemoryObjectBucket):
            get_objects = None

        bucket = PlainBucket()
        store = KeyValueFragmentStore(bucket)
        store.put("v", "s0", b"a")
        store.put("v", "s1", b"b")
        out = store.get_many([("v", "s0"), ("v", "s1")])
        assert out[("v", "s0")] == b"a"
        assert store.round_trips == 2  # honest per-object accounting

    def test_missing_keys(self):
        store = KeyValueFragmentStore(InMemoryObjectBucket())
        store.put("v", "s0", b"a")
        with pytest.raises(KeyError):
            store.get("v", "nope")
        with pytest.raises(KeyError) as exc:
            store.get_many([("v", "s0"), ("v", "nope")])
        assert ("v", "nope") in exc.value.args[0]

    def test_delete(self):
        store = KeyValueFragmentStore(InMemoryObjectBucket())
        store.put("v", "s0", b"a")
        store.delete("v", "s0")
        assert not store.has("v", "s0")
        with pytest.raises(KeyError):
            store.delete("v", "s0")

    def test_foreign_bucket_objects_ignored(self):
        bucket = InMemoryObjectBucket()
        bucket.put_object("unrelated-blob", b"not a fragment")
        store = KeyValueFragmentStore(bucket)
        assert store.keys() == []


class TestConnectionReuse:
    """Satellite coverage for the per-thread persistent HTTP connection."""

    def test_requests_reuse_one_keepalive_connection(self, http_pair):
        _, _, client = http_pair
        client.get("pressure", "level0/plane3")
        conn = client._local.conn
        client.get("v", "big")
        client.has("pressure", "level0/plane3")
        assert client._local.conn is conn  # same socket, no re-dial
        assert client.reconnects == 0

    def test_threads_get_independent_connections(self, http_pair):
        _, _, client = http_pair
        client.get("pressure", "level0/plane3")
        main_conn = client._local.conn
        seen = []

        def worker():
            client.get("v", "big")
            seen.append(client._local.conn)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen[0] is not main_conn
        assert client._local.conn is main_conn

    def test_stale_keepalive_redialed_once_and_counted(self, http_pair):
        import socket

        _, _, client = http_pair
        assert client.get("pressure", "level0/plane3") == b"abc"
        # forcibly kill the established TCP stream (server restart /
        # idle-timeout stand-in); the next request must transparently
        # re-dial instead of surfacing the dead socket
        client._local.conn.sock.shutdown(socket.SHUT_RDWR)
        assert client.get("pressure", "level0/plane3") == b"abc"
        assert client.reconnects == 1
        # the replacement connection is healthy and persistent again
        assert client.get("v", "big") == bytes(range(256)) * 8
        assert client.reconnects == 1

    def test_url_resilience_params_wrap_the_store(self):
        from repro.storage.resilience import ResilientStore

        inner = FragmentStore()
        inner.put("v", "s0", b"abc")
        with HTTPFragmentServer(inner) as server:
            store = HTTPFragmentStore.from_url(server.url + "?retries=4&breaker=2")
            try:
                assert isinstance(store, ResilientStore)
                assert store.retry.attempts == 4
                assert store.breaker.failure_threshold == 2
                assert server.url.endswith(store.breaker.name.split("http://")[-1])
                assert store.get("v", "s0") == b"abc"
            finally:
                store.close()
