"""Tests for the synthetic dataset generators and Table III registry."""

import numpy as np
import pytest

from repro.data.datasets import S3D_PRODUCTS, TABLE3, load_dataset
from repro.data.generators import ge_cfd, hurricane, nyx, s3d


class TestGECFD:
    def test_field_names_and_sizes(self):
        fields = ge_cfd(num_nodes=1000)
        assert set(fields) == {
            "velocity_x", "velocity_y", "velocity_z", "pressure", "density",
        }
        assert all(v.size == 1000 for v in fields.values())

    def test_wall_nodes_exact_zero(self):
        fields = ge_cfd(num_nodes=5000, wall_fraction=0.05, seed=1)
        walls = (
            (fields["velocity_x"] == 0)
            & (fields["velocity_y"] == 0)
            & (fields["velocity_z"] == 0)
        )
        assert walls.sum() > 50  # the §V-A mask case exists

    def test_physical_scales(self):
        fields = ge_cfd(num_nodes=2000)
        assert 5e4 < np.mean(fields["pressure"]) < 2e5
        assert 0.5 < np.mean(fields["density"]) < 2.0

    def test_deterministic(self):
        a = ge_cfd(num_nodes=500, seed=7)
        b = ge_cfd(num_nodes=500, seed=7)
        np.testing.assert_array_equal(a["pressure"], b["pressure"])

    def test_blocks_concatenate(self):
        fields = ge_cfd(num_nodes=300, num_blocks=3)
        assert fields["pressure"].size == 900

    def test_too_small(self):
        with pytest.raises(ValueError):
            ge_cfd(num_nodes=4)


class TestNYX:
    def test_shape_and_names(self):
        fields = nyx(shape=(16, 16, 16))
        assert set(fields) == {"velocity_x", "velocity_y", "velocity_z"}
        assert fields["velocity_x"].shape == (16, 16, 16)

    def test_velocity_scale(self):
        fields = nyx(shape=(16, 16, 16), velocity_scale=1e7)
        assert 1e6 < np.std(fields["velocity_x"]) < 1e8

    def test_spectral_smoothness(self):
        # power-law GRFs are smoother than white noise: neighbour
        # differences are much smaller than the field std
        f = nyx(shape=(32, 32, 32))["velocity_x"]
        diff = np.abs(np.diff(f, axis=0)).mean()
        assert diff < 0.5 * np.std(f)


class TestHurricane:
    def test_vortex_structure(self):
        fields = hurricane(shape=(8, 64, 64), max_wind=70.0, seed=0)
        speed = np.sqrt(
            fields["velocity_x"] ** 2 + fields["velocity_y"] ** 2
        )
        assert speed.max() > 40.0  # strong winds near the eye wall
        assert np.abs(fields["velocity_z"]).max() < speed.max()


class TestS3D:
    def test_eight_positive_species(self):
        fields = s3d(shape=(12, 10, 8))
        assert len(fields) == 8
        for v in fields.values():
            assert np.all(v > 0)

    def test_radicals_smaller_than_majors(self):
        fields = s3d(shape=(16, 12, 10))
        assert fields["x3"].mean() < fields["x1"].mean()

    def test_product_fields_exist(self):
        fields = s3d(shape=(8, 8, 8))
        for a, b in S3D_PRODUCTS.values():
            assert a in fields and b in fields


class TestRegistry:
    def test_table3_complete(self):
        assert set(TABLE3) == {"GE-small", "Hurricane", "NYX", "S3D", "GE-large"}

    @pytest.mark.parametrize("name", sorted(TABLE3))
    def test_load_scaled(self, name):
        ds = load_dataset(name, scale=0.2, seed=1)
        assert ds.num_elements > 0
        assert len(ds.fields) == TABLE3[name].num_variables
        assert ds.qois

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("CERN")

    def test_qoi_ranges_positive(self):
        ds = load_dataset("GE-small", scale=0.1)
        ranges = ds.qoi_ranges()
        assert set(ranges) == {"VTOT", "T", "C", "Mach", "PT", "mu"}
        assert all(r > 0 for r in ranges.values())

    def test_paper_metadata_recorded(self):
        spec = TABLE3["S3D"]
        assert spec.paper_size == "4.78 GB"
        assert spec.num_variables == 8
