"""Property and chaos suite for the scale-out cluster fabric.

Three layers of guarantees, from math to metal:

* :class:`repro.storage.cluster.HashRing` placement properties —
  stability (same key → same owners), balance (vnodes bound the max/min
  node load ratio), and minimal movement (a membership change re-homes
  only ~1/N of the keys, and every re-homed key moves *to* the node
  that changed).
* :class:`repro.storage.cluster.ClusterFragmentStore` semantics — exact
  K-way replication, FragmentStore-contract reads/writes/transactions,
  transparent failover with per-node accounting, merged
  durability/resilience snapshots, and rebalancing on join/leave.
* Chaos over real `HTTPFragmentServer` backends — killing any single
  node of a 3-node K=2 cluster mid-retrieval yields results
  bit-identical to the healthy cluster with zero client-visible errors
  and ``failovers > 0``; killing a node mid-rebalance loses nothing and
  never serves stale bytes.
"""

import os
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compressors.base import make_refactorer
from repro.core.qois import qoi_from_spec
from repro.core.retrieval import QoIRequest, refactor_dataset
from repro.service.service import RetrievalService
from repro.storage.archive import Archive
from repro.storage.cluster import (
    ClusterFragmentStore,
    HashRing,
    Rebalancer,
)
from repro.storage.remote import HTTPFragmentServer
from repro.storage.resilience import (
    CircuitBreaker,
    DegradedError,
    FaultStoreError,
    ResilienceStats,
    RetryPolicy,
    wrap_with_resilience,
)
from repro.storage.store import FragmentStore, ShardedDiskStore, open_store

from tests.fault_store import FaultyFragmentStore, SimulatedCrash

#: A retry policy that never sleeps — chaos tests fail over instantly.
FAST_RETRY = RetryPolicy(attempts=2, base_delay=0.0, max_delay=0.0, jitter=0.0)


def keyset(seed: int, count: int) -> list:
    """A deterministic pseudo-random fragment key set."""
    rng = np.random.default_rng(seed)
    return [
        (f"v{rng.integers(1 << 30)}", f"s{rng.integers(1 << 30)}")
        for _ in range(count)
    ]


def make_cluster(n_nodes: int, replicas: int = 2, **kwargs):
    """A cluster over fresh in-memory nodes plus the raw node stores."""
    nodes = [FragmentStore() for _ in range(n_nodes)]
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("vnodes", 32)
    cluster = ClusterFragmentStore(nodes, replicas=replicas, **kwargs)
    return cluster, nodes


class _DownStore(FragmentStore):
    """A backend that fails every data operation transiently (node down)."""

    def _down(self, *a, **k):
        raise FaultStoreError("node down")

    get = get_many = put = put_many = transact = _down
    compact = durability = _down


def kill_server(server: HTTPFragmentServer) -> None:
    """Hard-kill a running fragment server.

    ``stop()`` alone closes the listener but leaves established
    keep-alive handler threads serving — a graceful drain, not a death.
    Swapping the handler's inner store for one that errors makes every
    in-flight connection fail too, so clients see exactly what a
    SIGKILLed node produces: dead sockets and refused re-dials.
    """
    server._httpd.inner = _DownStore()
    server._httpd.handle_error = lambda *a: None  # silence expected stderr
    server.stop()


# ---------------------------------------------------------------------------
# HashRing placement properties
# ---------------------------------------------------------------------------


class TestHashRingProperties:
    NAMES = ["alpha", "beta", "gamma"]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), k=st.integers(1, 3))
    def test_placement_is_stable(self, seed, k):
        """Same key → same owner list, across independently built rings."""
        keys = keyset(seed, 50)
        ring_a = HashRing(self.NAMES, vnodes=64)
        ring_b = HashRing(list(self.NAMES), vnodes=64)
        for key in keys:
            owners = ring_a.owners(*key, k)
            assert owners == ring_b.owners(*key, k)
            assert owners == ring_a.owners(*key, k)  # and across calls

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_owners_are_distinct_and_clamped(self, seed):
        """K owners are K distinct nodes; k beyond the node count clamps."""
        ring = HashRing(self.NAMES, vnodes=16)
        for key in keyset(seed, 30):
            owners = ring.owners(*key, 2)
            assert len(owners) == len(set(owners)) == 2
            assert ring.owners(*key, 10) == ring.owners(*key, 3)
            assert set(ring.owners(*key, 3)) == set(self.NAMES)
            # the k-replica list is a prefix-extension of the primary
            assert ring.owners(*key, 2)[0] == ring.owners(*key, 1)[0]

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_load_is_balanced_with_vnodes(self, seed):
        """Primary load spreads evenly: bounded max/min ratio, no dead node."""
        keys = keyset(seed, 300)
        ring = HashRing(self.NAMES, vnodes=64)
        load = {name: 0 for name in self.NAMES}
        for key in keys:
            load[ring.owners(*key, 1)[0]] += 1
        assert min(load.values()) >= 0.10 * len(keys)
        assert max(load.values()) / max(1, min(load.values())) <= 3.5

    def test_few_vnodes_balance_worse_than_many(self):
        """The vnodes knob is what buys balance (sanity on the mechanism)."""
        keys = keyset(7, 2000)

        def spread(vnodes):
            ring = HashRing(self.NAMES, vnodes=vnodes)
            load = {name: 0 for name in self.NAMES}
            for key in keys:
                load[ring.owners(*key, 1)[0]] += 1
            return max(load.values()) - min(load.values())

        assert spread(128) < spread(1)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_membership_change_moves_minimal_keys(self, seed):
        """Adding a node re-homes ~1/N of the keys, all of them *to* it."""
        keys = keyset(seed, 300)
        before = HashRing(self.NAMES, vnodes=64)
        after = HashRing(self.NAMES + ["delta"], vnodes=64)
        moved = 0
        for key in keys:
            old = before.owners(*key, 1)[0]
            new = after.owners(*key, 1)[0]
            if old != new:
                moved += 1
                # consistent hashing: a key only ever moves to the new node
                assert new == "delta", key
        # expected 1/4; generous bound still rules out modulo-rehash (~3/4)
        assert moved <= 0.45 * len(keys)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_removal_moves_only_the_lost_nodes_keys(self, seed):
        """Removing a node re-homes exactly the keys it owned."""
        keys = keyset(seed, 200)
        before = HashRing(self.NAMES, vnodes=64)
        after = HashRing(["alpha", "beta"], vnodes=64)
        for key in keys:
            old = before.owners(*key, 1)[0]
            new = after.owners(*key, 1)[0]
            if old != "gamma":
                assert new == old, key

    def test_ring_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)
        with pytest.raises(ValueError):
            HashRing(["a"]).owners("v", "s", 0)


# ---------------------------------------------------------------------------
# ClusterFragmentStore semantics
# ---------------------------------------------------------------------------


class TestClusterStoreBasics:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 2**31 - 1))
    def test_every_key_replicated_exactly_k_times(self, seed):
        cluster, nodes = make_cluster(4, replicas=2)
        keys = keyset(seed, 40)
        cluster.put_many([(v, s, (v + s).encode()) for v, s in keys])
        for v, s in set(keys):
            copies = sum(node.has(v, s) for node in nodes)
            assert copies == 2, (v, s)
            assert set(cluster.owners(v, s)) == {
                f"node{i}" for i, node in enumerate(nodes) if node.has(v, s)
            }
        cluster.close()

    def test_reads_and_index_match_contract(self):
        cluster, _ = make_cluster(3)
        keys = keyset(11, 30)
        payloads = {k: (k[0] + k[1]).encode() * 3 for k in keys}
        cluster.put_many([(v, s, payloads[(v, s)]) for v, s in payloads])
        assert sorted(cluster.keys()) == sorted(payloads)
        assert cluster.get_many(list(payloads)) == payloads
        one = next(iter(payloads))
        assert cluster.get(*one) == payloads[one]
        assert cluster.size_of(*one) == len(payloads[one])
        assert cluster.nbytes() == sum(len(p) for p in payloads.values())
        # client-visible accounting: batch = 1 round trip, like every store
        assert cluster.put_round_trips == 1
        trips_before = cluster.round_trips
        cluster.get_many(list(payloads))
        assert cluster.round_trips == trips_before + 1
        cluster.close()

    def test_missing_keys_raise_before_any_fanout(self):
        cluster, nodes = make_cluster(2)
        cluster.put("v", "s0", b"x")
        with pytest.raises(KeyError) as exc:
            cluster.get_many([("v", "s0"), ("v", "nope"), ("w", "gone")])
        assert set(map(tuple, exc.value.args[0])) == {("v", "nope"), ("w", "gone")}
        with pytest.raises(KeyError):
            cluster.get("v", "nope")
        assert all(node.reads == 0 for node in nodes)  # index check, no I/O
        cluster.close()

    def test_delete_and_transact_semantics(self):
        cluster, nodes = make_cluster(3)
        cluster.put_many([("v", f"s{i}", bytes([i]) * 4) for i in range(6)])
        cluster.delete("v", "s0")
        assert not cluster.has("v", "s0")
        assert not any(node.has("v", "s0") for node in nodes)
        with pytest.raises(KeyError):
            cluster.delete("v", "s0")
        with pytest.raises(ValueError):
            cluster.transact([("v", "s1", b"new")], [("v", "s1")])
        cluster.transact([("v", "s1", b"new")], [("v", "s2")])
        assert cluster.get("v", "s1") == b"new"
        assert not cluster.has("v", "s2")
        # the replacement landed on every replica, not just one
        for node in nodes:
            if node.has("v", "s1"):
                assert node.get("v", "s1") == b"new"
        cluster.close()

    def test_single_node_cluster_clamps_replicas(self):
        cluster, nodes = make_cluster(1, replicas=2)
        cluster.put("v", "s", b"x")
        assert cluster.get("v", "s") == b"x"
        assert nodes[0].get("v", "s") == b"x"
        cluster.close()

    def test_named_backends_and_duplicate_rejection(self):
        cluster = ClusterFragmentStore(
            [("east", FragmentStore()), ("west", FragmentStore())], retry=FAST_RETRY
        )
        assert sorted(cluster.nodes()) == ["east", "west"]
        cluster.close()
        with pytest.raises(ValueError):
            ClusterFragmentStore(
                [("east", FragmentStore()), ("east", FragmentStore())]
            )
        with pytest.raises(ValueError):
            ClusterFragmentStore([])

    def test_existing_node_contents_join_the_namespace(self):
        seeded = FragmentStore()
        seeded.put("v", "old", b"seeded")
        cluster = ClusterFragmentStore(
            [seeded, FragmentStore()], retry=FAST_RETRY
        )
        assert cluster.has("v", "old")
        assert cluster.get("v", "old") == b"seeded"
        cluster.close()

    def test_wrap_with_resilience_returns_cluster_unchanged(self):
        cluster, _ = make_cluster(2)
        wrapped = wrap_with_resilience(
            cluster, RetryPolicy(attempts=5), CircuitBreaker()
        )
        assert wrapped is cluster  # per-node wrappers already inside
        cluster.close()


class TestClusterURLGrammar:
    def test_from_url_parses_every_param(self):
        store = open_store(
            "cluster://?nodes=memory://,memory://,memory://"
            "&replicas=3&vnodes=16&retries=4&retry_base=0.01"
            "&breaker=7&cooldown=1.5&chunk=1k"
        )
        assert isinstance(store, ClusterFragmentStore)
        assert store.replicas == 3
        assert store._ring.vnodes == 16
        assert store.stats().nodes == 3
        node = store._nodes[0]
        assert node.store.retry.attempts == 4
        assert node.store.retry.base_delay == 0.01
        assert node.breaker.failure_threshold == 7
        assert node.breaker.cooldown == 1.5
        assert store.rebalancer.chunk_bytes == 1024
        store.close()

    def test_from_url_breaker_zero_disables_breakers(self):
        store = open_store("cluster://?nodes=memory://,memory://&breaker=0")
        assert all(node.breaker is None for node in store._nodes)
        store.close()

    def test_from_url_requires_nodes(self):
        with pytest.raises(ValueError):
            open_store("cluster://")
        with pytest.raises(ValueError):
            open_store("cluster://?replicas=2")

    def test_unknown_scheme_error_lists_cluster(self):
        with pytest.raises(ValueError, match="cluster"):
            open_store("bogus://x")


# ---------------------------------------------------------------------------
# Failover
# ---------------------------------------------------------------------------


def make_faulty_cluster(n_nodes: int, replicas: int = 2):
    """Cluster whose every node is a FaultyFragmentStore over memory."""
    faulty = [FaultyFragmentStore(FragmentStore()) for _ in range(n_nodes)]
    cluster = ClusterFragmentStore(
        faulty, replicas=replicas, vnodes=32, retry=FAST_RETRY,
        breaker_threshold=3, breaker_cooldown=60.0,
    )
    return cluster, faulty


class TestReadFailover:
    def test_dead_replica_serves_transparently_and_is_counted(self):
        cluster, faulty = make_faulty_cluster(3)
        keys = keyset(23, 40)
        payloads = {k: (k[0] + k[1]).encode() * 7 for k in keys}
        cluster.put_many([(v, s, p) for (v, s), p in payloads.items()])
        healthy = cluster.get_many(list(payloads))
        assert healthy == payloads

        faulty[0].fail_next(10**6)  # node 0 is dead to every read
        again = cluster.get_many(list(payloads))
        assert again == payloads  # bit-identical, zero client errors
        stats = cluster.stats()
        assert stats.failovers > 0
        assert stats.per_node["node0"].failovers == stats.failovers
        assert stats.per_node["node1"].failovers == 0
        cluster.close()

    def test_breaker_opens_and_dead_node_is_skipped_fast(self):
        cluster, faulty = make_faulty_cluster(3)
        keys = keyset(29, 40)
        cluster.put_many([(v, s, b"p" * 8) for v, s in keys])
        faulty[1].fail_next(10**6)
        # two failing rounds accumulate the 3 consecutive transient
        # failures (2 retry attempts each) the breaker needs to trip
        cluster.get_many(keys)
        cluster.get_many(keys)
        stats = cluster.stats()
        assert stats.per_node["node1"].breaker_is_open == 1
        assert cluster.resilience().breaker_state == "open"
        # with the breaker open the node is skipped without new attempts
        faults_before = faulty[1].transient_faults
        cluster.get_many(keys)
        assert faulty[1].transient_faults == faults_before
        assert cluster.stats().failovers > stats.failovers
        cluster.close()

    def test_all_replicas_dead_raises_typed_degraded_error(self):
        cluster, faulty = make_faulty_cluster(2, replicas=2)
        keys = keyset(31, 10)
        cluster.put_many([(v, s, b"x") for v, s in keys])
        for node in faulty:
            node.fail_next(10**6)
        with pytest.raises(DegradedError) as exc:
            cluster.get_many(keys)
        assert set(exc.value.missing) == set(keys)
        cluster.close()

    def test_replica_missing_key_fails_over_not_keyerror(self):
        """A node lacking a key (missed write, mid-move) is a failover."""
        cluster, nodes = make_cluster(3)
        keys = keyset(37, 30)
        cluster.put_many([(v, s, (v + s).encode()) for v, s in keys])
        # silently lose node 0's copies, as a crashed-and-wiped node would
        nodes[0]._data.clear()
        nodes[0]._sizes.clear()
        got = cluster.get_many(keys)
        assert got == {k: (k[0] + k[1]).encode() for k in set(keys)}
        assert cluster.stats().failovers > 0
        cluster.close()


class TestWriteFailover:
    def test_put_tolerates_one_dead_replica_and_counts_it(self):
        down = _DownStore()
        cluster = ClusterFragmentStore(
            [FragmentStore(), FragmentStore(), down],
            replicas=2, vnodes=32, retry=FAST_RETRY,
        )
        keys = keyset(41, 30)
        cluster.put_many([(v, s, b"w" * 4) for v, s in keys])  # no raise
        stats = cluster.stats()
        assert stats.write_failovers > 0
        assert stats.per_node["node2"].write_failovers == stats.write_failovers
        # every key still readable from its surviving replica
        assert set(cluster.get_many(keys)) == set(keys)
        cluster.close()

    def test_write_fails_when_a_key_would_lose_every_replica(self):
        cluster = ClusterFragmentStore(
            [_DownStore(), _DownStore()], replicas=2, vnodes=32,
            retry=FAST_RETRY,
        )
        with pytest.raises(FaultStoreError):
            cluster.put("v", "s", b"x")
        assert not cluster.has("v", "s")  # the failed write is not indexed
        cluster.close()

    def test_delete_on_a_dead_node_is_strict(self):
        """A replica that cannot confirm a delete fails the call loudly."""
        flaky = FaultyFragmentStore(FragmentStore())
        cluster = ClusterFragmentStore(
            [FragmentStore(), flaky], replicas=2, vnodes=32, retry=FAST_RETRY,
        )
        cluster.put("v", "s", b"x")
        flaky.fail_after = 0  # next mutation on this node dies
        with pytest.raises(SimulatedCrash):
            cluster.delete("v", "s")
        assert cluster.has("v", "s")  # index unchanged: nothing half-deleted
        cluster.close()


# ---------------------------------------------------------------------------
# Rebalancing
# ---------------------------------------------------------------------------


class TestRebalance:
    def payloads(self, seed: int, count: int) -> dict:
        return {k: (k[0] + k[1]).encode() * 5 for k in keyset(seed, count)}

    def test_join_migrates_minimal_share_and_stays_replicated(self):
        cluster, nodes = make_cluster(3)
        payloads = self.payloads(43, 60)
        cluster.put_many([(v, s, p) for (v, s), p in payloads.items()])
        new_node = FragmentStore()
        cluster.add_node(new_node)
        assert cluster.stats().rebalancing == 1
        report = cluster.rebalance()
        assert cluster.stats().rebalancing == 0
        assert report["moved_fragments"] > 0
        # ~2/4 of (key, replica) placements move on 3→4 nodes; well under all
        assert report["moved_fragments"] < 1.6 * len(payloads)
        assert len(new_node.keys()) > 0
        assert cluster.get_many(list(payloads)) == payloads
        for v, s in payloads:
            holders = sum(n.has(v, s) for n in nodes + [new_node])
            assert holders == 2, (v, s)
        stats = cluster.stats()
        assert stats.rebalances == 1
        assert stats.rebalanced_fragments == report["moved_fragments"]
        cluster.close()

    def test_drain_and_remove_keeps_data_and_detaches_node(self):
        cluster, nodes = make_cluster(3)
        payloads = self.payloads(47, 50)
        cluster.put_many([(v, s, p) for (v, s), p in payloads.items()])
        cluster.remove_node("node0")
        assert cluster.get_many(list(payloads)) == payloads  # still serving
        cluster.rebalance()
        assert cluster.nodes() == ["node1", "node2"]
        assert cluster.get_many(list(payloads)) == payloads
        for v, s in payloads:
            assert sum(n.has(v, s) for n in nodes[1:]) == 2, (v, s)
        with pytest.raises(ValueError):
            cluster.remove_node("node1"), cluster.remove_node("node2")
        cluster.close()

    def test_remove_dead_node_recovers_from_surviving_replicas(self):
        cluster, faulty = make_faulty_cluster(3)
        payloads = self.payloads(53, 50)
        cluster.put_many([(v, s, p) for (v, s), p in payloads.items()])
        faulty[2].fail_next(10**6)  # node2 dies unobserved
        cluster.remove_node("node2")
        cluster.rebalance()
        assert cluster.nodes() == ["node0", "node1"]
        assert cluster.get_many(list(payloads)) == payloads
        for v, s in payloads:
            assert faulty[0].has(v, s) and faulty[1].has(v, s), (v, s)
        cluster.close()

    def test_kill_target_mid_rebalance_loses_nothing(self):
        """A crash mid-migration leaves every fragment readable; the
        retried pass completes idempotently."""
        cluster, _ = make_cluster(3)
        payloads = self.payloads(59, 60)
        cluster.put_many([(v, s, p) for (v, s), p in payloads.items()])
        target = FaultyFragmentStore(FragmentStore(), fail_after=0)
        cluster.add_node(target, name="joiner")
        with pytest.raises(SimulatedCrash):
            cluster.rebalance()
        # staged rings intact: reads stay correct, nothing lost
        assert cluster.stats().rebalancing == 1
        assert cluster.get_many(list(payloads)) == payloads
        target.fail_after = None  # node comes back
        report = cluster.rebalance()
        assert report["moved_fragments"] > 0
        assert cluster.stats().rebalancing == 0
        assert cluster.get_many(list(payloads)) == payloads
        cluster.close()

    def test_overwrite_during_staged_move_is_never_served_stale(self):
        """A put racing the migration wins: old-then-new lookup plus the
        write-to-union rule means no replica can serve superseded bytes."""
        cluster, nodes = make_cluster(3)
        payloads = self.payloads(61, 40)
        cluster.put_many([(v, s, p) for (v, s), p in payloads.items()])
        cluster.add_node(FragmentStore())
        victim = sorted(payloads)[0]
        cluster.put(victim[0], victim[1], b"NEWER")  # mid-stage overwrite
        cluster.rebalance()
        assert cluster.get(*victim) == b"NEWER"
        for node in cluster._nodes:
            if node.store.has(*victim):
                assert node.store.get(*victim) == b"NEWER"
        cluster.close()

    def test_background_rebalancer_thread_migrates(self):
        cluster, _ = make_cluster(2)
        payloads = self.payloads(67, 30)
        cluster.put_many([(v, s, p) for (v, s), p in payloads.items()])
        cluster.rebalancer.interval = 0.02
        cluster.start_rebalancer()
        assert cluster.rebalancer.running
        cluster.add_node(FragmentStore())
        deadline = threading.Event()
        for _ in range(200):
            if cluster.stats().rebalancing == 0:
                break
            deadline.wait(0.02)
        assert cluster.stats().rebalancing == 0
        assert cluster.get_many(list(payloads)) == payloads
        cluster.close()
        assert not cluster.rebalancer.running

    def test_rebalance_without_staged_change_is_a_noop(self):
        cluster, _ = make_cluster(2)
        cluster.put("v", "s", b"x")
        assert cluster.rebalance() == {
            "moved_fragments": 0, "moved_bytes": 0, "dropped": 0,
        }
        cluster.close()

    def test_rebalancer_rejects_bad_interval(self):
        cluster, _ = make_cluster(2)
        with pytest.raises(ValueError):
            Rebalancer(cluster, interval=0.0)
        cluster.close()


# ---------------------------------------------------------------------------
# Merged per-node stats (the satellite fix: never just node 0)
# ---------------------------------------------------------------------------


class TestMergedStats:
    def test_durability_merges_every_nodes_wal(self, tmp_path):
        stores = [ShardedDiskStore(str(tmp_path / f"n{i}")) for i in range(3)]
        cluster = ClusterFragmentStore(
            stores, replicas=1, vnodes=32, retry=FAST_RETRY
        )
        cluster.put_many([(v, s, b"d" * 16) for v, s in keyset(71, 30)])
        merged = cluster.durability()
        per_node = [s.durability() for s in stores]
        assert merged.wal_commits == sum(d.wal_commits for d in per_node)
        assert merged.wal_entries == sum(d.wal_entries for d in per_node)
        assert all(d.wal_commits > 0 for d in per_node)  # not just node 0
        cluster.close()

    def test_compact_merges_reports_across_nodes(self, tmp_path):
        stores = [ShardedDiskStore(str(tmp_path / f"n{i}")) for i in range(2)]
        cluster = ClusterFragmentStore(
            stores, replicas=2, vnodes=32, retry=FAST_RETRY
        )
        cluster.put_many([("v", f"s{i}", bytes([i]) * 32) for i in range(8)])
        for i in range(4):
            cluster.delete("v", f"s{i}")
        report = cluster.compact()
        # K=2: every tombstoned fragment is reclaimed on both replicas
        assert report.removed_files == 8
        assert report.reclaimed_bytes == 2 * 4 * 32
        assert cluster.durability().dead_bytes == 0
        cluster.close()

    def test_resilience_merges_attempts_and_worst_breaker(self):
        cluster, faulty = make_faulty_cluster(3)
        cluster.put_many([(v, s, b"x") for v, s in keyset(73, 20)])
        baseline = cluster.resilience().attempts
        assert baseline > 0
        faulty[2].fail_next(10**6)
        cluster.get_many(cluster.keys())
        cluster.get_many(cluster.keys())  # second round trips the breaker
        merged = cluster.resilience()
        assert merged.attempts > baseline
        assert merged.failures > 0
        assert merged.breaker_is_open == 1
        assert merged.breaker_state == "open"
        cluster.close()

    def test_resilience_stats_merge_unit(self):
        a = ResilienceStats(attempts=3, failures=1, breaker_state="closed")
        b = ResilienceStats(
            attempts=5, retries=2, breaker_is_open=1, breaker_state="open",
            breaker_opens=1,
        )
        merged = a.merge(b)
        assert merged is a
        assert merged.attempts == 8 and merged.retries == 2
        assert merged.failures == 1 and merged.breaker_opens == 1
        assert merged.breaker_is_open == 1 and merged.breaker_state == "open"
        # half-open loses to open, beats closed
        c = ResilienceStats(breaker_state="half_open", breaker_is_open=1)
        assert merged.merge(c).breaker_state == "open"
        assert ResilienceStats().merge(c).breaker_state == "half_open"

    def test_durability_skips_unreachable_nodes(self, tmp_path):
        disk = ShardedDiskStore(str(tmp_path / "n0"))
        cluster = ClusterFragmentStore(
            [disk, _DownStore()], replicas=2, vnodes=32, retry=FAST_RETRY
        )
        # K=2: every key reaches the live disk node, the dead replica
        # writes are tolerated and counted
        cluster.put_many([(v, s, b"x" * 8) for v, s in keyset(79, 10)])
        assert cluster.stats().write_failovers > 0
        merged = cluster.durability()  # no raise with one node dead
        assert merged.wal_commits >= disk.durability().wal_commits > 0
        cluster.close()


# ---------------------------------------------------------------------------
# Retrieval identity and chaos over real HTTP fragment servers
# ---------------------------------------------------------------------------


def cluster_url(servers, replicas: int = 2) -> str:
    nodes = ",".join("%s:%d" % server.address for server in servers)
    return (
        f"cluster://{nodes}?replicas={replicas}&vnodes=32"
        f"&retries=2&retry_base=0.0&breaker=2&cooldown=30"
    )


class TestClusterRetrievalChaos:
    """The acceptance criterion: 3 nodes, K=2, kill any one mid-retrieval
    → bit-identical to the healthy cluster, zero client-visible errors."""

    @pytest.fixture(scope="class")
    def archived(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cluster-archive")
        rng = np.random.default_rng(5)
        t = np.linspace(0, 8, 1200)
        fields = {
            "vx": 60 * np.sin(t) + rng.normal(size=t.size),
            "vy": 30 * np.cos(t) + rng.normal(size=t.size),
            "vz": 10 * np.sin(2 * t) + rng.normal(size=t.size),
        }
        refactored = refactor_dataset(
            fields, make_refactorer("pmgard_hb", num_planes=32)
        )
        # the single-store baseline every cluster answer must match
        base_dir = str(tmp / "baseline")
        Archive(ShardedDiskStore(base_dir)).save_dataset(refactored)
        # three node directories populated through a healthy cluster
        node_dirs = [str(tmp / f"node{i}") for i in range(3)]
        servers = [
            HTTPFragmentServer(ShardedDiskStore(d)).start() for d in node_dirs
        ]
        store = open_store(cluster_url(servers))
        Archive(store).save_dataset(refactored)
        store.close()
        for server in servers:
            server.stop()
        ranges = {k: float(np.ptp(v)) for k, v in fields.items()}
        qoi = qoi_from_spec("vtot", sorted(fields))
        env = {k: (v, 0.0) for k, v in fields.items()}
        return base_dir, node_dirs, ranges, qoi, float(np.ptp(qoi.value(env)))

    def retrieve(self, store, archived, tolerances=(1e-3,), kill=None):
        """Run a (possibly multi-stage) retrieval; *kill* fires between
        stages, modelling a node death mid-session."""
        _, _, ranges, qoi, qoi_range = archived
        service = RetrievalService(store, value_ranges=ranges)
        results = []
        try:
            with service.open_session() as session:
                for i, tol in enumerate(tolerances):
                    if kill is not None and i == len(tolerances) - 1:
                        kill()
                    results.append(
                        session.retrieve([QoIRequest("vtot", qoi, tol, qoi_range)])
                    )
        finally:
            service.close()
        return results

    def assert_identical(self, got, want, context: str):
        assert len(got) == len(want), context
        for a, b in zip(got, want):
            assert a.total_bytes == b.total_bytes, context
            assert a.estimated_errors == b.estimated_errors, context
            for name in b.data:
                assert np.array_equal(a.data[name], b.data[name]), context

    def baseline(self, archived, tolerances):
        base_dir = archived[0]
        return self.retrieve(
            ShardedDiskStore(base_dir), archived, tolerances
        )

    def test_healthy_cluster_retrieval_is_bit_identical(self, archived):
        _, node_dirs, *_ = archived
        servers = [
            HTTPFragmentServer(ShardedDiskStore(d)).start() for d in node_dirs
        ]
        try:
            store = open_store(cluster_url(servers))
            got = self.retrieve(store, archived, (1e-2, 1e-4))
            self.assert_identical(
                got, self.baseline(archived, (1e-2, 1e-4)), "healthy"
            )
            store.close()
        finally:
            for server in servers:
                server.stop()

    @pytest.mark.parametrize("victim", [0, 1, 2])
    def test_kill_any_single_node_mid_retrieval(self, archived, victim):
        _, node_dirs, *_ = archived
        servers = [
            HTTPFragmentServer(ShardedDiskStore(d)).start() for d in node_dirs
        ]
        try:
            store = open_store(cluster_url(servers))
            tolerances = (1e-2, 1e-4)
            got = self.retrieve(
                store, archived, tolerances,
                kill=lambda: kill_server(servers[victim]),
            )
            # bit-identical to the healthy baseline, zero visible errors
            self.assert_identical(
                got, self.baseline(archived, tolerances), f"victim={victim}"
            )
            stats = store.stats()
            assert stats.failovers > 0, f"victim={victim}"
            assert stats.per_node[f"node{victim}"].failovers > 0
            store.close()
        finally:
            for server in servers:
                if server._thread is not None:
                    server.stop()

    def test_kill_node_mid_rebalance_over_http(self, archived, tmp_path):
        """Node death mid-migration: nothing lost, nothing stale, the
        retried pass completes against the surviving replicas."""
        _, node_dirs, *_ = archived
        servers = [
            HTTPFragmentServer(ShardedDiskStore(d)).start() for d in node_dirs
        ]
        joiner = HTTPFragmentServer(
            ShardedDiskStore(str(tmp_path / "joiner"))
        ).start()
        try:
            store = open_store(cluster_url(servers))
            everything = store.get_many(store.keys())
            store.add_node(open_store(joiner.url))
            kill_server(servers[0])  # dies while the move is staged
            try:
                store.rebalance()
            except (ConnectionError, OSError, DegradedError):
                pass  # a failed pass must leave the staged lookup intact
            got = store.get_many(list(everything))
            assert got == everything  # nothing lost, nothing stale
            report = store.rebalance()  # retried pass completes
            assert store.stats().rebalancing == 0
            assert store.get_many(list(everything)) == everything
            assert report["moved_fragments"] >= 0
            store.close()
        finally:
            for server in servers + [joiner]:
                if server._thread is not None:
                    server.stop()


class TestServiceIntegration:
    def test_service_stats_carry_cluster_counters(self):
        cluster, _ = make_cluster(3)
        cluster.put_many([(v, s, b"x" * 8) for v, s in keyset(83, 20)])
        service = RetrievalService(cluster, value_ranges={})
        stats = service.stats()
        assert stats.cluster is not None
        assert stats.cluster.nodes == 3
        assert set(stats.cluster.per_node) == {"node0", "node1", "node2"}
        from dataclasses import asdict

        payload = asdict(stats)  # the wire shape /metrics flattens
        assert payload["cluster"]["per_node"]["node1"]["requests"] >= 0
        service.close()

    def test_service_open_starts_cluster_rebalancer(self, tmp_path):
        servers = [
            HTTPFragmentServer(ShardedDiskStore(str(tmp_path / f"n{i}"))).start()
            for i in range(2)
        ]
        try:
            service = RetrievalService.open(cluster_url(servers))
            assert isinstance(service._inner, ClusterFragmentStore)
            assert service._inner.rebalancer.running
            service.close()
            assert not service._inner.rebalancer.running
        finally:
            for server in servers:
                server.stop()
