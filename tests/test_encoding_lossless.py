"""Tests for lossless backends."""

import numpy as np
import pytest

from repro.encoding.lossless import get_backend


@pytest.fixture(params=["zlib", "raw", "huffman"])
def backend(request):
    return get_backend(request.param)


class TestBackends:
    def test_bytes_roundtrip(self, backend):
        payload = bytes(range(256)) * 10
        assert backend.decompress_bytes(backend.compress_bytes(payload)) == payload

    def test_ints_roundtrip(self, backend):
        rng = np.random.default_rng(7)
        values = np.rint(rng.normal(scale=2, size=5000)).astype(np.int64)
        out = backend.decompress_ints(backend.compress_ints(values))
        np.testing.assert_array_equal(out, values)

    def test_empty_ints(self, backend):
        values = np.zeros(0, dtype=np.int64)
        out = backend.decompress_ints(backend.compress_ints(values))
        assert out.size == 0


class TestZlibSpecifics:
    def test_compresses_redundant_data(self):
        b = get_backend("zlib")
        payload = b"\x00" * 100000
        assert len(b.compress_bytes(payload)) < 1000

    def test_level_validation(self):
        with pytest.raises(ValueError):
            get_backend("zlib", level=11)


def test_unknown_backend():
    with pytest.raises(ValueError, match="unknown lossless backend"):
        get_backend("nope")
