"""Tests for blocked (per-worker) refactor and retrieval."""

import numpy as np
import pytest

from repro.compressors.base import make_refactorer
from repro.core.qois import total_velocity
from repro.parallel.blocks import (
    BlockedDataset,
    block_variable,
    blockwise_archive,
    blockwise_refactor,
    blockwise_retrieve,
    blockwise_retrieve_service,
    split_fields,
)


def fields(n=4800, seed=0):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 20, n)
    return {
        "velocity_x": 100 * np.sin(t) + rng.normal(size=n),
        "velocity_y": 60 * np.cos(t) + rng.normal(size=n),
        "velocity_z": 25 * np.sin(3 * t) + rng.normal(size=n),
    }


class TestSplitting:
    def test_blocks_partition_exactly(self):
        f = fields()
        blocked = BlockedDataset.from_fields(f, 7)
        assert blocked.num_blocks == 7
        merged = blocked.merge(blocked.blocks)
        for k in f:
            np.testing.assert_array_equal(merged[k], f[k])

    def test_uneven_split(self):
        f = {k: v[:100] for k, v in fields().items()}
        blocked = BlockedDataset.from_fields(f, 3)
        sizes = [b["velocity_x"].size for b in blocked.blocks]
        assert sum(sizes) == 100
        assert max(sizes) - min(sizes) <= 1

    def test_mismatched_leading_axis(self):
        with pytest.raises(ValueError, match="leading axis"):
            split_fields({"a": np.zeros(10), "b": np.zeros(11)}, 2)

    def test_too_many_blocks(self):
        with pytest.raises(ValueError):
            split_fields({"a": np.zeros(3)}, 5)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            split_fields({"a": np.zeros(10)}, 0)

    def test_merge_block_count_mismatch(self):
        blocked = BlockedDataset.from_fields(fields(), 4)
        with pytest.raises(ValueError):
            blocked.merge(blocked.blocks[:2])


class TestBlockwisePipeline:
    def test_refactor_and_retrieve_guarantee(self):
        f = fields(seed=1)
        blocked = BlockedDataset.from_fields(f, 6)
        refactored = blockwise_refactor(
            blocked, lambda: make_refactorer("pmgard_hb"), max_workers=3
        )
        assert len(refactored) == 6
        qoi = total_velocity()
        truth = qoi.value({k: (v, 0.0) for k, v in f.items()})
        qrange = float(truth.max() - truth.min())
        result = blockwise_retrieve(
            blocked, refactored, qoi, "VTOT", 1e-4, qrange, max_workers=3
        )
        assert result.all_satisfied
        rec = qoi.value({k: (result.data[k], 0.0) for k in result.data})
        # per-block guarantees imply the global one (Linf is a max)
        assert np.max(np.abs(rec - truth)) <= 1e-4 * qrange * (1 + 1e-9)
        assert len(result.per_block_bytes) == 6
        assert result.total_bytes == sum(result.per_block_bytes)
        assert all(r >= 1 for r in result.per_block_rounds)
        assert all(s >= 0 for s in result.per_block_seconds)

    def test_block_sizes_vary_with_content(self):
        rng = np.random.default_rng(2)
        n = 4000
        smooth = np.sin(np.linspace(0, 10, n))
        noisy = smooth.copy()
        noisy[n // 2 :] += 0.5 * rng.normal(size=n - n // 2)  # second half harder
        f = {"velocity_x": noisy, "velocity_y": smooth.copy(), "velocity_z": smooth.copy()}
        blocked = BlockedDataset.from_fields(f, 2)
        refactored = blockwise_refactor(blocked, lambda: make_refactorer("pmgard_hb"))
        qoi = total_velocity()
        truth = qoi.value({k: (v, 0.0) for k, v in f.items()})
        qrange = float(truth.max() - truth.min()) or 1.0
        result = blockwise_retrieve(blocked, refactored, qoi, "VTOT", 1e-4, qrange)
        # the noisy block needs more bytes than the smooth one
        assert result.per_block_bytes[1] > result.per_block_bytes[0]


class TestBlockwiseService:
    def test_archive_and_retrieve_through_shared_cache(self):
        from repro.service.service import RetrievalService
        from repro.storage.archive import Archive
        from repro.storage.store import FragmentStore

        f = fields(seed=3)
        blocked = BlockedDataset.from_fields(f, 4)
        refactored = blockwise_refactor(blocked, lambda: make_refactorer("pmgard_hb"))
        store = FragmentStore()
        manifest = blockwise_archive(
            blocked, refactored, Archive(store), method="pmgard_hb"
        )
        assert block_variable("velocity_x", 0) in manifest.variables
        assert len(manifest.variables) == 4 * 3

        qoi = total_velocity()
        truth = qoi.value({k: (v, 0.0) for k, v in f.items()})
        qrange = float(truth.max() - truth.min())

        service = RetrievalService(store)  # manifest picked up from store
        result = blockwise_retrieve_service(
            service, list(f), blocked.num_blocks, qoi, "VTOT", 1e-4, qrange,
            max_workers=3,
        )
        assert result.all_satisfied
        rec = qoi.value({k: (result.data[k], 0.0) for k in result.data})
        assert np.max(np.abs(rec - truth)) <= 1e-4 * qrange * (1 + 1e-9)
        bytes_first = store.bytes_read
        assert bytes_first > 0

        # a second sweep (e.g. another analyst re-running the job) is
        # served entirely from the shared fragment cache
        again = blockwise_retrieve_service(
            service, list(f), blocked.num_blocks, qoi, "VTOT", 1e-4, qrange,
            max_workers=3,
        )
        assert again.all_satisfied
        assert store.bytes_read == bytes_first
        assert service.stats().cache.hit_rate > 0.4

    def test_block_count_mismatch(self):
        from repro.storage.archive import Archive
        from repro.storage.store import FragmentStore

        f = fields(seed=4)
        blocked = BlockedDataset.from_fields(f, 3)
        with np.testing.assert_raises(ValueError):
            blockwise_archive(blocked, [], Archive(FragmentStore()))
