"""Tests for the stopwatch/timing helpers."""

import time

from repro.utils.timing import Stopwatch, timed


class TestStopwatch:
    def test_sections_accumulate(self):
        sw = Stopwatch()
        with sw.section("a"):
            time.sleep(0.01)
        with sw.section("a"):
            time.sleep(0.01)
        with sw.section("b"):
            pass
        assert sw.get("a") >= 0.02
        assert sw.get("b") >= 0.0
        assert sw.total() >= sw.get("a")

    def test_unknown_section_zero(self):
        assert Stopwatch().get("nope") == 0.0

    def test_reset(self):
        sw = Stopwatch()
        with sw.section("a"):
            pass
        sw.reset()
        assert sw.total() == 0.0

    def test_section_records_on_exception(self):
        sw = Stopwatch()
        try:
            with sw.section("x"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert sw.get("x") >= 0.0
        assert "x" in sw.sections


class TestTimed:
    def test_elapsed_positive(self):
        with timed() as t:
            time.sleep(0.005)
        assert t.elapsed >= 0.005
