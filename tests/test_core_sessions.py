"""Tests for stateful retrieval sessions and region-of-interest requests."""

import numpy as np
import pytest

from repro.compressors.base import make_refactorer
from repro.core.qois import total_velocity
from repro.core.retrieval import QoIRequest, QoIRetriever, refactor_dataset


def fields(n=4000, seed=0):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 12, n)
    return {
        "velocity_x": 90 * np.sin(t) + rng.normal(size=n),
        "velocity_y": 45 * np.cos(t) + rng.normal(size=n),
        "velocity_z": 15 * np.sin(2 * t) + rng.normal(size=n),
    }


@pytest.fixture(scope="module")
def setup():
    f = fields()
    refactored = refactor_dataset(f, make_refactorer("pmgard_hb"))
    ranges = {k: float(v.max() - v.min()) for k, v in f.items()}
    qoi = total_velocity()
    truth = qoi.value({k: (v, 0.0) for k, v in f.items()})
    qrange = float(truth.max() - truth.min())
    return f, refactored, ranges, qoi, truth, qrange


class TestSessionReuse:
    def test_tightening_is_incremental(self, setup):
        f, refactored, ranges, qoi, truth, qrange = setup
        retriever = QoIRetriever(refactored, ranges)
        session = retriever.session()
        r1 = session.retrieve([QoIRequest("VTOT", qoi, 1e-2, qrange)])
        bytes_after_loose = session.bytes_retrieved()
        r2 = session.retrieve([QoIRequest("VTOT", qoi, 1e-5, qrange)])
        bytes_after_tight = session.bytes_retrieved()
        assert r1.all_satisfied and r2.all_satisfied
        assert bytes_after_tight > bytes_after_loose

        # a cold retrieval straight to 1e-5 costs the same fragments:
        # the session paid nothing extra for having stopped at 1e-2 first
        cold = QoIRetriever(refactored, ranges).retrieve(
            [QoIRequest("VTOT", qoi, 1e-5, qrange)]
        )
        assert bytes_after_tight <= cold.total_bytes * 1.01

    def test_loosening_is_free(self, setup):
        f, refactored, ranges, qoi, truth, qrange = setup
        session = QoIRetriever(refactored, ranges).session()
        session.retrieve([QoIRequest("VTOT", qoi, 1e-4, qrange)])
        before = session.bytes_retrieved()
        result = session.retrieve([QoIRequest("VTOT", qoi, 1e-2, qrange)])
        assert result.all_satisfied
        assert session.bytes_retrieved() == before

    def test_guarantee_after_each_step(self, setup):
        f, refactored, ranges, qoi, truth, qrange = setup
        session = QoIRetriever(refactored, ranges).session()
        for tol in (1e-1, 1e-3, 1e-5):
            result = session.retrieve([QoIRequest("VTOT", qoi, tol, qrange)])
            assert result.all_satisfied
            rec = qoi.value({k: (result.data[k], 0.0) for k in result.data})
            assert np.max(np.abs(rec - truth)) <= tol * qrange * (1 + 1e-9)

    def test_tightening_ladder_beats_two_fresh_sessions(self, setup):
        """The incremental economics claim, quantified: a loose-then-tight
        ladder in ONE session moves strictly fewer cumulative bytes than
        running each rung in its own fresh session."""
        f, refactored, ranges, qoi, truth, qrange = setup
        session = QoIRetriever(refactored, ranges).session()
        r1 = session.retrieve([QoIRequest("VTOT", qoi, 1e-2, qrange)])
        r2 = session.retrieve([QoIRequest("VTOT", qoi, 1e-5, qrange)])
        assert r1.all_satisfied and r2.all_satisfied
        cumulative = session.bytes_retrieved()

        fresh_loose = QoIRetriever(refactored, ranges).retrieve(
            [QoIRequest("VTOT", qoi, 1e-2, qrange)]
        )
        fresh_tight = QoIRetriever(refactored, ranges).retrieve(
            [QoIRequest("VTOT", qoi, 1e-5, qrange)]
        )
        assert cumulative < fresh_loose.total_bytes + fresh_tight.total_bytes

    def test_bytes_retrieved_per_variable(self, setup):
        f, refactored, ranges, qoi, truth, qrange = setup
        session = QoIRetriever(refactored, ranges).session()
        assert session.bytes_retrieved("velocity_x") == 0
        session.retrieve([QoIRequest("VTOT", qoi, 1e-3, qrange)])
        assert session.bytes_retrieved("velocity_x") > 0


class TestRegionOfInterest:
    def test_region_cheaper_than_global(self, setup):
        f, refactored, ranges, qoi, truth, qrange = setup
        n = truth.size
        region = np.zeros(n, dtype=bool)
        region[: n // 10] = True  # only the first 10% matters

        roi = QoIRetriever(refactored, ranges).retrieve(
            [QoIRequest("VTOT", qoi, 1e-5, qrange, region=region)]
        )
        full = QoIRetriever(refactored, ranges).retrieve(
            [QoIRequest("VTOT", qoi, 1e-5, qrange)]
        )
        assert roi.all_satisfied
        # tolerance holds inside the region
        rec = qoi.value({k: (roi.data[k], 0.0) for k in roi.data})
        assert np.max(np.abs(rec - truth)[region]) <= 1e-5 * qrange * (1 + 1e-9)
        assert roi.total_bytes <= full.total_bytes

    def test_region_shape_mismatch(self, setup):
        f, refactored, ranges, qoi, truth, qrange = setup
        bad = np.ones(7, dtype=bool)
        with pytest.raises(ValueError, match="region shape"):
            QoIRetriever(refactored, ranges).retrieve(
                [QoIRequest("VTOT", qoi, 1e-3, qrange, region=bad)]
            )

    def test_empty_region_trivially_satisfied(self, setup):
        f, refactored, ranges, qoi, truth, qrange = setup
        region = np.zeros(truth.size, dtype=bool)
        result = QoIRetriever(refactored, ranges).retrieve(
            [QoIRequest("VTOT", qoi, 1e-9, qrange, region=region)]
        )
        assert result.all_satisfied
        assert result.estimated_errors["VTOT"] == 0.0
