"""Randomized QoI-tree property tests.

Hypothesis builds *arbitrary* expression trees from the derivable basis
(Definitions 2-3) and verifies the composite guarantee end to end: for
any admissible perturbation of the inputs, the true QoI error never
exceeds the propagated bound.  This is the strongest statement of the
paper's Theorems 7-9 the test suite makes — it does not depend on any
hand-picked QoI."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expressions import Add, Div, Mul, Pow, Radical, Sqrt, Var

VAR_NAMES = ("u", "v", "w")


def leaf():
    return st.sampled_from([Var(n) for n in VAR_NAMES])


def expression(max_depth=4):
    """Recursive strategy over the derivable basis."""
    return st.recursive(
        leaf(),
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda t: Add([t[0], t[1]])),
            st.tuples(
                children, children, st.floats(-3, 3), st.floats(-3, 3)
            ).map(lambda t: Add([t[0], t[1]], weights=[t[2], t[3]])),
            st.tuples(children, children).map(lambda t: Mul(t[0], t[1])),
            st.tuples(children, children).map(lambda t: Div(t[0], t[1])),
            children.map(Sqrt),
            st.tuples(children, st.floats(0.5, 30)).map(
                lambda t: Radical(t[0], c=t[1])
            ),
            st.tuples(children, st.sampled_from([1, 2, 3, 1.5, 2.5])).map(
                lambda t: Pow(t[0], t[1])
            ),
        ),
        max_leaves=8,
    )


@given(
    expression(),
    st.floats(1e-8, 1e-2),
    st.integers(0, 2**31),
)
@settings(max_examples=150, deadline=None)
def test_random_tree_bound_dominates_true_error(expr, rel_eps, seed):
    rng = np.random.default_rng(seed)
    n = 40
    # positive, away-from-zero inputs keep most domains valid; domain
    # failures (inf bounds) are themselves acceptable answers
    values = {name: rng.uniform(0.5, 5.0, size=n) for name in VAR_NAMES}
    eps = {name: rel_eps * np.ptp(values[name]) if np.ptp(values[name]) > 0 else rel_eps
           for name in VAR_NAMES}
    env = {name: (values[name], eps[name]) for name in VAR_NAMES}
    value, bound = expr.evaluate(env)
    value = np.asarray(value, dtype=float)
    bound = np.asarray(bound, dtype=float)
    if not np.all(np.isfinite(value)):
        return  # expression is singular on this draw; nothing to check

    worst = np.zeros_like(value)
    for _ in range(12):
        perturbed = {
            name: (values[name] + rng.uniform(-1, 1, n) * eps[name], 0.0)
            for name in VAR_NAMES
        }
        pv, _ = expr.evaluate(perturbed)
        worst = np.maximum(worst, np.abs(np.asarray(pv, dtype=float) - value))

    finite = np.isfinite(bound) & np.isfinite(worst)
    slack = 1e-10 * np.maximum(1.0, np.abs(value[finite]))
    assert np.all(worst[finite] <= bound[finite] * (1 + 1e-9) + slack)


@given(expression(), st.integers(0, 2**31))
@settings(max_examples=80, deadline=None)
def test_zero_eps_zero_bound(expr, seed):
    """Exact inputs must always produce a zero (or inf-domain) bound."""
    rng = np.random.default_rng(seed)
    values = {name: rng.uniform(0.5, 5.0, size=10) for name in VAR_NAMES}
    env = {name: (values[name], 0.0) for name in VAR_NAMES}
    _, bound = expr.evaluate(env)
    bound = np.asarray(bound, dtype=float)
    finite = np.isfinite(bound)
    assert np.all(bound[finite] <= 1e-12)


@given(expression())
@settings(max_examples=50, deadline=None)
def test_variables_subset_of_names(expr):
    assert expr.variables() <= set(VAR_NAMES)
