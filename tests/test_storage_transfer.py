"""Tests for the simulated Globus transfer model (Fig. 9 substrate)."""

import pytest

from repro.storage.transfer import (
    DEFAULT_AGGREGATE_BANDWIDTH,
    GlobusTransferModel,
    TransferReport,
)


class TestCalibration:
    def test_baseline_matches_paper(self):
        # 4.67 GB over 96 blocks should take ~11.7 s (the dashed line)
        model = GlobusTransferModel(request_latency=0.0)
        report = model.baseline(int(4.67e9), 96)
        assert report.total_time == pytest.approx(11.7, rel=0.02)

    def test_reduced_data_speedup(self):
        model = GlobusTransferModel(request_latency=0.0)
        baseline = model.baseline(int(4.67e9), 96)
        reduced = model.transfer([int(4.67e9 * 0.27 / 96)] * 96)
        assert reduced.speedup_over(baseline) > 2.0


class TestModelBehaviour:
    def test_latency_charged_per_round(self):
        model = GlobusTransferModel(aggregate_bandwidth=1e9, request_latency=0.5, max_streams=4)
        one = model.transfer([1000] * 4, rounds_per_block=1)
        three = model.transfer([1000] * 4, rounds_per_block=3)
        assert three.total_time == pytest.approx(one.total_time + 1.0)

    def test_slowest_worker_dominates(self):
        model = GlobusTransferModel(aggregate_bandwidth=8e6, request_latency=0.0, max_streams=2)
        report = model.transfer([4_000_000, 1000], compute_times=[0.0, 0.0])
        # stream bw = 4 MB/s; big block takes 1s, small ~0
        assert report.total_time == pytest.approx(1.0, rel=1e-3)

    def test_more_blocks_than_streams_round_robin(self):
        model = GlobusTransferModel(aggregate_bandwidth=2e6, request_latency=0.0, max_streams=2)
        report = model.transfer([1_000_000] * 4)
        # 2 streams x 2 blocks each at 1 MB/s per stream = 2 s
        assert report.total_time == pytest.approx(2.0, rel=1e-3)

    def test_compute_time_included(self):
        model = GlobusTransferModel(aggregate_bandwidth=1e9, request_latency=0.0, max_streams=1)
        slow = model.transfer([0], compute_times=[2.5])
        assert slow.total_time >= 2.5

    def test_per_block_rounds(self):
        model = GlobusTransferModel(aggregate_bandwidth=1e9, request_latency=1.0, max_streams=2)
        report = model.transfer([0, 0], rounds_per_block=[1, 5])
        assert report.total_time == pytest.approx(5.0)


class TestValidation:
    def test_empty_blocks(self):
        with pytest.raises(ValueError):
            GlobusTransferModel().transfer([])

    def test_negative_block(self):
        with pytest.raises(ValueError):
            GlobusTransferModel().transfer([-1])

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            GlobusTransferModel(aggregate_bandwidth=0)

    def test_bad_latency(self):
        with pytest.raises(ValueError):
            GlobusTransferModel(request_latency=-0.1)

    def test_bad_streams(self):
        with pytest.raises(ValueError):
            GlobusTransferModel(max_streams=0)

    def test_compute_length_mismatch(self):
        with pytest.raises(ValueError):
            GlobusTransferModel().transfer([1, 2], compute_times=[0.1])

    def test_default_bandwidth_is_paper_calibrated(self):
        assert DEFAULT_AGGREGATE_BANDWIDTH == pytest.approx(4.67e9 / 11.7)

    def test_report_speedup(self):
        a = TransferReport(10.0, 10.0, 0.0, 100, 1)
        b = TransferReport(5.0, 5.0, 0.0, 50, 1)
        assert b.speedup_over(a) == 2.0
