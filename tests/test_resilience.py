"""Tests for the resilience fabric: retries, breakers, degraded reads,
deadlines, hedging, admission control, and client reconnect."""

import socket
import threading

import numpy as np
import pytest

from fault_store import FaultyFragmentStore
from repro.core.qois import total_velocity
from repro.core.retrieval import QoIRequest, QoIRetriever
from repro.service.server import (
    OverloadedResponse,
    RetrievalServer,
    ServiceClient,
)
from repro.service.service import (
    OverloadedError,
    RetrievalService,
    TokenBucket,
)
from repro.storage.archive import Archive
from repro.storage.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    DegradedError,
    FaultStoreError,
    ResilientStore,
    RetryPolicy,
    is_transient,
    wrap_with_resilience,
)
from repro.storage.store import FragmentStore
from repro.storage.tiered import TieredStore
from test_service import archive_into, make_fields


class FakeClock:
    """Deterministic, manually-advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def no_sleep_policy(**kwargs):
    """A RetryPolicy that records its sleeps instead of waiting."""
    sleeps = []
    kwargs.setdefault("jitter", 0.0)
    policy = RetryPolicy(sleep=sleeps.append, **kwargs)
    return policy, sleeps


class TestTaxonomy:
    def test_transient_vs_permanent(self):
        assert is_transient(ConnectionError("reset"))
        assert is_transient(FaultStoreError("injected"))
        assert is_transient(TimeoutError("slow"))
        assert not is_transient(KeyError("missing"))
        assert not is_transient(ValueError("bad request"))
        # an open breaker must not be retried into
        assert not is_transient(CircuitOpenError("backend", 1.0))


class TestRetryPolicy:
    def test_schedule_is_capped_exponential(self):
        policy = RetryPolicy(
            attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.4
        )
        assert policy.schedule() == [0.1, 0.2, 0.4, 0.4]

    def test_jitter_scales_delay_down_only(self):
        policy = RetryPolicy(attempts=2, base_delay=1.0, jitter=0.5)
        for _ in range(50):
            delay = policy.backoff(0)
            assert 0.5 <= delay <= 1.0

    def test_transient_failures_retried_then_succeed(self):
        policy, sleeps = no_sleep_policy(attempts=3, base_delay=0.1)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise FaultStoreError("not yet")
            return "payload"

        assert policy.run(flaky) == "payload"
        assert len(calls) == 3
        assert sleeps == [0.1, 0.2]

    def test_permanent_error_not_retried(self):
        policy, sleeps = no_sleep_policy(attempts=5)

        def wrong():
            raise KeyError("no such fragment")

        with pytest.raises(KeyError):
            policy.run(wrong)
        assert sleeps == []

    def test_gives_up_after_attempts(self):
        policy, sleeps = no_sleep_policy(attempts=3, base_delay=0.01)

        def dead():
            raise FaultStoreError("still down")

        with pytest.raises(FaultStoreError):
            policy.run(dead)
        assert len(sleeps) == 2  # attempts - 1 backoffs

    def test_circuit_open_error_fails_fast(self):
        policy, sleeps = no_sleep_policy(attempts=5)

        def rejected():
            raise CircuitOpenError("backend", 2.0)

        with pytest.raises(CircuitOpenError):
            policy.run(rejected)
        assert sleeps == []


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.before_call()
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.before_call()  # still admitted

    def test_trips_open_and_rejects(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown=5.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 1
        with pytest.raises(CircuitOpenError) as err:
            breaker.before_call()
        assert 0 < err.value.retry_after_s <= 5.0
        assert breaker.rejections == 1

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(5.0)
        breaker.before_call()  # admitted as the probe
        assert breaker.state == "half_open"
        assert breaker.probes == 1
        # a second caller while the probe is in flight is rejected
        with pytest.raises(CircuitOpenError):
            breaker.before_call()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.closes == 1

    def test_failed_probe_reopens_for_another_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        breaker.before_call()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        assert breaker.opens == 2
        assert breaker.retry_after_s() == pytest.approx(5.0)
        with pytest.raises(CircuitOpenError):
            breaker.before_call()


def seeded_store(**payloads):
    store = FragmentStore()
    for segment, payload in payloads.items():
        store.put("v", segment, payload)
    return store


class TestResilientStore:
    def test_absorbs_transient_faults(self):
        faulty = FaultyFragmentStore(seeded_store(s0=b"abc"))
        policy, sleeps = no_sleep_policy(attempts=3, base_delay=0.01)
        store = ResilientStore(faulty, retry=policy)
        faulty.fail_next(2)
        assert store.get("v", "s0") == b"abc"
        stats = store.resilience()
        assert stats.attempts == 3
        assert stats.failures == 2
        assert stats.retries == 2
        assert stats.giveups == 0
        assert len(sleeps) == 2

    def test_gives_up_when_budget_exhausted(self):
        faulty = FaultyFragmentStore(seeded_store(s0=b"abc"))
        policy, _ = no_sleep_policy(attempts=2, base_delay=0.01)
        store = ResilientStore(faulty, retry=policy)
        faulty.fail_next(2)
        with pytest.raises(FaultStoreError):
            store.get("v", "s0")
        assert store.resilience().giveups == 1
        # the store healed; the next call works and counters move on
        assert store.get("v", "s0") == b"abc"

    def test_keyerror_is_not_retried(self):
        faulty = FaultyFragmentStore(seeded_store(s0=b"abc"))
        policy, sleeps = no_sleep_policy(attempts=5)
        store = ResilientStore(faulty, retry=policy)
        with pytest.raises(KeyError):
            store.get("v", "nope")
        assert sleeps == []
        assert store.resilience().attempts == 1

    def test_breaker_trips_and_fails_fast(self):
        clock = FakeClock()
        faulty = FaultyFragmentStore(seeded_store(s0=b"abc"))
        policy, _ = no_sleep_policy(attempts=1)
        breaker = CircuitBreaker(failure_threshold=2, cooldown=9.0, clock=clock)
        store = ResilientStore(faulty, retry=policy, breaker=breaker)
        faulty.fail_next(2)
        for _ in range(2):
            with pytest.raises(FaultStoreError):
                store.get("v", "s0")
        assert breaker.state == "open"
        # the inner (now healthy) store is not even consulted
        with pytest.raises(CircuitOpenError):
            store.get("v", "s0")
        assert faulty.transient_faults == 2
        stats = store.resilience()
        assert stats.breaker_is_open == 1
        assert stats.breaker_state == "open"
        # after the cooldown the probe goes through and re-closes
        clock.advance(9.0)
        assert store.get("v", "s0") == b"abc"
        assert breaker.state == "closed"

    def test_get_many_retried_as_a_batch(self):
        faulty = FaultyFragmentStore(seeded_store(s0=b"abc", s1=b"defg"))
        policy, _ = no_sleep_policy(attempts=2, base_delay=0.01)
        store = ResilientStore(faulty, retry=policy)
        faulty.fail_next(1)
        out = store.get_many([("v", "s0"), ("v", "s1")])
        assert out == {("v", "s0"): b"abc", ("v", "s1"): b"defg"}
        assert store.bytes_read == 7

    def test_wrap_with_resilience_targets_the_slow_tier(self):
        tiered = TieredStore(FragmentStore(), seeded_store(s0=b"abc"))
        wrapped = wrap_with_resilience(tiered, RetryPolicy(attempts=2), None)
        assert wrapped is tiered
        assert isinstance(tiered.slow, ResilientStore)
        plain = FragmentStore()
        assert wrap_with_resilience(plain, None, None) is plain
        assert isinstance(
            wrap_with_resilience(plain, RetryPolicy(), None), ResilientStore
        )


class TestDegradedTieredReads:
    def make_tiered(self, **fault_kwargs):
        slow_inner = seeded_store(cold=b"slow-only")
        faulty = FaultyFragmentStore(slow_inner, **fault_kwargs)
        tiered = TieredStore(FragmentStore(), faulty)
        # write-through put makes the fragment fast-tier resident while
        # the backend is still healthy
        tiered.put("v", "fast", b"resident")
        return tiered, faulty

    def test_resident_served_while_slow_tier_down(self):
        tiered, faulty = self.make_tiered()
        faulty.fail_next(10**6)
        assert tiered.get("v", "fast") == b"resident"

    def test_missing_fragment_raises_typed_degraded_error(self):
        tiered, faulty = self.make_tiered()
        faulty.fail_next(10**6)
        with pytest.raises(DegradedError) as err:
            tiered.get("v", "cold")
        assert err.value.missing == [("v", "cold")]
        assert "unavailable" in str(err.value)
        assert tiered.stats().degraded_batches == 1

    def test_get_many_degrades_only_on_slow_failure(self):
        tiered, faulty = self.make_tiered()
        faulty.fail_next(10**6)
        with pytest.raises(DegradedError):
            tiered.get_many([("v", "fast"), ("v", "cold")])
        # a purely fast-resident batch is untouched by the outage
        assert tiered.get_many([("v", "fast")]) == {("v", "fast"): b"resident"}

    def test_open_breaker_degrades_without_touching_backend(self):
        tiered, faulty = self.make_tiered()
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=60.0, clock=clock)
        policy, _ = no_sleep_policy(attempts=1)
        tiered.slow = ResilientStore(tiered.slow, retry=policy, breaker=breaker)
        faulty.fail_next(1)
        with pytest.raises(DegradedError):
            tiered.get("v", "cold")
        touched = faulty.transient_faults
        with pytest.raises(DegradedError):  # breaker open: fail fast
            tiered.get("v", "cold")
        assert faulty.transient_faults == touched
        assert tiered.resilience().breaker_is_open == 1

    def test_permanent_errors_pass_through_untyped(self):
        tiered, _ = self.make_tiered()
        with pytest.raises(KeyError):
            tiered.get("v", "never-archived")
        assert tiered.stats().degraded_batches == 0


@pytest.fixture(scope="module")
def small_setup():
    fields = make_fields(n=1200, seed=3)
    store = FragmentStore()
    archive_into(store, fields)
    qoi = total_velocity()
    truth = qoi.value({k: (v, 0.0) for k, v in fields.items()})
    qrange = float(truth.max() - truth.min())
    ranges = {k: float(v.max() - v.min()) for k, v in fields.items()}
    return fields, store, qoi, truth, qrange, ranges


def copy_store(store):
    copy = FragmentStore()
    for var, seg in store.keys():
        copy.put(var, seg, store._data[(var, seg)])
    return copy


def retrieve_over(store, setup, tolerance=1e-4, **retrieve_kwargs):
    fields, _, qoi, _, qrange, ranges = setup
    archive = Archive(store)
    loaded = {name: archive.load(name, lazy=True) for name in fields}
    hedge = retrieve_kwargs.pop("hedge_delay_s", None)
    retriever = QoIRetriever(loaded, ranges, hedge_delay_s=hedge)
    request = QoIRequest("VTOT", qoi, tolerance, qrange)
    return retriever.retrieve([request], **retrieve_kwargs)


class TestDeadlineRetrieval:
    def test_deadline_returns_degraded_best_bounds(self, small_setup):
        _, store, qoi, truth, qrange, _ = small_setup
        result = retrieve_over(
            copy_store(store), small_setup, tolerance=1e-7, deadline_s=0.0
        )
        assert result.degraded
        assert "deadline" in result.degraded_reason
        assert result.rounds >= 1  # the first round always runs
        # the degraded answer is still a *valid* bound
        est = result.estimated_errors["VTOT"]
        assert np.isfinite(est)
        rec = qoi.value({k: (v, 0.0) for k, v in result.data.items()})
        assert np.max(np.abs(rec - truth)) <= est * (1 + 1e-9)

    def test_no_deadline_same_request_completes(self, small_setup):
        _, store, _, _, _, _ = small_setup
        result = retrieve_over(copy_store(store), small_setup, tolerance=1e-4)
        assert result.all_satisfied
        assert not result.degraded
        assert result.degraded_reason is None

    def test_generous_deadline_is_not_degraded(self, small_setup):
        _, store, _, _, _, _ = small_setup
        result = retrieve_over(
            copy_store(store), small_setup, tolerance=1e-4, deadline_s=60.0
        )
        assert result.all_satisfied
        assert not result.degraded


class TestRetrievalUnderFaults:
    def test_ten_percent_faults_bit_identical_and_invisible(self, small_setup):
        _, store, _, _, _, _ = small_setup
        clean = retrieve_over(copy_store(store), small_setup, tolerance=1e-5)

        faulty = FaultyFragmentStore(
            copy_store(store), fault_rate=0.10, seed=7
        )
        resilient = ResilientStore(
            faulty,
            retry=RetryPolicy(attempts=6, base_delay=0.001, max_delay=0.01),
        )
        fault_result = retrieve_over(resilient, small_setup, tolerance=1e-5)

        assert faulty.transient_faults > 0  # chaos actually happened
        assert resilient.resilience().giveups == 0  # nothing client-visible
        assert not fault_result.degraded
        assert fault_result.all_satisfied == clean.all_satisfied
        assert fault_result.estimated_errors == clean.estimated_errors
        for name, data in clean.data.items():
            assert np.array_equal(fault_result.data[name], data)

    def test_transient_slow_tier_fault_is_absorbed_degradation_free(
        self, small_setup
    ):
        _, store, _, _, _, _ = small_setup
        faulty = FaultyFragmentStore(copy_store(store))
        policy, _ = no_sleep_policy(attempts=3, base_delay=0.001)
        tiered = TieredStore(FragmentStore(), ResilientStore(faulty, retry=policy))
        faulty.fail_next(2)
        result = retrieve_over(tiered, small_setup, tolerance=1e-4)
        assert result.all_satisfied
        assert not result.degraded

    def test_hedged_fetch_duplicates_stragglers(self, small_setup):
        _, store, _, _, _, _ = small_setup
        slow = FaultyFragmentStore(copy_store(store), latency_s=0.02)
        result = retrieve_over(
            slow, small_setup, tolerance=1e-4, hedge_delay_s=0.001
        )
        assert result.all_satisfied
        assert result.hedged_fetches >= 1


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.1)
        clock.advance(wait)
        assert bucket.try_acquire() == 0.0

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


@pytest.fixture(scope="module")
def service_setup():
    fields = make_fields(n=1200, seed=3)
    store = FragmentStore()
    archive_into(store, fields)
    qoi = total_velocity()
    truth = qoi.value({k: (v, 0.0) for k, v in fields.items()})
    qrange = float(truth.max() - truth.min())
    return fields, store, qoi, truth, qrange


def fresh_service(service_setup, **kwargs):
    _, store, _, _, _ = service_setup
    return RetrievalService(copy_store(store), **kwargs)


class TestAdmissionControl:
    def request(self, service_setup, tolerance=1e-3):
        _, _, qoi, _, qrange = service_setup
        return [QoIRequest("VTOT", qoi, tolerance, qrange)]

    def test_inflight_budget_sheds_and_releases(self, service_setup):
        service = fresh_service(service_setup, max_inflight=1)
        service._admit("a")
        with pytest.raises(OverloadedError) as err:
            service._admit("b")
        assert err.value.reason == "inflight"
        assert err.value.retry_after_ms >= 50.0
        service._release()
        service._admit("b")  # slot is back
        service._release()
        stats = service.stats()
        assert stats.requests_admitted == 2
        assert stats.requests_shed == 1
        assert stats.requests_inflight == 0

    def test_low_priority_shed_before_budget_exhausted(self, service_setup):
        service = fresh_service(service_setup, max_inflight=4)
        for client in "abc":
            service._admit(client)
        # 3/4 slots taken is past the 0.75 watermark: background work sheds
        with pytest.raises(OverloadedError):
            service._admit("d", priority=-1)
        service._admit("d", priority=0)  # normal traffic still fits

    def test_client_rate_bucket_sheds_with_hint(self, service_setup):
        service = fresh_service(
            service_setup, client_rate=5.0, client_burst=1.0
        )
        service._admit("chatty")
        with pytest.raises(OverloadedError) as err:
            service._admit("chatty")
        assert err.value.reason == "rate"
        assert err.value.retry_after_ms > 0
        # another client has its own bucket
        service._admit("quiet")

    def test_shed_request_leaves_session_state_clean(self, service_setup):
        service = fresh_service(service_setup, max_inflight=0)
        session = service.open_session("c1")
        with pytest.raises(OverloadedError):
            session.retrieve(self.request(service_setup))
        stats = service.stats()
        assert stats.requests_inflight == 0
        assert stats.sessions_active == 1
        # lift the limit: the same session works, nothing was corrupted
        service.max_inflight = None
        result = session.retrieve(self.request(service_setup))
        assert result.all_satisfied
        assert service.stats().requests_admitted == 1
        session.close()

    def test_degraded_requests_counted_with_worst_ratio(self, service_setup):
        service = fresh_service(service_setup)
        with service.open_session("slowpoke") as session:
            result = session.retrieve(
                self.request(service_setup, tolerance=1e-8), deadline_ms=0.0
            )
        assert result.degraded
        stats = service.stats()
        assert stats.requests_degraded == 1
        assert stats.worst_degraded_ratio > 1.0


class TestServerResilience:
    @pytest.fixture()
    def serve(self, service_setup):
        def start(**kwargs):
            service = fresh_service(service_setup, **kwargs)
            server = RetrievalServer(service, port=0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            self._cleanup.append((server, service))
            return server

        self._cleanup = []
        yield start
        for server, service in self._cleanup:
            server.shutdown()
            server.server_close()
            service.close()

    FIELDS = ["velocity_x", "velocity_y", "velocity_z"]

    def test_shed_response_is_explicit_with_retry_hint(
        self, service_setup, serve
    ):
        _, _, _, _, qrange = service_setup
        server = serve(max_inflight=0)
        host, port = server.address
        with ServiceClient(host, port) as client:
            with pytest.raises(OverloadedResponse) as err:
                client.retrieve("vtot", self.FIELDS, 1e-3, qrange)
            assert err.value.retry_after_ms >= 50.0
            assert err.value.reason == "inflight"
            # the connection (and server) survive the shed
            assert client.stats()["requests_shed"] == 1
            assert client.stats()["requests_inflight"] == 0

    def test_client_honors_retry_after_and_succeeds(
        self, service_setup, serve
    ):
        _, _, _, _, qrange = service_setup
        server = serve(client_rate=50.0, client_burst=1.0)
        host, port = server.address
        with ServiceClient(host, port, overload_retries=3) as client:
            first = client.retrieve("vtot", self.FIELDS, 1e-3, qrange)
            # the bucket is empty now; the client backs off and re-issues
            second = client.retrieve("vtot", self.FIELDS, 1e-3, qrange)
        assert first["satisfied"] and second["satisfied"]

    def test_degraded_response_over_the_wire(self, service_setup, serve):
        _, _, _, _, qrange = service_setup
        server = serve()
        host, port = server.address
        with ServiceClient(host, port) as client:
            response = client.retrieve(
                "vtot", self.FIELDS, 1e-8, qrange, deadline_ms=0.0
            )
        assert response["degraded"]
        assert "deadline" in response["degraded_reason"]
        assert np.isfinite(response["estimated_error"])

    def test_dropped_tcp_connection_is_redialed(self, service_setup, serve):
        server = serve()
        host, port = server.address
        client = ServiceClient(host, port)
        try:
            assert client.info()
            # simulate the network dropping the TCP stream under us
            client._sock.shutdown(socket.SHUT_RDWR)
            assert client.info()  # transparently re-dialed and re-issued
            assert client.reconnects == 1
        finally:
            client.close()

    def test_priority_field_sheds_background_first(self, service_setup, serve):
        _, _, _, _, qrange = service_setup
        server = serve(max_inflight=1)
        host, port = server.address
        # budget 1 -> low-priority watermark floor is still 1 slot, so a
        # lone background request is admitted when the server is idle
        with ServiceClient(host, port) as client:
            response = client.retrieve(
                "vtot", self.FIELDS, 1e-3, qrange, priority=-1
            )
        assert response["satisfied"]
