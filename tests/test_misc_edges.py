"""Edge-path tests sweeping the remaining less-travelled branches."""

import numpy as np
import pytest

from repro.analysis.rate_distortion import RDPoint
from repro.analysis.reporting import _fmt, format_table
from repro.transforms.l2projection import l2_correction_along_axis
from repro.transforms.multilevel import MultilevelTransform


class TestReportingFormat:
    def test_fmt_zero(self):
        assert _fmt(0.0) == "0"

    def test_fmt_small_scientific(self):
        assert "e" in _fmt(1e-7)

    def test_fmt_large_scientific(self):
        assert "e" in _fmt(1.5e6)

    def test_fmt_mid_fixed(self):
        assert _fmt(3.14159) == "3.1416"

    def test_fmt_non_numeric(self):
        assert _fmt("abc") == "abc"

    def test_table_without_title(self):
        out = format_table(["x"], [[1]])
        assert out.splitlines()[0].strip() == "x"


class TestRDPoint:
    def test_defaults(self):
        p = RDPoint(requested=1e-3, bitrate=4.0, estimated=9e-4, actual=1e-4,
                    bytes_retrieved=100)
        assert p.rounds == 1 and p.seconds == 0.0

    def test_frozen(self):
        p = RDPoint(1e-3, 4.0, 9e-4, 1e-4, 100)
        with pytest.raises(AttributeError):
            p.bitrate = 5.0


class TestL2ProjectionEdges:
    def test_single_even_node(self):
        # even_size == 1 takes the scalar boundary-mass path
        w = l2_correction_along_axis(np.array([1.0]), 0, 1)
        assert w.shape == (1,)
        assert np.isfinite(w).all()

    def test_empty_details(self):
        w = l2_correction_along_axis(np.zeros((0,)), 0, 1)
        np.testing.assert_array_equal(w, np.zeros(1))


class TestTransformEdges:
    def test_axis_of_length_one_skipped(self):
        data = np.random.default_rng(0).normal(size=(1, 33))
        tr = MultilevelTransform(basis="orthogonal")
        rec = tr.recompose(tr.decompose(data))
        np.testing.assert_allclose(rec, data, atol=1e-10)

    def test_num_levels_counts(self):
        tr = MultilevelTransform(min_size=4)
        assert tr.num_levels((3,)) == 0
        assert tr.num_levels((4,)) == 1
        assert tr.num_levels((1024,)) == 9

    def test_extreme_aspect_ratio(self):
        data = np.random.default_rng(1).normal(size=(2, 257))
        for basis in ("hierarchical", "orthogonal"):
            tr = MultilevelTransform(basis=basis)
            rec = tr.recompose(tr.decompose(data))
            np.testing.assert_allclose(rec, data, atol=1e-9)


class TestSZ3ExtremeShapes:
    @pytest.mark.parametrize("shape", [(2,), (3, 1), (1, 1, 9), (2, 200)])
    def test_bound_on_degenerate_shapes(self, shape):
        from repro.compressors.sz3 import SZ3Compressor

        rng = np.random.default_rng(0)
        data = rng.normal(size=shape)
        c = SZ3Compressor()
        rec = c.decompress(c.compress(data, 1e-4))
        assert rec.shape == data.shape
        assert np.max(np.abs(rec - data)) <= 1e-4 * (1 + 1e-12)


class TestTransferRoundRobin:
    def test_unequal_blocks_assigned_fairly(self):
        from repro.storage.transfer import GlobusTransferModel

        model = GlobusTransferModel(aggregate_bandwidth=4e6, request_latency=0.0, max_streams=2)
        # stream 0 gets blocks 0+2 (3 MB), stream 1 gets block 1 (1 MB)
        report = model.transfer([2_000_000, 1_000_000, 1_000_000])
        assert report.total_time == pytest.approx(1.5, rel=1e-3)
        assert report.total_bytes == 4_000_000
