"""Failure-injection tests: corrupted payloads must fail loudly, not
silently return wrong data."""

import zlib

import numpy as np
import pytest

from repro.compressors.sz3 import SZ3Blob, SZ3Compressor
from repro.encoding.bitplane import BitplaneDecoder, BitplaneEncoder
from repro.encoding.bytecodec import encode_ints
from repro.encoding.huffman import HuffmanCodec
from repro.encoding.lossless import get_backend


class TestCorruptedStreams:
    def test_sz3_truncated_payload(self):
        comp = SZ3Compressor()
        blob = comp.compress(np.sin(np.linspace(0, 6, 500)), 1e-4)
        with pytest.raises(Exception):
            comp.decompress(SZ3Blob(blob.payload[: len(blob.payload) // 2]))

    def test_sz3_flipped_magic(self):
        comp = SZ3Compressor()
        blob = comp.compress(np.sin(np.linspace(0, 6, 100)), 1e-3)
        corrupted = b"ZZZZ" + blob.payload[4:]
        with pytest.raises(ValueError, match="magic"):
            comp.decompress(SZ3Blob(corrupted))

    def test_bitplane_corrupted_plane(self):
        stream = BitplaneEncoder(num_planes=16).encode(np.linspace(-1, 1, 64))
        # bad marker byte -> ValueError; bad compressed body -> zlib.error
        stream.plane_segments[0] = b"not zlib data"
        with pytest.raises(ValueError, match="segment marker"):
            BitplaneDecoder(stream).advance_to(4)
        stream.plane_segments[0] = b"\x01not zlib data"
        with pytest.raises(zlib.error):
            BitplaneDecoder(stream).advance_to(4)

    def test_huffman_truncated(self):
        codec = HuffmanCodec()
        payload = codec.encode(np.arange(100, dtype=np.int64) % 7)
        with pytest.raises(Exception):
            codec.decode(payload[: len(payload) - 10])

    def test_int_stream_escape_corruption(self):
        payload = bytearray(encode_ints(np.array([300, 1, 2], dtype=np.int64)))
        # truncate the escape stream
        with pytest.raises(Exception):
            from repro.encoding.bytecodec import decode_ints

            decode_ints(bytes(payload[:-2]))

    def test_lossless_backend_garbage(self):
        backend = get_backend("zlib")
        with pytest.raises(zlib.error):
            backend.decompress_bytes(b"garbage")


class TestGracefulDomainHandling:
    def test_quantizer_huge_values_exact(self):
        """Values beyond the code range take the exact outlier path."""
        from repro.encoding.quantizer import LinearQuantizer

        q = LinearQuantizer(max_code=10)
        data = np.array([1e300, -1e300, 0.0])
        field = q.quantize(data, 1e-6)
        rec = q.dequantize(field)
        np.testing.assert_array_equal(rec[:2], data[:2])

    def test_sz3_with_denormal_values(self):
        comp = SZ3Compressor()
        data = np.full(64, 5e-324)
        rec = comp.decompress(comp.compress(data, 1e-300))
        assert np.max(np.abs(rec - data)) <= 1e-300

    def test_bitplane_mixed_magnitudes(self):
        """Groups mixing huge and tiny magnitudes stay bounded."""
        coeffs = np.array([1e12, 1e-12, -1e6, 0.0])
        enc = BitplaneEncoder(num_planes=40)
        stream = enc.encode(coeffs)
        dec = BitplaneDecoder(stream)
        dec.advance_to(20)
        rec = dec.reconstruct()
        assert np.max(np.abs(rec - coeffs)) <= stream.error_bound(20) * (1 + 1e-12)
