"""Failure injection: crashes, torn writes, and corrupted payloads.

Two layers of guarantee under test:

* **Crash atomicity** (the WAL of :mod:`repro.storage.wal`): a process
  killed at *any* point of the commit protocol — during staging,
  between the commit record and publishing, inside a delete, inside
  compaction — leaves a store that reopens **bit-identical** to the
  state before or after the interrupted batch, never a torn mix.  The
  hypothesis suites replay randomized crash schedules (hundreds of
  distinct kill sites per run) through raw ``put_many``/``delete``
  scripts, ``Archive.save``, the streaming ingest engine, and
  compaction, on both disk layouts, and byte-compare every reopened
  store against the set of legal states.
* **Loud corruption** (the historical suite, kept at the bottom):
  payloads damaged below the store — truncated, bit-flipped, short-read
  — must raise from the decode layers, never silently return wrong
  data.

The crash harness lives in ``tests/fault_store.py``; see
``docs/durability.md`` for the protocol being exercised.
"""

import os
import zlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from fault_store import (
    CrashSchedule,
    FaultyFragmentStore,
    SimulatedCrash,
    crash_everywhere,
    inject,
)
from repro.compressors.base import make_refactorer
from repro.compressors.sz3 import SZ3Blob, SZ3Compressor
from repro.core.ingest import ingest_dataset
from repro.core.retrieval import refactor_dataset
from repro.encoding.bitplane import BitplaneDecoder, BitplaneEncoder
from repro.encoding.bytecodec import encode_ints
from repro.encoding.huffman import HuffmanCodec
from repro.encoding.lossless import get_backend
from repro.storage.archive import Archive
from repro.storage.store import DiskFragmentStore, ShardedDiskStore

# Both persistent layouts recover through the same WAL protocol but
# with different reindex paths (flat root scan vs sharded shard walk);
# every crash property runs on each.
LAYOUTS = [
    ("flat", DiskFragmentStore),
    ("sharded", lambda root: ShardedDiskStore(root, fanout=8)),
]

_key = st.tuples(
    st.sampled_from(["va", "vb", "vc"]), st.sampled_from(["s0", "s1", "s2", "s3"])
)
_payload = st.binary(min_size=0, max_size=48)
_batch = st.dictionaries(_key, _payload, min_size=1, max_size=5)


def _contents(store) -> dict:
    """Bit-exact observable state: every indexed key and its payload."""
    return {key: store.get(*key) for key in store.keys()}


def _put_batch(store, batch: dict) -> None:
    store.put_many([(v, s, p) for (v, s), p in batch.items()])


@st.composite
def _crash_script(draw):
    """An initial state, a mutation script, and a crash site.

    The script mixes batched puts (fresh keys and overwrites) with
    deletes of currently-live keys; ``kill_at`` indexes the WAL kill
    point to die at (it may exceed the schedule, in which case the
    script completes — the no-crash control case).
    """
    initial = draw(st.dictionaries(_key, _payload, max_size=6))
    ops = []
    model = dict(initial)
    for _ in range(draw(st.integers(1, 4))):
        if model and draw(st.integers(0, 3)) == 0:
            key = draw(st.sampled_from(sorted(model)))
            ops.append(("delete", key))
            del model[key]
        else:
            batch = draw(_batch)
            ops.append(("put_many", batch))
            model.update(batch)
    return initial, ops, draw(st.integers(0, 40))


class TestCrashAtomicStoreOps:
    """put_many/delete scripts killed at randomized WAL points."""

    @pytest.mark.parametrize("layout,make", LAYOUTS)
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(script=_crash_script())
    def test_reopened_store_is_bit_identical_to_a_legal_state(
        self, tmp_path_factory, layout, make, script
    ):
        initial, ops, kill_at = script
        root = str(tmp_path_factory.mktemp(f"crash-{layout}"))
        store = make(root)
        if initial:
            _put_batch(store, initial)

        # every state at an operation boundary is legal post-crash
        states = [dict(initial)]
        model = dict(initial)
        for kind, arg in ops:
            if kind == "put_many":
                model.update(arg)
            else:
                del model[arg]
            states.append(dict(model))

        done = 0
        crashed = False
        with inject(CrashSchedule(kill_at=kill_at)):
            try:
                for kind, arg in ops:
                    if kind == "put_many":
                        _put_batch(store, arg)
                    else:
                        store.delete(*arg)
                    done += 1
            except SimulatedCrash:
                crashed = True

        reopened = make(root)
        got = _contents(reopened)
        if crashed:
            # the in-flight operation resolved to exactly before or after
            assert got in (states[done], states[done + 1]), (
                f"{layout}: crash at {kill_at} left a torn state "
                f"after {done} completed op(s)"
            )
        else:
            assert got == states[-1], f"{layout}: completed script diverged"
        # the index agrees with the payloads byte-for-byte
        assert reopened.nbytes() == sum(len(p) for p in got.values())
        reopened.close()

    @pytest.mark.parametrize("layout,make", LAYOUTS)
    def test_every_kill_point_of_a_mixed_script_recovers(
        self, tmp_path, layout, make
    ):
        """Deterministic sweep: die at each reachable kill point once."""
        runs = []

        def make_operation():
            root = str(tmp_path / f"sweep{len(runs)}")
            runs.append(root)

            def operation():
                store = make(root)
                _put_batch(store, {("v", "s0"): b"a", ("v", "s1"): b"bb"})
                _put_batch(store, {("v", "s0"): b"A" * 9, ("w", "s0"): b"c"})
                store.delete("v", "s1")
                store.compact()

            return operation

        kill_sites = crash_everywhere(make_operation)
        assert kill_sites >= 10  # stage/commit/publish/tombstone/compact...
        for root in runs[1:]:  # runs[0] traced without a kill
            reopened = make(root)
            got = _contents(reopened)
            legal = [
                {},
                {("v", "s0"): b"a", ("v", "s1"): b"bb"},
                {("v", "s0"): b"A" * 9, ("v", "s1"): b"bb", ("w", "s0"): b"c"},
                {("v", "s0"): b"A" * 9, ("w", "s0"): b"c"},
            ]
            assert got in legal, f"{layout}: torn state in {root}"
            reopened.close()


class TestTornLogTail:
    """A torn final commit record is discarded; earlier state survives."""

    @pytest.mark.parametrize("layout,make", LAYOUTS)
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        first=_batch,
        second=st.dictionaries(
            st.tuples(st.just("torn"), st.sampled_from(["t0", "t1", "t2"])),
            st.binary(min_size=1, max_size=32),
            min_size=1,
            max_size=3,
        ),
        cut=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_truncated_final_record_recovers_prior_state(
        self, tmp_path_factory, layout, make, first, second, cut
    ):
        root = str(tmp_path_factory.mktemp(f"torn-{layout}"))
        store = make(root)
        _put_batch(store, first)
        before = _contents(store)
        _put_batch(store, second)  # disjoint keys: "torn"/* never collide
        log_path = store._log.path
        store.close()

        # tear the final record: keep a strict prefix of its bytes
        raw = open(log_path, "rb").read()
        head = raw[: raw.rstrip(b"\n").rfind(b"\n") + 1]
        last = raw[len(head):]
        keep = min(int(cut * len(last)), len(last) - 2)  # never a whole line
        with open(log_path, "wb") as fh:
            fh.write(head + last[: max(0, keep)])

        reopened = make(root)
        assert _contents(reopened) == before, f"{layout}: torn tail leaked"
        # the published-but-uncommitted payloads became reclaimable orphans
        assert reopened.durability().dead_bytes == sum(
            len(p) for p in second.values()
        )
        report = reopened.compact()
        assert report.removed_files == len(second)
        assert _contents(reopened) == before
        reopened.close()

    @pytest.mark.parametrize("layout,make", LAYOUTS)
    def test_corruption_before_the_final_line_raises(self, tmp_path, layout, make):
        root = str(tmp_path / "mid")
        store = make(root)
        _put_batch(store, {("v", "s0"): b"x", ("v", "s1"): b"y"})
        _put_batch(store, {("v", "s2"): b"z"})
        log_path = store._log.path
        store.close()
        lines = open(log_path, "rb").read().splitlines(keepends=True)
        lines[0] = b"garbage that is not json\n"  # mid-file damage, not a torn tail
        with open(log_path, "wb") as fh:
            fh.writelines(lines)
        with pytest.raises(ValueError, match="corrupt"):
            make(root)


class TestCrashAtomicArchiveSave:
    """Archive.save is one transaction: old version or new, never a mix."""

    @pytest.mark.parametrize("layout,make", LAYOUTS)
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(kill_at=st.integers(0, 60))
    def test_resaved_variable_is_old_or_new_bit_identical(
        self, tmp_path_factory, layout, make, kill_at
    ):
        base = tmp_path_factory.mktemp(f"save-{layout}")
        old = refactor_dataset(
            {"v": _field(6, seed=1)}, make_refactorer("pmgard_hb")
        )["v"]
        new = refactor_dataset(
            {"v": _field(6, seed=2)}, make_refactorer("pmgard_hb", num_planes=12)
        )["v"]

        # the two legal outcomes, computed on a twin directory
        twin = make(str(base / "twin"))
        Archive(twin).save("v", old)
        state_old = _contents(twin)
        Archive(twin).save("v", new)
        state_new = _contents(twin)
        twin.close()
        assert state_old != state_new

        root = str(base / "main")
        store = make(root)
        Archive(store).save("v", old)
        crashed = False
        with inject(CrashSchedule(kill_at=kill_at)):
            try:
                Archive(store).save("v", new)
            except SimulatedCrash:
                crashed = True

        reopened = make(root)
        got = _contents(reopened)
        if crashed:
            assert got in (state_old, state_new), (
                f"{layout}: crash at {kill_at} tore the archived variable"
            )
        else:
            assert got == state_new
        # whichever version survived must still decode end to end
        loaded = Archive(reopened).load("v", lazy=False)
        assert loaded.total_bytes == (old if got == state_old else new).total_bytes
        reopened.close()


def _field(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    axes = np.meshgrid(*([np.linspace(0, np.pi, n)] * 3), indexing="ij")
    return sum(np.sin(a) for a in axes) + 0.1 * rng.standard_normal((n, n, n))


class TestCrashAtomicIngest:
    """A killed streaming ingest leaves whole variables or nothing."""

    @pytest.mark.parametrize("layout,make", LAYOUTS)
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(kill_at=st.integers(0, 80))
    def test_each_variable_fully_present_or_fully_absent(
        self, tmp_path_factory, layout, make, kill_at
    ):
        base = tmp_path_factory.mktemp(f"ingest-{layout}")
        fields = {f"v{k}": _field(5, seed=k) for k in range(3)}
        refactorer = make_refactorer("pmgard_hb")

        # reference: the same deterministic ingest run to completion
        twin = make(str(base / "twin"))
        ingest_dataset(twin, fields, refactorer, workers=0, flush_bytes=1)
        reference = _contents(twin)
        by_var = {}
        for key, payload in reference.items():
            by_var.setdefault(key[0], {})[key] = payload
        twin.close()
        assert set(by_var) == set(fields)

        root = str(base / "main")
        store = make(root)
        crashed = False
        with inject(CrashSchedule(kill_at=kill_at)):
            try:
                ingest_dataset(store, fields, refactorer, workers=0, flush_bytes=1)
            except SimulatedCrash:
                crashed = True

        reopened = make(root)
        got = _contents(reopened)
        for name, group in by_var.items():
            mine = {k: p for k, p in got.items() if k[0] == name}
            assert mine in ({}, group), (
                f"{layout}: crash at {kill_at} tore variable {name!r}"
            )
        if not crashed:
            assert got == reference
        assert not set(got) - set(reference), "unexpected keys after recovery"
        reopened.close()


class TestCrashAtomicCompaction:
    """Compaction killed anywhere never changes the visible state."""

    @pytest.mark.parametrize("layout,make", LAYOUTS)
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        fragments=st.dictionaries(_key, _payload, min_size=2, max_size=8),
        data=st.data(),
        kill_at=st.integers(0, 40),
    )
    def test_live_state_survives_and_rerun_reclaims(
        self, tmp_path_factory, layout, make, fragments, data, kill_at
    ):
        root = str(tmp_path_factory.mktemp(f"compact-{layout}"))
        store = make(root)
        _put_batch(store, fragments)
        doomed = data.draw(
            st.lists(
                st.sampled_from(sorted(fragments)),
                unique=True,
                min_size=1,
                max_size=len(fragments),
            )
        )
        for key in doomed:
            store.delete(*key)
        live = _contents(store)
        assert set(live) == set(fragments) - set(doomed)

        with inject(CrashSchedule(kill_at=kill_at)):
            try:
                store.compact()
            except SimulatedCrash:
                pass

        reopened = make(root)
        assert _contents(reopened) == live, (
            f"{layout}: compaction crash at {kill_at} disturbed live data"
        )
        reopened.compact()  # re-running finishes the reclaim
        assert _contents(reopened) == live
        assert reopened.durability().dead_bytes == 0
        # dead payload files are truly gone from disk
        bins = []
        for dirpath, _, names in os.walk(root):
            bins += [n for n in names if n.endswith(".bin")]
        assert len(bins) == len(live)
        reopened.close()


class TestFaultyStoreBudget:
    """Client-side faults (tests/fault_store.py) against higher layers."""

    def test_fail_after_budget_aborts_cleanly(self, tmp_path):
        inner = DiskFragmentStore(str(tmp_path / "ar"))
        store = FaultyFragmentStore(inner, fail_after=2)
        store.put("v", "s0", b"a")
        store.put("v", "s1", b"b")
        with pytest.raises(SimulatedCrash):
            store.put("v", "s2", b"c")
        # the aborted put never reached the inner store
        reopened = DiskFragmentStore(str(tmp_path / "ar"))
        assert set(reopened.keys()) == {("v", "s0"), ("v", "s1")}

    def test_torn_batched_write_commits_a_prefix(self, tmp_path):
        inner = DiskFragmentStore(str(tmp_path / "ar"))
        store = FaultyFragmentStore(inner, fail_after=0, torn_writes=True)
        batch = [("v", f"s{i}", bytes([i]) * 4) for i in range(4)]
        with pytest.raises(SimulatedCrash):
            store.put_many(batch)
        # the inner store committed the torn prefix atomically: the
        # reopened index and the bytes on disk agree exactly
        reopened = DiskFragmentStore(str(tmp_path / "ar"))
        got = _contents(reopened)
        assert got == {("v", f"s{i}"): bytes([i]) * 4 for i in range(2)}

    def test_ingest_through_failing_store_leaves_whole_variables(self, tmp_path):
        fields = {f"v{k}": _field(5, seed=k) for k in range(3)}
        inner = DiskFragmentStore(str(tmp_path / "ar"))
        store = FaultyFragmentStore(inner, fail_after=2)
        with pytest.raises(SimulatedCrash):
            ingest_dataset(
                store, fields, make_refactorer("pmgard_hb"),
                workers=0, flush_bytes=1,
            )
        reopened = DiskFragmentStore(str(tmp_path / "ar"))
        present = {key[0] for key in reopened.keys()}
        for name in present:  # whatever landed is complete and loadable
            Archive(reopened).load(name, lazy=False)

    def test_short_reads_fail_loudly_through_the_archive(self, tmp_path):
        inner = DiskFragmentStore(str(tmp_path / "ar"))
        refactored = refactor_dataset(
            {"v": _field(6, seed=3)}, make_refactorer("pmgard_hb")
        )
        Archive(inner).save("v", refactored["v"])
        maimed = FaultyFragmentStore(inner, short_reads=7)
        with pytest.raises(Exception):
            Archive(maimed).load("v", lazy=False)


class TestCorruptedStreams:
    def test_sz3_truncated_payload(self):
        comp = SZ3Compressor()
        blob = comp.compress(np.sin(np.linspace(0, 6, 500)), 1e-4)
        with pytest.raises(Exception):
            comp.decompress(SZ3Blob(blob.payload[: len(blob.payload) // 2]))

    def test_sz3_flipped_magic(self):
        comp = SZ3Compressor()
        blob = comp.compress(np.sin(np.linspace(0, 6, 100)), 1e-3)
        corrupted = b"ZZZZ" + blob.payload[4:]
        with pytest.raises(ValueError, match="magic"):
            comp.decompress(SZ3Blob(corrupted))

    def test_bitplane_corrupted_plane(self):
        stream = BitplaneEncoder(num_planes=16).encode(np.linspace(-1, 1, 64))
        # bad marker byte -> ValueError; bad compressed body -> zlib.error
        stream.plane_segments[0] = b"not zlib data"
        with pytest.raises(ValueError, match="segment marker"):
            BitplaneDecoder(stream).advance_to(4)
        stream.plane_segments[0] = b"\x01not zlib data"
        with pytest.raises(zlib.error):
            BitplaneDecoder(stream).advance_to(4)

    def test_huffman_truncated(self):
        codec = HuffmanCodec()
        payload = codec.encode(np.arange(100, dtype=np.int64) % 7)
        with pytest.raises(Exception):
            codec.decode(payload[: len(payload) - 10])

    def test_int_stream_escape_corruption(self):
        payload = bytearray(encode_ints(np.array([300, 1, 2], dtype=np.int64)))
        # truncate the escape stream
        with pytest.raises(Exception):
            from repro.encoding.bytecodec import decode_ints

            decode_ints(bytes(payload[:-2]))

    def test_lossless_backend_garbage(self):
        backend = get_backend("zlib")
        with pytest.raises(zlib.error):
            backend.decompress_bytes(b"garbage")


class TestGracefulDomainHandling:
    def test_quantizer_huge_values_exact(self):
        """Values beyond the code range take the exact outlier path."""
        from repro.encoding.quantizer import LinearQuantizer

        q = LinearQuantizer(max_code=10)
        data = np.array([1e300, -1e300, 0.0])
        field = q.quantize(data, 1e-6)
        rec = q.dequantize(field)
        np.testing.assert_array_equal(rec[:2], data[:2])

    def test_sz3_with_denormal_values(self):
        comp = SZ3Compressor()
        data = np.full(64, 5e-324)
        rec = comp.decompress(comp.compress(data, 1e-300))
        assert np.max(np.abs(rec - data)) <= 1e-300

    def test_bitplane_mixed_magnitudes(self):
        """Groups mixing huge and tiny magnitudes stay bounded."""
        coeffs = np.array([1e12, 1e-12, -1e6, 0.0])
        enc = BitplaneEncoder(num_planes=40)
        stream = enc.encode(coeffs)
        dec = BitplaneDecoder(stream)
        dec.advance_to(20)
        rec = dec.reconstruct()
        assert np.max(np.abs(rec - coeffs)) <= stream.error_bound(20) * (1 + 1e-12)
