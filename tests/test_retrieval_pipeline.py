"""Tests for the pipelined batched retrieval engine.

Covers the four layers the engine spans: batched ``get_many`` on the
store hierarchy (missing keys, ordering, accounting), single-flight
deduplication of concurrent batched cache loads, lazy archive loading
with planned prefetch, and — the load-bearing guarantee — bit-identical
results between pipelined and serial retrieval on a seeded ladder.
"""

import json
import os
import threading

import numpy as np
import pytest

from repro.compressors.base import make_refactorer
from repro.core.pipeline import FetchPipeline, PipelineConfig
from repro.core.qois import qoi_from_spec
from repro.core.retrieval import QoIRequest, QoIRetriever, refactor_dataset
from repro.storage.archive import Archive
from repro.storage.cache import CachingFragmentStore, FragmentCache
from repro.storage.store import (
    LAYOUT_MARKER,
    DiskFragmentStore,
    FragmentStore,
    ShardedDiskStore,
    open_store,
)


def _filled(store):
    store.put("v", "s0", b"aaaa")
    store.put("v", "s1", b"bb")
    store.put("w", "s0", b"cccccc")
    return store


@pytest.fixture(params=["memory", "disk", "sharded"])
def any_store(request, tmp_path):
    if request.param == "memory":
        return _filled(FragmentStore())
    if request.param == "disk":
        return _filled(DiskFragmentStore(str(tmp_path / "flat")))
    return _filled(ShardedDiskStore(str(tmp_path / "sharded"), fanout=8))


class TestGetMany:
    def test_roundtrip_and_accounting(self, any_store):
        out = any_store.get_many([("v", "s0"), ("w", "s0"), ("v", "s1")])
        assert out == {
            ("v", "s0"): b"aaaa",
            ("w", "s0"): b"cccccc",
            ("v", "s1"): b"bb",
        }
        # per-fragment read accounting is preserved; the batch is one trip
        assert any_store.reads == 3
        assert any_store.bytes_read == 12
        assert any_store.round_trips == 1

    def test_deduplicates_keys(self, any_store):
        out = any_store.get_many([("v", "s0"), ("v", "s0")])
        assert out == {("v", "s0"): b"aaaa"}
        assert any_store.reads == 1

    def test_missing_key_fails_whole_batch(self, any_store):
        with pytest.raises(KeyError) as err:
            any_store.get_many([("v", "s0"), ("nope", "s9")])
        assert ("nope", "s9") in err.value.args[0]
        # checked in a single index pass before any payload is served
        assert any_store.reads == 0
        assert any_store.round_trips == 0

    def test_sharded_result_preserves_request_order(self, tmp_path):
        store = ShardedDiskStore(str(tmp_path / "ar"), fanout=4)
        keys = [("v", f"s{i:02d}") for i in range(16)]
        for i, (var, seg) in enumerate(keys):
            store.put(var, seg, bytes([i]) * (i + 1))
        out = store.get_many(list(reversed(keys)))
        # results come back keyed and ordered by the *request*, however
        # the per-shard sequential read order interleaved them
        assert list(out) == list(reversed(keys))
        assert all(out[(v, s)] == bytes([i]) * (i + 1) for i, (v, s) in enumerate(keys))
        assert store.round_trips == 1


class TestRunningTotals:
    def test_overwrite_updates_totals(self, any_store):
        before = any_store.nbytes()
        any_store.put("v", "s0", b"x")  # 4 bytes -> 1 byte
        assert any_store.nbytes() == before - 3
        assert any_store.nbytes("v") == 3
        assert any_store.segments("v") == ["s0", "s1"]  # no duplicate entry

    def test_size_of_matches_payloads(self, any_store):
        assert any_store.size_of("w", "s0") == 6
        assert any_store.variables() == ["v", "w"]

    def test_disk_reindex_restores_totals(self, tmp_path):
        root = str(tmp_path / "flat")
        _filled(DiskFragmentStore(root))
        reopened = DiskFragmentStore(root)
        assert reopened.nbytes() == 12
        assert reopened.size_of("v", "s0") == 4

    def test_disk_overwrite_survives_reopen(self, tmp_path):
        root = str(tmp_path / "flat")
        store = _filled(DiskFragmentStore(root))
        store.put("v", "s0", b"now much longer payload")
        reopened = DiskFragmentStore(root)
        assert reopened.size_of("v", "s0") == len(b"now much longer payload")
        assert reopened.nbytes("v") == len(b"now much longer payload") + 2
        assert reopened.segments("v") == ["s0", "s1"]

    def test_sharded_reindex_restores_totals(self, tmp_path):
        root = str(tmp_path / "sh")
        _filled(ShardedDiskStore(root, fanout=8))
        reopened = ShardedDiskStore(root)
        assert reopened.nbytes() == 12
        assert reopened.size_of("v", "s1") == 2


class TestOpenStoreMarkers:
    def test_flat_marker(self, tmp_path):
        root = str(tmp_path / "flat")
        _filled(DiskFragmentStore(root))
        assert os.path.isfile(os.path.join(root, LAYOUT_MARKER))
        assert isinstance(open_store(root), DiskFragmentStore)

    def test_sharded_marker_restores_fanout(self, tmp_path):
        root = str(tmp_path / "sh")
        _filled(ShardedDiskStore(root, fanout=7))
        reopened = open_store(root)
        assert isinstance(reopened, ShardedDiskStore)
        assert reopened.fanout == 7
        # the marker wins over a mismatched constructor argument too
        assert ShardedDiskStore(root, fanout=64).fanout == 7

    def test_markerless_sharded_still_detected(self, tmp_path):
        root = str(tmp_path / "sh")
        _filled(ShardedDiskStore(root, fanout=8))
        os.remove(os.path.join(root, LAYOUT_MARKER))
        assert isinstance(open_store(root), ShardedDiskStore)

    def test_open_never_writes_to_a_read_only_archive(self, tmp_path):
        root = str(tmp_path / "flat")
        _filled(DiskFragmentStore(root))
        os.remove(os.path.join(root, LAYOUT_MARKER))
        os.chmod(root, 0o555)
        try:
            reopened = open_store(root)  # must not try to write a marker
            assert reopened.get("v", "s1") == b"bb"
            assert not os.path.isfile(os.path.join(root, LAYOUT_MARKER))
        finally:
            os.chmod(root, 0o755)

    def test_opening_empty_dir_does_not_pin_layout(self, tmp_path):
        root = str(tmp_path / "new")
        open_store(root)  # e.g. `repro stats` on a not-yet-filled directory
        assert not os.path.isfile(os.path.join(root, LAYOUT_MARKER))
        sharded = ShardedDiskStore(root, fanout=4)
        sharded.put("v", "s0", b"abc")
        reopened = open_store(root)
        assert isinstance(reopened, ShardedDiskStore)
        assert reopened.get("v", "s0") == b"abc"

    def test_corrupt_marker_falls_back(self, tmp_path):
        root = str(tmp_path / "sh")
        _filled(ShardedDiskStore(root, fanout=8))
        with open(os.path.join(root, LAYOUT_MARKER), "w") as fh:
            fh.write("not json")
        assert isinstance(open_store(root), ShardedDiskStore)

    def test_insane_marker_fanout_is_a_clear_error(self, tmp_path):
        root = str(tmp_path / "sh")
        _filled(ShardedDiskStore(root, fanout=8))
        with open(os.path.join(root, LAYOUT_MARKER), "w") as fh:
            json.dump({"layout": "sharded", "fanout": 0}, fh)
        with pytest.raises(ValueError, match="fanout"):
            ShardedDiskStore(root)

    def test_dangling_legacy_log_entry_degrades_per_key(self, tmp_path):
        root = str(tmp_path / "flat")
        store = _filled(DiskFragmentStore(root))
        # rewrite the log without sizes (pre-size-tracking format) and
        # delete one fragment file out from under it
        log = os.path.join(root, ".repro-index.jsonl")
        entries = [json.loads(line) for line in open(log) if line.strip()]
        with open(log, "w") as fh:
            for e in entries:
                e.pop("nbytes", None)
                fh.write(json.dumps(e) + "\n")
        os.remove(os.path.join(root, "v__s0.bin"))
        reopened = DiskFragmentStore(root)  # must not raise
        assert reopened.has("v", "s0")  # indexed, size unknown (0)
        assert reopened.get("v", "s1") == b"bb"  # the rest stays readable
        with pytest.raises(OSError):
            reopened.get("v", "s0")


class TestCacheGetMany:
    def test_one_loader_call_for_all_misses(self):
        inner = _filled(FragmentStore())
        cache = FragmentCache(1 << 20)
        cached = CachingFragmentStore(inner, cache)
        out = cached.get_many([("v", "s0"), ("v", "s1")])
        assert out[("v", "s0")] == b"aaaa"
        assert inner.round_trips == 1
        # second batch is all hits: no inner traffic at all
        cached.get_many([("v", "s0"), ("v", "s1")])
        assert inner.round_trips == 1
        assert cache.stats().hits == 2

    def test_concurrent_batches_single_flight(self):
        inner = FragmentStore()
        keys = [("v", f"s{i}") for i in range(12)]
        for _, seg in keys:
            inner.put("v", seg, seg.encode() * 50)
        slow_calls = []
        original = inner.get_many

        def slow_get_many(batch):
            slow_calls.append(len(list(batch)))
            return original(batch)

        inner.get_many = slow_get_many
        cache = FragmentCache(1 << 20)
        results = []
        barrier = threading.Barrier(6)

        def client():
            barrier.wait()
            results.append(cache.get_many(keys, inner.get_many))

        threads = [threading.Thread(target=client) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # every client got every payload, but each fragment was loaded
        # from the store exactly once across all six concurrent batches
        assert len(results) == 6
        for out in results:
            assert set(out) == set(keys)
        assert inner.reads == len(keys)
        assert cache.stats().misses == len(keys)
        assert cache.stats().hits >= 0

    def test_loader_failure_releases_flights(self):
        cache = FragmentCache(1 << 20)

        def boom(batch):
            raise OSError("store down")

        with pytest.raises(OSError):
            cache.get_many([("v", "s0")], boom)
        # a loader returning a *partial* dict must release its flights too
        with pytest.raises(KeyError):
            cache.get_many([("v", "s0"), ("v", "s1")],
                           lambda batch: {("v", "s1"): b"half"})
        # the key must be retryable, not wedged behind a dead flight
        out = cache.get_many([("v", "s0")], lambda batch: {("v", "s0"): b"ok"})
        assert out[("v", "s0")] == b"ok"


@pytest.fixture(scope="module")
def seeded_fields():
    rng = np.random.default_rng(7)
    shape = (18, 18, 18)
    return {
        "p": rng.standard_normal(shape) * 40 + 100,
        "d": rng.standard_normal(shape) + 5,
    }


@pytest.mark.parametrize("method", ["pmgard_hb", "psz3", "psz3_delta"])
class TestPipelinedEqualsSerial:
    def _archive(self, tmp_path, fields, method):
        refactored = refactor_dataset(fields, make_refactorer(method))
        store = ShardedDiskStore(str(tmp_path / "ar"), fanout=8)
        Archive(store).save_dataset(refactored)
        return str(tmp_path / "ar")

    def test_ladder_bit_identical(self, tmp_path, seeded_fields, method):
        root = self._archive(tmp_path, seeded_fields, method)
        ranges = {k: float(np.ptp(v)) for k, v in seeded_fields.items()}
        qoi = qoi_from_spec("product", sorted(seeded_fields))
        ladder = [1e-2, 1e-4]

        def run(lazy, depth, workers):
            store = ShardedDiskStore(root)
            loaded = Archive(store).load_dataset(sorted(seeded_fields), lazy=lazy)
            session = QoIRetriever(
                loaded, ranges, pipeline_depth=depth, max_workers=workers
            ).session()
            results = [
                session.retrieve([QoIRequest("q", qoi, tol, 1.0)])
                for tol in ladder
            ]
            return results, store

        serial, serial_store = run(lazy=False, depth=0, workers=0)
        piped, piped_store = run(lazy=True, depth=2, workers=3)
        for a, b in zip(serial, piped):
            assert a.estimated_errors == b.estimated_errors
            assert a.final_ebs == b.final_ebs
            assert a.bytes_per_variable == b.bytes_per_variable
            for name in a.data:
                assert np.array_equal(a.data[name], b.data[name])
        # coalescing must show up in the round-trip accounting
        assert piped_store.round_trips < serial_store.round_trips

    def test_plan_matches_consumption(self, tmp_path, seeded_fields, method):
        """plan_segments(eb) names exactly the fragments request(eb) uses."""
        root = self._archive(tmp_path, seeded_fields, method)
        store = ShardedDiskStore(root)
        archive = Archive(store)
        for name in sorted(seeded_fields):
            ref = archive.load(name, lazy=True)
            source = ref.fragment_source
            reader = ref.reader()
            for eb in (np.ptp(seeded_fields[name]) * 1e-1,
                       np.ptp(seeded_fields[name]) * 1e-4):
                planned = reader.plan_segments(eb)
                before = set(source._seen)
                reader.request(eb)
                consumed = set(source._seen) - before
                # every consumed fragment was planned (prefetchable) and
                # nothing beyond the plan was pulled
                assert consumed <= set(planned)


class TestLazyArchive:
    def test_lazy_load_defers_bulk_fragments(self, tmp_path, seeded_fields):
        refactored = refactor_dataset(
            seeded_fields, make_refactorer("pmgard_hb")
        )
        store = DiskFragmentStore(str(tmp_path / "ar"))
        Archive(store).save_dataset(refactored)
        fresh = DiskFragmentStore(str(tmp_path / "ar"))
        archive = Archive(fresh)
        archive.load("p", lazy=True)
        # index + one batched round trip for coarse/signs; no planes yet
        assert fresh.reads < 10
        assert fresh.round_trips <= 2

    def test_lossless_tail_stays_lazy(self, tmp_path, seeded_fields):
        refactored = refactor_dataset({"p": seeded_fields["p"]},
                                      make_refactorer("psz3"))
        store = DiskFragmentStore(str(tmp_path / "ar"))
        Archive(store).save_dataset(refactored)
        fresh = DiskFragmentStore(str(tmp_path / "ar"))
        ref = Archive(fresh).load("p", lazy=True)
        assert fresh.reads == 1  # only the JSON index moved
        assert ref.total_bytes > 0  # sizes come from the store index
        assert fresh.reads == 1
        reader = ref.reader()
        # far below the tightest snapshot bound: only the tail satisfies it
        reader.request(float(np.ptp(seeded_fields["p"])) * 1e-14)
        assert reader.current_error_bound == 0.0


class TestFetchPipeline:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(pipeline_depth=-1)
        with pytest.raises(ValueError):
            PipelineConfig(max_workers=-1)

    def test_speculation_completes_before_close(self):
        """Determinism: close() drains every submitted speculative batch.

        A speculative plan is a subset of the next actual round's fetch,
        so completing (never dropping) speculation is what makes a
        retrieval's total fetched set — and identical re-runs' store
        traffic — deterministic.
        """
        from repro.storage.archive import FragmentSource

        release = threading.Event()

        class SlowStore(FragmentStore):
            def get_many(self, keys):
                release.wait(timeout=10)
                return super().get_many(keys)

        store = SlowStore()
        store.put("v", "s0", b"x")
        store.put("v", "s1", b"y")
        source = FragmentSource(store, "v")
        with FetchPipeline(PipelineConfig(pipeline_depth=1, max_workers=1)) as pipe:
            assert pipe.speculate([(source, ["s0"])])
            assert pipe.speculate([(source, ["s1"])])  # queued behind s0
            release.set()
        assert source.fetched("s0")
        assert source.fetched("s1")
        assert pipe.fragments_prefetched == 2

    def test_concurrent_prefetches_never_double_read(self):
        """claim() makes racing round/speculative batches fetch-once."""
        from repro.storage.archive import FragmentSource, prefetch_plans

        gate = threading.Event()

        class SlowStore(FragmentStore):
            def get_many(self, keys):
                gate.wait(timeout=10)
                return super().get_many(keys)

        store = SlowStore()
        for i in range(4):
            store.put("v", f"s{i}", bytes(10))
        source = FragmentSource(store, "v")
        segs = [f"s{i}" for i in range(4)]
        worker = threading.Thread(
            target=prefetch_plans, args=([(source, segs)],)
        )
        worker.start()
        # the racing batch sees every segment claimed and fetches nothing
        assert prefetch_plans([(source, segs)]) == 0
        gate.set()
        worker.join()
        assert store.reads == 4  # each fragment read exactly once
        # and a reader-side get() waited for the batch instead of re-reading
        assert source.get("s0") == bytes(10)
        assert store.reads == 4

    def test_prefetch_failure_releases_claims_of_every_store(self):
        from repro.storage.archive import FragmentSource, prefetch_plans

        class BadStore(FragmentStore):
            def get_many(self, keys):
                raise OSError("store down")

        for bad_first in (True, False):
            good = _filled(FragmentStore())
            bad = BadStore()
            bad.put("w", "s0", b"x")
            s_good = FragmentSource(good, "v")
            s_bad = FragmentSource(bad, "w")
            plans = [(s_bad, ["s0"]), (s_good, ["s0"])]
            with pytest.raises(OSError):
                prefetch_plans(plans if bad_first else list(reversed(plans)))
            # no source may keep dangling claims, whichever store failed
            assert s_bad.claim(["s0"]) == ["s0"]
            if bad_first:  # the good store's batch never ran: reclaimable
                assert s_good.claim(["s0"]) == ["s0"]
            else:  # fetched before the failure: nothing left to claim
                assert s_good.missing(["s0"]) == []

    def test_duplicate_speculation_is_skipped(self):
        from repro.storage.archive import FragmentSource

        store = _filled(FragmentStore())
        source = FragmentSource(store, "v")
        with FetchPipeline(PipelineConfig(pipeline_depth=2, max_workers=1)) as pipe:
            assert pipe.speculate([(source, ["s0"])])
        with FetchPipeline(PipelineConfig(pipeline_depth=2, max_workers=1)) as pipe:
            # already fetched: the plan dissolves before reaching the pool
            assert not pipe.speculate([(source, ["s0"])])
