"""Tests for the SZ3-style error-bounded compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.sz3 import SZ3Compressor, _interp_passes, _level_strides


def smooth_1d(n=1000, seed=0):
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 6 * np.pi, n)
    return np.sin(x) * np.exp(-x / 20) + 0.01 * rng.normal(size=n)


def smooth_3d(shape=(24, 20, 18), seed=0):
    axes = np.meshgrid(*[np.linspace(0, 2 * np.pi, n) for n in shape], indexing="ij")
    rng = np.random.default_rng(seed)
    return np.sin(axes[0]) * np.cos(axes[1]) + np.sin(axes[2]) + 0.01 * rng.normal(size=shape)


class TestLevelStructure:
    def test_strides_descend_by_halving(self):
        strides = _level_strides((100,))
        assert strides[-1] == 1
        assert all(a == 2 * b for a, b in zip(strides, strides[1:]))

    def test_passes_cover_everything_once(self):
        shape = (17, 12)
        filled = np.zeros(shape, dtype=int)
        strides = _level_strides(shape)
        anchor = tuple(slice(0, None, strides[0] * 2) for _ in shape)
        filled[anchor] += 1
        for s in strides:
            for _axis, target, _even in _interp_passes(len(shape), s):
                filled[target] += 1
        np.testing.assert_array_equal(filled, 1)

    @pytest.mark.parametrize("shape", [(5,), (2,), (64,), (7, 9), (33, 32), (6, 5, 4)])
    def test_cover_property_various_shapes(self, shape):
        filled = np.zeros(shape, dtype=int)
        strides = _level_strides(shape)
        anchor = tuple(slice(0, None, strides[0] * 2) for _ in shape)
        filled[anchor] += 1
        for s in strides:
            for _axis, target, _even in _interp_passes(len(shape), s):
                filled[target] += 1
        np.testing.assert_array_equal(filled, 1)


class TestErrorBound:
    @pytest.mark.parametrize("eb", [1e-1, 1e-3, 1e-6, 1e-9])
    def test_bound_respected_1d(self, eb):
        data = smooth_1d()
        c = SZ3Compressor()
        rec = c.decompress(c.compress(data, eb))
        assert np.max(np.abs(rec - data)) <= eb * (1 + 1e-12)

    @pytest.mark.parametrize("eb", [1e-2, 1e-5])
    def test_bound_respected_3d(self, eb):
        data = smooth_3d()
        c = SZ3Compressor()
        rec = c.decompress(c.compress(data, eb))
        assert np.max(np.abs(rec - data)) <= eb * (1 + 1e-12)

    def test_outlier_path_preserves_bound(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=500)
        data[::50] += 1e7  # spikes force the outlier path
        c = SZ3Compressor(max_code=1 << 8)
        rec = c.decompress(c.compress(data, 1e-3))
        assert np.max(np.abs(rec - data)) <= 1e-3 * (1 + 1e-12)

    @given(st.integers(2, 300), st.floats(1e-8, 1.0), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_bound_property(self, n, eb, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=n)
        c = SZ3Compressor()
        rec = c.decompress(c.compress(data, eb))
        assert np.max(np.abs(rec - data)) <= eb * (1 + 1e-9)


class TestCompressionBehaviour:
    def test_smooth_data_compresses_well(self):
        data = smooth_3d((32, 32, 32))
        c = SZ3Compressor()
        blob = c.compress(data, 1e-3)
        raw_bytes = data.size * 8
        assert blob.nbytes < raw_bytes / 5

    def test_larger_eb_smaller_blob(self):
        data = smooth_1d(5000)
        c = SZ3Compressor()
        sizes = [c.compress(data, eb).nbytes for eb in (1e-2, 1e-4, 1e-6)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_invalid_eb(self):
        with pytest.raises(ValueError):
            SZ3Compressor().compress(np.ones(10), -1.0)

    def test_bad_magic(self):
        from repro.compressors.sz3 import SZ3Blob

        with pytest.raises(ValueError, match="magic"):
            SZ3Compressor().decompress(SZ3Blob(b"XXXX" + b"\x00" * 64))

    def test_constant_field(self):
        data = np.full((10, 10), 3.14)
        c = SZ3Compressor()
        rec = c.decompress(c.compress(data, 1e-6))
        assert np.max(np.abs(rec - data)) <= 1e-6
