"""End-to-end integration: every Table III dataset through the full
archive -> manifest -> QoI-preserved retrieval pipeline."""

import numpy as np
import pytest

from repro.compressors.base import make_refactorer
from repro.core.retrieval import QoIRequest, QoIRetriever, refactor_dataset
from repro.data.datasets import TABLE3, load_dataset
from repro.storage.metadata import DatasetManifest, VariableMetadata


@pytest.mark.parametrize("name", sorted(TABLE3))
def test_full_pipeline_per_dataset(name):
    ds = load_dataset(name, scale=0.12, seed=2)
    refactored = refactor_dataset(ds.fields, make_refactorer("pmgard_hb"))

    # archive-side manifest carries exactly what Algorithm 2 needs
    manifest = DatasetManifest(name)
    for var, data in ds.fields.items():
        manifest.add(
            VariableMetadata.from_array(var, data, "pmgard_hb", refactored[var].total_bytes)
        )
    manifest = DatasetManifest.from_json(manifest.to_json())  # survive (de)serialization

    env0 = {k: (v, 0.0) for k, v in ds.fields.items()}
    requests = []
    for qoi_name, qoi in ds.qois.items():
        vals = qoi.value(env0)
        qrange = float(np.max(vals) - np.min(vals)) or 1.0
        requests.append(QoIRequest(qoi_name, qoi, 1e-3, qrange))

    retriever = QoIRetriever(refactored, manifest.value_ranges())
    result = retriever.retrieve(requests)
    assert result.all_satisfied, name

    for req in requests:
        truth = req.qoi.value(env0)
        rec_env = dict(env0)
        rec_env.update({k: (result.data[k], 0.0) for k in result.data})
        rec = req.qoi.value(rec_env)
        err = float(np.max(np.abs(rec - truth)))
        assert err <= req.absolute_tolerance * (1 + 1e-9), (name, req.name)
        assert err <= result.estimated_errors[req.name] * (1 + 1e-9), (name, req.name)


class TestUnsatisfiableTolerance:
    def test_bottoming_out_is_reported_not_lied_about(self):
        """PMGARD's bitplane floor cannot reach absurd tolerances; the
        retriever must stop, report satisfied=False, and keep a truthful
        estimate rather than spinning or claiming success."""
        fields = {"x": np.sin(np.linspace(0, 10, 2000)), "y": np.cos(np.linspace(0, 10, 2000))}
        refactored = refactor_dataset(
            fields, make_refactorer("pmgard_hb", num_planes=12)  # shallow floor
        )
        from repro.core.qois import molar_product

        qoi = molar_product("x", "y")
        ranges = {k: float(v.max() - v.min()) for k, v in fields.items()}
        retriever = QoIRetriever(refactored, ranges)
        result = retriever.retrieve(
            [QoIRequest("xy", qoi, 1e-14, 1.0)], max_rounds=30
        )
        assert not result.all_satisfied
        assert result.rounds <= 30
        # the estimate stays an upper bound of the truth even in failure
        truth = qoi.value({k: (v, 0.0) for k, v in fields.items()})
        rec = qoi.value({k: (result.data[k], 0.0) for k in result.data})
        actual = float(np.max(np.abs(rec - truth)))
        assert actual <= result.estimated_errors["xy"] * (1 + 1e-9)


class TestMultiMethodAgreement:
    def test_all_methods_reach_same_guarantee(self):
        """Different substrates, same contract: the retrieved data from
        any method satisfies the identical QoI tolerance."""
        from repro.core.qois import total_velocity

        fields = load_dataset("GE-small", scale=0.1, seed=9).fields
        vel = {k: v for k, v in fields.items() if k.startswith("velocity")}
        qoi = total_velocity()
        truth = qoi.value({k: (v, 0.0) for k, v in vel.items()})
        qrange = float(truth.max() - truth.min())
        ranges = {k: float(v.max() - v.min()) for k, v in vel.items()}
        for method in ("psz3", "psz3_delta", "pmgard", "pmgard_hb"):
            refactored = refactor_dataset(vel, make_refactorer(method))
            result = QoIRetriever(refactored, ranges).retrieve(
                [QoIRequest("VTOT", qoi, 1e-4, qrange)]
            )
            assert result.all_satisfied, method
            rec = qoi.value({k: (result.data[k], 0.0) for k in result.data})
            assert np.max(np.abs(rec - truth)) <= 1e-4 * qrange * (1 + 1e-9), method
