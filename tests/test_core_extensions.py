"""Property tests for the extension operators (Abs/Min/Max/Clip/MovingAverage).

Every operator must satisfy the same proof obligation as the paper's
basis: the propagated bound dominates the true error for any admissible
perturbation of the inputs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expressions import Var
from repro.core.extensions import Abs, Clip, Maximum, Minimum, MovingAverage


def _verify_bound(expr, env, true_fn, samples=20, seed=0):
    value, bound = expr.evaluate(env)
    rng = np.random.default_rng(seed)
    worst = np.zeros_like(np.asarray(value, dtype=float))
    for _ in range(samples):
        perturbed = {}
        for name, (x, eps) in env.items():
            x = np.asarray(x, dtype=float)
            perturbed[name] = x + rng.uniform(-1, 1, x.shape) * eps
        worst = np.maximum(worst, np.abs(true_fn(perturbed) - value))
    assert np.all(worst <= np.asarray(bound) * (1 + 1e-9) + 1e-300)


class TestAbs:
    def test_value(self):
        v, e = Abs(Var("x")).evaluate({"x": (np.array([-2.0, 3.0]), 0.1)})
        np.testing.assert_array_equal(v, [2.0, 3.0])
        np.testing.assert_allclose(e, 0.1)

    @given(st.floats(-100, 100), st.floats(1e-9, 10))
    @settings(max_examples=60, deadline=None)
    def test_bound_property(self, x, eps):
        env = {"x": (np.array([x]), eps)}
        _verify_bound(Abs(Var("x")), env, lambda p: np.abs(p["x"]))


class TestMinMax:
    def test_values(self):
        env = {"a": (np.array([1.0, 5.0]), 0.0), "b": (np.array([2.0, 3.0]), 0.0)}
        vmin, _ = Minimum(Var("a"), Var("b")).evaluate(env)
        vmax, _ = Maximum(Var("a"), Var("b")).evaluate(env)
        np.testing.assert_array_equal(vmin, [1.0, 3.0])
        np.testing.assert_array_equal(vmax, [2.0, 5.0])

    @given(
        st.floats(-50, 50), st.floats(-50, 50),
        st.floats(1e-9, 5), st.floats(1e-9, 5),
    )
    @settings(max_examples=80, deadline=None)
    def test_bound_property(self, a, b, ea, eb):
        env = {"a": (np.array([a]), ea), "b": (np.array([b]), eb)}
        _verify_bound(Minimum(Var("a"), Var("b")), env,
                      lambda p: np.minimum(p["a"], p["b"]))
        _verify_bound(Maximum(Var("a"), Var("b")), env,
                      lambda p: np.maximum(p["a"], p["b"]))

    def test_variables_union(self):
        assert Minimum(Var("a"), Var("b")).variables() == frozenset({"a", "b"})


class TestClip:
    def test_value(self):
        v, _ = Clip(Var("x"), lo=0.0, hi=1.0).evaluate({"x": (np.array([-1.0, 0.5, 2.0]), 0.0)})
        np.testing.assert_array_equal(v, [0.0, 0.5, 1.0])

    def test_needs_a_bound(self):
        with pytest.raises(ValueError):
            Clip(Var("x"))

    def test_lo_le_hi(self):
        with pytest.raises(ValueError):
            Clip(Var("x"), lo=2.0, hi=1.0)

    @given(st.floats(-10, 10), st.floats(1e-9, 3))
    @settings(max_examples=60, deadline=None)
    def test_bound_property(self, x, eps):
        env = {"x": (np.array([x]), eps)}
        _verify_bound(Clip(Var("x"), lo=-1.0, hi=1.0), env,
                      lambda p: np.clip(p["x"], -1.0, 1.0))


class TestMovingAverage:
    def test_smooths(self):
        x = np.array([0.0, 10.0, 0.0, 10.0, 0.0])
        v, _ = MovingAverage(Var("x"), 3).evaluate({"x": (x, 0.0)})
        assert np.ptp(v) < np.ptp(x)

    def test_window_one_identity(self):
        x = np.linspace(0, 1, 7)
        v, _ = MovingAverage(Var("x"), 1).evaluate({"x": (x, 0.0)})
        np.testing.assert_allclose(v, x)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            MovingAverage(Var("x"), 0)

    def test_bound_property_random_fields(self):
        rng = np.random.default_rng(3)
        for trial in range(5):
            x = rng.normal(size=64)
            eps = float(rng.uniform(1e-6, 0.1))
            env = {"x": (x, eps)}
            expr = MovingAverage(Var("x"), int(rng.integers(2, 9)))
            _verify_bound(
                expr, env,
                lambda p, e=expr: uniform(p["x"], e.window),
                seed=trial,
            )

    def test_composes_with_basis(self):
        """Extension nodes slot into ordinary expression trees."""
        from repro.core.expressions import Sqrt

        expr = MovingAverage(Sqrt(Abs(Var("x"))), 3)
        env = {"x": (np.linspace(1, 4, 20), 1e-3)}
        _verify_bound(expr, env, lambda p: uniform(np.sqrt(np.abs(p["x"])), 3))


def uniform(x, window):
    from scipy.ndimage import uniform_filter1d

    return uniform_filter1d(np.asarray(x, dtype=float), window, mode="nearest")


class TestDomainReduce:
    def test_mean_value_and_bound(self):
        from repro.core.extensions import DomainReduce

        x = np.array([1.0, 2.0, 3.0, 4.0])
        v, b = DomainReduce(Var("x"), kind="mean").evaluate({"x": (x, 0.1)})
        assert float(v) == pytest.approx(2.5)
        assert float(b) == pytest.approx(0.1, rel=1e-9)

    def test_sum_bound_scales_with_n(self):
        from repro.core.extensions import DomainReduce

        x = np.ones(10)
        _, b = DomainReduce(Var("x"), kind="sum").evaluate({"x": (x, 0.1)})
        assert float(b) == pytest.approx(1.0, rel=1e-9)

    def test_custom_weights(self):
        from repro.core.extensions import DomainReduce

        x = np.array([1.0, 2.0])
        w = np.array([2.0, -1.0])
        v, b = DomainReduce(Var("x"), kind="sum", weights=w).evaluate({"x": (x, 0.5)})
        assert float(v) == pytest.approx(0.0)
        assert float(b) == pytest.approx(1.5, rel=1e-9)

    def test_weights_shape_mismatch(self):
        from repro.core.extensions import DomainReduce

        with pytest.raises(ValueError, match="weights shape"):
            DomainReduce(Var("x"), weights=np.ones(3)).evaluate(
                {"x": (np.ones(5), 0.1)}
            )

    def test_invalid_kind(self):
        from repro.core.extensions import DomainReduce

        with pytest.raises(ValueError):
            DomainReduce(Var("x"), kind="median")

    def test_bound_property_randomized(self):
        from repro.core.extensions import DomainReduce
        from repro.core.expressions import Pow

        rng = np.random.default_rng(0)
        x = rng.uniform(1, 3, size=50)
        eps = 1e-3
        expr = DomainReduce(Pow(Var("x"), 2), kind="mean")  # mean kinetic-like
        value, bound = expr.evaluate({"x": (x, eps)})
        for _ in range(30):
            xp = x + rng.uniform(-eps, eps, x.shape)
            err = abs(float(np.mean(xp**2)) - float(value))
            assert err <= float(bound) * (1 + 1e-9)
