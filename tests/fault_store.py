"""Fault-injection harness for the durability test suite.

Two independent instruments:

* :class:`CrashSchedule` — a hook for
  :func:`repro.storage.wal.set_crash_hook` that records every named
  kill point the WAL commit protocol announces and raises
  :class:`SimulatedCrash` at a chosen visit.  The property tests first
  *trace* an operation (no kill) to learn its schedule, then replay it
  dying at each (or a randomly drawn) step — every protocol step
  becomes a reachable crash site.  :func:`inject` installs/restores the
  process-wide hook; :func:`crash_everywhere` enumerates one run per
  kill site.

* :class:`FaultyFragmentStore` — a wrapping store misbehaving on
  command, for layers *above* the WAL: die after N mutating operations
  (``fail_after``), tear the failing batch by writing only a prefix of
  it (``torn_writes``), truncate read payloads (``short_reads``) the
  way a half-transferred object does, fail the next N reads
  *transiently* (``fail_next`` — raises
  :class:`~repro.storage.resilience.FaultStoreError`, the retryable
  kind, then recovers), drop reads at a seeded ``fault_rate``, or add
  ``latency_s`` of per-read delay (straggler/hedging experiments).

Both are deterministic: the same schedule produces the same failure,
which is what lets hypothesis shrink a failing crash schedule to its
minimal counterexample.
"""

from __future__ import annotations

import contextlib
import random
import time

from repro.storage import wal
from repro.storage.resilience import FaultStoreError
from repro.storage.store import FragmentStore


class SimulatedCrash(RuntimeError):
    """The injected process-kill stand-in.

    Raised by :class:`CrashSchedule` at its scheduled kill point and by
    :class:`FaultyFragmentStore` when its operation budget runs out.
    Tests catch exactly this type, so a real bug raising anything else
    still fails loudly.
    """


class CrashSchedule:
    """Record WAL kill-point visits; die at visit *kill_at* (0-based).

    With ``kill_at=None`` the schedule only traces — run the operation
    once to learn ``trace`` (the ordered kill-point names it visits),
    then replay with ``kill_at`` drawn from ``range(len(trace))``.
    """

    def __init__(self, kill_at: int | None = None):
        self.kill_at = kill_at
        self.trace: list = []

    def __call__(self, point: str) -> None:
        visit = len(self.trace)
        self.trace.append(point)
        if self.kill_at is not None and visit == self.kill_at:
            raise SimulatedCrash(f"killed at {point!r} (visit {visit})")


@contextlib.contextmanager
def inject(hook):
    """Install *hook* as the WAL crash hook for the ``with`` body."""
    previous = wal.set_crash_hook(hook)
    try:
        yield hook
    finally:
        wal.set_crash_hook(previous)


def trace(operation) -> list:
    """Run *operation* () once, returning the kill points it visits."""
    schedule = CrashSchedule()
    with inject(schedule):
        operation()
    return schedule.trace


def crash_everywhere(make_operation) -> int:
    """Run ``make_operation()()`` dying at every reachable kill point.

    *make_operation* must return a fresh operation callable per run
    (each run starts from a clean state).  The first run traces; each
    subsequent run kills at the next visit index and must raise
    :class:`SimulatedCrash`.  Returns the number of crash runs; the
    caller verifies recovery after each via the operation's own state.
    """
    points = trace(make_operation())
    for kill_at in range(len(points)):
        schedule = CrashSchedule(kill_at=kill_at)
        operation = make_operation()
        with inject(schedule):
            try:
                operation()
            except SimulatedCrash:
                pass
            else:
                raise AssertionError(
                    f"kill at visit {kill_at} ({points[kill_at]!r}) did not fire"
                )
    return len(points)


class FaultyFragmentStore(FragmentStore):
    """A wrapping store that fails deterministically on command.

    Parameters
    ----------
    inner:
        The real store every successful operation reaches.
    fail_after:
        Mutating operations (``put`` / ``put_many`` / ``delete``) to
        allow; the next one raises :class:`SimulatedCrash`.  ``None``
        never fails.
    torn_writes:
        When the failing operation is a ``put_many``, first write the
        first half of its batch through — a torn batched write, the
        exact anomaly the WAL exists to mask.  (Without it the failing
        operation aborts cleanly before touching the inner store.)
    short_reads:
        Truncate every ``get``/``get_many`` payload to this many bytes,
        modelling a half-transferred object; decode layers must detect
        the damage rather than return wrong data.
    fault_rate:
        Probability (seeded via *seed*) that any read raises
        :class:`~repro.storage.resilience.FaultStoreError` — the
        *transient* failure the resilience layer retries; the next
        attempt sees a healthy store.
    latency_s:
        Sleep this long before serving each read — a uniformly slow
        backend for deadline and straggler-hedging tests.
    """

    def __init__(
        self,
        inner: FragmentStore,
        fail_after: int | None = None,
        torn_writes: bool = False,
        short_reads: int | None = None,
        fault_rate: float = 0.0,
        seed: int = 0,
        latency_s: float = 0.0,
    ):
        super().__init__()
        self.inner = inner
        self.fail_after = fail_after
        self.torn_writes = bool(torn_writes)
        self.short_reads = short_reads
        self.fault_rate = float(fault_rate)
        self.latency_s = float(latency_s)
        self._rng = random.Random(seed)
        #: Mutating operations the wrapper has let through.
        self.mutations = 0
        #: Transient faults raised (``fail_next`` plus ``fault_rate``).
        self.transient_faults = 0
        self._fail_next = 0

    def fail_next(self, count: int) -> None:
        """Make the next *count* reads fail transiently, then recover.

        Each failing read raises
        :class:`~repro.storage.resilience.FaultStoreError` (a
        ``ConnectionError``, so the retry taxonomy classes it
        transient); read ``count + 1`` succeeds — the deterministic
        shape for asserting "a retry policy with enough attempts
        absorbs this, one with fewer does not".
        """
        self._fail_next = int(count)

    def _flake(self) -> None:
        """Raise the transient fault if one is scheduled or drawn."""
        if self.latency_s > 0.0:
            time.sleep(self.latency_s)
        if self._fail_next > 0:
            self._fail_next -= 1
            self.transient_faults += 1
            raise FaultStoreError("injected transient fault (fail_next)")
        if self.fault_rate > 0.0 and self._rng.random() < self.fault_rate:
            self.transient_faults += 1
            raise FaultStoreError("injected transient fault (fault_rate)")

    def _spend(self, batch=None) -> None:
        """Consume one mutation from the budget; die when exhausted."""
        if self.fail_after is not None and self.mutations >= self.fail_after:
            if self.torn_writes and batch:
                self.inner.put_many(batch[: max(1, len(batch) // 2)])
            raise SimulatedCrash(
                f"store failed after {self.mutations} mutating operation(s)"
            )
        self.mutations += 1

    def _maim(self, payload: bytes) -> bytes:
        """Apply the short-read truncation, if configured."""
        if self.short_reads is not None:
            return payload[: self.short_reads]
        return payload

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        """Write one fragment, spending one unit of the failure budget."""
        self._spend()
        self.inner.put(variable, segment, payload)

    def put_many(self, items) -> None:
        """Write a batch; on budget exhaustion optionally tear it."""
        batch = self._check_batch(items)
        self._spend(batch=batch)
        self.inner.put_many(batch)

    def delete(self, variable: str, segment: str) -> None:
        """Delete one fragment, spending one unit of the failure budget."""
        self._spend()
        self.inner.delete(variable, segment)

    def get(self, variable: str, segment: str) -> bytes:
        """Read one fragment (transient faults and truncation apply)."""
        self._flake()
        return self._maim(self.inner.get(variable, segment))

    def get_many(self, keys) -> dict:
        """Read a batch (transient faults and truncation apply)."""
        self._flake()
        return {k: self._maim(p) for k, p in self.inner.get_many(keys).items()}

    def has(self, variable: str, segment: str) -> bool:
        """Delegate to the inner store."""
        return self.inner.has(variable, segment)

    def keys(self) -> list:
        """Delegate to the inner store."""
        return self.inner.keys()

    def variables(self) -> list:
        """Delegate to the inner store."""
        return self.inner.variables()

    def segments(self, variable: str) -> list:
        """Delegate to the inner store."""
        return self.inner.segments(variable)

    def size_of(self, variable: str, segment: str) -> int:
        """Delegate to the inner store (sizes are not truncated)."""
        return self.inner.size_of(variable, segment)

    def nbytes(self, variable: str | None = None) -> int:
        """Delegate to the inner store."""
        return self.inner.nbytes(variable)

    def compact(self):
        """Delegate to the inner store."""
        return self.inner.compact()

    def durability(self):
        """Delegate to the inner store."""
        return self.inner.durability()

    def close(self) -> None:
        """Close the inner store."""
        self.inner.close()
