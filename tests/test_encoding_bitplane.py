"""Tests for the progressive bitplane codec (PMGARD's precision mechanism)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.encoding.bitplane import BitplaneDecoder, BitplaneEncoder


def _roundtrip(coeffs, planes, num_planes=32):
    enc = BitplaneEncoder(num_planes=num_planes)
    stream = enc.encode(coeffs)
    dec = BitplaneDecoder(stream)
    dec.advance_to(planes)
    return stream, dec


class TestEncodeBasics:
    def test_all_zero_group(self):
        stream, dec = _roundtrip(np.zeros(16), 8)
        assert stream.exponent is None
        assert dec.error_bound == 0.0
        np.testing.assert_array_equal(dec.reconstruct(), np.zeros(16))

    def test_shape_preserved(self):
        coeffs = np.arange(24, dtype=float).reshape(2, 3, 4) - 11.5
        _, dec = _roundtrip(coeffs, 32)
        assert dec.reconstruct().shape == (2, 3, 4)

    def test_invalid_num_planes(self):
        with pytest.raises(ValueError):
            BitplaneEncoder(num_planes=0)
        with pytest.raises(ValueError):
            BitplaneEncoder(num_planes=63)


class TestProgressiveGuarantee:
    def test_error_shrinks_with_planes(self):
        rng = np.random.default_rng(0)
        coeffs = rng.normal(size=512)
        enc = BitplaneEncoder(num_planes=40)
        stream = enc.encode(coeffs)
        dec = BitplaneDecoder(stream)
        prev_err = np.inf
        for k in [1, 2, 4, 8, 16, 32, 40]:
            dec.advance_to(k)
            rec = dec.reconstruct()
            err = np.max(np.abs(rec - coeffs))
            assert err <= stream.error_bound(k) * (1 + 1e-12)
            assert err <= prev_err + 1e-15
            prev_err = err

    def test_full_retrieval_near_lossless(self):
        rng = np.random.default_rng(1)
        coeffs = rng.normal(size=256)
        stream, dec = _roundtrip(coeffs, 60, num_planes=60)
        rec = dec.reconstruct()
        scale = np.max(np.abs(coeffs))
        assert np.max(np.abs(rec - coeffs)) <= scale * 2**-58

    def test_incremental_fetch_accounting(self):
        rng = np.random.default_rng(2)
        coeffs = rng.normal(size=1024)
        enc = BitplaneEncoder(num_planes=32)
        stream = enc.encode(coeffs)
        dec = BitplaneDecoder(stream)
        b1 = dec.advance_to(8)
        b2 = dec.advance_to(16)
        assert b1 == stream.segment_bytes(0, 8)
        assert b2 == stream.segment_bytes(8, 16)
        # advancing to an already-consumed level is free
        assert dec.advance_to(10) == 0
        assert b1 + b2 == stream.segment_bytes(0, 16)

    def test_signs_recovered(self):
        coeffs = np.array([-1.0, 1.0, -0.5, 0.25, -0.125])
        _, dec = _roundtrip(coeffs, 32)
        rec = dec.reconstruct()
        np.testing.assert_array_equal(np.sign(rec), np.sign(coeffs))

    def test_error_bound_monotone_in_planes(self):
        stream = BitplaneEncoder(num_planes=20).encode(np.array([3.7, -1.2]))
        bounds = [stream.error_bound(k) for k in range(21)]
        assert all(b1 >= b2 for b1, b2 in zip(bounds, bounds[1:]))

    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 128),
            elements=st.floats(-1e8, 1e8, allow_nan=False, allow_infinity=False),
        ),
        st.integers(1, 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_bound_property(self, coeffs, planes):
        enc = BitplaneEncoder(num_planes=32)
        stream = enc.encode(coeffs)
        dec = BitplaneDecoder(stream)
        dec.advance_to(planes)
        rec = dec.reconstruct()
        bound = stream.error_bound(planes)
        assert np.max(np.abs(rec - coeffs)) <= bound * (1 + 1e-9) + 1e-300


class TestAdvanceScheduling:
    """advance_to with non-monotone / repeated targets, and byte accounting
    that matches what decoders actually charge."""

    def _stream(self, n=700, num_planes=24, seed=5):
        rng = np.random.default_rng(seed)
        return BitplaneEncoder(num_planes=num_planes).encode(rng.normal(size=n))

    def test_non_monotone_targets_are_free_and_stateless(self):
        stream = self._stream()
        dec = BitplaneDecoder(stream)
        dec.advance_to(10)
        rec10 = dec.reconstruct().copy()
        # going backwards fetches nothing and changes nothing
        assert dec.advance_to(4) == 0
        assert dec.advance_to(0) == 0
        assert dec.advance_to(-3) == 0
        assert dec.planes_consumed == 10
        np.testing.assert_array_equal(dec.reconstruct(), rec10)
        # resuming forward only charges the gap
        assert dec.advance_to(12) == stream.segment_bytes(10, 12)

    def test_repeated_target_charges_once(self):
        stream = self._stream()
        dec = BitplaneDecoder(stream)
        first = dec.advance_to(7)
        assert first == stream.segment_bytes(0, 7)
        for _ in range(3):
            assert dec.advance_to(7) == 0
        assert dec.planes_consumed == 7

    def test_target_beyond_num_planes_clamps(self):
        stream = self._stream(num_planes=16)
        dec = BitplaneDecoder(stream)
        charged = dec.advance_to(10_000)
        assert dec.planes_consumed == 16
        assert charged == stream.total_bytes
        assert dec.advance_to(10_000) == 0

    def test_zero_group_any_schedule_is_free(self):
        stream = BitplaneEncoder(num_planes=12).encode(np.zeros(40))
        dec = BitplaneDecoder(stream)
        for target in (5, 2, 12, 100, -1):
            assert dec.advance_to(target) == 0
        np.testing.assert_array_equal(dec.reconstruct(), np.zeros(40))

    def test_arbitrary_schedule_totals_match_segment_bytes(self):
        stream = self._stream(num_planes=32)
        rng = np.random.default_rng(0)
        for _ in range(10):
            schedule = rng.integers(0, 40, size=12)
            dec = BitplaneDecoder(stream)
            charged = sum(dec.advance_to(int(t)) for t in schedule)
            reached = dec.planes_consumed
            assert charged == stream.segment_bytes(0, reached)
            # per-plane segment sizes tile the total exactly
            assert charged == (
                len(stream.sign_segment)
                + sum(len(stream.plane_segments[p]) for p in range(reached))
                if reached
                else 0
            )

    def test_state_identical_to_single_shot(self):
        stream = self._stream(num_planes=20)
        stepped = BitplaneDecoder(stream)
        for t in (3, 1, 9, 9, 15, 2, 20):
            stepped.advance_to(t)
        oneshot = BitplaneDecoder(stream)
        oneshot.advance_to(20)
        np.testing.assert_array_equal(stepped.reconstruct(), oneshot.reconstruct())
        np.testing.assert_array_equal(stepped._mags, oneshot._mags)


class TestLegacySegments:
    def test_pre_framing_zlib_archives_still_decode(self):
        # archives written before the raw/compressed marker byte existed
        # carry whole-segment zlib payloads; the decoder must fall back
        from repro.encoding.reference import reference_bitplane_encode

        rng = np.random.default_rng(11)
        data = rng.normal(size=300)
        legacy = reference_bitplane_encode(data, num_planes=24)
        dec = BitplaneDecoder(legacy)
        dec.advance_to(24)
        rec = dec.reconstruct()
        assert np.max(np.abs(rec - data)) <= legacy.error_bound(24) * (1 + 1e-12)


class TestSizeAccounting:
    def test_total_bytes_consistent(self):
        rng = np.random.default_rng(3)
        stream = BitplaneEncoder(num_planes=16).encode(rng.normal(size=300))
        assert stream.total_bytes == stream.segment_bytes(0, 16)
        assert stream.segment_bytes(0, 0) == 0

    def test_zero_group_costs_nothing(self):
        stream = BitplaneEncoder().encode(np.zeros(50))
        assert stream.total_bytes == 0
