"""Tests for the progressive bitplane codec (PMGARD's precision mechanism)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.encoding.bitplane import BitplaneDecoder, BitplaneEncoder


def _roundtrip(coeffs, planes, num_planes=32):
    enc = BitplaneEncoder(num_planes=num_planes)
    stream = enc.encode(coeffs)
    dec = BitplaneDecoder(stream)
    dec.advance_to(planes)
    return stream, dec


class TestEncodeBasics:
    def test_all_zero_group(self):
        stream, dec = _roundtrip(np.zeros(16), 8)
        assert stream.exponent is None
        assert dec.error_bound == 0.0
        np.testing.assert_array_equal(dec.reconstruct(), np.zeros(16))

    def test_shape_preserved(self):
        coeffs = np.arange(24, dtype=float).reshape(2, 3, 4) - 11.5
        _, dec = _roundtrip(coeffs, 32)
        assert dec.reconstruct().shape == (2, 3, 4)

    def test_invalid_num_planes(self):
        with pytest.raises(ValueError):
            BitplaneEncoder(num_planes=0)
        with pytest.raises(ValueError):
            BitplaneEncoder(num_planes=63)


class TestProgressiveGuarantee:
    def test_error_shrinks_with_planes(self):
        rng = np.random.default_rng(0)
        coeffs = rng.normal(size=512)
        enc = BitplaneEncoder(num_planes=40)
        stream = enc.encode(coeffs)
        dec = BitplaneDecoder(stream)
        prev_err = np.inf
        for k in [1, 2, 4, 8, 16, 32, 40]:
            dec.advance_to(k)
            rec = dec.reconstruct()
            err = np.max(np.abs(rec - coeffs))
            assert err <= stream.error_bound(k) * (1 + 1e-12)
            assert err <= prev_err + 1e-15
            prev_err = err

    def test_full_retrieval_near_lossless(self):
        rng = np.random.default_rng(1)
        coeffs = rng.normal(size=256)
        stream, dec = _roundtrip(coeffs, 60, num_planes=60)
        rec = dec.reconstruct()
        scale = np.max(np.abs(coeffs))
        assert np.max(np.abs(rec - coeffs)) <= scale * 2**-58

    def test_incremental_fetch_accounting(self):
        rng = np.random.default_rng(2)
        coeffs = rng.normal(size=1024)
        enc = BitplaneEncoder(num_planes=32)
        stream = enc.encode(coeffs)
        dec = BitplaneDecoder(stream)
        b1 = dec.advance_to(8)
        b2 = dec.advance_to(16)
        assert b1 == stream.segment_bytes(0, 8)
        assert b2 == stream.segment_bytes(8, 16)
        # advancing to an already-consumed level is free
        assert dec.advance_to(10) == 0
        assert b1 + b2 == stream.segment_bytes(0, 16)

    def test_signs_recovered(self):
        coeffs = np.array([-1.0, 1.0, -0.5, 0.25, -0.125])
        _, dec = _roundtrip(coeffs, 32)
        rec = dec.reconstruct()
        np.testing.assert_array_equal(np.sign(rec), np.sign(coeffs))

    def test_error_bound_monotone_in_planes(self):
        stream = BitplaneEncoder(num_planes=20).encode(np.array([3.7, -1.2]))
        bounds = [stream.error_bound(k) for k in range(21)]
        assert all(b1 >= b2 for b1, b2 in zip(bounds, bounds[1:]))

    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 128),
            elements=st.floats(-1e8, 1e8, allow_nan=False, allow_infinity=False),
        ),
        st.integers(1, 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_bound_property(self, coeffs, planes):
        enc = BitplaneEncoder(num_planes=32)
        stream = enc.encode(coeffs)
        dec = BitplaneDecoder(stream)
        dec.advance_to(planes)
        rec = dec.reconstruct()
        bound = stream.error_bound(planes)
        assert np.max(np.abs(rec - coeffs)) <= bound * (1 + 1e-9) + 1e-300


class TestSizeAccounting:
    def test_total_bytes_consistent(self):
        rng = np.random.default_rng(3)
        stream = BitplaneEncoder(num_planes=16).encode(rng.normal(size=300))
        assert stream.total_bytes == stream.segment_bytes(0, 16)
        assert stream.segment_bytes(0, 0) == 0

    def test_zero_group_costs_nothing(self):
        stream = BitplaneEncoder().encode(np.zeros(50))
        assert stream.total_bytes == 0
