"""Tests for the error-controlled linear quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.encoding.quantizer import LinearQuantizer


class TestQuantizerBound:
    def test_basic_bound(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=1000)
        q = LinearQuantizer()
        for eb in [1e-1, 1e-3, 1e-6]:
            field = q.quantize(data, eb)
            rec = q.dequantize(field)
            assert np.max(np.abs(rec - data)) <= eb + 1e-15

    def test_zero_residuals(self):
        q = LinearQuantizer()
        field = q.quantize(np.zeros(10), 0.1)
        np.testing.assert_array_equal(field.codes, 0)
        assert not field.outlier_mask.any()

    def test_outlier_path_exact(self):
        q = LinearQuantizer(max_code=4)
        data = np.array([0.0, 0.5, 100.0])
        field = q.quantize(data, 0.1)
        assert field.outlier_mask[2]
        rec = q.dequantize(field)
        assert rec[2] == 100.0  # outliers reconstruct exactly
        assert abs(rec[1] - 0.5) <= 0.1

    def test_invalid_eb(self):
        with pytest.raises(ValueError):
            LinearQuantizer().quantize(np.ones(3), 0.0)

    def test_invalid_max_code(self):
        with pytest.raises(ValueError):
            LinearQuantizer(max_code=0)

    def test_dequantize_into(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=100)
        q = LinearQuantizer()
        field = q.quantize(data, 0.01)
        out = np.empty_like(data)
        q.dequantize_into(field, out)
        np.testing.assert_allclose(out, q.dequantize(field))

    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 200),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        ),
        st.floats(1e-9, 1e3),
    )
    @settings(max_examples=80, deadline=None)
    def test_bound_property(self, data, eb):
        q = LinearQuantizer()
        field = q.quantize(data, eb)
        rec = q.dequantize(field)
        # strict bound with tiny float slack
        assert np.max(np.abs(rec - data)) <= eb * (1 + 1e-12) + 1e-300
