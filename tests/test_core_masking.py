"""Tests for the zero-value bitmap (§V-A outlier management)."""

import numpy as np
import pytest

from repro.core.masking import ZeroMask


class TestConstruction:
    def test_from_fields_requires_all_zero(self):
        vx = np.array([0.0, 0.0, 1.0, 0.0])
        vy = np.array([0.0, 2.0, 0.0, 0.0])
        mask = ZeroMask.from_fields(vx, vy)
        np.testing.assert_array_equal(mask.mask, [True, False, False, True])
        assert mask.count == 2

    def test_from_fields_empty_args(self):
        with pytest.raises(ValueError):
            ZeroMask.from_fields()

    def test_multidimensional(self):
        data = np.zeros((4, 5))
        data[1, 2] = 3.0
        mask = ZeroMask.from_fields(data)
        assert mask.count == 19


class TestBehaviour:
    def test_pin_restores_exact_zero(self):
        data = np.array([0.0, 5.0, 0.0])
        mask = ZeroMask.from_fields(data)
        rec = np.array([1e-4, 5.001, -2e-5])
        out = mask.pin(rec)
        np.testing.assert_array_equal(out, [0.0, 5.001, 0.0])
        assert out is rec  # in place

    def test_pointwise_eps(self):
        data = np.array([0.0, 5.0])
        mask = ZeroMask.from_fields(data)
        eps = mask.pointwise_eps(0.1, data.shape)
        np.testing.assert_array_equal(eps, [0.0, 0.1])

    def test_payload_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.choice([0.0, 1.0], size=(13, 7))
        mask = ZeroMask.from_fields(data)
        back = ZeroMask.from_payload(mask.payload, data.shape)
        np.testing.assert_array_equal(back.mask, mask.mask)

    def test_nbytes_small_for_sparse_mask(self):
        data = np.ones(100000)
        data[::1000] = 0.0
        mask = ZeroMask.from_fields(data)
        assert 0 < mask.nbytes < 2000  # packed + zlib'd bitmap is tiny
