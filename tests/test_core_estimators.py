"""Property tests for Theorems 1-6: estimated bounds must dominate the
true supremum of the QoI error over the admissible perturbation set."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators import (
    bound_add,
    bound_div,
    bound_mul,
    bound_power,
    bound_radical,
    bound_sqrt,
)

finite = st.floats(-1e6, 1e6, allow_nan=False)
small_eps = st.floats(1e-12, 1e2)


def perturbations(x, eps, k=17):
    """Deterministic sample of x' around x, plus the eps actually applied.

    Floating-point rounding can make ``(x + eps) - x`` exceed ``eps`` by an
    ulp; returning the *applied* eps lets tests evaluate the estimator at
    the perturbation magnitude that really occurred.
    """
    xs = x + np.linspace(-eps, eps, k)
    return xs, float(np.max(np.abs(xs - x)))


class TestPolynomialBound:
    @given(finite, small_eps, st.integers(1, 6))
    @settings(max_examples=120, deadline=None)
    def test_dominates_true_error(self, x, eps, n):
        xs, eps_applied = perturbations(x, eps)
        bound = float(bound_power(x, max(eps, eps_applied), n))
        fvals = xs**n
        true_err = np.max(np.abs(fvals - x**n))
        # slack: evaluating f in floats costs ~ulp(|f|), not the theorem's fault
        slack = 1e-13 * max(1e-300, float(np.max(np.abs(fvals))))
        assert true_err <= bound * (1 + 1e-9) + slack

    def test_linear_case_exact(self):
        assert bound_power(3.0, 0.5, 1) == 0.5

    def test_rejects_bad_power(self):
        with pytest.raises(ValueError):
            bound_power(1.0, 0.1, 0)
        with pytest.raises(ValueError):
            bound_power(1.0, 0.1, 2.5)

    def test_vectorized(self):
        x = np.array([0.0, 1.0, -2.0])
        out = bound_power(x, 0.1, 2)
        assert out.shape == (3,)
        np.testing.assert_allclose(out, 2 * np.abs(x) * 0.1 + 0.01)


class TestSqrtBound:
    @given(st.floats(0, 1e6), small_eps)
    @settings(max_examples=120, deadline=None)
    def test_dominates_true_error(self, x, eps):
        xs, eps_applied = perturbations(x, eps)
        xs = np.clip(xs, 0.0, None)
        bound = float(bound_sqrt(x, max(eps, eps_applied)))
        fvals = np.sqrt(xs)
        true_err = np.max(np.abs(fvals - np.sqrt(x)))
        slack = 1e-13 * max(1e-300, float(np.max(fvals)))
        assert true_err <= bound * (1 + 1e-9) + slack

    def test_zero_value_uses_exact_sup(self):
        assert float(bound_sqrt(0.0, 0.04)) == pytest.approx(0.2)

    def test_near_zero_is_loose(self):
        # the paper's observed looseness: bound >> actual for tiny x > 0
        x, eps = 1e-12, 1e-3
        bound = float(bound_sqrt(x, eps))
        actual_sup = np.sqrt(x + eps) - 0.0
        assert bound > 10 * actual_sup

    def test_paper_formula_in_regular_regime(self):
        x, eps = 4.0, 0.5
        expected = eps / (np.sqrt(x - eps) + np.sqrt(x))
        assert float(bound_sqrt(x, eps)) == pytest.approx(expected)


class TestRadicalBound:
    @given(finite, small_eps, st.floats(-100, 100))
    @settings(max_examples=150, deadline=None)
    def test_dominates_or_inf(self, x, eps, c):
        xs, eps_applied = perturbations(x, eps)
        eps_eff = max(eps, eps_applied)
        bound = float(bound_radical(x, eps_eff, c))
        if not np.isfinite(bound):
            return  # domain violation: estimator correctly refuses
        s = x + c
        if min(abs(s - eps_eff), abs(s + eps_eff)) < 1e-6 * abs(s):
            return  # near-singular: float cancellation swamps the comparison
        fvals = 1.0 / (xs + c)
        true_err = np.max(np.abs(fvals - 1.0 / (x + c)))
        slack = 1e-13 * float(np.max(np.abs(fvals)))
        # the bound equals the true supremum here, so allow a few ulps of
        # cancellation noise in the float evaluation
        assert true_err <= bound * (1 + 1e-6) + slack

    def test_infinite_when_eps_exceeds_denominator(self):
        assert np.isinf(bound_radical(1.0, 2.0, 0.0))

    def test_paper_formula(self):
        x, eps, c = 2.0, 0.5, 1.0
        expected = eps / (min(abs(x + c - eps), abs(x + c + eps)) * abs(x + c))
        assert float(bound_radical(x, eps, c)) == pytest.approx(expected)


class TestAddBound:
    @given(st.lists(st.tuples(finite, small_eps, st.floats(-10, 10)), min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_dominates_worst_case(self, triples):
        xs = np.array([t[0] for t in triples])
        eps = np.array([t[1] for t in triples])
        ws = [t[2] for t in triples]
        bound = float(bound_add(list(eps), ws))
        # worst case is aligning all signs
        true_sup = float(np.sum(np.abs(ws) * eps))
        assert true_sup <= bound * (1 + 1e-12)

    def test_default_weights(self):
        assert float(bound_add([0.1, 0.2])) == pytest.approx(0.3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bound_add([0.1], [1.0, 2.0])


class TestMulBound:
    @given(finite, small_eps, finite, small_eps)
    @settings(max_examples=150, deadline=None)
    def test_dominates_true_error(self, x1, e1, x2, e2):
        p1 = [x1 - e1, x1, x1 + e1]
        p2 = [x2 - e2, x2, x2 + e2]
        e1_eff = max(e1, max(abs(v - x1) for v in p1))
        e2_eff = max(e2, max(abs(v - x2) for v in p2))
        bound = float(bound_mul(x1, e1_eff, x2, e2_eff))
        g = x1 * x2
        products = [a * b for a in p1 for b in p2]
        true_err = max(abs(v - g) for v in products)
        slack = 1e-13 * max(1e-300, max(abs(v) for v in products))
        assert true_err <= bound * (1 + 1e-9) + slack

    def test_paper_formula(self):
        assert float(bound_mul(2.0, 0.1, 3.0, 0.2)) == pytest.approx(
            2.0 * 0.2 + 3.0 * 0.1 + 0.1 * 0.2
        )


class TestDivBound:
    @given(finite, small_eps, finite, small_eps)
    @settings(max_examples=150, deadline=None)
    def test_dominates_or_inf(self, x1, e1, x2, e2):
        p1 = [x1 - e1, x1, x1 + e1]
        p2 = [x2 - e2, x2, x2 + e2]
        e1_eff = max(e1, max(abs(v - x1) for v in p1))
        e2_eff = max(e2, max(abs(v - x2) for v in p2))
        bound = float(bound_div(x1, e1_eff, x2, e2_eff))
        if not np.isfinite(bound):
            return
        if min(abs(x2 - e2_eff), abs(x2 + e2_eff)) < 1e-6 * abs(x2):
            return  # near-singular denominator: float cancellation dominates
        g = x1 / x2
        quotients = [a / b for a in p1 for b in p2]
        true_err = max(abs(v - g) for v in quotients)
        slack = 1e-13 * max(1e-300, max(abs(v) for v in quotients))
        assert true_err <= bound * (1 + 1e-6) + slack

    def test_infinite_on_denominator_straddle(self):
        assert np.isinf(bound_div(1.0, 0.0, 0.5, 1.0))

    def test_zero_denominator_infinite(self):
        assert np.isinf(bound_div(1.0, 0.1, 0.0, 0.0))
