"""Round-trip property tests for every ``open_store`` URL scheme.

The contract under test (and documented in ``docs/storage.md``): opening
a URL, archiving fragments, and reopening the *same* URL yields a store
with an identical index (keys, sizes, per-variable segments, byte
totals), identical payloads, **reset** read counters, and the correct
auto-detected backend class.  Deletions survive reopening too (the
tombstone log).  ``memory://`` is the documented exception — it never
persists, and each open is a fresh empty store.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.storage.cluster import ClusterFragmentStore
from repro.storage.remote import HTTPFragmentServer, HTTPFragmentStore
from repro.storage.store import (
    DiskFragmentStore,
    FragmentStore,
    ShardedDiskStore,
    open_store,
    parse_bytes,
    split_store_url,
)
from repro.storage.tiered import TieredStore

# Safe key alphabet: the flat disk layout maps distinct keys that differ
# only by sanitized characters onto one file (a known limitation of the
# flat layout; the sharded layout disambiguates with a digest suffix).
_name = st.text("abcdefghijklmnopqrstuvwxyz0123456789._-", min_size=1, max_size=12)
_fragments = st.dictionaries(
    st.tuples(_name, _name),
    st.binary(min_size=0, max_size=64),
    min_size=1,
    max_size=12,
)


def _url_builders(tmp_path):
    """One (scheme-name, url) per persistent scheme, rooted under *tmp_path*."""
    return [
        ("plain-path", str(tmp_path / "plain")),
        ("file", f"file://{tmp_path / 'file'}"),
        ("sharded", f"sharded://{tmp_path / 'sharded'}?fanout=8"),
        (
            "tiered",
            f"tiered://{tmp_path / 'tier-fast'}?slow=sharded://{tmp_path / 'tier-slow'}",
        ),
    ]


def _assert_same_index(reopened, expected: dict, context: str):
    assert set(reopened.keys()) == set(expected), context
    for (var, seg), payload in expected.items():
        assert reopened.has(var, seg), context
        assert reopened.size_of(var, seg) == len(payload), context
    variables = {var for var, _ in expected}
    for var in variables:
        assert set(reopened.segments(var)) == {
            seg for v, seg in expected if v == var
        }, context
        assert reopened.nbytes(var) == sum(
            len(p) for (v, _), p in expected.items() if v == var
        ), context
    assert reopened.nbytes() == sum(len(p) for p in expected.values()), context
    # counters reset on reopen: a fresh handle has served nothing
    assert reopened.reads == 0 and reopened.bytes_read == 0, context
    assert reopened.round_trips == 0, context


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(fragments=_fragments)
def test_roundtrip_property_all_disk_schemes(tmp_path_factory, fragments):
    """put → reopen via the same URL → identical index, counters reset."""
    tmp_path = tmp_path_factory.mktemp("urls")
    for name, url in _url_builders(tmp_path):
        store = open_store(url)
        for (var, seg), payload in fragments.items():
            store.put(var, seg, payload)
        store.close()

        reopened = open_store(url)
        _assert_same_index(reopened, fragments, f"{name}: {url}")
        got = reopened.get_many(list(fragments))
        assert got == fragments, name
        reopened.close()


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(fragments=_fragments, data=st.data())
def test_deletions_survive_reopen(tmp_path_factory, fragments, data):
    """Tombstoned fragments stay deleted across reopen on every disk scheme."""
    tmp_path = tmp_path_factory.mktemp("urls-del")
    doomed = data.draw(
        st.lists(st.sampled_from(sorted(fragments)), unique=True, max_size=3)
    )
    for name, url in _url_builders(tmp_path):
        store = open_store(url)
        for (var, seg), payload in fragments.items():
            store.put(var, seg, payload)
        for var, seg in doomed:
            store.delete(var, seg)
        store.close()

        survivors = {k: v for k, v in fragments.items() if k not in doomed}
        reopened = open_store(url)
        _assert_same_index(reopened, survivors, f"{name}: {url}")
        for var, seg in doomed:
            with pytest.raises(KeyError):
                reopened.get(var, seg)
        reopened.close()


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(fragments=_fragments, data=st.data())
def test_compaction_roundtrip_every_scheme(tmp_path_factory, fragments, data):
    """delete → compact → reopen: identical survivors, dead bytes reclaimed.

    On every persistent scheme, tombstoned fragments leave dead bytes
    that ``compact()`` reclaims (log rewritten, files unlinked), and the
    compacted store reopens bit-identical to its pre-compaction live
    state — compaction is invisible to readers.
    """
    tmp_path = tmp_path_factory.mktemp("urls-compact")
    doomed = data.draw(
        st.lists(st.sampled_from(sorted(fragments)), unique=True, min_size=1)
    )
    survivors = {k: v for k, v in fragments.items() if k not in doomed}
    for name, url in _url_builders(tmp_path):
        # write-through tiering keeps every fragment (and tombstone) on
        # both tiers, so its counters report two copies per key
        copies = 2 if name == "tiered" else 1
        store = open_store(url)
        store.put_many([(v, s, p) for (v, s), p in fragments.items()])
        for var, seg in doomed:
            store.delete(var, seg)
        dead = store.durability().dead_bytes
        assert dead == copies * sum(len(fragments[k]) for k in doomed), name

        report = store.compact()
        assert report.reclaimed_bytes == dead, name
        assert report.removed_files == copies * len(doomed), name
        assert store.durability().dead_bytes == 0, name
        got = {k: store.get(*k) for k in store.keys()}
        assert got == survivors, f"{name}: compaction disturbed live data"
        store.close()

        reopened = open_store(url)
        _assert_same_index(reopened, survivors, f"{name}: {url}")
        if survivors:
            assert reopened.get_many(list(survivors)) == survivors, name
        reopened.close()


class TestDurabilityOverURLSchemes:
    def test_fsync_url_param_round_trips(self, tmp_path):
        """``?fsync=`` is honored by file://, sharded://, and tiered://."""
        urls = [
            f"file://{tmp_path / 'f'}?fsync=off",
            f"sharded://{tmp_path / 's'}?fanout=4&fsync=always",
            (
                f"tiered://{tmp_path / 'tf'}?fsync=off"
                f"&slow=sharded://{tmp_path / 'ts'}"
            ),
        ]
        for url in urls:
            store = open_store(url)
            store.put("v", "s0", b"payload")
            store.close()
            reopened = open_store(url)
            assert reopened.get("v", "s0") == b"payload", url
            reopened.close()

    def test_fsync_rejects_unknown_mode(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            open_store(f"file://{tmp_path / 'f'}?fsync=sometimes")

    def test_http_delete_and_server_side_compaction(self, tmp_path):
        """Tombstones and compaction work through the HTTP scheme."""
        disk = ShardedDiskStore(str(tmp_path / "ar"), fanout=4)
        with HTTPFragmentServer(disk) as server:
            client = open_store(server.url)
            client.put_many([("v", f"s{i}", bytes([i]) * 8) for i in range(4)])
            client.delete("v", "s0")
            client.delete("v", "s1")
            with pytest.raises(KeyError):
                client.get("v", "s0")
            assert client.durability().dead_bytes == 16
            report = client.compact()  # runs on the server's store
            assert report.reclaimed_bytes == 16
            assert report.removed_files == 2
            assert client.durability().dead_bytes == 0
            client.close()
        # deletions and compaction landed in the disk store underneath
        reopened = ShardedDiskStore(str(tmp_path / "ar"), fanout=4)
        assert set(reopened.keys()) == {("v", "s2"), ("v", "s3")}
        reopened.close()

    def test_tiered_compact_dead_url_param(self, tmp_path):
        """``?compact_dead=`` arms background compaction per cycle."""
        url = (
            f"tiered://{tmp_path / 'fast'}?compact_dead=1"
            f"&slow=file://{tmp_path / 'slow'}"
        )
        store = open_store(url)
        assert store.transfer.compact_dead_bytes == 1
        store.put("v", "s0", b"x" * 64)
        store.put("v", "s1", b"y" * 64)
        store.delete("v", "s0")
        assert store.durability().dead_bytes > 0
        cycle = store.transfer.run_once()
        assert cycle["reclaimed_bytes"] > 0
        assert store.durability().dead_bytes == 0
        store.close()

    def test_tiered_compact_dead_zero_disables(self, tmp_path):
        url = (
            f"tiered://{tmp_path / 'fast'}?compact_dead=0"
            f"&slow=file://{tmp_path / 'slow'}"
        )
        store = open_store(url)
        assert store.transfer.compact_dead_bytes is None
        store.put("v", "s0", b"x" * 64)
        store.delete("v", "s0")
        cycle = store.transfer.run_once()
        assert cycle["reclaimed_bytes"] == 0
        assert store.durability().dead_bytes > 0  # left for explicit compact()
        store.close()

    def test_snapshot_between_schemes(self, tmp_path):
        """snapshot/restore copy verbatim across any two URL schemes."""
        from repro.storage.snapshot import restore_store, snapshot_store

        src_url = f"file://{tmp_path / 'src'}"
        dst_url = f"sharded://{tmp_path / 'dst'}?fanout=4"
        src = open_store(src_url)
        fragments = {("v", f"s{i}"): bytes([i]) * (i + 1) for i in range(6)}
        src.put_many([(v, s, p) for (v, s), p in fragments.items()])
        src.close()

        report = snapshot_store(src_url, dst_url)
        assert report.fragments == 6 and not report.mismatched
        dst = open_store(dst_url)
        assert dst.get_many(list(fragments)) == fragments
        dst.put("extra", "junk", b"zzz")  # diverge the destination
        dst.close()

        report = restore_store(src_url, dst_url)
        assert report.deleted == 1
        dst = open_store(dst_url)
        assert set(dst.keys()) == set(fragments)
        dst.close()


class TestLayoutAutoDetection:
    def test_plain_path_reopens_sharded_layout(self, tmp_path):
        url = f"sharded://{tmp_path / 'ar'}?fanout=4"
        store = open_store(url)
        store.put("v", "s0", b"x")
        # a bare path must find the sharded layout (marker + index)
        reopened = open_store(str(tmp_path / "ar"))
        assert isinstance(reopened, ShardedDiskStore)
        assert reopened.fanout == 4
        assert reopened.get("v", "s0") == b"x"

    def test_plain_path_reopens_flat_layout(self, tmp_path):
        store = open_store(str(tmp_path / "ar"))
        assert isinstance(store, DiskFragmentStore)
        store.put("v", "s0", b"x")
        assert isinstance(open_store(f"file://{tmp_path / 'ar'}"), DiskFragmentStore)

    def test_tiered_reopen_autodetects_fast_layout(self, tmp_path):
        url = (
            f"tiered://{tmp_path / 'fast'}?slow=sharded://{tmp_path / 'slow'}"
            f"&promote_after=1"
        )
        store = open_store(url)
        store.put("v", "s0", b"payload")
        store.get("v", "s0")
        store.transfer.run_once()
        store.close()
        reopened = open_store(url)
        assert isinstance(reopened, TieredStore)
        assert isinstance(reopened.slow, ShardedDiskStore)
        assert reopened.resident("v", "s0")  # fast-tier residency recovered
        assert reopened.get("v", "s0") == b"payload"
        assert reopened.stats().fast_hits == 1
        reopened.close()


class TestHTTPScheme:
    def test_http_reopen_sees_identical_index_with_reset_counters(self, tmp_path):
        disk = ShardedDiskStore(str(tmp_path / "ar"))
        fragments = {("v", f"s{i}"): bytes([i]) * (i + 1) for i in range(5)}
        with HTTPFragmentServer(disk) as server:
            first = open_store(server.url)
            assert isinstance(first, HTTPFragmentStore)
            for (var, seg), payload in fragments.items():
                first.put(var, seg, payload)
            first.get_many(list(fragments))
            assert first.reads == 5
            first.close()

            reopened = open_store(server.url)
            _assert_same_index(reopened, fragments, server.url)
            assert reopened.get_many(list(fragments)) == fragments
            reopened.close()


class TestClusterScheme:
    """``cluster://`` round-trips: one namespace over N HTTP nodes."""

    @pytest.fixture()
    def nodes(self, tmp_path):
        disks = [
            ShardedDiskStore(str(tmp_path / f"n{i}"), fanout=4) for i in range(3)
        ]
        servers = [HTTPFragmentServer(disk) for disk in disks]
        for server in servers:
            server.start()
        yield tmp_path, servers
        for server in servers:
            server.stop()
        for disk in disks:
            disk.close()

    @staticmethod
    def _url(servers, **params):
        hosts = ",".join("%s:%d" % server.address for server in servers)
        params.setdefault("replicas", 2)
        params.setdefault("vnodes", 32)
        query = "&".join(f"{k}={v}" for k, v in sorted(params.items()))
        return f"cluster://{hosts}?{query}"

    def test_cluster_reopen_sees_identical_index_with_reset_counters(self, nodes):
        _, servers = nodes
        url = self._url(servers)
        fragments = {("v", f"s{i}"): bytes([i]) * (i + 1) for i in range(8)}

        first = open_store(url)
        assert isinstance(first, ClusterFragmentStore)
        assert first.replicas == 2
        first.put_many([(v, s, p) for (v, s), p in fragments.items()])
        assert first.get_many(list(fragments)) == fragments
        assert first.reads == len(fragments)
        first.close()

        # the same URL reopens onto the same nodes: identical union
        # index (replicas deduplicated), counters reset
        reopened = open_store(url)
        _assert_same_index(reopened, fragments, url)
        assert reopened.get_many(list(fragments)) == fragments
        reopened.close()

    def test_cluster_url_params_round_trip(self, nodes):
        _, servers = nodes
        store = open_store(self._url(servers, replicas=3, vnodes=16))
        assert store.replicas == 3
        snapshot = store.stats()
        assert snapshot.vnodes == 16 and snapshot.nodes == 3
        store.close()

    def test_cluster_delete_compact_reopen_lands_on_every_node(self, nodes):
        tmp_path, servers = nodes
        url = self._url(servers)
        fragments = {("v", f"s{i}"): bytes([i + 1]) * 16 for i in range(10)}
        doomed = [("v", "s0"), ("v", "s1")]
        survivors = {k: v for k, v in fragments.items() if k not in doomed}

        store = open_store(url)
        store.put_many([(v, s, p) for (v, s), p in fragments.items()])
        for var, seg in doomed:
            store.delete(var, seg)
        with pytest.raises(KeyError):
            store.get("v", "s0")
        # K=2 replication: every doomed fragment left dead bytes on two
        # nodes, and the merged compaction report reclaims both copies
        assert store.durability().dead_bytes == 2 * sum(
            len(fragments[k]) for k in doomed
        )
        report = store.compact()
        assert report.removed_files == 2 * len(doomed)
        assert store.durability().dead_bytes == 0
        store.close()

        reopened = open_store(url)
        _assert_same_index(reopened, survivors, url)
        assert reopened.get_many(list(survivors)) == survivors
        reopened.close()

        # the deletions and compaction landed in each node's disk store
        for i in range(3):
            disk = ShardedDiskStore(str(tmp_path / f"n{i}"), fanout=4)
            assert not set(disk.keys()) & set(doomed), f"node {i}"
            assert disk.durability().dead_bytes == 0, f"node {i}"
            disk.close()

    def test_cluster_url_requires_nodes(self):
        with pytest.raises(ValueError, match="cluster"):
            open_store("cluster://")


class TestMemoryScheme:
    def test_memory_is_fresh_and_empty_each_open(self):
        store = open_store("memory://")
        assert isinstance(store, FragmentStore)
        assert store.keys() == [] and store.reads == 0
        store.put("v", "s", b"x")
        again = open_store("memory://")  # documented: never persists
        assert again.keys() == []


class TestURLParsing:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            open_store("ftp://somewhere/archive")

    def test_windows_style_drive_is_a_path(self):
        scheme, rest = split_store_url("C://not-a-scheme")
        assert scheme is None

    def test_split_store_url(self):
        assert split_store_url("/plain/path") == (None, "/plain/path")
        assert split_store_url("sharded:///a/b?fanout=2") == (
            "sharded",
            "/a/b?fanout=2",
        )

    def test_parse_bytes_suffixes(self):
        assert parse_bytes("1024") == 1024
        assert parse_bytes("1k") == 1024
        assert parse_bytes("2M") == 2 << 20
        assert parse_bytes("1.5g") == int(1.5 * (1 << 30))
        with pytest.raises(ValueError):
            parse_bytes("lots")
