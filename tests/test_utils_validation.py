"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    as_float_array,
    check_error_bound,
    check_positive,
    check_shape_match,
    require,
)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_on_false(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestAsFloatArray:
    def test_converts_ints(self):
        out = as_float_array([1, 2, 3])
        assert out.dtype == np.float64
        np.testing.assert_allclose(out, [1.0, 2.0, 3.0])

    def test_preserves_float64_without_copy(self):
        a = np.arange(4.0)
        out = as_float_array(a)
        assert out.base is a or out is a

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            as_float_array(np.zeros(0))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            as_float_array([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            as_float_array([np.inf])

    def test_makes_contiguous(self):
        a = np.arange(16.0).reshape(4, 4)[:, ::2]
        out = as_float_array(a)
        assert out.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(out, a)

    def test_float32_upcast(self):
        out = as_float_array(np.ones(3, dtype=np.float32))
        assert out.dtype == np.float64


class TestCheckErrorBound:
    @pytest.mark.parametrize("bad", [0.0, -1.0, np.inf, np.nan])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_error_bound(bad)

    def test_accepts_positive(self):
        assert check_error_bound(1e-6) == 1e-6


class TestCheckPositive:
    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0.0)

    def test_accepts(self):
        assert check_positive(2.5) == 2.5


class TestShapeMatch:
    def test_match(self):
        check_shape_match(np.zeros((2, 3)), np.ones((2, 3)))

    def test_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            check_shape_match(np.zeros(2), np.zeros(3))
