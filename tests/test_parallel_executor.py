"""Kernel executor, shared-memory arena, and zero-copy path tests.

Three guarantees are pinned here:

* **Bit-exactness** — every backend (serial/thread/process) produces
  output identical to the scalar references in
  :mod:`repro.encoding.reference`, including the classic bit-twiddling
  edge cases: all-zero planes, single-symbol alphabets, and inputs deep
  enough to trigger the 16-bit Huffman length limiter.
* **Zero-copy** — a payload written into a slab on fetch is read in
  place by the cache (memoryview), the handle chain, and the worker
  process: ``bytes_written`` never exceeds one copy of the payload and
  the served view aliases the slab buffer.
* **Fault tolerance** — a killed worker degrades the executor to inline
  execution without hanging, losing a task, or changing any result.
"""

import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.encoding.bitplane import BitplaneDecoder, BitplaneEncoder
from repro.encoding.reference import (
    ReferenceBitplaneDecoder,
    reference_bitplane_encode,
    reference_huffman_decode,
    reference_huffman_encode,
)
from repro.parallel.executor import (
    ArenaLookupError,
    ArenaRef,
    ProcessKernelExecutor,
    SerialKernelExecutor,
    SlabArena,
    ThreadKernelExecutor,
    as_completed_tasks,
    make_executor,
    merge_magnitude_bytes,
)
from repro.storage.cache import CachingFragmentStore, FragmentCache


@pytest.fixture(scope="module", params=["serial", "thread", "process"])
def executor(request):
    made = {
        "serial": lambda: SerialKernelExecutor(),
        "thread": lambda: ThreadKernelExecutor(workers=2),
        "process": lambda: ProcessKernelExecutor(workers=2),
    }[request.param]()
    if request.param == "process" and made.broken:
        made.close()
        pytest.skip("no process pool available on this platform")
    yield made
    made.close()


# ---------------------------------------------------------------------------
# SlabArena
# ---------------------------------------------------------------------------


class TestSlabArena:
    def test_write_view_roundtrip(self):
        arena = SlabArena(slab_bytes=1 << 16)
        payload = bytes(range(256)) * 20
        ref = arena.write(payload)
        assert isinstance(ref, ArenaRef) and ref.length == len(payload)
        view = arena.view(ref)
        assert view.readonly and bytes(view) == payload
        assert arena.charged_bytes(ref) == len(payload)
        assert arena.resident_bytes == len(payload)
        arena.close()

    def test_refcounting_reclaims_on_last_decref(self):
        arena = SlabArena(slab_bytes=1 << 12)
        ref = arena.write(b"a" * 4096)  # fills one slab exactly
        arena.incref(ref)
        arena.write(b"b" * 4096)  # seals the first slab
        arena.decref(ref)
        assert bytes(arena.view(ref)) == b"a" * 4096  # one ref still live
        arena.decref(ref)
        with pytest.raises(ArenaLookupError):
            arena.view(ref)
        assert arena.resident_bytes == 4096  # only the second entry remains
        arena.close()

    def test_live_view_makes_zombie_not_invalid(self):
        arena = SlabArena(slab_bytes=1 << 12)
        ref = arena.write(b"z" * 4096)
        view = arena.view(ref)
        arena.write(b"y" * 4096)  # seals the z-slab
        arena.decref(ref)  # reclaim while `view` still exports the buffer
        assert arena.stats().zombie_slabs == 1
        assert bytes(view) == b"z" * 4096  # the view survived reclamation
        del view
        arena.write(b"x" * 4096)  # any arena op sweeps the zombie list
        assert arena.stats().zombie_slabs == 0
        arena.close()

    def test_oversized_payload_gets_dedicated_slab(self):
        arena = SlabArena(slab_bytes=1 << 12)
        big = os.urandom(3 << 12)
        ref = arena.write(big)
        assert bytes(arena.view(ref)) == big
        assert arena.stats().allocated_bytes >= len(big)
        arena.close()

    def test_stale_ref_after_close_raises(self):
        arena = SlabArena()
        ref = arena.write(b"q" * 5000)
        arena.close()
        with pytest.raises(ArenaLookupError):
            arena.view(ref)
        with pytest.raises(ArenaLookupError):
            arena.incref(ref)


# ---------------------------------------------------------------------------
# Bit-exactness vs. encoding/reference.py, on every backend
# ---------------------------------------------------------------------------

_coeff = st.one_of(
    st.floats(-1e30, 1e30, allow_nan=False, allow_infinity=False),
    st.sampled_from([0.0, -0.0, 2.0**-999, -(2.0**-1001), 1e300]),
)


class TestBackendsBitExact:
    @given(
        hnp.arrays(np.float64, st.integers(1, 160), elements=_coeff),
        st.integers(1, 40),
    )
    @settings(max_examples=25, deadline=None)
    def test_bitplane_accumulate_matches_reference(self, executor, coeffs, num_planes):
        stream = BitplaneEncoder(num_planes=num_planes).encode(coeffs)
        dec_ref = ReferenceBitplaneDecoder(
            reference_bitplane_encode(coeffs, num_planes=num_planes)
        )
        dec_ref.advance_to(num_planes)
        # drive the kernel directly (streams this small would not offload);
        # all-zero inputs encode fewer stored planes than requested
        available = len(stream.plane_segments)
        dec = BitplaneDecoder(stream)
        if available == 0:
            dec.advance_to(num_planes)
            assert np.array_equal(dec.reconstruct(), dec_ref.reconstruct())
            return
        dec.advance_to(1)  # signs + plane 0 inline; the rest via the kernel
        items = [(p, stream.plane_segments[p]) for p in range(1, available)]
        half = max(1, len(items) // 2)
        for chunk in (items[:half], items[half:]):
            if not chunk:
                continue
            payload = executor.run(
                "bitplane_accumulate", chunk, stream.num_planes, stream.size, "zlib"
            )
            merge_magnitude_bytes(dec._mag_bytes, payload)
        dec.planes_consumed = available
        rec = dec.reconstruct()
        rec_ref = dec_ref.reconstruct()
        assert np.array_equal(rec, rec_ref)
        assert np.array_equal(np.signbit(rec), np.signbit(rec_ref))

    def test_all_zero_planes(self, executor):
        # every stored plane of an all-zero field is an all-zero bitmap
        coeffs = np.zeros(512)
        coeffs[0] = 1.0  # one nonzero so planes are actually stored
        stream = BitplaneEncoder(num_planes=24).encode(coeffs)
        available = len(stream.plane_segments)
        assert available > 1
        dec = BitplaneDecoder(stream)
        dec.advance_to(1)  # signs + plane 0 inline
        items = [(p, stream.plane_segments[p]) for p in range(1, available)]
        payload = executor.run(
            "bitplane_accumulate", items, stream.num_planes, stream.size, "zlib"
        )
        merge_magnitude_bytes(dec._mag_bytes, payload)
        dec.planes_consumed = available
        rec = dec.reconstruct()
        ref = ReferenceBitplaneDecoder(
            reference_bitplane_encode(coeffs, num_planes=24)
        )
        ref.advance_to(24)
        assert np.array_equal(rec, ref.reconstruct())

    @given(st.lists(st.integers(-(2**40), 2**40), min_size=1, max_size=1500))
    @settings(max_examples=20, deadline=None)
    def test_huffman_roundtrip_matches_reference(self, executor, values):
        # RHC2 (codec) and RHC1 (reference) containers differ by design;
        # equivalence is payload-identity vs. the in-process codec plus
        # decoded-symbol identity vs. the RHC1 reference roundtrip
        from repro.encoding.huffman import HuffmanCodec

        sym = np.array(values, dtype=np.int64)
        payload = executor.run("huffman_encode", sym)
        assert payload == HuffmanCodec().encode(sym)
        assert np.array_equal(executor.run("huffman_decode", payload), sym)
        assert np.array_equal(
            reference_huffman_decode(reference_huffman_encode(sym)), sym
        )

    def test_huffman_single_symbol_alphabet(self, executor):
        from repro.encoding.huffman import HuffmanCodec

        for n in (1, 7, 1024):
            sym = np.full(n, -42, dtype=np.int64)
            payload = executor.run("huffman_encode", sym)
            assert payload == HuffmanCodec().encode(sym)
            assert np.array_equal(executor.run("huffman_decode", payload), sym)
            assert np.array_equal(
                reference_huffman_decode(reference_huffman_encode(sym)), sym
            )

    def test_huffman_16_bit_length_limited_codes(self, executor):
        from repro.encoding.huffman import HuffmanCodec

        # Fibonacci counts build the deepest trees, forcing the limiter
        counts = [1, 1]
        while len(counts) < 28:
            counts.append(counts[-1] + counts[-2])
        rng = np.random.default_rng(0)
        sym = rng.permutation(
            np.repeat(np.arange(len(counts)), counts)
        ).astype(np.int64)
        payload = executor.run("huffman_encode", sym)
        assert payload == HuffmanCodec().encode(sym)
        assert np.array_equal(executor.run("huffman_decode", payload), sym)
        assert np.array_equal(
            reference_huffman_decode(reference_huffman_encode(sym)), sym
        )

    def test_decoder_offload_path_matches_inline(self, executor):
        # large enough to clear OFFLOAD_MIN_ELEMENTS so use_executor offloads
        rng = np.random.default_rng(3)
        coeffs = rng.standard_normal(6000)
        stream = BitplaneEncoder(num_planes=32).encode(coeffs)
        inline = BitplaneDecoder(stream)
        inline.advance_to(20)
        offloaded = BitplaneDecoder(stream)
        offloaded.use_executor(executor)
        offloaded.advance_to(20)
        assert np.array_equal(inline.reconstruct(), offloaded.reconstruct())
        inline.advance_to(32)
        offloaded.advance_to(32)
        assert np.array_equal(inline.reconstruct(), offloaded.reconstruct())


# ---------------------------------------------------------------------------
# Zero-copy: fetch -> cache -> handle -> worker reads the same slab bytes
# ---------------------------------------------------------------------------


def _buffer_address(view) -> int:
    return np.frombuffer(view, dtype=np.uint8).__array_interface__["data"][0]


class TestZeroCopy:
    def test_cache_serves_aliasing_views_and_single_write(self):
        arena = SlabArena(slab_bytes=1 << 16)
        cache = FragmentCache(capacity_bytes=1 << 20, arena=arena)
        payload = bytes(range(256)) * 32  # 8 KiB, above the arena floor
        served = cache.get_or_load("v", "s", lambda: payload)
        assert isinstance(served, memoryview) and served.readonly
        ref = cache.handle("v", "s")
        assert isinstance(ref, ArenaRef)
        # the payload was written into shared memory exactly once, and
        # every consumer view aliases that one slab range
        assert arena.stats().bytes_written == len(payload)
        assert _buffer_address(served) == _buffer_address(arena.view(ref))
        hit = cache.get_or_load("v", "s", lambda: pytest.fail("must hit"))
        assert _buffer_address(hit) == _buffer_address(served)
        arena.close()

    def test_worker_reads_slab_in_place(self):
        arena = SlabArena(slab_bytes=1 << 16)
        cache = FragmentCache(capacity_bytes=1 << 20, arena=arena)
        payload = os.urandom(8192)
        cache.get_or_load("v", "s", lambda: payload)
        ref = cache.handle("v", "s")
        ex = ProcessKernelExecutor(workers=1, arena=arena)
        if ex.broken:
            ex.close()
            pytest.skip("no process pool available")
        echoed_ref, length, head, pid = ex.run("slab_probe", ref)
        assert echoed_ref == ref  # the 24-byte handle crossed, not the bytes
        assert length == len(payload) and head == payload[:16]
        assert pid != os.getpid()
        # still one copy: the probe pickled no payload back into a slab
        assert arena.stats().bytes_written == len(payload)
        ex.close()

    def test_stale_handle_raises_lookup_error_in_worker(self):
        arena = SlabArena(slab_bytes=1 << 16)
        ex = ProcessKernelExecutor(workers=1, arena=arena)
        if ex.broken:
            ex.close()
            pytest.skip("no process pool available")
        stale = ArenaRef(slab="psm_does_not_exist", offset=0, length=16)
        with pytest.raises(ArenaLookupError):
            ex.run("slab_probe", stale)
        ex.close()


# ---------------------------------------------------------------------------
# Fault injection: dead workers degrade, never hang or lose a round
# ---------------------------------------------------------------------------


def _small_archive(tmp_path, shape=(64, 64)):
    from repro.compressors.base import make_refactorer
    from repro.core.ingest import ingest_dataset
    from repro.storage.store import open_store

    rng = np.random.default_rng(11)
    variables = {"p": rng.standard_normal(shape) * 10 + 100}
    store = open_store("memory://")
    ingest_dataset(store, variables, make_refactorer("pmgard_hb"))
    return store, variables


def _retrieve(store, variables, executor):
    from repro.core.qois import qoi_from_spec
    from repro.core.retrieval import QoIRequest, QoIRetriever
    from repro.storage.archive import Archive

    archive = Archive(store)
    refactored = {n: archive.load(n, lazy=True) for n in variables}
    ranges = {n: float(v.max() - v.min()) for n, v in variables.items()}
    retriever = QoIRetriever(refactored, ranges, executor=executor)
    request = QoIRequest("p", qoi_from_spec("identity", ["p"]), 1e-6, 1.0)
    return retriever.retrieve([request])


class TestWorkerFaults:
    def test_killed_workers_replay_inline_without_losing_tasks(self):
        ex = ProcessKernelExecutor(workers=2)
        if ex.broken:
            ex.close()
            pytest.skip("no process pool available")
        assert ex.run("ping", 1) == 1  # pool demonstrably alive
        for pid in ex.worker_pids():
            os.kill(pid, signal.SIGKILL)
        tasks = [ex.submit("ping", i) for i in range(16)]
        assert [t.result() for t in tasks] == list(range(16))
        assert ex.broken
        assert ex.stats().fallbacks > 0
        # permanently degraded: later submits run inline and still work
        assert ex.run("ping", 99) == 99
        assert sorted(
            t.result() for t in as_completed_tasks([ex.submit("ping", i) for i in range(4)])
        ) == [0, 1, 2, 3]
        ex.close()

    def test_retrieval_with_dead_pool_is_bit_identical(self, tmp_path):
        store, variables = _small_archive(tmp_path, shape=(128, 128))
        baseline = _retrieve(store, variables, None)
        ex = ProcessKernelExecutor(workers=2)
        if ex.broken:
            ex.close()
            pytest.skip("no process pool available")
        for pid in ex.worker_pids():
            os.kill(pid, signal.SIGKILL)
        degraded = _retrieve(store, variables, ex)
        assert np.array_equal(baseline.data["p"], degraded.data["p"])
        assert baseline.rounds == degraded.rounds
        assert baseline.total_bytes == degraded.total_bytes
        ex.close()

    def test_genuine_kernel_error_propagates(self, executor):
        task = executor.submit("huffman_decode", b"not a huffman payload")
        with pytest.raises(Exception) as excinfo:
            task.result()
        assert not isinstance(excinfo.value, ArenaLookupError)


# ---------------------------------------------------------------------------
# make_executor resolution and service stats surfacing
# ---------------------------------------------------------------------------


class TestMakeExecutor:
    def test_spec_strings_and_passthrough(self):
        assert make_executor("off") is None
        assert make_executor("none") is None
        ex = SerialKernelExecutor()
        assert make_executor(ex) is ex
        shared = make_executor("serial")
        assert make_executor("serial") is shared  # process-wide singleton
        with pytest.raises(ValueError):
            make_executor("gpu")

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert make_executor(None) is None
        monkeypatch.setenv("REPRO_EXECUTOR", "serial")
        assert make_executor(None).backend == "serial"

    def test_service_surfaces_breakdown_and_executor_stats(self):
        from dataclasses import asdict

        from repro.core.qois import qoi_from_spec
        from repro.core.retrieval import QoIRequest
        from repro.service.service import RetrievalService
        from repro.storage.store import open_store
        from repro.compressors.base import make_refactorer
        from repro.core.ingest import ingest_dataset

        rng = np.random.default_rng(5)
        variables = {"p": rng.standard_normal((64, 64)) + 4.0}
        store = open_store("memory://")
        ingest_dataset(store, variables, make_refactorer("pmgard_hb"))
        ranges = {"p": float(variables["p"].max() - variables["p"].min())}
        service = RetrievalService(store, value_ranges=ranges, executor="serial")
        with service.open_session() as session:
            request = QoIRequest("p", qoi_from_spec("identity", ["p"]), 1e-4, 1.0)
            session.retrieve([request])
        stats = service.stats()
        assert stats.retrieval_rounds > 0
        assert stats.compute_seconds + stats.io_wait_seconds > 0
        assert stats.executor is not None
        assert stats.executor.backend == "serial"
        # the wire format (dataclasses.asdict) carries the new fields
        wire = asdict(stats)
        assert "io_wait_seconds" in wire and wire["executor"]["tasks"] >= 0
