"""Tests for the archive/info/retrieve command-line interface."""

import json
import os

import numpy as np
import pytest

from repro.cli import build_qoi, main


@pytest.fixture
def npy_fields(tmp_path):
    rng = np.random.default_rng(0)
    t = np.linspace(0, 10, 2000)
    fields = {
        "vx": 80 * np.sin(t) + rng.normal(size=t.size),
        "vy": 40 * np.cos(t) + rng.normal(size=t.size),
        "vz": 10 * np.sin(2 * t) + rng.normal(size=t.size),
    }
    paths = {}
    for name, data in fields.items():
        p = tmp_path / f"{name}.npy"
        np.save(p, data)
        paths[name] = str(p)
    return fields, paths, tmp_path


class TestBuildQoI:
    def test_identity(self):
        qoi = build_qoi("identity", ["x"])
        assert qoi.variables() == frozenset({"x"})

    def test_vtot(self):
        qoi = build_qoi("vtot", ["a", "b", "c"])
        assert qoi.variables() == frozenset({"a", "b", "c"})

    def test_product(self):
        qoi = build_qoi("product", ["a", "b"])
        assert qoi.variables() == frozenset({"a", "b"})

    @pytest.mark.parametrize("spec,fields", [
        ("identity", ["a", "b"]),
        ("vtot", ["a"]),
        ("temperature", ["a"]),
        ("mach", ["a", "b"]),
        ("product", ["a"]),
        ("fourier", ["a"]),
    ])
    def test_invalid_specs(self, spec, fields):
        with pytest.raises(ValueError):
            build_qoi(spec, fields)


class TestEndToEnd:
    def test_archive_info_retrieve(self, npy_fields, capsys):
        fields, paths, tmp_path = npy_fields
        archive_dir = str(tmp_path / "archive")
        out_dir = str(tmp_path / "out")

        rc = main([
            "archive", "--out", archive_dir, "--method", "pmgard_hb",
            *(f"{n}={p}" for n, p in paths.items()),
        ])
        assert rc == 0
        assert "archived 3 variable(s)" in capsys.readouterr().out

        rc = main(["info", "--archive", archive_dir])
        out = capsys.readouterr().out
        assert rc == 0
        for name in fields:
            assert name in out

        truth = np.sqrt(sum(fields[k] ** 2 for k in ("vx", "vy", "vz")))
        qrange = float(truth.max() - truth.min())
        rc = main([
            "retrieve", "--archive", archive_dir,
            "--qoi", "vtot", "--fields", "vx,vy,vz",
            "--tolerance", "1e-4", "--qoi-range", str(qrange),
            "--out", out_dir,
        ])
        assert rc == 0

        report = json.load(open(os.path.join(out_dir, "report.json")))
        assert report["satisfied"] is True
        assert report["estimated_error"] <= 1e-4 * qrange
        rec = np.sqrt(sum(
            np.load(os.path.join(out_dir, f"{k}.npy")) ** 2 for k in ("vx", "vy", "vz")
        ))
        assert np.max(np.abs(rec - truth)) <= 1e-4 * qrange * (1 + 1e-9)

    def test_retrieve_missing_field(self, npy_fields):
        fields, paths, tmp_path = npy_fields
        archive_dir = str(tmp_path / "archive")
        main(["archive", "--out", archive_dir, f"vx={paths['vx']}"])
        with pytest.raises(SystemExit):
            main([
                "retrieve", "--archive", archive_dir, "--qoi", "vtot",
                "--fields", "vx,vy,vz", "--tolerance", "1e-3",
                "--out", str(tmp_path / "o"),
            ])

    def test_archive_bad_pair(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["archive", "--out", str(tmp_path / "a"), "not-a-pair"])

    def test_identity_roundtrip(self, npy_fields, capsys):
        fields, paths, tmp_path = npy_fields
        archive_dir = str(tmp_path / "archive2")
        out_dir = str(tmp_path / "out2")
        main(["archive", "--out", archive_dir, "--method", "psz3_delta",
              f"vx={paths['vx']}"])
        rc = main([
            "retrieve", "--archive", archive_dir, "--qoi", "identity",
            "--fields", "vx", "--tolerance", "1e-6",
            "--qoi-range", str(float(np.ptp(fields["vx"]))),
            "--out", out_dir,
        ])
        assert rc == 0
        rec = np.load(os.path.join(out_dir, "vx.npy"))
        assert np.max(np.abs(rec - fields["vx"])) <= 1e-6 * np.ptp(fields["vx"]) * (1 + 1e-9)

    def test_unsatisfiable_returns_2(self, npy_fields):
        fields, paths, tmp_path = npy_fields
        archive_dir = str(tmp_path / "archive3")
        main(["archive", "--out", archive_dir, "--method", "pmgard_hb",
              f"vx={paths['vx']}"])
        rc = main([
            "retrieve", "--archive", archive_dir, "--qoi", "identity",
            "--fields", "vx", "--tolerance", "1e-30",
            "--out", str(tmp_path / "o3"),
        ])
        assert rc == 2
