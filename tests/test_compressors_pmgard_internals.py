"""White-box tests for the PMGARD compressors (plane planning, kappa)."""

import numpy as np
import pytest

from repro.compressors.pmgard import PMGARDReader, PMGARDRefactorer


def field(n=2000, seed=0):
    rng = np.random.default_rng(seed)
    return np.sin(np.linspace(0, 12, n)) + 0.05 * rng.normal(size=n)


class TestRefactoring:
    def test_streams_per_level(self):
        ref = PMGARDRefactorer(basis="hierarchical").refactor(field())
        assert len(ref.streams) == ref.decomp.num_levels
        assert ref.total_bytes > 0

    def test_kappa_matches_transform(self):
        for basis in ("hierarchical", "orthogonal"):
            ref = PMGARDRefactorer(basis=basis).refactor(field())
            assert ref.kappa == ref.transform.kappa(1)

    def test_exact_coefficients_dropped_after_refactor(self):
        ref = PMGARDRefactorer().refactor(field())
        assert all(c is None for c in ref.decomp.coefficients)

    def test_num_planes_bounds_floor(self):
        data = field()
        shallow = PMGARDRefactorer(num_planes=8).refactor(data)
        deep = PMGARDRefactorer(num_planes=56).refactor(data)
        r_shallow = shallow.reader()
        r_deep = deep.reader()
        r_shallow.request(1e-300)
        r_deep.request(1e-300)
        assert r_deep.current_error_bound < r_shallow.current_error_bound


class TestReaderPlanning:
    def test_greedy_peels_dominant_level(self):
        ref = PMGARDRefactorer(basis="hierarchical").refactor(field())
        reader = ref.reader()
        reader.request(1e-2)
        consumed = [d.planes_consumed for d in reader._decoders]
        # something was fetched, and not everything
        assert any(k > 0 for k in consumed)
        assert any(k < s.num_planes for k, s in zip(consumed, ref.streams))

    def test_bound_is_sum_of_level_bounds(self):
        ref = PMGARDRefactorer(basis="hierarchical").refactor(field())
        reader = ref.reader()
        reader.request(1e-3)
        total = sum(
            ref.kappa * d.error_bound for d in reader._decoders
        )
        assert reader.current_error_bound == pytest.approx(total)

    def test_coarse_fetched_once(self):
        ref = PMGARDRefactorer().refactor(field())
        reader = ref.reader()
        reader.request(1e-1)
        b1 = reader.bytes_retrieved
        assert b1 >= len(ref.coarse_payload)
        reader.request(1e-2)
        # the coarse payload is not re-counted
        extra = reader.bytes_retrieved - b1
        assert extra <= sum(s.total_bytes for s in ref.streams)

    def test_reconstruct_cached_until_dirty(self):
        ref = PMGARDRefactorer().refactor(field())
        reader = ref.reader()
        reader.request(1e-2)
        a = reader.reconstruct()
        b = reader.reconstruct()
        assert a is b  # cached
        reader.request(1e-4)
        c = reader.reconstruct()
        assert c is not b

    def test_2d_field(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(40, 30)).cumsum(axis=0).cumsum(axis=1)
        ref = PMGARDRefactorer(basis="orthogonal").refactor(data)
        reader = ref.reader()
        rec = reader.request(1e-3 * np.ptp(data))
        assert np.max(np.abs(rec - data)) <= reader.current_error_bound * (1 + 1e-9)


class TestPlanTable:
    def test_plan_matches_greedy_reference_on_ladder(self):
        from repro.encoding.reference import reference_plane_plan

        ref = PMGARDRefactorer(basis="hierarchical", num_planes=40).refactor(field())
        reader = ref.reader()
        planned_ref = [0] * len(ref.streams)
        scale = float(np.max(np.abs(field())))
        for t in range(1, 12):
            eb = scale * 10.0 ** (-t)
            planned_ref = reference_plane_plan(ref.streams, ref.kappa, eb, planned_ref)
            assert reader._plan(eb) == planned_ref
            reader.request(eb)
            assert [d.planes_consumed for d in reader._decoders] == planned_ref

    def test_plan_table_cached_and_shared_across_readers(self):
        ref = PMGARDRefactorer().refactor(field())
        t1 = ref.plan_table()
        assert ref.plan_table() is t1
        r1, r2 = ref.reader(), ref.reader()
        r1.request(1e-3)
        r2.request(1e-3)
        assert ref.plan_table() is t1
        assert [d.planes_consumed for d in r1._decoders] == [
            d.planes_consumed for d in r2._decoders
        ]

    def test_loosening_after_tightening_fetches_nothing(self):
        ref = PMGARDRefactorer().refactor(field())
        reader = ref.reader()
        reader.request(1e-4)
        spent = reader.bytes_retrieved
        consumed = [d.planes_consumed for d in reader._decoders]
        reader.request(1e-1)  # looser bound: readers never regress
        assert reader.bytes_retrieved == spent
        assert [d.planes_consumed for d in reader._decoders] == consumed


class TestTinyInputs:
    def test_smaller_than_min_size(self):
        data = np.array([1.0, 2.0, 3.0])
        ref = PMGARDRefactorer(min_size=4).refactor(data)
        reader = ref.reader()
        rec = reader.request(1e-12)
        np.testing.assert_allclose(rec, data, atol=1e-12)
        assert reader.current_error_bound == 0.0

    def test_constant_field_costs_little(self):
        data = np.full(512, 7.25)
        ref = PMGARDRefactorer().refactor(data)
        reader = ref.reader()
        rec = reader.request(1e-12)
        np.testing.assert_allclose(rec, data, atol=1e-10)
        # all coefficient groups are zero -> only the coarse corner moves
        assert reader.bytes_retrieved == len(ref.coarse_payload)
