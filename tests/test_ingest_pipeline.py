"""Tests for the streaming ingestion engine and the batched write path.

Covers the `put_many` contract across the FragmentStore hierarchy
(counters, single-batch round trips, reopen consistency), FragmentCache
invalidation on overwrite (including the load-in-flight race), the
incremental `Archive.save` replace semantics, bit-identity of the
parallel IngestPipeline against the serial path for every archivable
compressor, and the service/CLI ingestion surfaces.
"""

import threading

import numpy as np
import pytest

from repro.compressors.base import make_refactorer
from repro.core.ingest import IngestConfig, ingest_dataset
from repro.core.qois import qoi_from_spec
from repro.core.retrieval import QoIRequest, refactor_dataset
from repro.service.service import RetrievalService
from repro.storage.archive import Archive, encode_fragments
from repro.storage.cache import CachingFragmentStore, FragmentCache
from repro.storage.remote import (
    HTTPFragmentServer,
    HTTPFragmentStore,
    InMemoryObjectBucket,
    KeyValueFragmentStore,
)
from repro.storage.store import DiskFragmentStore, FragmentStore, ShardedDiskStore
from repro.storage.tiered import TieredStore
from repro.storage.transfer import LatencyFragmentStore
from repro.utils.fragment_keys import INDEX_SEGMENT, timestep_variable

COMPRESSORS = ("psz3", "psz3_delta", "pmgard", "pmgard_hb")

BATCH = [
    ("v", "s0", b"alpha"),
    ("v", "s1", b"beta-beta"),
    ("w", "s0", b"gamma"),
]


def make_fields(shape=(14, 15), n=3, scale=40.0):
    rng = np.random.default_rng(7)
    return {
        f"v{k}": rng.standard_normal(shape) * scale + k for k in range(n)
    }


class TestPutMany:
    """The write-side mirror of get_many, across every backend."""

    def _check(self, store, reopen=None):
        store.put_many(BATCH)
        for variable, segment, payload in BATCH:
            assert store.get(variable, segment) == payload
        assert store.put_round_trips == 1
        assert store.puts == len(BATCH)
        assert store.bytes_written == sum(len(p) for _, _, p in BATCH)
        assert store.nbytes() == sum(len(p) for _, _, p in BATCH)
        assert store.segments("v") == ["s0", "s1"]
        if reopen is not None:
            again = reopen()
            for variable, segment, payload in BATCH:
                assert again.get(variable, segment) == payload
            assert again.nbytes() == store.nbytes()

    def test_memory(self):
        self._check(FragmentStore())

    def test_flat_disk(self, tmp_path):
        root = str(tmp_path / "flat")
        self._check(DiskFragmentStore(root), reopen=lambda: DiskFragmentStore(root))

    def test_sharded_disk(self, tmp_path):
        root = str(tmp_path / "sharded")
        self._check(
            ShardedDiskStore(root, fanout=8), reopen=lambda: ShardedDiskStore(root)
        )

    def test_key_value_bucket(self):
        bucket = InMemoryObjectBucket()
        store = KeyValueFragmentStore(bucket)
        before = bucket.requests
        store.put_many(BATCH)
        # the batched write cost exactly one bucket request
        assert bucket.requests == before + 1
        assert store.put_round_trips == 1 and store.puts == len(BATCH)
        for variable, segment, payload in BATCH:
            assert store.get(variable, segment) == payload

    def test_latency_store_counts_one_trip(self):
        store = LatencyFragmentStore(
            FragmentStore(), latency=0.0, write_latency=0.0
        )
        self._check(store)
        assert store.inner.put_round_trips == 1

    def test_http_roundtrip(self, tmp_path):
        inner = ShardedDiskStore(str(tmp_path / "served"), fanout=4)
        with HTTPFragmentServer(inner) as server:
            client = HTTPFragmentStore.from_url(server.url)
            client.put_many(BATCH)
            assert client.put_round_trips == 1
            assert inner.put_round_trips == 1  # one server-side batch
            got = client.get_many([(v, s) for v, s, _ in BATCH])
            assert got == {(v, s): p for v, s, p in BATCH}
            # the local index snapshot tracked the batch without a refresh
            assert client.nbytes() == sum(len(p) for _, _, p in BATCH)
            client.close()

    def test_tiered_write_through(self):
        fast, slow = FragmentStore(), FragmentStore()
        store = TieredStore(fast, slow, policy="write-through")
        store.put_many(BATCH)
        assert fast.put_round_trips == 1 and slow.put_round_trips == 1
        for variable, segment, payload in BATCH:
            assert slow.get(variable, segment) == payload
            assert store.resident(variable, segment)

    def test_tiered_write_back_flushes_in_one_batch(self):
        fast, slow = FragmentStore(), FragmentStore()
        store = TieredStore(fast, slow, policy="write-back")
        store.put_many(BATCH)
        assert slow.puts == 0  # nothing durable on the slow tier yet
        assert store.stats().dirty_fragments == len(BATCH)
        assert store.flush() == len(BATCH)
        assert slow.put_round_trips == 1  # the whole dirty set, coalesced
        for variable, segment, payload in BATCH:
            assert slow.get(variable, segment) == payload

    def test_caching_adapter_invalidates_batch(self):
        inner = FragmentStore()
        store = CachingFragmentStore(inner, FragmentCache(1 << 20))
        store.put_many(BATCH)
        assert inner.put_round_trips == 1
        assert store.get("v", "s0") == b"alpha"  # now cached
        store.put_many([("v", "s0", b"ALPHA2")])
        assert store.get("v", "s0") == b"ALPHA2"

    def test_rejects_non_bytes_without_partial_write(self):
        store = FragmentStore()
        with pytest.raises(TypeError):
            store.put_many([("v", "s0", b"ok"), ("v", "s1", 123)])
        assert not store.has("v", "s0")  # validation precedes any write

    def test_duplicate_key_last_write_wins(self, tmp_path):
        root = str(tmp_path / "dup")
        store = DiskFragmentStore(root)
        store.put_many([("v", "s", b"old"), ("v", "s", b"newer")])
        assert store.get("v", "s") == b"newer"
        assert store.nbytes() == len(b"newer")
        assert DiskFragmentStore(root).get("v", "s") == b"newer"

    def test_overwrite_keeps_totals_consistent(self, tmp_path):
        store = ShardedDiskStore(str(tmp_path / "ow"), fanout=4)
        store.put("v", "s", b"x" * 100)
        store.put_many([("v", "s", b"y" * 7)])
        assert store.nbytes() == 7
        assert store.size_of("v", "s") == 7


class TestCacheInvalidation:
    """A re-saved fragment must never serve its old payload from cache."""

    def test_overwrite_through_adapter(self):
        inner = FragmentStore()
        cache = FragmentCache(1 << 20)
        store = CachingFragmentStore(inner, cache)
        store.put("v", "s", b"old")
        assert store.get("v", "s") == b"old"
        store.put("v", "s", b"new")
        assert store.get("v", "s") == b"new"

    def test_delete_through_adapter(self):
        inner = FragmentStore()
        store = CachingFragmentStore(inner, FragmentCache(1 << 20))
        store.put("v", "s", b"old")
        store.get("v", "s")
        store.delete("v", "s")
        with pytest.raises(KeyError):
            store.get("v", "s")

    def test_overwrite_racing_inflight_load_is_not_cached(self):
        """Regression: a put landing while another thread is still
        loading the old payload must not let the stale bytes stick."""
        inner = FragmentStore()
        cache = FragmentCache(1 << 20)
        store = CachingFragmentStore(inner, cache)
        inner.put("v", "s", b"old")
        loading = threading.Event()
        proceed = threading.Event()
        served = []

        def slow_loader():
            payload = inner.get("v", "s")  # reads the pre-overwrite bytes
            loading.set()
            proceed.wait(timeout=10.0)
            return payload

        def reader():
            served.append(cache.get_or_load("v", "s", slow_loader))

        thread = threading.Thread(target=reader)
        thread.start()
        assert loading.wait(timeout=10.0)
        # overwrite while the old payload is being loaded
        store.put("v", "s", b"new")
        proceed.set()
        thread.join(timeout=10.0)
        assert served == [b"old"]  # that read began before the write
        # the stale payload must not have been cached
        assert store.get("v", "s") == b"new"

    def test_overwrite_racing_inflight_batch_is_not_cached(self):
        inner = FragmentStore()
        cache = FragmentCache(1 << 20)
        store = CachingFragmentStore(inner, cache)
        inner.put("v", "s", b"old")
        loading = threading.Event()
        proceed = threading.Event()

        def slow_loader_many(keys):
            payloads = inner.get_many(keys)  # reads the pre-overwrite bytes
            loading.set()
            proceed.wait(timeout=10.0)
            return payloads

        result = {}
        thread = threading.Thread(
            target=lambda: result.update(
                cache.get_many([("v", "s")], slow_loader_many)
            )
        )
        thread.start()
        assert loading.wait(timeout=10.0)
        store.put("v", "s", b"new")
        proceed.set()
        thread.join(timeout=10.0)
        assert result[("v", "s")] == b"old"
        assert store.get_many([("v", "s")])[("v", "s")] == b"new"

    def test_invalidate_many_drops_entries(self):
        cache = FragmentCache(1 << 20)
        cache.get_or_load("v", "s0", lambda: b"a")
        cache.get_or_load("v", "s1", lambda: b"b")
        cache.invalidate_many([("v", "s0"), ("v", "s1")])
        assert len(cache) == 0
        assert cache.stats().current_bytes == 0


def store_factories(tmp_path):
    """One factory per store family the re-save tests must cover."""
    return {
        "flat": lambda: DiskFragmentStore(str(tmp_path / "flat")),
        "sharded": lambda: ShardedDiskStore(str(tmp_path / "sharded"), fanout=4),
        "tiered": lambda: TieredStore(
            FragmentStore(),
            ShardedDiskStore(str(tmp_path / "tslow"), fanout=4),
            policy="write-through",
        ),
    }


class TestArchiveReplace:
    """Re-saving a variable supersedes its old fragments end to end."""

    @pytest.mark.parametrize("layout", ["flat", "sharded", "tiered"])
    def test_resave_tombstones_superseded_segments(self, tmp_path, layout):
        store = store_factories(tmp_path)[layout]()
        archive = Archive(store)
        data = np.linspace(-1.0, 1.0, 120).reshape(12, 10)
        big = make_refactorer("psz3").refactor(data)  # full snapshot ladder
        archive.save("v", big)
        old_segments = set(store.segments("v"))
        small = make_refactorer("psz3", relative_bounds=[1e-2, 1e-3], lossless_tail=False).refactor(data)
        archive.save("v", small)
        new_segments = set(store.segments("v"))
        assert new_segments < old_segments  # strictly fewer fragments
        for segment in old_segments - new_segments:
            with pytest.raises(KeyError):
                store.get("v", segment)
        # totals agree with what is actually retrievable
        assert store.nbytes("v") == sum(
            store.size_of("v", s) for s in store.segments("v")
        )
        # the reloaded variable is the small representation
        loaded = archive.load("v")
        assert len(loaded.blobs) == len(small.blobs)

    @pytest.mark.parametrize("layout", ["flat", "sharded"])
    def test_resave_consistent_across_reopen(self, tmp_path, layout):
        factory = store_factories(tmp_path)[layout]
        store = factory()
        archive = Archive(store)
        data = np.linspace(0.0, 5.0, 64).reshape(8, 8)
        archive.save("v", make_refactorer("psz3").refactor(data))
        archive.save("v", make_refactorer("psz3", relative_bounds=[1e-2], lossless_tail=False).refactor(data))
        expected = {key: store.get(*key) for key in store.keys()}
        reopened = factory()
        assert {key: reopened.get(*key) for key in reopened.keys()} == expected
        assert reopened.nbytes() == store.nbytes()
        assert reopened.segments("v") == store.segments("v")

    def test_resave_drops_memoized_source(self):
        store = FragmentStore()
        archive = Archive(store)
        data = np.linspace(0.0, 2.0, 100).reshape(10, 10)
        archive.save("v", make_refactorer("pmgard_hb").refactor(data))
        lazy = archive.load("v", lazy=True)
        lazy.reader().request(1e-4)  # memoize some payloads
        archive.save("v", make_refactorer("pmgard_hb").refactor(data * 2.0))
        fresh = archive.load("v", lazy=True)
        rec = fresh.reader().request(1e-8)
        assert np.allclose(rec, data * 2.0, atol=1e-6)


class TestIngestPipeline:
    @pytest.mark.parametrize("method", COMPRESSORS)
    def test_bit_identical_to_serial_path(self, method):
        fields = make_fields()
        serial = FragmentStore()
        Archive(serial).save_dataset(
            refactor_dataset(fields, make_refactorer(method))
        )
        parallel = FragmentStore()
        report = ingest_dataset(
            parallel, fields, make_refactorer(method),
            workers=3, flush_bytes=1 << 12,
        )
        assert set(serial.keys()) == set(parallel.keys())
        for key in serial.keys():
            assert serial.get(*key) == parallel.get(*key)
            assert serial.segments(key[0]) == parallel.segments(key[0])
        assert report.fragments == len(parallel.keys())
        assert report.bytes_written == parallel.nbytes()
        assert parallel.put_round_trips == report.flushes < report.fragments

    def test_workers_zero_is_serial_but_still_batched(self):
        fields = make_fields(n=2)
        store = FragmentStore()
        report = ingest_dataset(
            store, fields, make_refactorer("psz3_delta"),
            workers=0, flush_bytes=1 << 30,
        )
        assert store.put_round_trips == report.flushes == 1

    def test_index_segment_flushes_after_payloads(self):
        """Every batch keeps a variable's index after its fragments."""
        seen = []

        class Recorder(FragmentStore):
            def put_many(self, items):
                items = list(items)
                seen.extend((v, s) for v, s, _ in items)
                super().put_many(items)

        fields = make_fields(n=2)
        ingest_dataset(
            Recorder(), fields, make_refactorer("pmgard_hb"),
            workers=2, flush_bytes=1 << 10,
        )
        for name in fields:
            positions = [i for i, (v, _) in enumerate(seen) if v == name]
            index_pos = seen.index((name, INDEX_SEGMENT))
            assert index_pos == max(positions)

    def test_incremental_add_leaves_existing_fragments_unwritten(self):
        fields = make_fields(n=2)
        store = FragmentStore()
        ingest_dataset(store, fields, make_refactorer("pmgard_hb"))
        baseline = store.puts
        extra = {"v9": np.full((14, 15), 3.25)}
        report = ingest_dataset(store, extra, make_refactorer("pmgard_hb"))
        assert store.puts - baseline == report.fragments
        assert set(store.variables()) == set(fields) | {"v9"}

    def test_reingest_supersedes_old_representation(self):
        data = np.linspace(-2.0, 2.0, 210).reshape(14, 15)
        store = FragmentStore()
        ingest_dataset(store, {"v": data}, make_refactorer("psz3"))
        old = set(store.segments("v"))
        report = ingest_dataset(
            store, {"v": data}, make_refactorer("psz3", relative_bounds=[1e-2, 1e-3], lossless_tail=False)
        )
        assert report.superseded == len(old - set(store.segments("v")))
        assert report.superseded > 0
        assert store.nbytes("v") == sum(
            store.size_of("v", s) for s in store.segments("v")
        )

    def test_timestep_append(self):
        store = FragmentStore()
        base = make_fields(n=1)
        ingest_dataset(store, base, make_refactorer("psz3_delta"))
        ingest_dataset(
            store, base, make_refactorer("psz3_delta"), timestep=7
        )
        assert timestep_variable("v0", 7) == "v0@t0007"
        assert set(store.variables()) == {"v0", "v0@t0007"}
        assert store.segments("v0") == store.segments("v0@t0007")

    def test_report_archived_bytes_matches_refactored(self):
        fields = make_fields(n=2)
        refactored = refactor_dataset(fields, make_refactorer("pmgard_hb"))
        report = ingest_dataset(
            FragmentStore(), fields, make_refactorer("pmgard_hb")
        )
        for name, ref in refactored.items():
            assert report.archived_bytes[name] == ref.total_bytes

    def test_blockwise_ingest_matches_blockwise_archive(self):
        from repro.parallel.blocks import (
            BlockedDataset,
            blockwise_archive,
            blockwise_ingest,
            blockwise_refactor,
        )

        fields = make_fields(shape=(12, 9), n=2)
        blocked = BlockedDataset.from_fields(fields, num_blocks=3)
        serial = FragmentStore()
        blockwise_archive(
            blocked,
            blockwise_refactor(blocked, lambda: make_refactorer("psz3_delta")),
            Archive(serial),
            method="psz3_delta",
            dataset="blocked",
        )
        parallel = FragmentStore()
        manifest = blockwise_ingest(
            blocked, parallel, make_refactorer("psz3_delta"),
            method="psz3_delta", dataset="blocked", flush_bytes=1 << 12,
        )
        assert set(serial.keys()) == set(parallel.keys())
        for key in serial.keys():
            assert serial.get(*key) == parallel.get(*key)
        assert "v0@b000" in manifest.variables
        assert parallel.put_round_trips < parallel.puts

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IngestConfig(workers=-1)
        with pytest.raises(ValueError):
            IngestConfig(flush_bytes=0)

    def test_unarchivable_representation_raises(self):
        with pytest.raises(TypeError):
            encode_fragments(object())


class TestServiceIngest:
    def _service(self, **kwargs):
        return RetrievalService(FragmentStore(), **kwargs)

    def _retrieve_identity(self, service, name, tolerance=1e-3):
        with service.open_session() as session:
            result = session.retrieve([
                QoIRequest(
                    "identity", qoi_from_spec("identity", [name]), tolerance
                )
            ])
        return result

    def test_live_server_absorbs_new_variable(self):
        service = self._service()
        data = np.linspace(0.0, 3.0, 240).reshape(16, 15)
        report = service.ingest({"p": data}, method="pmgard_hb")
        assert report.fragments > 0
        assert "p" in service.variables()
        result = self._retrieve_identity(service, "p")
        assert result.all_satisfied
        assert np.allclose(result.data["p"], data, atol=1e-3 * np.ptp(data) + 1e-3)

    def test_replaced_variable_serves_new_data_through_cache(self):
        service = self._service()
        old = np.linspace(0.0, 1.0, 240).reshape(16, 15)
        service.ingest({"p": old}, method="pmgard_hb")
        self._retrieve_identity(service, "p")  # warm the shared cache
        new = old + 10.0
        service.ingest({"p": new}, method="pmgard_hb")
        result = self._retrieve_identity(service, "p")
        assert np.allclose(result.data["p"], new, atol=1e-3 * np.ptp(new) + 1e-3)

    def test_long_lived_session_reresolves_replaced_variable(self):
        """An open session must pick up a replaced variable at its next
        retrieve (generation bump resets its reader state)."""
        service = self._service()
        old = np.linspace(0.0, 1.0, 240).reshape(16, 15)
        service.ingest({"p": old}, method="pmgard_hb")
        with service.open_session() as session:
            request = [QoIRequest(
                "identity", qoi_from_spec("identity", ["p"]), 1e-3
            )]
            first = session.retrieve(request)
            assert np.allclose(first.data["p"], old, atol=1e-2)
            new = old * -3.0 + 5.0
            service.ingest({"p": new}, method="pmgard_hb")
            assert service.variable_generation("p") == 2
            second = session.retrieve(request)
            assert np.allclose(
                second.data["p"], new, atol=1e-3 * np.ptp(new) + 1e-3
            )

    def test_planner_memos_invalidate_on_live_ingest(self):
        """The shared planner's memos (representation, plans, seeds) must
        drop on the per-variable generation bump a live ingest makes —
        a stale memoized plan would name segments of the superseded
        layout and a stale representation would decode old bytes."""
        service = self._service()  # shared_planner defaults on
        assert service.planner is not None
        old = np.linspace(0.0, 1.0, 240).reshape(16, 15)
        service.ingest({"p": old}, method="pmgard_hb")
        self._retrieve_identity(service, "p")  # memoize rep + plans
        memo_before = service.planner.stats()
        assert memo_before.representations_loaded >= 1
        new = old * 2.0 + 7.0
        service.ingest({"p": new}, method="pmgard_hb")
        # a fresh session must get the new data through fresh memos
        result = self._retrieve_identity(service, "p")
        assert np.allclose(result.data["p"], new, atol=1e-3 * np.ptp(new) + 1e-3)
        memo_after = service.planner.stats()
        assert (
            memo_after.representations_loaded
            > memo_before.representations_loaded
        ), "replaced variable must reload, not serve the memoized rep"
        # memo keys carry the generation: no post-ingest lookup may hit
        # a pre-ingest plan (hits can only come from post-ingest reuse)
        assert service.variable_generation("p") == 2

    def test_timestep_ingest_and_stats_counters(self):
        service = self._service()
        data = np.linspace(0.0, 1.0, 64).reshape(8, 8)
        service.ingest({"p": data}, method="psz3_delta", timestep=2)
        assert "p@t0002" in service.variables()
        stats = service.stats()
        assert stats.variables_ingested == 1
        assert stats.store_puts > 0
        assert stats.store_bytes_written > 0
        assert stats.store_put_round_trips < stats.store_puts

    def test_manifest_updated_for_new_sessions(self):
        service = self._service()
        data = np.linspace(-1.0, 1.0, 100).reshape(10, 10)
        service.ingest({"q": data}, method="psz3")
        assert service.value_range("q") == pytest.approx(2.0)
        assert service.manifest is not None
        assert "q" in service.manifest.variables


class TestServerIngest:
    def test_ingest_over_tcp(self):
        from repro.service.server import RetrievalServer, ServiceClient

        service = RetrievalService(FragmentStore())
        server = RetrievalServer(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.address
            data = np.linspace(0.0, 2.0, 150).reshape(10, 15)
            with ServiceClient(host, port) as client:
                report = client.ingest({"p": data}, method="pmgard_hb")
                assert report["fragments"] > 0
                assert report["variables"] == ["p"]
                response = client.retrieve(
                    "identity", ["p"], tolerance=1e-3, include_data=True
                )
            assert response["satisfied"]
            assert np.allclose(
                response["data"]["p"], data, atol=1e-3 * np.ptp(data) + 1e-3
            )
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10.0)


class TestIngestCLI:
    def test_cli_ingest_into_existing_archive(self, tmp_path, capsys):
        from repro.cli import main

        data = {"p": np.linspace(0.0, 4.0, 64).reshape(8, 8)}
        np.save(tmp_path / "p.npy", data["p"])
        np.save(tmp_path / "t.npy", data["p"] * 2.0)
        archive_dir = str(tmp_path / "ar")
        assert main([
            "archive", "--out", archive_dir, "--method", "psz3_delta",
            f"p={tmp_path / 'p.npy'}",
        ]) == 0
        assert main([
            "ingest", "--archive", archive_dir, "--method", "psz3_delta",
            "--workers", "2", "--flush-bytes", "64k",
            f"t={tmp_path / 't.npy'}",
        ]) == 0
        out = capsys.readouterr().out
        assert "ingested 1 variable(s)" in out
        assert "batched flush(es)" in out
        # the ingested variable is retrievable with the rest
        assert main([
            "retrieve", "--archive", archive_dir, "--qoi", "product",
            "--fields", "p,t", "--tolerance", "1e-2", "--qoi-range", "100",
            "--out", str(tmp_path / "rec"),
        ]) == 0

    def test_cli_ingest_timestep(self, tmp_path, capsys):
        from repro.cli import main

        np.save(tmp_path / "p.npy", np.linspace(0.0, 1.0, 36).reshape(6, 6))
        archive_dir = str(tmp_path / "ar")
        assert main([
            "ingest", "--archive", archive_dir, "--method", "psz3",
            "--timestep", "5", f"p={tmp_path / 'p.npy'}",
        ]) == 0
        store = DiskFragmentStore(archive_dir)
        assert "p@t0005" in store.variables()
