"""Tests for PMGARD's resolution-progressive reader."""

import numpy as np
import pytest

from repro.compressors.pmgard import PMGARDRefactorer


def smooth_field(n=2049, seed=0):
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 8 * np.pi, n)
    return np.sin(x) + 0.3 * np.sin(5 * x) + 0.01 * rng.normal(size=n)


class TestResolutionProgression:
    def test_error_decreases_with_levels(self):
        # L-infinity error of band-limited approximations is not strictly
        # nested level by level, but the guaranteed bound is monotone and
        # the error collapses once everything is fetched
        data = smooth_field()
        ref = PMGARDRefactorer(basis="hierarchical").refactor(data)
        reader = ref.resolution_reader()
        errors, bounds = [], []
        for k in range(reader.num_levels + 1):
            rec = reader.request_levels(k)
            errors.append(float(np.max(np.abs(rec - data))))
            bounds.append(reader.current_error_bound)
        assert bounds == sorted(bounds, reverse=True)
        assert errors[-1] < errors[0]
        assert errors[-1] <= 1e-9 * np.ptp(data)  # all levels -> near lossless

    def test_bound_truthful_at_each_resolution(self):
        data = smooth_field(seed=1)
        ref = PMGARDRefactorer(basis="hierarchical").refactor(data)
        reader = ref.resolution_reader()
        for k in range(reader.num_levels + 1):
            rec = reader.request_levels(k)
            err = float(np.max(np.abs(rec - data)))
            assert err <= reader.current_error_bound * (1 + 1e-9), k

    def test_bytes_grow_per_level(self):
        data = smooth_field(seed=2)
        ref = PMGARDRefactorer().refactor(data)
        reader = ref.resolution_reader()
        sizes = []
        for k in range(reader.num_levels + 1):
            reader.request_levels(k)
            sizes.append(reader.bytes_retrieved)
        assert sizes == sorted(sizes)
        assert sizes[0] > 0  # the coarse corner arrives immediately

    def test_requesting_fewer_levels_is_noop(self):
        data = smooth_field(seed=3)
        ref = PMGARDRefactorer().refactor(data)
        reader = ref.resolution_reader()
        reader.request_levels(2)
        before = reader.bytes_retrieved
        reader.request_levels(1)
        assert reader.bytes_retrieved == before

    def test_negative_levels_rejected(self):
        ref = PMGARDRefactorer().refactor(smooth_field(seed=4))
        with pytest.raises(ValueError):
            ref.resolution_reader().request_levels(-1)

    def test_coarse_resolution_is_cheap(self):
        """The economics of resolution progression: the coarsest view is a
        small fraction of the full representation."""
        data = smooth_field(seed=5)
        ref = PMGARDRefactorer().refactor(data)
        reader = ref.resolution_reader()
        reader.request_levels(1)
        assert reader.bytes_retrieved < 0.25 * ref.total_bytes

    def test_2d(self):
        rng = np.random.default_rng(6)
        x = np.linspace(0, 2 * np.pi, 65)
        data = np.add.outer(np.sin(x), np.cos(x)) + 0.01 * rng.normal(size=(65, 65))
        ref = PMGARDRefactorer(basis="orthogonal").refactor(data)
        reader = ref.resolution_reader()
        rec = reader.request_levels(reader.num_levels)
        assert np.max(np.abs(rec - data)) <= reader.current_error_bound * (1 + 1e-9)
