"""Cross-request query planner and round-merging fetch scheduler suite.

Four layers of guarantees:

* :class:`repro.service.planner.QueryPlanner` unit semantics — memoized
  single-flight representation loads, exact-bound plan memoization,
  generation invalidation.
* :class:`repro.service.planner.FetchScheduler` unit semantics — rounds
  queued behind an in-flight fetch merge into one coalesced store pass,
  cross-request duplicates are claimed once, store errors release every
  claim and surface only to non-speculative requesters, speculation
  dedups against the shared cache's in-flight registry.
* Service-level economics — 8 concurrent clients over one
  :class:`~repro.service.service.RetrievalService`: identical ladders
  cost ONE planning pass (the 8-client run's plan-cache misses equal a
  1-client run's), overlapping ladders cut slow-store round trips >= 2x
  versus per-session planning, and every mode — identical, overlapping,
  disjoint — is **bit-identical** to ``shared_planner=False``.
* :class:`repro.storage.resilience.TripBudget` — blocking token-bucket
  semantics with injected clocks, the tiered slow-path hook, the
  service's ``.inner``-chain installation walk, and the stats fold.

The cluster chaos case (a coalesced round spanning a killed node serves
via replica failover) lives at the bottom, mirroring
``test_storage_cluster.TestClusterRetrievalChaos``.
"""

import threading
import time

import numpy as np
import pytest

from repro.compressors.base import make_refactorer
from repro.core.qois import total_velocity
from repro.core.retrieval import QoIRequest, refactor_dataset
from repro.service.planner import FetchScheduler, PlannerStats, QueryPlanner
from repro.service.service import RetrievalService
from repro.storage.archive import Archive, FragmentSource
from repro.storage.metadata import DatasetManifest, VariableMetadata
from repro.storage.remote import HTTPFragmentServer
from repro.storage.resilience import TripBudget
from repro.storage.store import FragmentStore, ShardedDiskStore, open_store
from repro.storage.tiered import TieredStore


def make_fields(n=4000, seed=0):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 12, n)
    return {
        "velocity_x": 90 * np.sin(t) + rng.normal(size=n),
        "velocity_y": 45 * np.cos(t) + rng.normal(size=n),
        "velocity_z": 15 * np.sin(2 * t) + rng.normal(size=n),
    }


def archive_into(store, fields, method="pmgard_hb"):
    refactored = refactor_dataset(fields, make_refactorer(method))
    archive = Archive(store)
    manifest = DatasetManifest(dataset="planner-test")
    for name, data in fields.items():
        archive.save(name, refactored[name])
        manifest.add(
            VariableMetadata.from_array(
                name, data, method, refactored[name].total_bytes,
                segments=store.segments(name),
            )
        )
    manifest.save_to(store)
    return refactored


@pytest.fixture(scope="module")
def setup():
    fields = make_fields()
    store = FragmentStore()
    archive_into(store, fields)
    qoi = total_velocity()
    truth = qoi.value({k: (v, 0.0) for k, v in fields.items()})
    return fields, store, qoi, float(truth.max() - truth.min())


def copy_store(store):
    copy = FragmentStore()
    for var, seg in store.keys():
        copy.put(var, seg, store.get(var, seg))
    return copy


class SlowStore:
    """Inject per-round-trip latency: the cold-remote regime where trips,
    not bytes, dominate wall time.  Everything else delegates."""

    def __init__(self, inner, delay_s):
        self.inner = inner
        self.delay_s = delay_s

    def get(self, variable, segment):
        time.sleep(self.delay_s)
        return self.inner.get(variable, segment)

    def get_many(self, keys):
        time.sleep(self.delay_s)
        return self.inner.get_many(keys)

    def __getattr__(self, name):
        return getattr(self.inner, name)


# ---------------------------------------------------------------------------
# QueryPlanner units
# ---------------------------------------------------------------------------


class _StubReader:
    """A reader whose plans and state token are scripted."""

    def __init__(self, token, plan):
        self._token = token
        self._plan = plan
        self.computes = 0

    def plan_token(self):
        return self._token

    def plan_segments(self, eb):
        self.computes += 1
        return list(self._plan)


class TestQueryPlanner:
    def test_representation_load_is_memoized_and_single_flight(self):
        planner = QueryPlanner()
        calls = []
        gate = threading.Event()

        def loader():
            calls.append(1)
            gate.wait(5)
            return object()

        got = []
        threads = [
            threading.Thread(target=lambda: got.append(planner.load("v", 0, loader)))
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.05)  # let every waiter pile onto the one flight
        gate.set()
        for thread in threads:
            thread.join()
        assert len(calls) == 1
        assert len({id(r) for r in got}) == 1
        stats = planner.stats()
        assert stats.representations_loaded == 1
        assert stats.representations_shared == 7

    def test_new_generation_loads_fresh(self):
        planner = QueryPlanner()
        first = planner.load("v", 0, lambda: "gen0")
        again = planner.load("v", 0, lambda: "never")
        bumped = planner.load("v", 1, lambda: "gen1")
        assert first == again == "gen0"
        assert bumped == "gen1"

    def test_plan_memo_hits_on_exact_state_and_bound(self):
        planner = QueryPlanner()
        reader = _StubReader(("tok",), ["s1", "s2"])
        a = planner.plan_segments(reader, "v", 0, 1e-3)
        b = planner.plan_segments(reader, "v", 0, 1e-3)
        assert a == b == ["s1", "s2"]
        assert a is not b  # callers own their copies
        assert reader.computes == 1
        # a different bound is a different plan, never aliased
        planner.plan_segments(reader, "v", 0, 1e-3 + 1e-12)
        assert reader.computes == 2
        stats = planner.stats()
        assert stats.plan_cache_hits == 1
        assert stats.plan_cache_misses == 2

    def test_tokenless_reader_is_planned_directly(self):
        planner = QueryPlanner()
        reader = _StubReader(None, ["s1"])
        planner.plan_segments(reader, "v", 0, 1e-3)
        planner.plan_segments(reader, "v", 0, 1e-3)
        assert reader.computes == 2
        stats = planner.stats()
        assert stats.plan_cache_hits == stats.plan_cache_misses == 0

    def test_invalidate_drops_only_that_variable(self):
        planner = QueryPlanner()
        reader_v = _StubReader(("tok",), ["s"])
        reader_w = _StubReader(("tok",), ["s"])
        planner.load("v", 0, lambda: "v-rep")
        planner.load("w", 0, lambda: "w-rep")
        planner.plan_segments(reader_v, "v", 0, 1e-3)
        planner.plan_segments(reader_w, "w", 0, 1e-3)
        planner.invalidate("v")
        assert planner.load("v", 0, lambda: "v-rep2") == "v-rep2"
        assert planner.load("w", 0, lambda: "never") == "w-rep"
        planner.plan_segments(reader_v, "v", 0, 1e-3)
        assert reader_v.computes == 2  # memo gone
        planner.plan_segments(reader_w, "w", 0, 1e-3)
        assert reader_w.computes == 1  # memo intact

    def test_seed_memo_matches_direct_computation(self):
        from repro.core.estimators import seed_bounds

        planner = QueryPlanner()
        ranges = (180.0, 90.0)
        incidence = ((True, True), (True, False))
        tolerances = (1e-3, 1e-2)
        memoized = planner.seed_bounds(ranges, incidence, tolerances)
        again = planner.seed_bounds(ranges, incidence, tolerances)
        direct = seed_bounds(list(ranges), [list(r) for r in incidence],
                             list(tolerances))
        assert memoized == again
        assert list(memoized) == [float(s) for s in direct]
        stats = planner.stats()
        assert stats.plan_cache_hits == 1 and stats.plan_cache_misses == 1

    def test_plan_memo_is_bounded(self):
        planner = QueryPlanner(max_plan_memo=4)
        for i in range(10):
            planner.plan_segments(_StubReader(("tok", i), ["s"]), "v", 0, 1e-3)
        assert len(planner._plans) == 4


# ---------------------------------------------------------------------------
# FetchScheduler units
# ---------------------------------------------------------------------------


class _GateStore(FragmentStore):
    """Blocks its first ``get_many`` until released — the window in which
    concurrent rounds must queue and merge."""

    def __init__(self):
        super().__init__()
        self.entered = threading.Event()
        self.release_gate = threading.Event()
        self.served = []

    def get_many(self, keys):
        first = not self.entered.is_set()
        self.entered.set()
        if first:
            self.release_gate.wait(10)
        self.served.append(sorted(keys))
        return super().get_many(keys)


def _fill(store, variable, segments):
    for segment in segments:
        store.put(variable, segment, segment.encode() * 3)


def _fetch_on_thread(scheduler, plans, errors):
    def run():
        try:
            scheduler.fetch(plans)
        except Exception as exc:  # surfaced store errors land here
            errors.append(exc)

    thread = threading.Thread(target=run)
    thread.start()
    return thread


class TestFetchScheduler:
    def _scheduler(self, cache=None, window=0.0):
        planner = QueryPlanner()
        return planner, FetchScheduler(planner, cache=cache,
                                       coalesce_window_s=window)

    def test_rounds_queued_behind_a_fetch_merge_into_one_pass(self):
        planner, scheduler = self._scheduler()
        store = _GateStore()
        _fill(store, "v", ["a", "b", "c"])
        source = FragmentSource(store, "v")
        errors = []
        try:
            first = _fetch_on_thread(scheduler, [(source, ["a"])], errors)
            assert store.entered.wait(5)
            second = _fetch_on_thread(scheduler, [(source, ["b"])], errors)
            third = _fetch_on_thread(scheduler, [(source, ["c"])], errors)
            deadline = time.monotonic() + 5
            while len(scheduler._queue) < 2 and time.monotonic() < deadline:
                time.sleep(0.001)
            assert len(scheduler._queue) == 2
            store.release_gate.set()
            for thread in (first, second, third):
                thread.join(timeout=10)
            assert not errors
            # the two queued rounds rode one coalesced get_many
            assert store.served == [[("v", "a")], [("v", "b"), ("v", "c")]]
            stats = planner.stats()
            assert stats.merged_rounds == 1
            assert stats.scheduler_ticks == 2
            assert stats.coalesced_round_trips == 2
        finally:
            store.release_gate.set()
            scheduler.close()

    def test_duplicate_segments_claimed_once(self):
        planner, scheduler = self._scheduler()
        store = _GateStore()
        _fill(store, "v", ["a", "b"])
        source = FragmentSource(store, "v")
        errors = []
        try:
            first = _fetch_on_thread(scheduler, [(source, ["a", "b"])], errors)
            assert store.entered.wait(5)
            second = _fetch_on_thread(scheduler, [(source, ["a", "b"])], errors)
            deadline = time.monotonic() + 5
            while not scheduler._queue and time.monotonic() < deadline:
                time.sleep(0.001)
            store.release_gate.set()
            first.join(10)
            second.join(10)
            assert not errors
            # the second round found everything claimed/absorbed: no pass
            assert store.served == [[("v", "a"), ("v", "b")]]
            assert planner.stats().deduped_fragments == 2
        finally:
            store.release_gate.set()
            scheduler.close()

    def test_store_error_releases_claims_and_surfaces(self):
        class _BrokenStore(FragmentStore):
            def get_many(self, keys):
                raise OSError("store down")

        planner, scheduler = self._scheduler()
        store = _BrokenStore()
        source = FragmentSource(store, "v")
        try:
            with pytest.raises(OSError):
                scheduler.fetch([(source, ["a", "b"])])
            # every claim was released: the segments are fetchable again
            assert source.missing(["a", "b"]) == ["a", "b"]
        finally:
            scheduler.close()

    def test_speculative_errors_are_swallowed(self):
        class _BrokenStore(FragmentStore):
            def get_many(self, keys):
                raise OSError("store down")

        planner, scheduler = self._scheduler()
        source = FragmentSource(_BrokenStore(), "v")
        try:
            assert scheduler.fetch_speculative([(source, ["a"])]) == 0
            assert source.missing(["a"]) == ["a"]
        finally:
            scheduler.close()

    def test_speculation_dedups_against_cache_inflight_registry(self):
        class _Registry:
            def inflight_keys(self):
                return {("v", "a")}

        planner, scheduler = self._scheduler(cache=_Registry())
        store = FragmentStore()
        _fill(store, "v", ["a", "b"])
        source = FragmentSource(store, "v")
        try:
            fetched = scheduler.fetch_speculative([(source, ["a", "b"])])
            assert fetched == 1  # "a" is someone else's in-flight load
            stats = planner.stats()
            assert stats.speculation_deduped == 1
            assert store.round_trips == 1
        finally:
            scheduler.close()

    def test_closed_scheduler_rejects_new_fetches(self):
        planner, scheduler = self._scheduler()
        scheduler.close()
        scheduler.close()  # idempotent
        source = FragmentSource(FragmentStore(), "v")
        with pytest.raises(RuntimeError):
            scheduler.fetch([(source, ["a"])])

    def test_empty_plans_short_circuit(self):
        planner, scheduler = self._scheduler()
        try:
            assert scheduler.fetch([]) == 0
            assert scheduler.fetch([(FragmentSource(FragmentStore(), "v"), [])]) == 0
            assert planner.stats().scheduler_ticks == 0
        finally:
            scheduler.close()


# ---------------------------------------------------------------------------
# Service-level economics: 8 concurrent clients
# ---------------------------------------------------------------------------


IDENTICAL_LADDER = [1e-2, 1e-3, 1e-4]

OVERLAPPING_LADDERS = [
    [5e-2, 1e-2, 2e-3, 5e-4], [2e-2, 5e-3, 1e-3, 5e-4],
    [5e-2, 5e-3, 1e-3, 2e-4], [1e-2, 2e-3, 5e-4, 2e-4],
    [2e-2, 1e-2, 1e-3, 5e-4], [5e-2, 2e-3, 1e-3, 2e-4],
    [1e-2, 5e-3, 2e-3, 5e-4], [2e-2, 5e-3, 5e-4, 2e-4],
]

DISJOINT_LADDERS = [[3e-2 / (1.7 ** i)] for i in range(8)]


def run_fleet(setup_data, ladders, shared, delay_s=0.0, **service_kwargs):
    """N concurrent clients, client *i* walking ``ladders[i]``.

    Returns per-(client, tolerance) results, the raw store's round trips
    during the retrieval phase (variable loads warmed first, so the two
    planning modes are compared on fetch traffic alone), and the stats.
    """
    fields, store, qoi, qrange = setup_data
    inner = copy_store(store)
    service = RetrievalService(
        SlowStore(inner, delay_s) if delay_s else inner,
        shared_planner=shared, **service_kwargs,
    )
    for name in fields:
        service.load_refactored(name)
    trips_before = inner.round_trips
    barrier = threading.Barrier(len(ladders))
    outs, errors = {}, []
    lock = threading.Lock()

    def work(index):
        try:
            with service.open_session(f"client-{index}") as session:
                barrier.wait()
                for tolerance in ladders[index]:
                    result = session.retrieve(
                        [QoIRequest("vtot", qoi, tolerance, qrange)]
                    )
                    with lock:
                        outs[(index, tolerance)] = (
                            {k: v.copy() for k, v in result.data.items()},
                            dict(result.estimated_errors),
                            result.total_bytes,
                        )
        except BaseException as exc:  # surfaced to the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=work, args=(i,)) for i in range(len(ladders))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    stats = service.stats()
    service.close()
    return outs, inner.round_trips - trips_before, stats


def assert_bit_identical(got, want):
    assert set(got) == set(want)
    for key, (want_data, want_errors, want_bytes) in want.items():
        data, errors, total_bytes = got[key]
        assert errors == want_errors, key
        assert total_bytes == want_bytes, key
        for name in want_data:
            assert np.array_equal(data[name], want_data[name]), (key, name)


class TestSharedPlannerService:
    def test_identical_ladders_cost_one_planning_pass(self, setup):
        # pipeline_depth=1 pins the speculative planning horizon: deeper
        # speculation is planned only when the previous depth's queue had
        # room, which varies with timing and would blur the exact count
        ladders = [list(IDENTICAL_LADDER) for _ in range(8)]
        outs8, _, stats8 = run_fleet(setup, ladders, shared=True,
                                     pipeline_depth=1)
        outs1, _, stats1 = run_fleet(setup, ladders[:1], shared=True,
                                     pipeline_depth=1)
        # 8 identical clients planned exactly what 1 client plans: every
        # session's (state token, bound) walk lands on the same memo keys
        assert (
            stats8.planner.plan_cache_misses == stats1.planner.plan_cache_misses
        )
        assert stats8.planner.plan_cache_hits > stats1.planner.plan_cache_hits
        # one archive load per variable (the warm pass), shared by all 8
        assert stats8.planner.representations_loaded == 3
        assert stats8.planner.representations_shared == 3 * 8
        for index in range(8):
            for tolerance in IDENTICAL_LADDER:
                assert_bit_identical(
                    {(0, tolerance): outs8[(index, tolerance)]},
                    {(0, tolerance): outs1[(0, tolerance)]},
                )

    def test_overlapping_ladders_halve_round_trips_bit_identical(self, setup):
        # bit-identity is asserted on every attempt; the >= 2x round-trip
        # economy is a timing property (merging depends on how rounds
        # interleave), so it gets best-of-3 like any latency assertion
        best = 0.0
        for _ in range(3):
            outs_on, trips_on, stats_on = run_fleet(
                setup, OVERLAPPING_LADDERS, shared=True,
                delay_s=0.003, coalesce_ms=5.0,
            )
            outs_off, trips_off, _ = run_fleet(
                setup, OVERLAPPING_LADDERS, shared=False, delay_s=0.003
            )
            assert_bit_identical(outs_on, outs_off)
            planner = stats_on.planner
            assert planner.plan_cache_hits > 0
            assert planner.merged_rounds > 0
            assert planner.deduped_fragments > 0
            best = max(best, trips_off / trips_on)
            if best >= 2.0:
                break
        assert best >= 2.0, f"round-trip reduction only {best:.2f}x"

    def test_disjoint_ladders_stay_correct_and_bit_identical(self, setup):
        outs_on, _, _ = run_fleet(setup, DISJOINT_LADDERS, shared=True)
        outs_off, _, _ = run_fleet(setup, DISJOINT_LADDERS, shared=False)
        assert_bit_identical(outs_on, outs_off)

    def test_sequential_sessions_hit_the_plan_cache(self, setup):
        fields, store, qoi, qrange = setup
        service = RetrievalService(copy_store(store), shared_planner=True)
        for client in range(2):
            with service.open_session(f"seq-{client}") as session:
                session.retrieve([QoIRequest("vtot", qoi, 1e-3, qrange)])
        stats = service.stats()
        assert stats.planner is not None
        assert stats.planner.plan_cache_hits > 0
        assert stats.planner.representations_shared >= 3
        service.close()

    def test_planner_disabled_reports_no_planner_stats(self, setup):
        fields, store, qoi, qrange = setup
        service = RetrievalService(copy_store(store), shared_planner=False)
        with service.open_session() as session:
            session.retrieve([QoIRequest("vtot", qoi, 1e-3, qrange)])
        assert service.stats().planner is None
        service.close()


# ---------------------------------------------------------------------------
# Slow-tier trip budgeting
# ---------------------------------------------------------------------------


class _FakeClock:
    def __init__(self):
        self.now = 0.0
        self.slept = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.slept.append(seconds)
        self.now += seconds


class TestTripBudget:
    def test_burst_then_block(self):
        clock = _FakeClock()
        budget = TripBudget(rate=2.0, burst=2.0, clock=clock, sleep=clock.sleep)
        assert budget.acquire() == 0.0
        assert budget.acquire() == 0.0
        waited = budget.acquire()  # bucket empty: must wait 1/rate
        assert waited == pytest.approx(0.5)
        snapshot = budget.snapshot()
        assert snapshot["acquires"] == 3
        assert snapshot["waits"] == 1
        assert snapshot["wait_seconds"] == pytest.approx(0.5)

    def test_refills_with_time(self):
        clock = _FakeClock()
        budget = TripBudget(rate=1.0, burst=1.0, clock=clock, sleep=clock.sleep)
        budget.acquire()
        clock.now += 5.0  # plenty of refill (capped at burst)
        assert budget.acquire() == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TripBudget(rate=0.0)
        with pytest.raises(ValueError):
            TripBudget(rate=1.0, burst=0.5)

    def test_tiered_slow_path_acquires(self):
        fast, slow = FragmentStore(), FragmentStore()
        slow.put("v", "s0", b"payload")
        slow.put("v", "s1", b"payload")
        tiered = TieredStore(fast, slow)
        clock = _FakeClock()
        tiered.trip_budget = TripBudget(
            rate=100.0, burst=1.0, clock=clock, sleep=clock.sleep
        )
        tiered.get("v", "s0")
        tiered.get_many([("v", "s1")])
        snapshot = tiered.trip_budget.snapshot()
        assert snapshot["acquires"] == 2
        assert snapshot["waits"] == 1  # burst of 1: the second trip waited

    def test_service_installs_budget_down_the_inner_chain(self, setup):
        fields, store, qoi, qrange = setup
        fast, slow = FragmentStore(), copy_store(store)
        tiered = TieredStore(fast, slow)
        service = RetrievalService(tiered, slow_trip_rate=10_000.0)
        assert tiered.trip_budget is service.trip_budget
        with service.open_session() as session:
            session.retrieve([QoIRequest("vtot", qoi, 1e-3, qrange)])
        stats = service.stats()
        assert stats.planner is not None
        assert stats.planner.slow_tier_trips_budgeted > 0
        service.close()

    def test_budget_stats_survive_planner_off(self, setup):
        fields, store, qoi, qrange = setup
        fast, slow = FragmentStore(), copy_store(store)
        tiered = TieredStore(fast, slow)
        service = RetrievalService(
            tiered, shared_planner=False, slow_trip_rate=10_000.0
        )
        with service.open_session() as session:
            session.retrieve([QoIRequest("vtot", qoi, 1e-3, qrange)])
        stats = service.stats()
        assert stats.planner is not None  # budget counters still reported
        assert stats.planner.slow_tier_trips_budgeted > 0
        assert stats.planner.plan_cache_hits == 0
        service.close()

    def test_throttled_rounds_wait_instead_of_shedding(self, setup):
        fields, store, qoi, qrange = setup
        fast, slow = FragmentStore(), copy_store(store)
        tiered = TieredStore(fast, slow)
        service = RetrievalService(tiered, slow_trip_rate=200.0,
                                   slow_trip_burst=1.0)
        with service.open_session() as session:
            result = session.retrieve([QoIRequest("vtot", qoi, 1e-3, qrange)])
        assert result.all_satisfied  # budgeted, degraded never
        stats = service.stats()
        assert stats.planner.slow_tier_throttle_waits > 0
        assert stats.planner.slow_tier_throttle_wait_seconds > 0.0
        service.close()


# ---------------------------------------------------------------------------
# Chaos: a coalesced round spanning a killed cluster node
# ---------------------------------------------------------------------------


def cluster_url(servers, replicas=2):
    nodes = ",".join("%s:%d" % server.address for server in servers)
    return (
        f"cluster://{nodes}?replicas={replicas}&vnodes=32"
        f"&retries=2&retry_base=0.0&breaker=2&cooldown=30"
    )


class TestCoalescedRoundFailover:
    """A merged round's shard fan-out spanning a dead node must serve via
    replica failover — bit-identical, zero client-visible errors."""

    def test_merged_rounds_survive_node_death(self, tmp_path):
        from tests.test_storage_cluster import kill_server

        fields = make_fields(n=1200, seed=5)
        baseline_store = FragmentStore()
        archive_into(baseline_store, fields, method="pmgard_hb")
        qoi = total_velocity()
        truth = qoi.value({k: (v, 0.0) for k, v in fields.items()})
        qrange = float(truth.max() - truth.min())
        ladders = [[1e-2, 1e-4], [2e-2, 1e-4], [1e-2, 5e-4], [5e-2, 1e-4]]

        baseline, _, _ = run_fleet(
            (fields, baseline_store, qoi, qrange), ladders, shared=True
        )

        node_dirs = [str(tmp_path / f"node{i}") for i in range(3)]
        servers = [
            HTTPFragmentServer(ShardedDiskStore(d)).start() for d in node_dirs
        ]
        try:
            seed_store = open_store(cluster_url(servers))
            for var, seg in baseline_store.keys():
                seed_store.put(var, seg, baseline_store.get(var, seg))
            seed_store.close()

            store = open_store(cluster_url(servers))
            service = RetrievalService(store, shared_planner=True)
            barrier = threading.Barrier(len(ladders))
            outs, errors = {}, []
            lock = threading.Lock()
            killed = threading.Event()

            def work(index):
                try:
                    with service.open_session(f"chaos-{index}") as session:
                        barrier.wait()
                        for step, tolerance in enumerate(ladders[index]):
                            if index == 0 and step == 1 and not killed.is_set():
                                killed.set()
                                kill_server(servers[1])
                            result = session.retrieve(
                                [QoIRequest("vtot", qoi, tolerance, qrange)]
                            )
                            with lock:
                                outs[(index, tolerance)] = (
                                    {k: v.copy() for k, v in result.data.items()},
                                    dict(result.estimated_errors),
                                    result.total_bytes,
                                )
                except BaseException as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=work, args=(i,))
                for i in range(len(ladders))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors
            assert_bit_identical(outs, baseline)
            stats = service.stats()
            assert stats.planner.merged_rounds >= 0  # scheduler ran
            assert store.stats().failovers > 0  # the dead node was re-routed
            service.close()
        finally:
            for server in servers:
                if server._thread is not None:
                    server.stop()
