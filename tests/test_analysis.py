"""Tests for metrics, rate-distortion sweeps and reporting."""

import numpy as np
import pytest

from repro.analysis.metrics import bitrate, max_abs_error, relative_linf_error, value_range
from repro.analysis.rate_distortion import primary_rd_sweep, qoi_error_sweep, qoi_rd_point
from repro.analysis.reporting import format_curve, format_table
from repro.compressors.base import make_refactorer
from repro.core.qois import total_velocity
from repro.core.retrieval import refactor_dataset


class TestMetrics:
    def test_bitrate(self):
        assert bitrate(1000, 1000) == 8.0

    def test_bitrate_invalid(self):
        with pytest.raises(ValueError):
            bitrate(10, 0)

    def test_relative_error(self):
        ref = np.array([0.0, 10.0])
        approx = np.array([1.0, 10.0])
        assert relative_linf_error(ref, approx) == pytest.approx(0.1)

    def test_max_abs_error_shape_check(self):
        with pytest.raises(ValueError):
            max_abs_error(np.zeros(3), np.zeros(4))

    def test_constant_range(self):
        assert value_range(np.full(5, 2.0)) == 1.0


@pytest.fixture(scope="module")
def small_setup():
    rng = np.random.default_rng(0)
    t = np.linspace(0, 4 * np.pi, 3000)
    fields = {
        "velocity_x": 100 * np.sin(t) + rng.normal(size=t.size),
        "velocity_y": 50 * np.cos(t) + rng.normal(size=t.size),
        "velocity_z": 20 * np.sin(2 * t) + rng.normal(size=t.size),
    }
    refactored = refactor_dataset(fields, make_refactorer("pmgard_hb"))
    return fields, refactored


class TestPrimarySweep:
    def test_monotone_bitrate_and_safe_bounds(self, small_setup):
        fields, refactored = small_setup
        data = fields["velocity_x"]
        points = primary_rd_sweep(refactored["velocity_x"], data, [1e-1, 1e-3, 1e-5])
        rates = [p.bitrate for p in points]
        assert rates == sorted(rates)
        for p in points:
            assert p.actual <= p.estimated * (1 + 1e-9)
            assert p.estimated <= p.requested * (1 + 1e-12)


class TestQoISweep:
    def test_vtot_sweep(self, small_setup):
        fields, refactored = small_setup
        points = qoi_error_sweep(
            refactored, fields, total_velocity(), "VTOT", [1e-2, 1e-4]
        )
        assert len(points) == 2
        for p in points:
            assert p.actual <= p.estimated * (1 + 1e-9)
            assert p.estimated <= p.requested * (1 + 1e-12)
        assert points[0].bitrate < points[1].bitrate

    def test_single_point_helper(self, small_setup):
        fields, refactored = small_setup
        p = qoi_rd_point(refactored, fields, total_velocity(), "VTOT", 1e-3)
        assert p.requested == 1e-3
        assert p.seconds >= 0
        assert p.rounds >= 1


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.0001]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_curve_uses_fields(self, small_setup):
        fields, refactored = small_setup
        points = primary_rd_sweep(refactored["velocity_x"], fields["velocity_x"], [1e-2])
        out = format_curve("VelocityX", points)
        assert "== VelocityX ==" in out
        assert "bitrate" in out
