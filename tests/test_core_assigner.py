"""Tests for Algorithms 3 (assign_eb) and 4 (reassign_eb)."""

import numpy as np
import pytest

from repro.core.assigner import assign_eb, reassign_eb
from repro.core.qois import total_velocity
from repro.core.expressions import Div, Var


class TestAssignEb:
    def test_minimum_tolerance_wins(self):
        # Algorithm 3: variable used by several QoIs takes the tightest tau
        assert assign_eb(10.0, [1e-2, 1e-4, 1e-3]) == pytest.approx(1e-4 * 10.0)

    def test_capped_at_full_relative_bound(self):
        assert assign_eb(5.0, [2.0, 7.0]) == pytest.approx(5.0)

    def test_no_tolerances_gives_range(self):
        assert assign_eb(3.0, []) == pytest.approx(3.0)

    def test_rejects_nonpositive_tolerance(self):
        with pytest.raises(ValueError):
            assign_eb(1.0, [0.0])

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            assign_eb(0.0, [1e-3])


class TestReassignEb:
    def test_tightens_until_tolerance_met(self):
        qoi = total_velocity()
        point = {"velocity_x": 100.0, "velocity_y": 50.0, "velocity_z": 10.0}
        ebs = {k: 10.0 for k in point}
        new = reassign_eb(qoi, tolerance=0.05, point_values=point, current_ebs=ebs)
        env = {k: (np.array([v]), new[k]) for k, v in point.items()}
        _, est = qoi.evaluate(env)
        assert float(np.max(est)) <= 0.05
        assert all(new[k] < ebs[k] for k in point)

    def test_noop_when_already_met(self):
        qoi = total_velocity()
        point = {"velocity_x": 100.0, "velocity_y": 50.0, "velocity_z": 10.0}
        ebs = {k: 1e-9 for k in point}
        new = reassign_eb(qoi, 1.0, point, ebs)
        assert new == ebs

    def test_reduction_uses_factor_c(self):
        qoi = Var("x")  # identity: bound == eps
        new = reassign_eb(qoi, tolerance=0.4, point_values={"x": 1.0}, current_ebs={"x": 1.0}, c=2.0)
        # 1.0 -> 0.5 -> 0.25: two halvings needed to get below 0.4
        assert new["x"] == pytest.approx(0.25)

    def test_domain_failure_recovers(self):
        # division whose denominator interval initially straddles zero
        qoi = Div(Var("a"), Var("b"))
        point = {"a": 1.0, "b": 0.5}
        ebs = {"a": 1.0, "b": 1.0}  # eps_b > |b| -> inf estimate
        new = reassign_eb(qoi, tolerance=0.1, point_values=point, current_ebs=ebs)
        env = {k: (np.array([v]), new[k]) for k, v in point.items()}
        _, est = qoi.evaluate(env)
        assert float(np.max(est)) <= 0.1

    def test_singular_point_raises(self):
        qoi = Div(Var("a"), Var("b"))
        with pytest.raises(RuntimeError, match="singular"):
            reassign_eb(qoi, 1e-6, {"a": 1.0, "b": 0.0}, {"a": 1.0, "b": 1.0}, max_iterations=30)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            reassign_eb(Var("x"), 0.1, {"x": 1.0}, {"x": 1.0}, c=1.0)
