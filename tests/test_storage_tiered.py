"""Tests for the tiered storage fabric (TieredStore + TransferManager)."""

import numpy as np
import pytest

from repro.compressors.base import make_refactorer
from repro.core.qois import qoi_from_spec
from repro.core.retrieval import QoIRequest, refactor_dataset
from repro.service.service import RetrievalService
from repro.storage.archive import Archive
from repro.storage.remote import InMemoryObjectBucket, KeyValueFragmentStore
from repro.storage.store import FragmentStore, ShardedDiskStore, open_store
from repro.storage.tiered import TieredStore, TransferManager


def seeded_slow(entries):
    slow = FragmentStore()
    for (var, seg), payload in entries.items():
        slow.put(var, seg, payload)
    return slow


PAYLOADS = {("v", f"s{i}"): bytes([i]) * (10 + i) for i in range(8)}


class TestTieredReads:
    def test_index_is_the_union_of_both_tiers(self):
        slow = seeded_slow(PAYLOADS)
        fast = FragmentStore()
        fast.put("pre", "warm", b"already-fast")
        store = TieredStore(fast, slow)
        assert set(store.keys()) == set(PAYLOADS) | {("pre", "warm")}
        assert store.nbytes() == slow.nbytes() + fast.nbytes()
        assert store.resident("pre", "warm")

    def test_cold_get_served_from_slow(self):
        store = TieredStore(FragmentStore(), seeded_slow(PAYLOADS))
        assert store.get("v", "s0") == PAYLOADS[("v", "s0")]
        stats = store.stats()
        assert stats.slow_hits == 1 and stats.fast_hits == 0

    def test_get_many_coalesces_misses_into_one_slow_trip(self):
        slow = seeded_slow(PAYLOADS)
        store = TieredStore(FragmentStore(), slow)
        out = store.get_many(list(PAYLOADS))
        assert out == PAYLOADS
        assert slow.round_trips == 1  # all eight misses, one slow round trip

    def test_mixed_batch_splits_between_tiers(self):
        slow = seeded_slow(PAYLOADS)
        store = TieredStore(FragmentStore(), slow, promote_after=1)
        store.get_many([("v", "s0"), ("v", "s1")])
        store.transfer.run_once()  # s0/s1 now resident
        before = slow.round_trips
        out = store.get_many([("v", "s0"), ("v", "s1"), ("v", "s2"), ("v", "s3")])
        assert out == {k: PAYLOADS[k] for k in out}
        assert slow.round_trips == before + 1  # only the two misses went slow
        stats = store.stats()
        assert stats.fast_hits >= 2

    def test_missing_key_raises_without_touching_tiers(self):
        slow = seeded_slow(PAYLOADS)
        store = TieredStore(FragmentStore(), slow)
        with pytest.raises(KeyError):
            store.get("v", "nope")
        with pytest.raises(KeyError) as exc:
            store.get_many([("v", "s0"), ("v", "nope")])
        assert ("v", "nope") in exc.value.args[0]
        assert slow.reads == 0

    def test_demotion_racing_get_falls_back_to_slow(self):
        slow = seeded_slow(PAYLOADS)
        store = TieredStore(FragmentStore(), slow, promote_after=1)
        store.get("v", "s0")
        store.transfer.run_once()
        assert store.resident("v", "s0")
        # simulate a demotion the residency snapshot missed
        store.fast.delete("v", "s0")
        assert store.get("v", "s0") == PAYLOADS[("v", "s0")]


class TestTieredWrites:
    def test_write_through_lands_on_both_tiers(self):
        slow, fast = FragmentStore(), FragmentStore()
        store = TieredStore(fast, slow, policy="write-through")
        store.put("w", "s0", b"abc")
        assert slow.get("w", "s0") == b"abc"
        assert fast.get("w", "s0") == b"abc"
        assert store.stats().dirty_fragments == 0

    def test_write_back_defers_slow_tier_until_flush(self):
        slow, fast = FragmentStore(), FragmentStore()
        store = TieredStore(fast, slow, policy="write-back")
        store.put("w", "s0", b"abc")
        assert not slow.has("w", "s0")
        assert store.get("w", "s0") == b"abc"  # served from fast meanwhile
        assert store.stats().dirty_fragments == 1
        assert store.flush() == 1
        assert slow.get("w", "s0") == b"abc"
        assert store.stats().dirty_fragments == 0

    def test_close_flushes_write_backs(self):
        slow = FragmentStore()
        store = TieredStore(FragmentStore(), slow, policy="write-back")
        store.put("w", "s0", b"abc")
        store.close()
        assert slow.get("w", "s0") == b"abc"

    def test_delete_removes_from_both_tiers(self):
        slow = seeded_slow(PAYLOADS)
        store = TieredStore(FragmentStore(), slow, promote_after=1)
        store.get("v", "s0")
        store.transfer.run_once()
        store.delete("v", "s0")
        assert not store.has("v", "s0")
        assert not slow.has("v", "s0")
        with pytest.raises(KeyError):
            store.get("v", "s0")

    def test_delete_racing_flush_does_not_resurrect_in_slow_tier(self):
        """A delete landing mid-flush must not leave a copy in the slow
        tier (which would resurrect the fragment on reopen)."""
        holder = {}

        class RacingSlow(FragmentStore):
            def put_many(self, items):
                items = list(items)
                super().put_many(items)
                tiered = holder.get("store")
                for variable, segment, _ in items:
                    if tiered is not None and tiered.has(variable, segment):
                        tiered.delete(variable, segment)  # client delete mid-flush

        slow = RacingSlow()
        store = TieredStore(FragmentStore(), slow, policy="write-back")
        holder["store"] = store
        store.put("w", "s0", b"abc")
        store.flush()
        assert not store.has("w", "s0")
        assert not slow.has("w", "s0")  # the flushed copy was undone

    def test_reput_racing_flush_keeps_dirty_mark(self):
        """A re-put landing while its old payload is being flushed must
        keep the key dirty, so the newer bytes reach the slow tier on
        the next cycle instead of being silently dropped."""
        holder = {}

        class RacingSlow(FragmentStore):
            def put_many(self, items):
                items = list(items)
                super().put_many(items)
                tiered = holder.get("store")
                if tiered is not None and not holder.get("raced"):
                    holder["raced"] = True
                    tiered.put("w", "s0", b"NEWER")  # client re-put mid-flush

        slow = RacingSlow()
        store = TieredStore(FragmentStore(), slow, policy="write-back")
        holder["store"] = store
        store.put("w", "s0", b"old")
        assert store.flush() == 0  # the staged payload was superseded mid-flight
        assert store.stats().dirty_fragments == 1
        assert store.flush() == 1
        assert slow.get("w", "s0") == b"NEWER"

    def test_delete_racing_promotion_leaves_no_fast_orphan(self):
        """A delete landing mid-promotion must not leave an unreachable
        fast-tier copy eating the byte budget."""
        holder = {}

        class RacingFast(FragmentStore):
            def put(self, variable, segment, payload):
                super().put(variable, segment, payload)
                tiered = holder.get("store")
                if tiered is not None and tiered.has(variable, segment):
                    tiered.delete(variable, segment)  # client delete mid-promotion

        slow = seeded_slow({("v", "s0"): b"payload"})
        store = TieredStore(RacingFast(), slow, promote_after=1)
        holder["store"] = store
        store.get("v", "s0")
        store.transfer.run_once()
        assert not store.has("v", "s0")
        assert not store.resident("v", "s0")
        assert not store.fast.has("v", "s0")  # no orphan copy
        assert store.stats().promotions == 0

    def test_rejects_unknown_policy_and_bad_knobs(self):
        with pytest.raises(ValueError):
            TieredStore(FragmentStore(), FragmentStore(), policy="write-around")
        with pytest.raises(ValueError):
            TieredStore(FragmentStore(), FragmentStore(), promote_after=0)
        with pytest.raises(ValueError):
            TransferManager(
                TieredStore(FragmentStore(), FragmentStore()), interval=0
            )


class TestPromotionDemotion:
    def test_hot_fragments_promote_in_one_coalesced_batch(self):
        slow = seeded_slow(PAYLOADS)
        store = TieredStore(FragmentStore(), slow, promote_after=2)
        for _ in range(2):
            store.get_many([("v", "s0"), ("v", "s1")])
        store.get("v", "s7")  # only one access: below the threshold
        before = slow.round_trips
        moved = store.transfer.run_once()
        assert moved["promoted"] == 2
        assert slow.round_trips == before + 1  # one batched promotion read
        assert store.resident("v", "s0") and store.resident("v", "s1")
        assert not store.resident("v", "s7")

    def test_promotion_respects_byte_budget(self):
        slow = seeded_slow(PAYLOADS)
        budget = len(PAYLOADS[("v", "s0")]) + len(PAYLOADS[("v", "s1")])
        store = TieredStore(
            FragmentStore(), slow, fast_budget_bytes=budget, promote_after=1
        )
        store.get_many(list(PAYLOADS))
        store.transfer.run_once()
        assert store.fast.nbytes() <= budget
        assert store.stats().promotions >= 1

    def test_demotion_evicts_coldest_first_and_preserves_data(self):
        slow, fast = FragmentStore(), FragmentStore()
        store = TieredStore(fast, slow, policy="write-back", fast_budget_bytes=8)
        store.put("w", "cold", b"0123")
        store.put("w", "warm", b"4567")
        store.put("w", "hot", b"89ab")  # 12 B resident > 8 B budget
        store.get("w", "warm")
        store.get("w", "hot")
        store.transfer.run_once()
        assert store.fast.nbytes() <= 8
        assert not store.resident("w", "cold")  # least recently touched
        # demotion flushed the dirty fragment before deleting the fast copy
        assert store.get("w", "cold") == b"0123"
        assert store.stats().demotions >= 1

    def test_promotion_tallies_reset_after_promotion(self):
        slow = seeded_slow(PAYLOADS)
        store = TieredStore(FragmentStore(), slow, promote_after=1)
        store.get("v", "s0")
        store.transfer.run_once()
        # demote it again; without fresh traffic it must not re-promote
        store.fast_budget_bytes = 0
        store.transfer.run_once()
        assert not store.resident("v", "s0")
        store.fast_budget_bytes = None
        moved = store.transfer.run_once()
        assert moved["promoted"] == 0

    def test_background_thread_lifecycle(self):
        store = TieredStore(
            FragmentStore(), seeded_slow(PAYLOADS), transfer_interval=0.01,
            promote_after=1,
        )
        manager = store.start_transfer()
        assert manager.running
        store.get("v", "s0")
        import time

        deadline = time.monotonic() + 5.0
        while not store.resident("v", "s0") and time.monotonic() < deadline:
            time.sleep(0.01)
        assert store.resident("v", "s0")  # the thread promoted it
        store.close()
        assert not manager.running


class TestTieredURL:
    def test_from_url_over_kv_style_directory(self, tmp_path):
        slow_dir = str(tmp_path / "slow")
        slow = ShardedDiskStore(slow_dir)
        slow.put("v", "s0", b"payload")
        store = open_store(
            f"tiered://{tmp_path / 'fast'}?slow={slow_dir}&budget=1k"
            f"&promote_after=3&policy=write-back"
        )
        assert isinstance(store, TieredStore)
        assert store.fast_budget_bytes == 1024
        assert store.promote_after == 3
        assert store.policy == "write-back"
        assert store.get("v", "s0") == b"payload"
        store.close()

    def test_from_url_requires_slow_backend(self):
        with pytest.raises(ValueError):
            open_store("tiered:///fast/dir")

    def test_memory_fast_tier_when_path_empty(self, tmp_path):
        slow_dir = str(tmp_path / "slow")
        ShardedDiskStore(slow_dir).put("v", "s0", b"x")
        store = open_store(f"tiered://?slow={slow_dir}")
        assert isinstance(store.fast, FragmentStore)
        assert type(store.fast) is FragmentStore  # plain in-memory tier
        store.close()


class TestTieredRetrievalIntegration:
    """The deployment shape: service + shared cache over a tiered fabric."""

    @pytest.fixture(scope="class")
    def archived(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("tiered-archive")
        rng = np.random.default_rng(3)
        t = np.linspace(0, 8, 1500)
        fields = {
            "vx": 60 * np.sin(t) + rng.normal(size=t.size),
            "vy": 30 * np.cos(t) + rng.normal(size=t.size),
            "vz": 10 * np.sin(2 * t) + rng.normal(size=t.size),
        }
        store = ShardedDiskStore(str(tmp / "ar"))
        archive = Archive(store)
        archive.save_dataset(
            refactor_dataset(fields, make_refactorer("pmgard_hb", num_planes=32))
        )
        ranges = {k: float(np.ptp(v)) for k, v in fields.items()}
        qoi = qoi_from_spec("vtot", sorted(fields))
        env = {k: (v, 0.0) for k, v in fields.items()}
        return str(tmp / "ar"), ranges, qoi, float(np.ptp(qoi.value(env)))

    def test_service_routes_batched_misses_to_slow_tier_coalesced(self, archived):
        archive_dir, ranges, qoi, qoi_range = archived
        slow = KeyValueFragmentStore(InMemoryObjectBucket())
        for var, seg in ShardedDiskStore(archive_dir).keys():
            slow.put(var, seg, ShardedDiskStore(archive_dir).get(var, seg))
        tiered = TieredStore(FragmentStore(), slow, promote_after=1)
        service = RetrievalService(tiered, value_ranges=ranges)
        with service.open_session() as session:
            result = session.retrieve(
                [QoIRequest("vtot", qoi, 1e-3, qoi_range)]
            )
        assert result.all_satisfied
        # the pipelined rounds moved through the cache into few coalesced
        # slow-tier trips — not one per fragment
        assert slow.reads > 10
        assert slow.round_trips <= result.rounds * 4 + 8
        stats = service.stats()
        assert stats.tiers is not None
        assert stats.tiers.slow_hits == slow.reads

    def test_promoted_rerun_is_bit_identical_and_mostly_fast(self, archived):
        archive_dir, ranges, qoi, qoi_range = archived
        slow = ShardedDiskStore(archive_dir)
        tiered = TieredStore(FragmentStore(), slow, promote_after=1)

        def run():
            service = RetrievalService(tiered, value_ranges=ranges)
            with service.open_session() as session:
                return session.retrieve([QoIRequest("vtot", qoi, 1e-3, qoi_range)])

        cold = run()
        cold_slow_trips = tiered.stats().slow_round_trips
        tiered.transfer.run_once()
        warm = run()
        warm_slow_trips = tiered.stats().slow_round_trips - cold_slow_trips
        assert warm.total_bytes == cold.total_bytes
        assert warm.estimated_errors == cold.estimated_errors
        for name in cold.data:
            assert np.array_equal(cold.data[name], warm.data[name])
        # promotion reads cost one batch; the warm run itself needs at
        # most stray trips for fragments promotion could not see
        assert warm_slow_trips <= max(2, cold_slow_trips // 2)
