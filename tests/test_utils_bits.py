"""Unit and property tests for repro.utils.bits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bits import (
    pack_uint_field,
    pack_varlen_codes,
    unpack_bits,
    unpack_uint_field,
)


class TestVarlenCodes:
    def test_single_code(self):
        payload, nbits = pack_varlen_codes(np.array([0b101], dtype=np.uint64), np.array([3]))
        assert nbits == 3
        bits = unpack_bits(payload, nbits)
        np.testing.assert_array_equal(bits, [1, 0, 1])

    def test_mixed_lengths(self):
        codes = np.array([0b1, 0b01, 0b111], dtype=np.uint64)
        lengths = np.array([1, 2, 3])
        payload, nbits = pack_varlen_codes(codes, lengths)
        assert nbits == 6
        bits = unpack_bits(payload, nbits)
        np.testing.assert_array_equal(bits, [1, 0, 1, 1, 1, 1])

    def test_empty(self):
        payload, nbits = pack_varlen_codes(np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64))
        assert payload == b"" and nbits == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pack_varlen_codes(np.zeros(2, dtype=np.uint64), np.zeros(3, dtype=np.int64))

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            pack_varlen_codes(np.array([1], dtype=np.uint64), np.array([0]))

    @given(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=20), st.integers(min_value=0)),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, items):
        lengths = np.array([L for L, _ in items], dtype=np.int64)
        codes = np.array([v % (1 << L) for L, v in items], dtype=np.uint64)
        payload, nbits = pack_varlen_codes(codes, lengths)
        bits = unpack_bits(payload, nbits)
        pos = 0
        for code, L in zip(codes, lengths):
            chunk = bits[pos : pos + L]
            value = int("".join(map(str, chunk)), 2)
            assert value == int(code)
            pos += L
        assert pos == nbits


class TestUintField:
    @pytest.mark.parametrize("width", [1, 5, 8, 13, 32, 64])
    def test_roundtrip(self, width):
        rng = np.random.default_rng(width)
        hi = (1 << width) - 1
        values = rng.integers(0, hi, size=97, endpoint=True, dtype=np.uint64)
        payload = pack_uint_field(values, width)
        out = unpack_uint_field(payload, width, values.size)
        np.testing.assert_array_equal(out, values)

    def test_bad_width(self):
        with pytest.raises(ValueError):
            pack_uint_field(np.zeros(1, dtype=np.uint64), 0)
        with pytest.raises(ValueError):
            pack_uint_field(np.zeros(1, dtype=np.uint64), 65)

    def test_truncated_payload(self):
        with pytest.raises(ValueError):
            unpack_bits(b"\x00", 100)
