"""Contract tests for the top-level public API surface."""

import numpy as np
import pytest

import repro


class TestExports:
    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_compressor_registry_names(self):
        for name in ("psz3", "psz3_delta", "pmgard", "pmgard_hb", "pzfp"):
            assert repro.make_refactorer(name) is not None


class TestReadmeQuickstart:
    """The README's quickstart snippet must keep working verbatim."""

    def test_quickstart_flow(self):
        fields = repro.data.ge_cfd(num_nodes=2000)
        refactored = repro.refactor_dataset(
            fields, repro.make_refactorer("pmgard_hb")
        )
        ranges = {k: float(v.max() - v.min()) for k, v in fields.items()}

        qoi = repro.mach_number()
        truth = qoi.value({k: (v, 0.0) for k, v in fields.items()})
        request = repro.QoIRequest(
            "Mach", qoi, tolerance=1e-4,
            qoi_range=float(truth.max() - truth.min()),
        )
        result = repro.QoIRetriever(refactored, ranges).retrieve([request])
        assert result.all_satisfied
        assert result.total_bytes > 0

    def test_custom_expression_snippet(self):
        from repro import Radical, Sqrt, Var

        kinetic = 0.5 * Var("density") * Var("velocity_x") ** 2
        sutherland = Radical(Var("T"), c=110.4)
        anything = Sqrt(kinetic) / (1.0 + sutherland)
        env = {
            "density": (np.array([1.2]), 1e-4),
            "velocity_x": (np.array([100.0]), 1e-3),
            "T": (np.array([300.0]), 1e-2),
        }
        value, bound = anything.evaluate(env)
        assert np.isfinite(value).all()
        assert np.isfinite(bound).all()

    def test_docstring_example_shape(self):
        # the module docstring promises this flow
        fields = {k: v for k, v in repro.data.ge_cfd(num_nodes=1500).items()
                  if k.startswith("velocity")}
        refactored = repro.refactor_dataset(fields, repro.make_refactorer("pmgard_hb"))
        ranges = {k: float(v.max() - v.min()) for k, v in fields.items()}
        retriever = repro.QoIRetriever(refactored, ranges)
        qoi = repro.total_velocity()
        truth = qoi.value({k: (v, 0.0) for k, v in fields.items()})
        result = retriever.retrieve([
            repro.QoIRequest("VTOT", qoi, tolerance=1e-3,
                             qoi_range=float(np.ptp(truth))),
        ])
        assert result.all_satisfied
