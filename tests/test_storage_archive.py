"""Round-trip tests for the fragment-addressable archive layer."""

import numpy as np
import pytest

from repro.compressors.base import make_refactorer
from repro.storage.archive import Archive
from repro.storage.store import DiskFragmentStore, FragmentStore

METHODS = ["psz3", "psz3_delta", "pmgard", "pmgard_hb"]


def field(n=3000, seed=0):
    rng = np.random.default_rng(seed)
    return np.sin(np.linspace(0, 15, n)) * 50 + rng.normal(size=n)


@pytest.mark.parametrize("method", METHODS)
class TestRoundTrip:
    def test_reader_equivalence(self, method):
        data = field()
        original = make_refactorer(method).refactor(data)
        archive = Archive(FragmentStore())
        archive.save("v", original)
        restored = archive.load("v")

        r1, r2 = original.reader(), restored.reader()
        for eb in (1e-1, 1e-3, 1e-5):
            rec1 = r1.request(eb)
            rec2 = r2.request(eb)
            np.testing.assert_array_equal(rec1, rec2)
            assert r1.bytes_retrieved == r2.bytes_retrieved
            assert r1.current_error_bound == r2.current_error_bound

    def test_total_bytes_preserved(self, method):
        data = field(seed=1)
        original = make_refactorer(method).refactor(data)
        archive = Archive(FragmentStore())
        archive.save("v", original)
        assert archive.load("v").total_bytes == original.total_bytes


class TestFragmentLayout:
    def test_pmgard_fragments_individually_addressable(self):
        data = field(seed=2)
        refactored = make_refactorer("pmgard_hb").refactor(data)
        store = FragmentStore()
        Archive(store).save("v", refactored)
        segs = store.segments("v")
        assert "coarse" in segs
        assert any(s.startswith("L00_p") for s in segs)
        assert any(s.endswith("_signs") for s in segs)
        # one fragment per plane: partial retrieval = partial read
        n_planes = sum(
            s.num_planes for s in refactored.streams if s.exponent is not None
        )
        assert sum(1 for s in segs if "_p" in s) == n_planes

    def test_snapshot_fragments(self):
        data = field(seed=3)
        refactored = make_refactorer("psz3").refactor(data)
        store = FragmentStore()
        Archive(store).save("v", refactored)
        segs = store.segments("v")
        assert sum(1 for s in segs if s.startswith("snapshot_")) == len(refactored.blobs)
        assert "lossless" in segs

    def test_on_disk_archive(self, tmp_path):
        data = field(seed=4)
        refactored = make_refactorer("pmgard_hb").refactor(data)
        store = DiskFragmentStore(str(tmp_path / "archive"))
        archive = Archive(store)
        archive.save("pressure", refactored)
        restored = archive.load("pressure")
        rec = restored.reader().request(1e-4)
        assert np.max(np.abs(rec - data)) <= 1e-4


class TestBulkHelpers:
    def test_save_load_dataset(self):
        fields = {"a": field(seed=5), "b": field(seed=6)}
        refactored = {k: make_refactorer("pmgard_hb").refactor(v) for k, v in fields.items()}
        archive = Archive(FragmentStore())
        archive.save_dataset(refactored)
        assert sorted(archive.variables()) == ["a", "b"]
        restored = archive.load_dataset(["a", "b"])
        for name in fields:
            rec = restored[name].reader().request(1e-5)
            assert np.max(np.abs(rec - fields[name])) <= 1e-5

    def test_unknown_kind_rejected(self):
        archive = Archive(FragmentStore())
        with pytest.raises(TypeError):
            archive.save("v", object())

    def test_corrupt_index(self):
        store = FragmentStore()
        store.put("v", "_index.json", b'{"kind": "martian"}')
        with pytest.raises(ValueError, match="unknown archive kind"):
            Archive(store).load("v")
