"""Tests for per-axis prediction primitives."""

import numpy as np
import pytest

from repro.transforms.interpolation import (
    coarse_shape,
    fine_node_mask,
    predict_along_axis,
    split_even_odd,
)


class TestSplit:
    def test_views_not_copies(self):
        a = np.arange(10.0)
        even, odd = split_even_odd(a, 0)
        assert even.base is a and odd.base is a

    def test_sizes_odd_length(self):
        even, odd = split_even_odd(np.arange(7.0), 0)
        assert even.size == 4 and odd.size == 3

    def test_sizes_even_length(self):
        even, odd = split_even_odd(np.arange(8.0), 0)
        assert even.size == 4 and odd.size == 4

    def test_multidim_axis1(self):
        a = np.arange(12.0).reshape(3, 4)
        even, odd = split_even_odd(a, 1)
        assert even.shape == (3, 2) and odd.shape == (3, 2)


class TestPredict:
    def test_linear_data_predicted_exactly_odd_length(self):
        # linear data: interior odd nodes are exact averages
        x = np.linspace(0, 1, 9)
        even, odd = split_even_odd(x, 0)
        pred = predict_along_axis(even, 0, odd.size)
        np.testing.assert_allclose(pred, odd)

    def test_even_length_last_node_copies_left(self):
        x = np.array([0.0, 1.0, 2.0, 10.0])
        even, odd = split_even_odd(x, 0)
        pred = predict_along_axis(even, 0, odd.size)
        # odd node 0 (pos 1): (x0+x2)/2 = 1; odd node 1 (pos 3): copy x2 = 2
        np.testing.assert_allclose(pred, [1.0, 2.0])

    def test_convexity_never_exceeds_range(self):
        rng = np.random.default_rng(0)
        even = rng.normal(size=33)
        pred = predict_along_axis(even, 0, 32)
        assert pred.max() <= even.max() + 1e-12
        assert pred.min() >= even.min() - 1e-12

    def test_axis1(self):
        a = np.arange(20.0).reshape(4, 5)
        even, odd = split_even_odd(a, 1)
        pred = predict_along_axis(even, 1, odd.shape[1])
        np.testing.assert_allclose(pred, odd)  # data linear along axis 1

    def test_invalid_odd_size(self):
        with pytest.raises(ValueError):
            predict_along_axis(np.arange(3.0), 0, 5)


class TestMasksAndShapes:
    def test_coarse_shape(self):
        assert coarse_shape((8, 9, 2)) == (4, 5, 1)

    def test_fine_mask_counts(self):
        mask = fine_node_mask((5, 5))
        assert int(mask.sum()) == 25 - 9  # 3x3 corner is coarse

    def test_fine_mask_corner_false(self):
        mask = fine_node_mask((4, 4))
        assert not mask[0, 0] and not mask[2, 2]
        assert mask[1, 1] and mask[0, 1]
