"""Tests for the QoI expression system (composition calculus)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expressions import (
    Add,
    Const,
    Div,
    Mul,
    Pow,
    Radical,
    Sqrt,
    Var,
    polynomial,
    product,
)


def env_of(**kwargs):
    return {k: (np.asarray(v[0], dtype=float), v[1]) for k, v in kwargs.items()}


class TestLeaves:
    def test_var_returns_env_pair(self):
        v, e = Var("x").evaluate(env_of(x=([1.0, 2.0], 0.5)))
        np.testing.assert_array_equal(v, [1.0, 2.0])
        np.testing.assert_array_equal(e, [0.5, 0.5])

    def test_var_missing_raises(self):
        with pytest.raises(KeyError, match="missing"):
            Var("y").evaluate(env_of(x=([1.0], 0.1)))

    def test_var_empty_name(self):
        with pytest.raises(ValueError):
            Var("")

    def test_const_zero_error(self):
        v, e = Const(3.5).evaluate({})
        assert v == 3.5 and e == 0.0

    def test_per_point_eps(self):
        eps = np.array([0.1, 0.2, 0.3])
        v, e = Var("x").evaluate({"x": (np.ones(3), eps)})
        np.testing.assert_array_equal(e, eps)


class TestOperatorSugar:
    def test_add_sub(self):
        expr = Var("a") + 2.0 - Var("b")
        v, _ = expr.evaluate(env_of(a=([5.0], 0.0), b=([1.0], 0.0)))
        np.testing.assert_allclose(v, [6.0])

    def test_mul_div_pow(self):
        expr = (Var("a") * 3.0) / Var("b") ** 2
        v, _ = expr.evaluate(env_of(a=([8.0], 0.0), b=([2.0], 0.0)))
        np.testing.assert_allclose(v, [6.0])

    def test_rops(self):
        expr = 1.0 / (2.0 + Var("x") * 1.0)
        v, _ = expr.evaluate(env_of(x=([2.0], 0.0)))
        np.testing.assert_allclose(v, [0.25])

    def test_type_error(self):
        with pytest.raises(TypeError):
            Var("x") + "nope"

    def test_variables_set(self):
        expr = Sqrt(Var("a") + Var("b") * Var("c"))
        assert expr.variables() == frozenset({"a", "b", "c"})


class TestCompositionBounds:
    """Bound propagation through trees must dominate sampled true errors."""

    def _check(self, expr, env, true_fn, samples=25, seed=0):
        value, bound = expr.evaluate(env)
        rng = np.random.default_rng(seed)
        names = sorted(expr.variables())
        worst = np.zeros_like(np.asarray(value, dtype=float))
        for _ in range(samples):
            perturbed = {}
            for name in names:
                x, eps = env[name]
                x = np.asarray(x, dtype=float)
                shift = rng.uniform(-1, 1, size=x.shape) * eps
                perturbed[name] = x + shift
            worst = np.maximum(worst, np.abs(true_fn(perturbed) - value))
        finite = np.isfinite(bound)
        assert np.all(worst[finite] <= bound[finite] * (1 + 1e-9) + 1e-300)

    def test_nested_sqrt_of_sum_of_squares(self):
        expr = Sqrt(Add([Pow(Var("x"), 2), Pow(Var("y"), 2)]))
        env = env_of(x=(np.linspace(-3, 3, 50), 0.01), y=(np.linspace(1, 4, 50), 0.02))
        self._check(expr, env, lambda p: np.sqrt(p["x"] ** 2 + p["y"] ** 2))

    def test_rational_composition(self):
        expr = Div(Var("x"), Add([Var("y"), 10.0]))
        env = env_of(x=(np.linspace(1, 5, 30), 0.05), y=(np.linspace(0, 2, 30), 0.05))
        self._check(expr, env, lambda p: p["x"] / (p["y"] + 10.0))

    def test_radical_composition(self):
        expr = Radical(Mul(Var("x"), Var("x")), c=1.0)
        env = env_of(x=(np.linspace(-2, 2, 40), 0.01))
        self._check(expr, env, lambda p: 1.0 / (p["x"] ** 2 + 1.0))

    def test_half_integer_power(self):
        expr = Pow(Var("x"), 2.5)
        env = env_of(x=(np.linspace(0.5, 4, 30), 0.02))
        self._check(expr, env, lambda p: np.clip(p["x"], 0, None) ** 2.5)

    @given(st.floats(0.1, 100), st.floats(1e-6, 1e-2), st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_product_chain_property(self, x0, eps, seed):
        rng = np.random.default_rng(seed)
        expr = product(Var("a"), Var("b"), Var("c"))
        vals = {n: np.array([x0 * rng.uniform(0.5, 2)]) for n in "abc"}
        env = {n: (v, eps) for n, v in vals.items()}
        value, bound = expr.evaluate(env)
        worst = 0.0
        for _ in range(20):
            p = {n: v + rng.uniform(-eps, eps, v.shape) for n, v in vals.items()}
            worst = max(worst, abs((p["a"] * p["b"] * p["c"] - value).item()))
        assert worst <= bound.item() * (1 + 1e-9)


class TestPolynomialHelper:
    def test_matches_direct_evaluation(self):
        expr = polynomial(Var("x"), [1.0, -2.0, 0.0, 3.0])  # 1 - 2x + 3x^3
        x = np.linspace(-1, 1, 11)
        v, _ = expr.evaluate(env_of(x=(x, 0.0)))
        np.testing.assert_allclose(v, 1 - 2 * x + 3 * x**3)

    def test_all_zero_coefficients(self):
        expr = polynomial(Var("x"), [0.0, 0.0])
        v, e = expr.evaluate(env_of(x=([1.0], 0.5)))
        assert float(v) == 0.0 and float(e) == 0.0

    def test_exact_at_zero_eps(self):
        expr = polynomial(Var("x"), [2.0, 1.0])
        _, bound = expr.evaluate(env_of(x=([3.0], 0.0)))
        np.testing.assert_allclose(bound, 0.0)


class TestPowValidation:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Pow(Var("x"), -1)

    def test_rejects_non_half(self):
        with pytest.raises(ValueError):
            Pow(Var("x"), 1.3)

    def test_pow_half_is_sqrt(self):
        env = env_of(x=([4.0], 0.1))
        v1, b1 = Pow(Var("x"), 0.5).evaluate(env)
        v2, b2 = Sqrt(Var("x")).evaluate(env)
        np.testing.assert_allclose(v1, v2)
        np.testing.assert_allclose(b1, b2)


class TestDomainFailures:
    def test_division_near_zero_gives_inf(self):
        expr = Div(Const(1.0), Var("d"))
        _, bound = expr.evaluate(env_of(d=([0.001], 0.5)))
        assert np.isinf(bound.item())

    def test_inf_propagates_through_parents(self):
        expr = Sqrt(Div(Const(1.0), Var("d")))
        _, bound = expr.evaluate(env_of(d=([0.001], 0.5)))
        assert np.isinf(bound.item())
