"""Tests for the GE/NYX/S3D QoI builders against direct physics formulas."""

import numpy as np
import pytest

from repro.core.qois import (
    GAMMA,
    GE_QOIS,
    MACH_EXPONENT,
    MU_REF,
    R_GAS,
    SUTHERLAND_S,
    T_REF,
    mach_number,
    molar_product,
    speed_of_sound,
    temperature,
    total_pressure,
    total_velocity,
    viscosity,
)


@pytest.fixture(scope="module")
def cfd_env():
    """Physically plausible CFD state with exact values (eps = 0)."""
    rng = np.random.default_rng(0)
    n = 200
    vx = rng.uniform(-100, 300, n)
    vy = rng.uniform(-100, 100, n)
    vz = rng.uniform(-50, 50, n)
    pressure = rng.uniform(5e4, 2e5, n)
    density = rng.uniform(0.5, 2.0, n)
    arrays = dict(velocity_x=vx, velocity_y=vy, velocity_z=vz, pressure=pressure, density=density)
    return {k: (v, 0.0) for k, v in arrays.items()}, arrays


def reference(arrays):
    """Direct NumPy implementations of Eq. (1)-(6)."""
    vx, vy, vz = arrays["velocity_x"], arrays["velocity_y"], arrays["velocity_z"]
    p, d = arrays["pressure"], arrays["density"]
    vtot = np.sqrt(vx**2 + vy**2 + vz**2)
    t = p / (d * R_GAS)
    c = np.sqrt(GAMMA * R_GAS * t)
    mach = vtot / c
    pt = p * (1 + GAMMA / 2 * mach * mach) ** MACH_EXPONENT
    mu = MU_REF * (t / T_REF) ** 1.5 * (T_REF + SUTHERLAND_S) / (t + SUTHERLAND_S)
    return dict(VTOT=vtot, T=t, C=c, Mach=mach, PT=pt, mu=mu)


class TestValuesMatchPhysics:
    @pytest.mark.parametrize("name", ["VTOT", "T", "C", "Mach", "PT", "mu"])
    def test_registry_value(self, cfd_env, name):
        env, arrays = cfd_env
        value, bound = GE_QOIS[name].evaluate(env)
        np.testing.assert_allclose(value, reference(arrays)[name], rtol=1e-12)
        np.testing.assert_allclose(bound, 0.0, atol=1e-20)

    def test_builders_equal_registry(self, cfd_env):
        env, _ = cfd_env
        for built, name in [
            (total_velocity(), "VTOT"),
            (temperature(), "T"),
            (speed_of_sound(), "C"),
            (mach_number(), "Mach"),
            (total_pressure(), "PT"),
            (viscosity(), "mu"),
        ]:
            v1, _ = built.evaluate(env)
            v2, _ = GE_QOIS[name].evaluate(env)
            np.testing.assert_allclose(v1, v2)


class TestBoundGuarantee:
    """Perturbed inputs within eps must keep QoI error under the bound."""

    @pytest.mark.parametrize("name", ["VTOT", "T", "C", "Mach", "PT", "mu"])
    def test_randomized_perturbations(self, cfd_env, name):
        _, arrays = cfd_env
        rng = np.random.default_rng(1)
        eps = {k: 1e-3 * (np.max(v) - np.min(v)) for k, v in arrays.items()}
        env = {k: (v, eps[k]) for k, v in arrays.items()}
        value, bound = GE_QOIS[name].evaluate(env)
        ref_exact = reference(arrays)[name]
        np.testing.assert_allclose(value, ref_exact, rtol=1e-12)
        for _ in range(15):
            perturbed = {
                k: v + rng.uniform(-eps[k], eps[k], v.shape) for k, v in arrays.items()
            }
            err = np.abs(reference(perturbed)[name] - value)
            ok = np.isfinite(bound)
            assert np.all(err[ok] <= bound[ok] * (1 + 1e-9))


class TestMolarProduct:
    def test_two_species(self):
        env = {"x1": (np.array([2.0]), 0.1), "x3": (np.array([3.0]), 0.2)}
        value, bound = molar_product("x1", "x3").evaluate(env)
        assert value.item() == 6.0
        assert bound.item() == pytest.approx(2.0 * 0.2 + 3.0 * 0.1 + 0.02)

    def test_requires_two(self):
        with pytest.raises(ValueError):
            molar_product("x1")

    def test_three_species_chain(self):
        env = {k: (np.array([1.5]), 0.0) for k in ("a", "b", "c")}
        value, _ = molar_product("a", "b", "c").evaluate(env)
        assert value.item() == pytest.approx(1.5**3)


class TestZeroVelocityLooseness:
    """Reproduces the paper's rationale for the zero bitmap (§V-A)."""

    def test_sqrt_bound_loose_for_near_zero_reconstruction(self):
        # a wall node decompressed to a tiny non-zero velocity makes
        # eps / sqrt(x) explode even though the real error is ~eps
        env = {
            "velocity_x": (np.array([1e-9, 100.0]), 1e-3),
            "velocity_y": (np.array([0.0, 50.0]), 1e-3),
            "velocity_z": (np.array([0.0, 10.0]), 1e-3),
        }
        _, bound = total_velocity().evaluate(env)
        worst_true_error = np.sqrt(3) * (1e-3 + 1e-9)
        assert bound[0] > 100 * worst_true_error  # wildly loose
        assert bound[1] < 10 * 1e-3  # regular node stays tight

    def test_masked_zero_node_is_exact(self):
        # with the ZeroMask path (eps = 0 at the node) the bound collapses
        eps = np.array([0.0, 1e-3])
        env = {
            "velocity_x": (np.array([0.0, 100.0]), eps),
            "velocity_y": (np.array([0.0, 50.0]), eps),
            "velocity_z": (np.array([0.0, 10.0]), eps),
        }
        _, bound = total_velocity().evaluate(env)
        assert bound[0] == 0.0
