"""Definition-1 conformance tests shared by all progressive compressors."""

import numpy as np
import pytest

from repro.compressors.base import make_refactorer

NAMES = ["psz3", "psz3_delta", "pmgard", "pmgard_hb"]


def field(shape=(40, 30), seed=0):
    axes = np.meshgrid(*[np.linspace(0, 2 * np.pi, n) for n in shape], indexing="ij")
    rng = np.random.default_rng(seed)
    return np.sin(axes[0]) * np.cos(axes[1]) + 0.02 * rng.normal(size=shape)


@pytest.fixture(scope="module")
def refactored():
    data = field()
    out = {}
    for name in NAMES:
        out[name] = (data, make_refactorer(name).refactor(data))
    return out


@pytest.mark.parametrize("name", NAMES)
class TestDefinitionOne:
    def test_request_meets_bound(self, refactored, name):
        data, ref = refactored[name]
        reader = ref.reader()
        for eb in [1e-1, 1e-3, 1e-5]:
            rec = reader.request(eb)
            assert np.max(np.abs(rec - data)) <= eb * (1 + 1e-9), name

    def test_guaranteed_bound_is_truthful(self, refactored, name):
        data, ref = refactored[name]
        reader = ref.reader()
        reader.request(1e-4)
        actual = np.max(np.abs(reader.reconstruct() - data))
        assert actual <= reader.current_error_bound * (1 + 1e-9)
        assert reader.current_error_bound <= 1e-4 * (1 + 1e-12)

    def test_incremental_bytes_monotone(self, refactored, name):
        _, ref = refactored[name]
        reader = ref.reader()
        sizes = []
        for eb in [1e-1, 1e-2, 1e-3, 1e-4, 1e-5]:
            reader.request(eb)
            sizes.append(reader.bytes_retrieved)
        assert sizes == sorted(sizes)
        assert sizes[-1] > 0

    def test_repeat_request_is_free(self, refactored, name):
        _, ref = refactored[name]
        reader = ref.reader()
        reader.request(1e-3)
        before = reader.bytes_retrieved
        reader.request(1e-3)
        reader.request(1e-2)  # looser: nothing new needed
        assert reader.bytes_retrieved == before

    def test_initial_bound_infinite(self, refactored, name):
        _, ref = refactored[name]
        reader = ref.reader()
        assert reader.current_error_bound == np.inf

    def test_total_bytes_covers_any_reader(self, refactored, name):
        _, ref = refactored[name]
        reader = ref.reader()
        reader.request(1e-9)
        assert reader.bytes_retrieved <= ref.total_bytes


class TestRedundancyOrdering:
    """PSZ3 must pay the snapshot-redundancy cost the paper reports."""

    def test_psz3_redundant_vs_delta(self):
        data = field((64, 48), seed=3)
        ladder = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5]
        totals = {}
        for name in ["psz3", "psz3_delta"]:
            reader = make_refactorer(name).refactor(data).reader()
            for eb in ladder:
                reader.request(eb)
            totals[name] = reader.bytes_retrieved
        assert totals["psz3"] > totals["psz3_delta"]

    def test_hb_tighter_estimate_than_ob(self):
        data = field((64, 48), seed=4)
        results = {}
        for name in ["pmgard", "pmgard_hb"]:
            reader = make_refactorer(name).refactor(data).reader()
            rec = reader.request(1e-4)
            actual = np.max(np.abs(rec - data))
            results[name] = (reader.current_error_bound, actual, reader.bytes_retrieved)
        # both safe...
        for bound, actual, _ in results.values():
            assert actual <= bound
        # ...but the hierarchical basis retrieves fewer bytes for the same
        # requested bound (Fig. 3's over-retrieval gap)
        assert results["pmgard_hb"][2] < results["pmgard"][2]


class TestRegistry:
    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown progressive compressor"):
            make_refactorer("gzip")

    def test_bad_bounds_rejected(self):
        from repro.compressors.psz3 import PSZ3Refactorer
        from repro.compressors.psz3_delta import PSZ3DeltaRefactorer

        for cls in (PSZ3Refactorer, PSZ3DeltaRefactorer):
            with pytest.raises(ValueError):
                cls(relative_bounds=[1e-2, 1e-1])  # not decreasing
            with pytest.raises(ValueError):
                cls(relative_bounds=[])


class TestLosslessTail:
    @pytest.mark.parametrize("name", ["psz3", "psz3_delta"])
    def test_tail_reaches_exactness(self, name):
        data = field((20, 20), seed=5)
        reader = make_refactorer(name).refactor(data).reader()
        rec = reader.request(1e-300)
        np.testing.assert_array_equal(rec, data)
        assert reader.current_error_bound == 0.0

    def test_pmgard_best_effort_floor(self):
        data = field((20, 20), seed=6)
        reader = make_refactorer("pmgard_hb").refactor(data).reader()
        rec = reader.request(1e-300)
        # bitplanes bottom out at the truncation floor, still tiny
        assert np.max(np.abs(rec - data)) <= 1e-10
