"""Concurrency stress: writers, readers, and compaction sharing a store.

The WAL's locking discipline promises that concurrent mutators never
lose a committed put, readers never observe torn bytes, and compaction
can run *while* ingest and retrieval are in flight without disturbing
either.  These tests hammer those promises with real threads:

* batched writers + deleters + a compaction loop on both disk layouts,
  with the final state (and a full reopen) checked bit-for-bit against
  the model;
* a live streaming ingest racing retrieval and compaction through a
  :class:`RetrievalService`;
* the tiered write-back demotion race from the transfer manager
  (demote's read-put-delete vs a concurrent overwrite) — a lost update
  here silently serves stale bytes, which is exactly what the
  ``_mutate_lock`` serialization exists to prevent.

Failures here are race conditions: rerun counts are kept high enough
to make the windows real but runtimes stay a few seconds per test.
"""

import threading

import numpy as np
import pytest

from repro.core.qois import qoi_from_spec
from repro.core.retrieval import QoIRequest
from repro.service.service import RetrievalService
from repro.storage.store import DiskFragmentStore, ShardedDiskStore
from repro.storage.tiered import TieredStore

LAYOUTS = [
    ("flat", DiskFragmentStore),
    ("sharded", lambda root: ShardedDiskStore(root, fanout=8)),
]


def _run_threads(workers) -> None:
    """Start, join, and re-raise the first failure of worker callables."""
    failures = []

    def wrap(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # propagate to the test thread
                failures.append(exc)

        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive(), "worker deadlocked"
    if failures:
        raise failures[0]


class TestConcurrentStoreMutation:
    @pytest.mark.parametrize("layout,make", LAYOUTS)
    def test_no_lost_puts_under_writers_deleters_and_compaction(
        self, tmp_path, layout, make
    ):
        """Every committed put survives; deletes and compaction interleave."""
        root = str(tmp_path / "ar")
        store = make(root)
        writers, rounds, kept = 4, 12, 8

        def writer(w):
            def run():
                for r in range(rounds):
                    # each round: a batch of this writer's keys, then
                    # delete the older generation beyond the keep window
                    batch = [
                        (f"w{w}", f"s{r}_{i}", bytes([w, r, i]) * (i + 1))
                        for i in range(3)
                    ]
                    store.put_many(batch)
                    if r >= kept:
                        for i in range(3):
                            store.delete(f"w{w}", f"s{r - kept}_{i}")

            return run

        def reader():
            for _ in range(60):
                for key in store.keys()[:20]:
                    try:
                        payload = store.get(*key)
                    except KeyError:
                        continue  # deleted between keys() and get()
                    # committed payloads are never torn: the byte
                    # pattern encodes its own key
                    if key[0].startswith("w") and payload:
                        w, r, i = payload[0], payload[1], payload[2]
                        assert key == (f"w{w}", f"s{r}_{i}"), "torn read"

        def compactor():
            for _ in range(10):
                store.compact()

        _run_threads([writer(w) for w in range(writers)] + [reader, compactor])

        expected = {}
        for w in range(writers):
            for r in range(rounds - kept, rounds):
                for i in range(3):
                    expected[(f"w{w}", f"s{r}_{i}")] = bytes([w, r, i]) * (i + 1)
        got = {key: store.get(*key) for key in store.keys()}
        assert got == expected, f"{layout}: lost or torn puts"

        # a reopened handle recovers the identical state, and a final
        # compaction reclaims every tombstoned byte
        store.close()
        reopened = make(root)
        assert {k: reopened.get(*k) for k in reopened.keys()} == expected
        reopened.compact()
        assert reopened.durability().dead_bytes == 0
        reopened.close()


class TestConcurrentServiceIngest:
    def test_ingest_retrieval_and_compaction_share_one_service(self, tmp_path):
        """Live ingest + QoI retrieval + compaction, zero cross-talk."""
        rng = np.random.default_rng(7)
        base = {f"v{k}": rng.standard_normal((8, 8, 8)) for k in range(2)}
        service = RetrievalService.open(str(tmp_path / "ar"))
        service.ingest(base)

        def ingester():
            for step in range(4):
                service.ingest(
                    {"live": rng.standard_normal((8, 8, 8))}, timestep=step
                )

        def retriever():
            for _ in range(4):
                with service.open_session() as session:
                    result = session.retrieve(
                        [
                            QoIRequest(
                                "identity",
                                qoi_from_spec("identity", ["v0"]),
                                5e-3,
                                float(np.ptp(base["v0"])),
                            )
                        ]
                    )
                    assert result.all_satisfied

        def compactor():
            for _ in range(6):
                service.compact()

        _run_threads([ingester, retriever, compactor])

        stats = service.stats()
        assert stats.durability.compactions >= 6
        # every ingested timestep is whole and loadable afterwards
        for step in range(4):
            service.load_refactored(f"live@t{step:04d}", lazy=False)
        service.close()


class TestTieredWriteBackRace:
    def test_demotion_never_loses_a_concurrent_overwrite(self, tmp_path):
        """The PR-5 write-back race: demote vs overwrite of the same key.

        With a tiny fast budget every transfer cycle demotes victims via
        read → slow.put → fast.delete.  An overwrite landing between
        those steps must win: afterwards every key serves its *latest*
        payload.  Without the mutation lock this test loses updates
        within a few cycles.
        """
        store = TieredStore(
            DiskFragmentStore(str(tmp_path / "fast")),
            ShardedDiskStore(str(tmp_path / "slow"), fanout=8),
            fast_budget_bytes=512,
            policy="write-back",
        )
        keys = [("v", f"s{i}") for i in range(8)]
        stop = threading.Event()
        versions = {key: 0 for key in keys}

        def writer():
            for version in range(1, 40):
                for i, key in enumerate(keys):
                    store.put(*key, bytes([i, version % 251]) * 40)
                    versions[key] = version

        def demoter():
            while not stop.is_set():
                store.transfer.run_once()

        threads = [threading.Thread(target=writer)]
        demote_thread = threading.Thread(target=demoter)
        threads[0].start()
        demote_thread.start()
        threads[0].join(timeout=60)
        stop.set()
        demote_thread.join(timeout=60)
        assert not demote_thread.is_alive()

        for i, key in enumerate(keys):
            expected = bytes([i, versions[key] % 251]) * 40
            assert store.get(*key) == expected, f"lost update on {key}"
        store.flush()
        store.close()

        # the durable slow tier holds the final versions too
        slow = ShardedDiskStore(str(tmp_path / "slow"), fanout=8)
        for i, key in enumerate(keys):
            assert slow.get(*key) == bytes([i, versions[key] % 251]) * 40
        slow.close()
