"""Tests for the multi-client retrieval service and its TCP front end."""

import json
import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.compressors.base import make_refactorer
from repro.core.qois import total_velocity
from repro.core.retrieval import QoIRequest, QoIRetriever, refactor_dataset
from repro.service.server import RetrievalServer, ServiceClient, ServiceError
from repro.service.service import RetrievalService
from repro.storage.archive import Archive
from repro.storage.metadata import DatasetManifest, VariableMetadata
from repro.storage.store import FragmentStore, ShardedDiskStore


def make_fields(n=4000, seed=0):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 12, n)
    return {
        "velocity_x": 90 * np.sin(t) + rng.normal(size=n),
        "velocity_y": 45 * np.cos(t) + rng.normal(size=n),
        "velocity_z": 15 * np.sin(2 * t) + rng.normal(size=n),
    }


def archive_into(store, fields, method="pmgard_hb"):
    refactored = refactor_dataset(fields, make_refactorer(method))
    archive = Archive(store)
    manifest = DatasetManifest(dataset="test")
    for name, data in fields.items():
        archive.save(name, refactored[name])
        manifest.add(
            VariableMetadata.from_array(
                name, data, method, refactored[name].total_bytes,
                segments=store.segments(name),
            )
        )
    manifest.save_to(store)
    return refactored


@pytest.fixture(scope="module")
def setup():
    fields = make_fields()
    store = FragmentStore()
    archive_into(store, fields)
    qoi = total_velocity()
    truth = qoi.value({k: (v, 0.0) for k, v in fields.items()})
    qrange = float(truth.max() - truth.min())
    return fields, store, qoi, truth, qrange


def fresh_service(setup_data, **kwargs):
    """A service over a *fresh copy* of the archived store, so per-test
    read counters start from zero."""
    _, store, _, _, _ = setup_data
    copy = FragmentStore()
    for var, seg in store.keys():
        copy.put(var, seg, store._data[(var, seg)])
    return RetrievalService(copy, **kwargs), copy


class TestRetrievalService:
    def test_manifest_loaded_from_store(self, setup):
        service, _ = fresh_service(setup)
        assert sorted(service.variables()) == [
            "velocity_x", "velocity_y", "velocity_z",
        ]
        assert service.value_range("velocity_x") > 0

    def test_second_client_reads_nothing_from_store(self, setup):
        fields, _, qoi, truth, qrange = setup
        service, inner = fresh_service(setup)
        request = [QoIRequest("VTOT", qoi, 1e-3, qrange)]

        first = service.open_session()
        r1 = first.retrieve(request)
        bytes_after_first = inner.bytes_read
        assert r1.all_satisfied and bytes_after_first > 0

        second = service.open_session()
        r2 = second.retrieve(request)
        assert r2.all_satisfied
        # every fragment the second client needed was already cached
        assert inner.bytes_read == bytes_after_first
        stats = service.stats()
        assert stats.cache.hits > 0
        assert stats.sessions_opened == 2

    def test_n_clients_cheaper_than_n_independent_sessions(self, setup):
        """The acceptance criterion at test scale: shared cache strictly
        beats independent sessions on store bytes for identical requests."""
        fields, _, qoi, truth, qrange = setup
        n_clients = 4
        requests = [QoIRequest("VTOT", qoi, 1e-3, qrange)]

        service, shared_inner = fresh_service(setup)
        for _ in range(n_clients):
            session = service.open_session()
            assert session.retrieve(requests).all_satisfied
        shared_bytes = shared_inner.bytes_read

        _, independent_inner = fresh_service(setup)
        archive = Archive(independent_inner)
        ranges = {k: float(v.max() - v.min()) for k, v in fields.items()}
        for _ in range(n_clients):
            refactored = {name: archive.load(name) for name in fields}
            result = QoIRetriever(refactored, ranges).retrieve(requests)
            assert result.all_satisfied
        independent_bytes = independent_inner.bytes_read

        assert shared_bytes < independent_bytes
        assert service.stats().cache.hit_rate > 0.5

    def test_client_session_is_incremental(self, setup):
        fields, _, qoi, truth, qrange = setup
        service, _ = fresh_service(setup)
        session = service.open_session()
        session.retrieve([QoIRequest("VTOT", qoi, 1e-2, qrange)])
        loose = session.bytes_retrieved()
        session.retrieve([QoIRequest("VTOT", qoi, 1e-5, qrange)])
        tight = session.bytes_retrieved()
        assert 0 < loose < tight

        cold = service.open_session()
        cold.retrieve([QoIRequest("VTOT", qoi, 1e-5, qrange)])
        # the two-step client paid no more than a cold client (reader
        # state persisted; only incremental fragments moved)
        assert tight <= cold.bytes_retrieved() * 1.01

    def test_concurrent_clients(self, setup):
        fields, _, qoi, truth, qrange = setup
        service, inner = fresh_service(setup)

        def client(tol):
            session = service.open_session()
            with session:
                result = session.retrieve([QoIRequest("VTOT", qoi, tol, qrange)])
            return result.all_satisfied, session.client_id

        with ThreadPoolExecutor(max_workers=6) as pool:
            outcomes = list(pool.map(client, [1e-2, 1e-3, 1e-4] * 2))
        assert all(ok for ok, _ in outcomes)
        assert len({cid for _, cid in outcomes}) == 6  # unique client ids
        stats = service.stats()
        assert stats.sessions_opened == 6
        assert stats.sessions_active == 0  # all closed
        # single-flight misses: the store never served a fragment twice
        assert inner.reads == stats.cache.misses

    def test_unknown_variable_message_names_known(self, setup):
        service, _ = fresh_service(setup)
        session = service.open_session()
        from repro.core.expressions import Var

        with pytest.raises(KeyError, match="velocity_x"):
            session.retrieve([QoIRequest("bad", Var("nope"), 1e-3)])

    def test_closed_session_rejects_retrieve(self, setup):
        _, _, qoi, _, qrange = setup
        service, _ = fresh_service(setup)
        session = service.open_session()
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.retrieve([QoIRequest("VTOT", qoi, 1e-2, qrange)])

    def test_open_reopened_sharded_archive(self, setup, tmp_path):
        """End to end: archive to a sharded store, reopen via
        RetrievalService.open (auto-detect), retrieve with a guarantee."""
        fields, _, qoi, truth, qrange = setup
        root = str(tmp_path / "archive")
        archive_into(ShardedDiskStore(root), fields)

        service = RetrievalService.open(root)  # auto-detects sharded layout
        assert isinstance(service._inner, ShardedDiskStore)
        session = service.open_session()
        result = session.retrieve([QoIRequest("VTOT", qoi, 1e-4, qrange)])
        assert result.all_satisfied
        rec = qoi.value({k: (result.data[k], 0.0) for k in result.data})
        assert np.max(np.abs(rec - truth)) <= 1e-4 * qrange * (1 + 1e-9)


class TestServer:
    @pytest.fixture()
    def server(self, setup):
        service, _ = fresh_service(setup)
        server = RetrievalServer(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()

    def test_info_and_stats(self, setup, server):
        host, port = server.address
        with ServiceClient(host, port) as client:
            info = client.info()
            assert set(info) == {"velocity_x", "velocity_y", "velocity_z"}
            assert info["velocity_x"]["value_range"] > 0
            stats = client.stats()
            assert stats["sessions_active"] >= 1
            assert "hit_rate" in stats["cache"]

    def test_retrieve_roundtrip_with_data(self, setup, server):
        fields, _, qoi, truth, qrange = setup
        host, port = server.address
        with ServiceClient(host, port) as client:
            response = client.retrieve(
                "vtot", ["velocity_x", "velocity_y", "velocity_z"],
                tolerance=1e-4, qoi_range=qrange, include_data=True,
            )
            assert response["satisfied"]
            rec = qoi.value({k: (response["data"][k], 0.0) for k in response["data"]})
            assert np.max(np.abs(rec - truth)) <= 1e-4 * qrange * (1 + 1e-9)

    def test_connection_session_is_incremental(self, setup, server):
        host, port = server.address
        _, _, _, _, qrange = setup
        fields = ["velocity_x", "velocity_y", "velocity_z"]
        with ServiceClient(host, port) as client:
            loose = client.retrieve("vtot", fields, 1e-2, qrange)
            tight = client.retrieve("vtot", fields, 1e-4, qrange)
            assert tight["session_bytes"] > loose["session_bytes"]
            # the second call only moved the incremental fragments
            assert tight["bytes_retrieved"] == tight["session_bytes"]

    def test_nonfinite_error_is_valid_json(self, setup, server):
        """max_rounds=0 leaves the estimated error at inf; the response
        line must still be strict JSON (no bare Infinity tokens)."""
        import socket

        host, port = server.address
        _, _, _, _, qrange = setup
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall((json.dumps({
                "op": "retrieve", "qoi": "identity", "fields": ["velocity_x"],
                "tolerance": 1e-3, "qoi_range": qrange, "max_rounds": 0,
            }) + "\n").encode())
            line = sock.makefile("rb").readline().decode()
        assert "Infinity" not in line
        response = json.loads(line)
        assert response["ok"] and not response["satisfied"]
        assert float(response["estimated_error"]) == np.inf

    def test_bad_request_keeps_connection_alive(self, setup, server):
        host, port = server.address
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError, match="unknown op"):
                client._call({"op": "frobnicate"})
            with pytest.raises(ServiceError, match="identity expects"):
                client.retrieve("identity", ["a", "b"], 1e-3)
            assert client.stats()["sessions_active"] >= 1  # still connected

    def test_cli_client_against_server(self, setup, server, tmp_path, capsys):
        from repro.cli import main

        _, _, qoi, truth, qrange = setup
        host, port = server.address
        out_dir = str(tmp_path / "rec")
        rc = main([
            "client", "--host", host, "--port", str(port),
            "--qoi", "vtot", "--fields", "velocity_x,velocity_y,velocity_z",
            "--tolerance", "1e-4", "--qoi-range", str(qrange),
            "--out", out_dir,
        ])
        assert rc == 0
        assert "guaranteed QoI error" in capsys.readouterr().out
        with open(os.path.join(out_dir, "report.json")) as fh:
            report = json.load(fh)
        assert report["satisfied"] is True
        rec = np.sqrt(sum(
            np.load(os.path.join(out_dir, f"velocity_{ax}.npy")) ** 2
            for ax in "xyz"
        ))
        assert np.max(np.abs(rec - truth)) <= 1e-4 * qrange * (1 + 1e-9)
