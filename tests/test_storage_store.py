"""Tests for fragment stores and dataset manifests."""

import os

import numpy as np
import pytest

from repro.storage.metadata import DatasetManifest, VariableMetadata
from repro.storage.store import DiskFragmentStore, FragmentStore, ShardedDiskStore


class TestFragmentStore:
    def test_put_get_roundtrip(self):
        store = FragmentStore()
        store.put("pressure", "level0/plane3", b"abc")
        assert store.get("pressure", "level0/plane3") == b"abc"

    def test_missing_key(self):
        with pytest.raises(KeyError):
            FragmentStore().get("x", "seg")

    def test_segments_listing(self):
        store = FragmentStore()
        store.put("v", "s0", b"a")
        store.put("v", "s1", b"bb")
        store.put("w", "s0", b"c")
        assert store.segments("v") == ["s0", "s1"]

    def test_nbytes(self):
        store = FragmentStore()
        store.put("v", "s0", b"aaaa")
        store.put("w", "s0", b"bb")
        assert store.nbytes() == 6
        assert store.nbytes("v") == 4

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            FragmentStore().put("v", "s", [1, 2, 3])

    def test_has(self):
        store = FragmentStore()
        store.put("v", "s", b"x")
        assert store.has("v", "s") and not store.has("v", "t")


class TestDiskStore:
    def test_roundtrip(self, tmp_path):
        store = DiskFragmentStore(str(tmp_path / "frags"))
        payload = bytes(range(256))
        store.put("density", "snap/3", payload)
        assert store.get("density", "snap/3") == payload
        assert store.nbytes() == 256

    def test_key_sanitization(self, tmp_path):
        store = DiskFragmentStore(str(tmp_path / "frags"))
        store.put("a/b..c", "s:1", b"x")
        assert store.get("a/b..c", "s:1") == b"x"

    def test_missing(self, tmp_path):
        store = DiskFragmentStore(str(tmp_path / "frags"))
        with pytest.raises(KeyError):
            store.get("v", "s")

    def test_reopen_serves_previous_fragments(self, tmp_path):
        """Regression: the fragment index must survive a process restart."""
        root = str(tmp_path / "frags")
        store = DiskFragmentStore(root)
        store.put("pressure", "snapshot_000", b"abc")
        store.put("pressure", "snapshot_001", b"defg")
        store.put("density", "coarse", b"hi")

        reopened = DiskFragmentStore(root)
        assert reopened.has("pressure", "snapshot_000")
        assert reopened.get("pressure", "snapshot_001") == b"defg"
        assert reopened.segments("pressure") == ["snapshot_000", "snapshot_001"]
        assert reopened.nbytes() == 9
        assert reopened.nbytes("density") == 2

    def test_reopen_preserves_unsafe_keys(self, tmp_path):
        """The key log restores keys that filename sanitization mangles."""
        root = str(tmp_path / "frags")
        DiskFragmentStore(root).put("a/b..c", "s:1", b"x")
        reopened = DiskFragmentStore(root)
        assert reopened.has("a/b..c", "s:1")
        assert reopened.get("a/b..c", "s:1") == b"x"

    def test_reopen_legacy_directory_without_log(self, tmp_path):
        """Directories written before the key log existed are rescanned."""
        root = str(tmp_path / "frags")
        store = DiskFragmentStore(root)
        store.put("v", "s0", b"abcd")
        os.remove(os.path.join(root, ".repro-index.jsonl"))
        reopened = DiskFragmentStore(root)
        assert reopened.get("v", "s0") == b"abcd"

    def test_read_accounting(self, tmp_path):
        store = DiskFragmentStore(str(tmp_path / "frags"))
        store.put("v", "s0", b"abcd")
        store.get("v", "s0")
        store.get("v", "s0")
        assert store.reads == 2
        assert store.bytes_read == 8


class TestShardedDiskStore:
    def test_roundtrip_and_accounting(self, tmp_path):
        store = ShardedDiskStore(str(tmp_path / "frags"))
        payload = bytes(range(256))
        store.put("density", "snap/3", payload)
        assert store.get("density", "snap/3") == payload
        assert store.nbytes() == 256
        assert store.reads == 1 and store.bytes_read == 256

    def test_fragments_fan_out_into_shard_dirs(self, tmp_path):
        root = tmp_path / "frags"
        store = ShardedDiskStore(str(root), fanout=16)
        for i in range(32):
            store.put("v", f"s{i:02d}", bytes([i]))
        shard_dirs = [p for p in root.iterdir() if p.is_dir()]
        assert len(shard_dirs) > 1          # fragments spread over shards
        assert all(len(p.name) == 3 for p in shard_dirs)
        files = [f for d in shard_dirs for f in d.iterdir()]
        assert len(files) == 32             # one file per fragment

    def test_reopen_serves_previous_fragments(self, tmp_path):
        root = str(tmp_path / "frags")
        store = ShardedDiskStore(root)
        store.put("pressure", "snapshot_000", b"abc")
        store.put("a/b..c", "s:1", b"xy")

        reopened = ShardedDiskStore(root)
        assert reopened.has("pressure", "snapshot_000")
        assert reopened.get("pressure", "snapshot_000") == b"abc"
        assert reopened.get("a/b..c", "s:1") == b"xy"
        assert reopened.nbytes() == 5
        assert set(reopened.keys()) == {("pressure", "snapshot_000"), ("a/b..c", "s:1")}

    def test_sanitize_collisions_stay_distinct(self, tmp_path):
        """``a/b`` and ``a_b`` sanitize identically; the digest suffix
        keeps their files distinct."""
        store = ShardedDiskStore(str(tmp_path / "frags"))
        store.put("a/b", "s", b"slash")
        store.put("a_b", "s", b"under")
        assert store.get("a/b", "s") == b"slash"
        assert store.get("a_b", "s") == b"under"

    def test_overwrite_updates_nbytes(self, tmp_path):
        root = str(tmp_path / "frags")
        store = ShardedDiskStore(root)
        store.put("v", "s", b"abcdef")
        store.put("v", "s", b"xy")
        assert store.nbytes() == 2
        assert ShardedDiskStore(root).nbytes() == 2  # replay keeps last entry

    def test_missing(self, tmp_path):
        store = ShardedDiskStore(str(tmp_path / "frags"))
        with pytest.raises(KeyError):
            store.get("v", "s")

    def test_rejects_bad_fanout(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedDiskStore(str(tmp_path / "frags"), fanout=0)


class TestManifest:
    def test_value_ranges(self):
        manifest = DatasetManifest("demo")
        data = np.array([1.0, 4.0])
        manifest.add(VariableMetadata.from_array("p", data, "pmgard_hb", 100))
        assert manifest.value_ranges() == {"p": 3.0}

    def test_constant_field_range_one(self):
        meta = VariableMetadata.from_array("c", np.ones(5), "psz3", 10)
        assert meta.value_range == 1.0

    def test_json_roundtrip(self):
        manifest = DatasetManifest("demo")
        manifest.add(
            VariableMetadata.from_array(
                "p", np.arange(6.0).reshape(2, 3), "psz3", 42, segments=["s0", "s1"]
            )
        )
        back = DatasetManifest.from_json(manifest.to_json())
        assert back.dataset == "demo"
        meta = back.variables["p"]
        assert meta.shape == (2, 3)
        assert meta.total_bytes == 42
        assert meta.segments == ["s0", "s1"]
