"""Tests for fragment stores and dataset manifests."""

import numpy as np
import pytest

from repro.storage.metadata import DatasetManifest, VariableMetadata
from repro.storage.store import DiskFragmentStore, FragmentStore


class TestFragmentStore:
    def test_put_get_roundtrip(self):
        store = FragmentStore()
        store.put("pressure", "level0/plane3", b"abc")
        assert store.get("pressure", "level0/plane3") == b"abc"

    def test_missing_key(self):
        with pytest.raises(KeyError):
            FragmentStore().get("x", "seg")

    def test_segments_listing(self):
        store = FragmentStore()
        store.put("v", "s0", b"a")
        store.put("v", "s1", b"bb")
        store.put("w", "s0", b"c")
        assert store.segments("v") == ["s0", "s1"]

    def test_nbytes(self):
        store = FragmentStore()
        store.put("v", "s0", b"aaaa")
        store.put("w", "s0", b"bb")
        assert store.nbytes() == 6
        assert store.nbytes("v") == 4

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            FragmentStore().put("v", "s", [1, 2, 3])

    def test_has(self):
        store = FragmentStore()
        store.put("v", "s", b"x")
        assert store.has("v", "s") and not store.has("v", "t")


class TestDiskStore:
    def test_roundtrip(self, tmp_path):
        store = DiskFragmentStore(str(tmp_path / "frags"))
        payload = bytes(range(256))
        store.put("density", "snap/3", payload)
        assert store.get("density", "snap/3") == payload
        assert store.nbytes() == 256

    def test_key_sanitization(self, tmp_path):
        store = DiskFragmentStore(str(tmp_path / "frags"))
        store.put("a/b..c", "s:1", b"x")
        assert store.get("a/b..c", "s:1") == b"x"

    def test_missing(self, tmp_path):
        store = DiskFragmentStore(str(tmp_path / "frags"))
        with pytest.raises(KeyError):
            store.get("v", "s")


class TestManifest:
    def test_value_ranges(self):
        manifest = DatasetManifest("demo")
        data = np.array([1.0, 4.0])
        manifest.add(VariableMetadata.from_array("p", data, "pmgard_hb", 100))
        assert manifest.value_ranges() == {"p": 3.0}

    def test_constant_field_range_one(self):
        meta = VariableMetadata.from_array("c", np.ones(5), "psz3", 10)
        assert meta.value_range == 1.0

    def test_json_roundtrip(self):
        manifest = DatasetManifest("demo")
        manifest.add(
            VariableMetadata.from_array(
                "p", np.arange(6.0).reshape(2, 3), "psz3", 42, segments=["s0", "s1"]
            )
        )
        back = DatasetManifest.from_json(manifest.to_json())
        assert back.dataset == "demo"
        meta = back.variables["p"]
        assert meta.shape == (2, 3)
        assert meta.total_bytes == 42
        assert meta.segments == ["s0", "s1"]
