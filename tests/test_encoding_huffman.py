"""Tests for the canonical Huffman codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.huffman import (
    HuffmanCodec,
    _canonical_codes,
    _code_lengths_from_counts,
    _limited_code_lengths,
)


class TestCodeLengths:
    def test_single_symbol(self):
        lengths = _code_lengths_from_counts(np.array([10]))
        assert lengths.tolist() == [1]

    def test_two_symbols(self):
        lengths = _code_lengths_from_counts(np.array([1, 1]))
        assert lengths.tolist() == [1, 1]

    def test_skewed_lengths_ordered(self):
        lengths = _code_lengths_from_counts(np.array([100, 10, 1]))
        assert lengths[0] <= lengths[1] <= lengths[2]

    def test_kraft_inequality(self):
        rng = np.random.default_rng(3)
        counts = rng.integers(1, 1000, size=40)
        lengths = _code_lengths_from_counts(counts)
        assert np.sum(2.0 ** (-lengths)) <= 1.0 + 1e-12

    def test_length_limiting(self):
        # extreme skew would exceed 16 bits unlimited
        counts = (2 ** np.arange(30)).astype(np.int64)
        lengths = _limited_code_lengths(counts, 16)
        assert lengths.max() <= 16
        assert np.sum(2.0 ** (-lengths)) <= 1.0 + 1e-12


class TestCanonicalCodes:
    def test_prefix_free(self):
        lengths = np.array([2, 2, 2, 3, 3])
        codes = _canonical_codes(lengths)
        strings = [format(int(c), f"0{int(l)}b") for c, l in zip(codes, lengths)]
        for i, a in enumerate(strings):
            for j, b in enumerate(strings):
                if i != j:
                    assert not b.startswith(a)


class TestCodecRoundtrip:
    def test_empty(self):
        codec = HuffmanCodec()
        out = codec.decode(codec.encode(np.zeros(0, dtype=np.int64)))
        assert out.size == 0

    def test_single_repeated_symbol(self):
        codec = HuffmanCodec()
        sym = np.full(100, 7, dtype=np.int64)
        np.testing.assert_array_equal(codec.decode(codec.encode(sym)), sym)

    def test_quantization_like_distribution(self):
        rng = np.random.default_rng(0)
        sym = np.rint(rng.normal(scale=3, size=20000)).astype(np.int64)
        codec = HuffmanCodec()
        payload = codec.encode(sym)
        np.testing.assert_array_equal(codec.decode(payload), sym)
        # entropy coding should beat raw int64 storage comfortably
        assert len(payload) < sym.size * 2

    def test_negative_symbols(self):
        codec = HuffmanCodec()
        sym = np.array([-5, -5, -1, 0, 3, 3, 3], dtype=np.int64)
        np.testing.assert_array_equal(codec.decode(codec.encode(sym)), sym)

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            HuffmanCodec().decode(b"ZZZZ" + b"\x00" * 24)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=2000))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        sym = np.array(values, dtype=np.int64)
        codec = HuffmanCodec()
        np.testing.assert_array_equal(codec.decode(codec.encode(sym)), sym)


class TestCorruptStreams:
    """Truncated/corrupt payloads must raise a clear ValueError, never an
    opaque NumPy shape/index error."""

    def _payload(self, n=5000, seed=0):
        rng = np.random.default_rng(seed)
        sym = np.rint(rng.normal(scale=5, size=n)).astype(np.int64)
        return HuffmanCodec().encode(sym), sym

    def _decode(self, payload):
        return HuffmanCodec().decode(payload)

    def test_truncated_header(self):
        payload, _ = self._payload()
        with pytest.raises(ValueError, match="incomplete header"):
            self._decode(payload[:20])

    def test_truncated_magic(self):
        with pytest.raises(ValueError, match="magic"):
            self._decode(b"RH")

    def test_truncated_code_table(self):
        payload, _ = self._payload()
        with pytest.raises(ValueError, match="code table extends past payload"):
            self._decode(payload[:40])

    def test_truncated_payload_bits(self):
        payload, _ = self._payload()
        with pytest.raises(ValueError, match="shorter than declared bit count"):
            self._decode(payload[:-50])

    def test_every_truncation_point_is_a_clean_error(self):
        payload, sym = self._payload(n=600)
        for cut in range(0, len(payload), 97):
            with pytest.raises(ValueError):
                self._decode(payload[:cut])

    def test_zero_length_code_rejected(self):
        payload, _ = self._payload()
        buf = bytearray(payload)
        asize = int(np.frombuffer(payload, dtype="<u8", count=1, offset=12)[0])
        lengths_off = 36 + 8 * asize
        buf[lengths_off] = 0
        with pytest.raises(ValueError, match="zero-length code"):
            self._decode(bytes(buf))

    def test_oversized_code_length_rejected(self):
        payload, _ = self._payload()
        buf = bytearray(payload)
        asize = int(np.frombuffer(payload, dtype="<u8", count=1, offset=12)[0])
        buf[36 + 8 * asize] = 40
        with pytest.raises(ValueError, match="code length exceeds"):
            self._decode(bytes(buf))

    def test_oversubscribed_table_rejected(self):
        payload, _ = self._payload()
        buf = bytearray(payload)
        asize = int(np.frombuffer(payload, dtype="<u8", count=1, offset=12)[0])
        lengths_off = 36 + 8 * asize
        # all-1-bit lengths violate Kraft for any alphabet > 2
        for i in range(asize):
            buf[lengths_off + i] = 1
        with pytest.raises(ValueError, match="over-subscribed code table"):
            self._decode(bytes(buf))

    def test_corrupt_chunk_offsets_rejected(self):
        payload, _ = self._payload()
        buf = bytearray(payload)
        asize = int(np.frombuffer(payload, dtype="<u8", count=1, offset=12)[0])
        starts_off = 36 + 9 * asize
        buf[starts_off + 8 : starts_off + 16] = b"\x00" * 8  # duplicate offset 0
        with pytest.raises(ValueError, match="chunk offsets not increasing"):
            self._decode(bytes(buf))

    def test_flipped_payload_bits_fail_loudly_or_roundtrip_length(self):
        # single bit flips either decode to a stream caught by the chunk /
        # length validation or (rarely) to a same-length symbol swap; they
        # must never raise a non-ValueError
        payload, sym = self._payload(n=3000, seed=3)
        rng = np.random.default_rng(0)
        for _ in range(40):
            buf = bytearray(payload)
            i = int(rng.integers(len(payload) - 64, len(payload)))
            buf[i] ^= 1 << int(rng.integers(0, 8))
            try:
                out = self._decode(bytes(buf))
            except ValueError:
                continue
            assert out.size == sym.size

    def test_chunk_count_mismatch_rejected(self):
        payload, _ = self._payload()
        buf = bytearray(payload)
        buf[28:32] = (99).to_bytes(4, "little")  # bogus chunk size
        with pytest.raises(ValueError, match="chunk count mismatch"):
            self._decode(bytes(buf))

    def test_forged_huge_chunk_size_cannot_force_giant_allocation(self):
        # a consistent header with chunk >> n must not drive the decode-side
        # padding allocation; the stream falls back to the scalar walk
        rng = np.random.default_rng(1)
        sym = rng.integers(-3, 4, size=50).astype(np.int64)
        payload = HuffmanCodec(chunk_size=2**32 - 1).encode(sym)
        np.testing.assert_array_equal(self._decode(payload), sym)

    def test_legacy_rhc1_stream_gets_clear_error(self):
        from repro.encoding.reference import reference_huffman_encode

        legacy = reference_huffman_encode(np.arange(50, dtype=np.int64) % 5)
        with pytest.raises(ValueError, match="legacy RHC1"):
            self._decode(legacy)
