"""Tests for the canonical Huffman codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.huffman import (
    HuffmanCodec,
    _canonical_codes,
    _code_lengths_from_counts,
    _limited_code_lengths,
)


class TestCodeLengths:
    def test_single_symbol(self):
        lengths = _code_lengths_from_counts(np.array([10]))
        assert lengths.tolist() == [1]

    def test_two_symbols(self):
        lengths = _code_lengths_from_counts(np.array([1, 1]))
        assert lengths.tolist() == [1, 1]

    def test_skewed_lengths_ordered(self):
        lengths = _code_lengths_from_counts(np.array([100, 10, 1]))
        assert lengths[0] <= lengths[1] <= lengths[2]

    def test_kraft_inequality(self):
        rng = np.random.default_rng(3)
        counts = rng.integers(1, 1000, size=40)
        lengths = _code_lengths_from_counts(counts)
        assert np.sum(2.0 ** (-lengths)) <= 1.0 + 1e-12

    def test_length_limiting(self):
        # extreme skew would exceed 16 bits unlimited
        counts = (2 ** np.arange(30)).astype(np.int64)
        lengths = _limited_code_lengths(counts, 16)
        assert lengths.max() <= 16
        assert np.sum(2.0 ** (-lengths)) <= 1.0 + 1e-12


class TestCanonicalCodes:
    def test_prefix_free(self):
        lengths = np.array([2, 2, 2, 3, 3])
        codes = _canonical_codes(lengths)
        strings = [format(int(c), f"0{int(l)}b") for c, l in zip(codes, lengths)]
        for i, a in enumerate(strings):
            for j, b in enumerate(strings):
                if i != j:
                    assert not b.startswith(a)


class TestCodecRoundtrip:
    def test_empty(self):
        codec = HuffmanCodec()
        out = codec.decode(codec.encode(np.zeros(0, dtype=np.int64)))
        assert out.size == 0

    def test_single_repeated_symbol(self):
        codec = HuffmanCodec()
        sym = np.full(100, 7, dtype=np.int64)
        np.testing.assert_array_equal(codec.decode(codec.encode(sym)), sym)

    def test_quantization_like_distribution(self):
        rng = np.random.default_rng(0)
        sym = np.rint(rng.normal(scale=3, size=20000)).astype(np.int64)
        codec = HuffmanCodec()
        payload = codec.encode(sym)
        np.testing.assert_array_equal(codec.decode(payload), sym)
        # entropy coding should beat raw int64 storage comfortably
        assert len(payload) < sym.size * 2

    def test_negative_symbols(self):
        codec = HuffmanCodec()
        sym = np.array([-5, -5, -1, 0, 3, 3, 3], dtype=np.int64)
        np.testing.assert_array_equal(codec.decode(codec.encode(sym)), sym)

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            HuffmanCodec().decode(b"ZZZZ" + b"\x00" * 24)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=2000))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        sym = np.array(values, dtype=np.int64)
        codec = HuffmanCodec()
        np.testing.assert_array_equal(codec.decode(codec.encode(sym)), sym)
