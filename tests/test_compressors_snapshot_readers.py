"""Edge-case tests for the snapshot-family readers (PSZ3 / PSZ3-delta)."""

import numpy as np
import pytest

from repro.compressors.psz3 import PSZ3Refactorer
from repro.compressors.psz3_delta import PSZ3DeltaRefactorer


def field(n=1500, seed=0):
    rng = np.random.default_rng(seed)
    return 10 * np.sin(np.linspace(0, 9, n)) + 0.1 * rng.normal(size=n)


class TestPSZ3SnapshotSelection:
    def test_picks_coarsest_satisfying_snapshot(self):
        data = field()
        ref = PSZ3Refactorer(relative_bounds=[1e-1, 1e-2, 1e-3]).refactor(data)
        reader = ref.reader()
        # a request between the first two rungs must fetch rung 2 (1e-2)
        vrange = float(np.ptp(data))
        reader.request(5e-2 * vrange)
        assert reader.current_error_bound == pytest.approx(1e-2 * vrange)
        assert reader.bytes_retrieved == ref.blobs[1].nbytes

    def test_redundant_refetch_on_tightening(self):
        data = field(seed=1)
        ref = PSZ3Refactorer(relative_bounds=[1e-1, 1e-2, 1e-3]).refactor(data)
        reader = ref.reader()
        vrange = float(np.ptp(data))
        reader.request(1e-1 * vrange)
        reader.request(1e-3 * vrange)
        # both snapshots were paid for — the redundancy by construction
        assert reader.bytes_retrieved == ref.blobs[0].nbytes + ref.blobs[2].nbytes

    def test_same_snapshot_not_double_counted(self):
        data = field(seed=2)
        ref = PSZ3Refactorer(relative_bounds=[1e-1, 1e-2]).refactor(data)
        reader = ref.reader()
        vrange = float(np.ptp(data))
        reader.request(9e-2 * vrange)
        b = reader.bytes_retrieved
        reader.request(8e-2 * vrange)  # still the same rung
        assert reader.bytes_retrieved == b

    def test_no_lossless_tail_best_effort(self):
        data = field(seed=3)
        ref = PSZ3Refactorer(relative_bounds=[1e-1, 1e-2], lossless_tail=False).refactor(data)
        reader = ref.reader()
        vrange = float(np.ptp(data))
        rec = reader.request(1e-9 * vrange)  # unreachable: deepest rung returned
        assert reader.current_error_bound == pytest.approx(1e-2 * vrange)
        assert np.max(np.abs(rec - data)) <= 1e-2 * vrange * (1 + 1e-12)


class TestDeltaChain:
    def test_chain_folds_incrementally(self):
        data = field(seed=4)
        ref = PSZ3DeltaRefactorer(relative_bounds=[1e-1, 1e-2, 1e-3]).refactor(data)
        reader = ref.reader()
        vrange = float(np.ptp(data))
        reader.request(1e-1 * vrange)
        b1 = reader.bytes_retrieved
        reader.request(1e-3 * vrange)
        # chain reuse: the jump to rung 3 fetched rungs 2 and 3 only
        assert reader.bytes_retrieved == b1 + ref.blobs[1].nbytes + ref.blobs[2].nbytes

    def test_direct_deep_request_fetches_whole_prefix(self):
        data = field(seed=5)
        ref = PSZ3DeltaRefactorer(relative_bounds=[1e-1, 1e-2, 1e-3]).refactor(data)
        reader = ref.reader()
        reader.request(1e-3 * float(np.ptp(data)))
        assert reader.bytes_retrieved == sum(b.nbytes for b in ref.blobs)

    def test_each_chain_stage_is_bounded(self):
        """The defining invariant: after folding rung i the error obeys eb_i."""
        data = field(seed=6)
        bounds = [1e-1, 1e-2, 1e-3, 1e-4]
        ref = PSZ3DeltaRefactorer(relative_bounds=bounds).refactor(data)
        vrange = float(np.ptp(data))
        reader = ref.reader()
        for rb in bounds:
            rec = reader.request(rb * vrange)
            assert np.max(np.abs(rec - data)) <= rb * vrange * (1 + 1e-12)

    def test_lossless_after_partial_chain(self):
        data = field(seed=7)
        ref = PSZ3DeltaRefactorer(relative_bounds=[1e-1, 1e-2]).refactor(data)
        reader = ref.reader()
        vrange = float(np.ptp(data))
        reader.request(1e-1 * vrange)
        rec = reader.request(1e-12 * vrange)  # beyond the chain -> tail
        np.testing.assert_array_equal(rec, data)
        assert reader.current_error_bound == 0.0

    def test_reconstruct_before_any_request(self):
        data = field(seed=8)
        ref = PSZ3DeltaRefactorer().refactor(data)
        reader = ref.reader()
        np.testing.assert_array_equal(reader.reconstruct(), np.zeros_like(data))
