"""Tests for the ZFP-style block-transform progressive compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.pzfp import (
    AXIS_GAIN,
    ZFP_FORWARD,
    ZFP_INVERSE,
    PZFPRefactorer,
    _blockify,
    _pad_to_blocks,
    _transform_blocks,
    _unblockify,
)


class TestTransform:
    def test_matrix_inverse_exact(self):
        np.testing.assert_allclose(ZFP_FORWARD @ ZFP_INVERSE, np.eye(4), atol=1e-14)

    def test_gain_positive(self):
        assert AXIS_GAIN >= 1.0

    def test_dc_coefficient_is_mean(self):
        # the first row of the forward transform averages the 4 samples
        x = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose((ZFP_FORWARD @ x)[0], x.mean())

    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_blocks_roundtrip(self, d):
        rng = np.random.default_rng(d)
        blocks = rng.normal(size=(5,) + (4,) * d)
        fwd = _transform_blocks(blocks, ZFP_FORWARD)
        back = _transform_blocks(fwd, ZFP_INVERSE)
        np.testing.assert_allclose(back, blocks, atol=1e-12)

    def test_smooth_block_energy_compaction(self):
        # on linear data all energy lands in the first coefficients
        x = np.linspace(0, 1, 4)[None, :]
        coeffs = _transform_blocks(x, ZFP_FORWARD)
        assert abs(coeffs[0, 0]) > 10 * abs(coeffs[0, 3])


class TestBlockLayout:
    @pytest.mark.parametrize("shape", [(7,), (8,), (9, 6), (5, 4, 3)])
    def test_pad_blockify_roundtrip(self, shape):
        rng = np.random.default_rng(0)
        data = rng.normal(size=shape)
        padded, orig = _pad_to_blocks(data)
        assert all(n % 4 == 0 for n in padded.shape)
        blocks = _blockify(padded)
        back = _unblockify(blocks, padded.shape)
        np.testing.assert_array_equal(back, padded)
        np.testing.assert_array_equal(back[tuple(slice(0, n) for n in orig)], data)


class TestProgressive:
    def field(self, shape=(30, 26), seed=0):
        rng = np.random.default_rng(seed)
        axes = np.meshgrid(*[np.linspace(0, 2 * np.pi, n) for n in shape], indexing="ij")
        return sum(np.sin(a) for a in axes) + 0.01 * rng.normal(size=shape)

    def test_definition_one_conformance(self):
        data = self.field()
        reader = PZFPRefactorer().refactor(data).reader()
        for eb in (1e-1, 1e-3, 1e-5):
            rec = reader.request(eb)
            assert np.max(np.abs(rec - data)) <= eb * (1 + 1e-9)
            assert reader.current_error_bound <= eb * (1 + 1e-12)

    def test_incremental_bytes(self):
        data = self.field(seed=1)
        reader = PZFPRefactorer().refactor(data).reader()
        sizes = []
        for eb in (1e-1, 1e-2, 1e-3, 1e-4):
            reader.request(eb)
            sizes.append(reader.bytes_retrieved)
        assert sizes == sorted(sizes)
        reader.request(1e-2)  # looser request is free
        assert reader.bytes_retrieved == sizes[-1]

    def test_initial_bound_inf(self):
        reader = PZFPRefactorer().refactor(self.field(seed=2)).reader()
        assert reader.current_error_bound == np.inf

    def test_1d_and_3d(self):
        for shape in [(101,), (10, 9, 8)]:
            data = self.field(shape=shape, seed=3)
            reader = PZFPRefactorer().refactor(data).reader()
            rec = reader.request(1e-4 * np.ptp(data))
            assert rec.shape == data.shape
            assert np.max(np.abs(rec - data)) <= reader.current_error_bound * (1 + 1e-9)

    def test_rejects_4d(self):
        with pytest.raises(ValueError):
            PZFPRefactorer().refactor(np.zeros((2, 2, 2, 2)))

    @given(st.integers(4, 120), st.floats(1e-6, 1e-1), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_bound_property(self, n, eb, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=n).cumsum()
        reader = PZFPRefactorer().refactor(data).reader()
        rec = reader.request(eb * max(np.ptp(data), 1e-6))
        assert np.max(np.abs(rec - data)) <= reader.current_error_bound * (1 + 1e-9)


class TestRegistryIntegration:
    def test_registered(self):
        from repro.compressors.base import make_refactorer

        data = np.sin(np.linspace(0, 10, 500))
        reader = make_refactorer("pzfp").refactor(data).reader()
        rec = reader.request(1e-4)
        assert np.max(np.abs(rec - data)) <= 1e-4
