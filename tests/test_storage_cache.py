"""Tests for the shared LRU fragment cache and its store adapter."""

import threading

import pytest

from repro.storage.cache import CacheStats, CachingFragmentStore, FragmentCache
from repro.storage.store import FragmentStore


def make_store(entries):
    store = FragmentStore()
    for (var, seg), payload in entries.items():
        store.put(var, seg, payload)
    return store


class TestFragmentCache:
    def test_miss_then_hit(self):
        cache = FragmentCache(capacity_bytes=1024)
        loads = []

        def loader():
            loads.append(1)
            return b"abcd"

        assert cache.get_or_load("v", "s", loader) == b"abcd"
        assert cache.get_or_load("v", "s", loader) == b"abcd"
        assert len(loads) == 1
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.bytes_from_store == 4 and stats.bytes_from_cache == 4
        assert stats.hit_rate == 0.5

    def test_lru_eviction_respects_byte_budget(self):
        cache = FragmentCache(capacity_bytes=10)
        cache.get_or_load("v", "a", lambda: b"xxxx")  # 4 bytes
        cache.get_or_load("v", "b", lambda: b"yyyy")  # 8 bytes total
        cache.get_or_load("v", "a", lambda: b"!!")    # touch a -> b becomes LRU
        cache.get_or_load("v", "c", lambda: b"zzzz")  # 12 > 10: evict b
        assert ("v", "a") in cache
        assert ("v", "c") in cache
        assert ("v", "b") not in cache
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.current_bytes <= 10

    def test_oversized_payload_served_but_not_cached(self):
        cache = FragmentCache(capacity_bytes=4)
        big = b"0123456789"
        assert cache.get_or_load("v", "big", lambda: big) == big
        assert ("v", "big") not in cache
        assert cache.stats().current_bytes == 0

    def test_invalidate_and_clear(self):
        cache = FragmentCache(capacity_bytes=1024)
        cache.get_or_load("v", "a", lambda: b"aa")
        cache.get_or_load("v", "b", lambda: b"bb")
        cache.invalidate("v", "a")
        assert ("v", "a") not in cache and ("v", "b") in cache
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().current_bytes == 0

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            FragmentCache(capacity_bytes=0)

    def test_hit_rate_empty(self):
        assert CacheStats().hit_rate == 0.0

    def test_concurrent_single_flight(self):
        """N threads requesting the same fragments trigger one load each."""
        inner = make_store({("v", f"s{i}"): bytes(16) for i in range(8)})
        cache = FragmentCache(capacity_bytes=1 << 20)

        def client():
            for i in range(8):
                cache.get_or_load("v", f"s{i}", lambda i=i: inner.get("v", f"s{i}"))

        threads = [threading.Thread(target=client) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # misses are single-flight: the store served each fragment once
        assert inner.reads == 8
        stats = cache.stats()
        assert stats.misses == 8
        assert stats.hits == 8 * 5


class TestEvictionVsInflightBatches:
    """Evictions racing claimed ``get_many`` batches (the pinning contract)."""

    def test_waiter_pinned_entry_survives_eviction(self):
        """A fragment a waiter is pinned on cannot be evicted before the
        waiter picks it up, even when churn overflows the budget."""
        inner = make_store({("v", "hot"): b"h" * 40})
        for i in range(20):
            inner.put("v", f"churn{i}", b"c" * 40)
        cache = FragmentCache(capacity_bytes=100)  # fits two entries

        release = threading.Event()
        loaded = threading.Event()

        def slow_loader(keys):
            loaded.set()
            release.wait(timeout=30.0)
            return inner.get_many(keys)

        owner_result, waiter_result = {}, {}

        def owner():
            owner_result.update(cache.get_many([("v", "hot")], slow_loader))

        def waiter():
            loaded.wait(timeout=30.0)  # ensure the owner claimed the flight
            waiter_result.update(cache.get_many([("v", "hot")], inner.get_many))

        threads = [threading.Thread(target=owner), threading.Thread(target=waiter)]
        for t in threads:
            t.start()
        loaded.wait(timeout=30.0)
        # give the waiter time to register (pin) on the in-flight key,
        # then let the owner land it
        import time

        time.sleep(0.05)
        release.set()
        for t in threads:
            t.join(timeout=30.0)
        # churn reads while the waiter is (conceptually) still holding a
        # pin happen after join here; the invariant under test is that
        # the waiter was served without a second store read of "hot"
        assert owner_result[("v", "hot")] == b"h" * 40
        assert waiter_result[("v", "hot")] == b"h" * 40
        assert inner.reads == 1  # hot was read from the store exactly once

    def test_concurrent_batches_under_eviction_pressure_stay_consistent(self):
        """Stress: overlapping batches + a budget far below the working
        set never corrupt accounting (current_bytes >= 0) or payloads."""
        payloads = {("v", f"s{i}"): bytes([i]) * (i + 1) for i in range(24)}
        inner = make_store(payloads)
        cache = FragmentCache(capacity_bytes=64)  # a fraction of the ~300 B set
        errors = []

        def client(offset):
            try:
                for round_no in range(30):
                    keys = [("v", f"s{(offset + round_no + j) % 24}") for j in range(6)]
                    out = cache.get_many(keys, inner.get_many)
                    for key in keys:
                        assert out[key] == payloads[key], key
                    stats = cache.stats()
                    assert stats.current_bytes >= 0, "negative resident bytes"
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i * 4,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]
        assert not cache._pins  # every pin was balanced by an unpin
        stats = cache.stats()
        assert stats.current_bytes >= 0
        # the accounting invariant: current_bytes is exactly the resident
        # payload total (the budget itself may be transiently exceeded when
        # the final inserts landed while waiters still held pins)
        assert stats.current_bytes == sum(len(p) for p in cache._entries.values())

    def test_eviction_skips_pinned_but_still_converges(self):
        """Direct check of the eviction scan: pinned keys are skipped,
        unpinned ones go, and the unpin rebalances the budget."""
        cache = FragmentCache(capacity_bytes=10)
        cache.get_or_load("v", "a", lambda: b"aaaa")
        cache.get_or_load("v", "b", lambda: b"bbbb")
        with cache._lock:
            cache._pin(("v", "a"))  # simulate a waiter parked on "a"
        cache.get_or_load("v", "c", lambda: b"cccc")  # 12 B > 10 B budget
        # "a" is LRU but pinned; "b" must have been evicted instead
        assert ("v", "a") in cache
        assert ("v", "b") not in cache
        assert ("v", "c") in cache
        with cache._lock:
            cache._unpin(("v", "a"))
        assert cache.stats().current_bytes <= 10 or len(cache) == 2

    def test_unbalanced_unpin_is_an_error(self):
        cache = FragmentCache(capacity_bytes=10)
        with pytest.raises(AssertionError):
            with cache._lock:
                cache._unpin(("v", "never-pinned"))


class TestCachingFragmentStore:
    def test_read_through_counts_store_once(self):
        inner = make_store({("p", "s0"): b"abc", ("p", "s1"): b"defg"})
        cached = CachingFragmentStore(inner, FragmentCache(1 << 20))
        for _ in range(3):
            assert cached.get("p", "s0") == b"abc"
            assert cached.get("p", "s1") == b"defg"
        assert inner.reads == 2          # one store read per fragment
        assert cached.reads == 6         # client-visible traffic
        assert cached.bytes_read == 3 * 7

    def test_put_writes_through_and_invalidates(self):
        inner = FragmentStore()
        cached = CachingFragmentStore(inner, FragmentCache(1 << 20))
        cached.put("p", "s0", b"old")
        assert cached.get("p", "s0") == b"old"
        cached.put("p", "s0", b"new!")
        assert cached.get("p", "s0") == b"new!"
        assert inner.get("p", "s0") == b"new!"

    def test_delegates_metadata_queries(self):
        inner = make_store({("p", "s0"): b"abc", ("q", "s0"): b"de"})
        cached = CachingFragmentStore(inner, FragmentCache(1 << 20))
        assert cached.has("p", "s0") and not cached.has("p", "s9")
        assert cached.segments("p") == ["s0"]
        assert set(cached.keys()) == {("p", "s0"), ("q", "s0")}
        assert cached.nbytes() == 5
        assert cached.nbytes("q") == 2

    def test_shared_cache_across_adapters(self):
        """Two adapters over the same cache share fragments (multi-archive)."""
        inner = make_store({("p", "s0"): b"abcd"})
        cache = FragmentCache(1 << 20)
        a = CachingFragmentStore(inner, cache)
        b = CachingFragmentStore(inner, cache)
        a.get("p", "s0")
        b.get("p", "s0")
        assert inner.reads == 1
        assert cache.stats().hits == 1


class TestArenaBackedCache:
    """Slab-residency accounting of an arena-backed cache (zero-copy path)."""

    def _arena(self, slab_bytes=1 << 16):
        from repro.parallel.executor import SlabArena

        return SlabArena(slab_bytes=slab_bytes)

    def test_slab_entry_charged_once_by_residency(self):
        arena = self._arena()
        cache = FragmentCache(capacity_bytes=1 << 20, arena=arena)
        payload = b"x" * 8192  # above the arena floor -> slab entry
        served = cache.get_or_load("v", "s", lambda: payload)
        assert isinstance(served, memoryview) and bytes(served) == payload
        stats = cache.stats()
        # the entry is charged exactly its slab residency — the served
        # memoryview must not double-count against the byte budget
        assert stats.current_bytes == len(payload)
        assert stats.slab_resident_bytes == len(payload)
        assert stats.slab_entries == 1
        # a hit serves another view over the same slab range, no new charge
        again = cache.get_or_load("v", "s", lambda: pytest.fail("must hit"))
        assert bytes(again) == payload
        assert cache.stats().current_bytes == len(payload)
        arena.close()

    def test_small_payloads_stay_plain_bytes(self):
        arena = self._arena()
        cache = FragmentCache(capacity_bytes=1 << 20, arena=arena)
        served = cache.get_or_load("v", "s", lambda: b"tiny")
        assert isinstance(served, bytes)
        stats = cache.stats()
        assert stats.slab_entries == 0 and stats.slab_resident_bytes == 0
        assert stats.current_bytes == 4
        arena.close()

    def test_eviction_releases_slab_but_live_views_survive(self):
        arena = self._arena(slab_bytes=1 << 13)
        cache = FragmentCache(capacity_bytes=20000, arena=arena)
        first = b"a" * 8192
        view = cache.get_or_load("v", "a", lambda: first)  # live view held
        cache.get_or_load("v", "b", lambda: b"b" * 8192)
        cache.get_or_load("v", "c", lambda: b"c" * 8192)  # evicts ("v","a")
        assert ("v", "a") not in cache
        assert cache.stats().evictions >= 1
        # the evicted entry's slab may only be reclaimed as a zombie —
        # the handed-out view keeps reading the original bytes
        assert bytes(view) == first
        assert cache.stats().current_bytes <= 20000
        arena.close()

    def test_invalidate_decrefs_slab_entry(self):
        arena = self._arena()
        cache = FragmentCache(capacity_bytes=1 << 20, arena=arena)
        cache.get_or_load("v", "s", lambda: b"z" * 8192)
        assert cache.stats().slab_entries == 1
        cache.invalidate("v", "s")
        stats = cache.stats()
        assert stats.current_bytes == 0
        assert stats.slab_entries == 0 and stats.slab_resident_bytes == 0
        arena.close()

    def test_handle_peek_returns_ref_without_touching_lru(self):
        from repro.parallel.executor import ArenaRef

        arena = self._arena()
        cache = FragmentCache(capacity_bytes=1 << 20, arena=arena)
        cache.get_or_load("v", "s", lambda: b"h" * 8192)
        ref = cache.handle("v", "s")
        assert isinstance(ref, ArenaRef) and ref.length == 8192
        assert bytes(arena.view(ref)) == b"h" * 8192
        assert cache.handle("v", "missing") is None
        # bytes-entry payloads have no handle
        cache.get_or_load("v", "t", lambda: b"small")
        assert cache.handle("v", "t") is None
        # a hit did not count for the peek
        hits_before = cache.stats().hits
        cache.handle("v", "s")
        assert cache.stats().hits == hits_before
        arena.close()

    def test_clear_releases_all_slab_entries(self):
        arena = self._arena()
        cache = FragmentCache(capacity_bytes=1 << 20, arena=arena)
        cache.get_or_load("v", "a", lambda: b"1" * 8192)
        cache.get_or_load("v", "b", lambda: b"2" * 8192)
        cache.clear()
        stats = cache.stats()
        assert stats.current_bytes == 0
        assert stats.slab_entries == 0 and stats.slab_resident_bytes == 0
        arena.close()

    def test_get_many_admits_slab_entries(self):
        arena = self._arena()
        cache = FragmentCache(capacity_bytes=1 << 20, arena=arena)
        keys = [("v", "a"), ("v", "b")]
        payloads = {("v", "a"): b"A" * 8192, ("v", "b"): b"B" * 2048}

        def loader(missing):
            return {k: payloads[k] for k in missing}

        out = cache.get_many(keys, loader)
        assert bytes(out[("v", "a")]) == payloads[("v", "a")]
        assert bytes(out[("v", "b")]) == payloads[("v", "b")]
        stats = cache.stats()
        assert stats.slab_entries == 1  # only the 8 KiB payload went to a slab
        assert stats.slab_resident_bytes == 8192
        arena.close()
