"""Tests for the multilevel lifting transform (both bases)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms.l2projection import l2_correction_along_axis
from repro.transforms.multilevel import (
    HIERARCHICAL,
    ORTHOGONAL,
    MultilevelTransform,
)


def _field_1d(n, seed=0):
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 4 * np.pi, n)
    return np.sin(x) + 0.1 * rng.normal(size=n)


def _field_3d(shape, seed=0):
    rng = np.random.default_rng(seed)
    axes = [np.linspace(0, 2 * np.pi, n) for n in shape]
    g = np.add.outer(np.add.outer(np.sin(axes[0]), np.cos(axes[1])), np.sin(2 * axes[2]))
    return g + 0.05 * rng.normal(size=shape)


class TestInvertibility:
    @pytest.mark.parametrize("basis", [HIERARCHICAL, ORTHOGONAL])
    @pytest.mark.parametrize("n", [5, 8, 17, 33, 100, 257])
    def test_roundtrip_1d(self, basis, n):
        data = _field_1d(n)
        tr = MultilevelTransform(basis=basis)
        dec = tr.decompose(data)
        rec = tr.recompose(dec)
        np.testing.assert_allclose(rec, data, atol=1e-10)

    @pytest.mark.parametrize("basis", [HIERARCHICAL, ORTHOGONAL])
    @pytest.mark.parametrize("shape", [(9, 9), (16, 17), (8, 12, 10), (7, 5, 6)])
    def test_roundtrip_nd(self, basis, shape):
        data = _field_3d(shape) if len(shape) == 3 else np.random.default_rng(1).normal(size=shape)
        tr = MultilevelTransform(basis=basis)
        dec = tr.decompose(data)
        rec = tr.recompose(dec)
        np.testing.assert_allclose(rec, data, atol=1e-10)

    def test_tiny_array_no_levels(self):
        data = np.ones((2, 2))
        tr = MultilevelTransform(min_size=4)
        dec = tr.decompose(data)
        assert dec.num_levels == 0
        np.testing.assert_allclose(tr.recompose(dec), data)

    @given(st.integers(4, 200), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property_1d(self, n, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=n)
        for basis in (HIERARCHICAL, ORTHOGONAL):
            tr = MultilevelTransform(basis=basis)
            rec = tr.recompose(tr.decompose(data))
            np.testing.assert_allclose(rec, data, atol=1e-9)


class TestDecompositionStructure:
    def test_level_count_respects_max(self):
        tr = MultilevelTransform(max_levels=2)
        dec = tr.decompose(_field_1d(100))
        assert dec.num_levels == 2

    def test_coefficient_counts(self):
        tr = MultilevelTransform()
        dec = tr.decompose(np.zeros((9, 9)))
        # level 0: 81 - 25 coarse corner nodes
        assert dec.coefficients[0].size == 81 - 25

    def test_smooth_data_small_coefficients(self):
        # coefficients of smooth data should be much smaller than the data
        x = np.linspace(0, 1, 129) ** 2
        tr = MultilevelTransform()
        dec = tr.decompose(x)
        assert np.max(np.abs(dec.coefficients[0])) < 1e-3

    def test_bad_basis(self):
        with pytest.raises(ValueError):
            MultilevelTransform(basis="wavelet")

    def test_bad_min_size(self):
        with pytest.raises(ValueError):
            MultilevelTransform(min_size=1)

    def test_coefficient_count_mismatch_raises(self):
        tr = MultilevelTransform()
        dec = tr.decompose(_field_1d(33))
        bad = [c[:-1] for c in dec.coefficients]
        with pytest.raises(ValueError, match="mismatch"):
            tr.recompose(dec, coefficients=bad)


class TestErrorPropagation:
    """The kappa constants must make perturbation bounds hold."""

    @pytest.mark.parametrize("basis", [HIERARCHICAL, ORTHOGONAL])
    @pytest.mark.parametrize("shape", [(65,), (33, 33), (17, 16, 15)])
    def test_coefficient_perturbation_bound(self, basis, shape):
        rng = np.random.default_rng(42)
        data = rng.normal(size=shape)
        tr = MultilevelTransform(basis=basis)
        dec = tr.decompose(data)
        eps = 1e-3
        perturbed = [
            c + rng.uniform(-eps, eps, size=c.size) for c in dec.coefficients
        ]
        rec = tr.recompose(dec, coefficients=perturbed)
        exact = tr.recompose(dec)
        kappa = tr.kappa(len(shape))
        bound = kappa * eps * dec.num_levels
        assert np.max(np.abs(rec - exact)) <= bound * (1 + 1e-9)

    def test_kappa_ordering(self):
        hb = MultilevelTransform(basis=HIERARCHICAL)
        ob = MultilevelTransform(basis=ORTHOGONAL)
        for d in (1, 2, 3):
            assert ob.kappa(d) > hb.kappa(d)

    def test_hb_kappa_1d_is_one(self):
        assert MultilevelTransform(basis=HIERARCHICAL).kappa(1) == 1.0


class TestL2Correction:
    def test_norm_bound(self):
        rng = np.random.default_rng(5)
        d = rng.uniform(-1, 1, size=50)
        w = l2_correction_along_axis(d, 0, 51)
        assert np.max(np.abs(w)) <= 1.5 + 1e-12

    def test_zero_details_zero_correction(self):
        w = l2_correction_along_axis(np.zeros(10), 0, 11)
        np.testing.assert_array_equal(w, 0.0)

    def test_even_length_axis(self):
        d = np.ones(4)
        w = l2_correction_along_axis(d, 0, 4)
        assert w.shape == (4,)
        assert np.all(np.isfinite(w))

    def test_projection_improves_l2_fit(self):
        # the updated coarse values should approximate the fine data better
        # in L2 than the plain subsample, on data with curvature
        x = np.linspace(0, np.pi, 65)
        data = np.sin(x) + 0.3 * np.sin(8 * x)
        tr_h = MultilevelTransform(basis=HIERARCHICAL, max_levels=1)
        tr_o = MultilevelTransform(basis=ORTHOGONAL, max_levels=1)
        dec_h = tr_h.decompose(data)
        dec_o = tr_o.decompose(data)

        def upsampled_l2(dec, tr):
            zero = [np.zeros_like(c) for c in dec.coefficients]
            rec = tr.recompose(dec, coefficients=zero)
            return float(np.linalg.norm(rec - data))

        assert upsampled_l2(dec_o, tr_o) < upsampled_l2(dec_h, tr_h)
