"""Tests for zigzag/escape integer byte codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.bytecodec import decode_ints, encode_ints, unzigzag, zigzag


class TestZigzag:
    def test_known_values(self):
        v = np.array([0, -1, 1, -2, 2, -64, 63], dtype=np.int64)
        u = zigzag(v)
        np.testing.assert_array_equal(u, [0, 1, 2, 3, 4, 127, 126])
        np.testing.assert_array_equal(unzigzag(u), v)

    @given(st.lists(st.integers(-(2**31), 2**31 - 1), max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values):
        v = np.array(values, dtype=np.int64)
        np.testing.assert_array_equal(unzigzag(zigzag(v)), v)


class TestIntStream:
    def test_roundtrip_small(self):
        v = np.array([0, 1, -1, 5, -300, 70000], dtype=np.int64)
        np.testing.assert_array_equal(decode_ints(encode_ints(v)), v)

    def test_roundtrip_empty(self):
        v = np.zeros(0, dtype=np.int64)
        np.testing.assert_array_equal(decode_ints(encode_ints(v)), v)

    def test_escape_boundary(self):
        # zigzag values 254/255 straddle the escape marker
        v = np.array([127, -127, -128, 128], dtype=np.int64)
        np.testing.assert_array_equal(decode_ints(encode_ints(v)), v)

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            decode_ints(b"XXXX" + b"\x00" * 16)

    def test_large_values_roundtrip(self):
        v = np.array([2**30, -(2**30)], dtype=np.int64)
        np.testing.assert_array_equal(decode_ints(encode_ints(v)), v)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            encode_ints(np.array([2**40], dtype=np.int64))

    @given(st.lists(st.integers(-(2**30), 2**30), max_size=500))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values):
        v = np.array(values, dtype=np.int64)
        np.testing.assert_array_equal(decode_ints(encode_ints(v)), v)
