"""Property tests: vectorized kernels are bit-exact vs. the scalar references.

The vectorized bitplane / Huffman / plane-planning kernels replaced
per-plane and per-symbol loops (kept in :mod:`repro.encoding.reference`).
These tests drive both implementations with randomized inputs — including
the edge cases that historically break bit-twiddling code: all-zero
groups, sub-``2**-1000`` magnitudes, single-element groups, single-symbol
alphabets, and length-limited (16-bit) codes — and assert the outputs are
identical bit for bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors.pmgard import PlanTable
from repro.encoding.bitplane import BitplaneDecoder, BitplaneEncoder
from repro.encoding.huffman import HuffmanCodec
from repro.encoding.reference import (
    ReferenceBitplaneDecoder,
    reference_bitplane_encode,
    reference_huffman_decode,
    reference_huffman_encode,
    reference_plane_plan,
)

# ordinary magnitudes plus denormal-era values around the 2**-1000 archive cutoff
_coeff = st.one_of(
    st.floats(-1e30, 1e30, allow_nan=False, allow_infinity=False),
    st.floats(-1e-290, 1e-290, allow_nan=False, allow_infinity=False),
    st.sampled_from([0.0, -0.0, 2.0**-999, -(2.0**-1001), 2.0**-1040, 1e300]),
)


def _assert_bitplane_equivalent(coeffs, num_planes, planes):
    stream = BitplaneEncoder(num_planes=num_planes).encode(coeffs)
    stream_ref = reference_bitplane_encode(coeffs, num_planes=num_planes)
    assert stream.exponent == stream_ref.exponent
    assert stream.num_planes == stream_ref.num_planes
    dec = BitplaneDecoder(stream)
    dec_ref = ReferenceBitplaneDecoder(stream_ref)
    for k in planes:
        dec.advance_to(k)
        dec_ref.advance_to(k)
        assert np.array_equal(dec._mags, dec_ref._mags)
        rec = dec.reconstruct()
        rec_ref = dec_ref.reconstruct()
        # bit-exact: same values *and* same signed zeros
        assert np.array_equal(rec, rec_ref)
        assert np.array_equal(np.signbit(rec), np.signbit(rec_ref))


class TestBitplaneBitExact:
    @given(
        hnp.arrays(np.float64, st.integers(1, 200), elements=_coeff),
        st.integers(1, 62),
        st.lists(st.integers(0, 70), min_size=1, max_size=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_groups(self, coeffs, num_planes, schedule):
        _assert_bitplane_equivalent(coeffs, num_planes, schedule)

    @pytest.mark.parametrize(
        "coeffs",
        [
            np.zeros(16),
            np.zeros(1),
            np.full(9, 2.0**-1040),  # below the archive-as-zero cutoff
            np.array([2.0**-999, -(2.0**-1005)]),  # straddling the cutoff
            np.array([-3.25]),  # single element
            np.array([1e308, -1e-308]),  # extreme exponent spread
            np.linspace(-1, 1, 33),  # non-multiple-of-8 group size
        ],
    )
    def test_edge_groups(self, coeffs):
        for num_planes in (1, 8, 17, 48, 62):
            _assert_bitplane_equivalent(coeffs, num_planes, [1, num_planes // 2, 70])

    @given(
        hnp.arrays(np.float64, st.integers(1, 64), elements=_coeff),
        st.integers(1, 62),
    )
    @settings(max_examples=40, deadline=None)
    def test_segment_payloads_decode_identically_across_backends(
        self, coeffs, num_planes
    ):
        # raw backend exercises the store-raw framing path end to end
        stream = BitplaneEncoder(num_planes=num_planes, backend="raw").encode(coeffs)
        dec = BitplaneDecoder(stream, backend="raw")
        dec.advance_to(num_planes)
        ref = reference_bitplane_encode(coeffs, num_planes=num_planes, backend="raw")
        dec_ref = ReferenceBitplaneDecoder(ref, backend="raw")
        dec_ref.advance_to(num_planes)
        assert np.array_equal(dec.reconstruct(), dec_ref.reconstruct())


class TestHuffmanBitExact:
    @given(st.lists(st.integers(-(2**40), 2**40), min_size=1, max_size=3000))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_matches_reference(self, values):
        sym = np.array(values, dtype=np.int64)
        new = HuffmanCodec().decode(HuffmanCodec().encode(sym))
        ref = reference_huffman_decode(reference_huffman_encode(sym))
        assert np.array_equal(new, sym)
        assert np.array_equal(ref, sym)

    def test_single_symbol_alphabet(self):
        for n in (1, 7, 1024, 5000):
            sym = np.full(n, -42, dtype=np.int64)
            assert np.array_equal(HuffmanCodec().decode(HuffmanCodec().encode(sym)), sym)

    def test_length_limited_16_bit_codes(self):
        # Fibonacci-ish counts build the deepest Huffman trees, forcing the
        # 16-bit length limiter to kick in
        counts = [1, 1]
        while len(counts) < 28:
            counts.append(counts[-1] + counts[-2])
        rng = np.random.default_rng(0)
        sym = rng.permutation(np.repeat(np.arange(len(counts)), counts)).astype(np.int64)
        codec = HuffmanCodec()
        payload = codec.encode(sym)
        assert np.array_equal(codec.decode(payload), sym)
        assert np.array_equal(
            reference_huffman_decode(reference_huffman_encode(sym)), sym
        )

    @given(st.integers(1, 40), st.integers(900, 1200))
    @settings(max_examples=20, deadline=None)
    def test_chunk_boundaries(self, chunk, n):
        # exercise n below / at / above multiples of the chunk size,
        # including the scalar-walk tail path
        rng = np.random.default_rng(chunk * 31 + n)
        sym = rng.integers(-5, 6, size=n).astype(np.int64)
        codec = HuffmanCodec(chunk_size=chunk)
        assert np.array_equal(codec.decode(codec.encode(sym)), sym)


class TestPlanTableMatchesGreedy:
    def _streams(self, rng, num_levels, spread):
        enc = BitplaneEncoder(num_planes=int(rng.integers(4, 49)))
        streams = []
        for _ in range(num_levels):
            scale = 2.0 ** float(rng.integers(-spread, spread + 1))
            if rng.random() < 0.2:
                data = np.zeros(8)  # all-zero level (no events)
            else:
                data = rng.normal(size=int(rng.integers(1, 64))) * scale
            streams.append(enc.encode(data))
        return streams

    @given(st.integers(0, 6), st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_plan_equivalence(self, num_levels, seed):
        rng = np.random.default_rng(seed)
        streams = self._streams(rng, num_levels, spread=20)
        kappa = float(rng.uniform(1.0, 4.0))
        table = PlanTable(streams, kappa)
        for _ in range(4):
            eb = 2.0 ** float(rng.integers(-60, 20))
            seed_plan = table.planes_for(eb)
            # mop-up mirrors PMGARDReader._plan from a fresh reader
            planned = [int(k) for k in seed_plan]
            bounds = [kappa * s.error_bound(planned[l]) for l, s in enumerate(streams)]
            while sum(bounds) > eb:
                cand = [
                    l
                    for l, s in enumerate(streams)
                    if planned[l] < s.num_planes and bounds[l] > 0.0
                ]
                if not cand:
                    break
                worst = max(cand, key=lambda l: bounds[l])
                planned[worst] += 1
                bounds[worst] = kappa * streams[worst].error_bound(planned[worst])
            assert planned == reference_plane_plan(streams, kappa, eb)
            # and the planned state satisfies the bound whenever achievable
            floor = sum(kappa * s.error_bound(s.num_planes) for s in streams)
            if floor <= eb:
                assert sum(bounds) <= eb
