"""Integration tests for the QoI-preserved retrieval loop (Algorithm 2)."""

import numpy as np
import pytest

from repro.compressors.base import make_refactorer
from repro.core.masking import ZeroMask
from repro.core.qois import GE_QOIS, molar_product, total_velocity
from repro.core.retrieval import QoIRequest, QoIRetriever, refactor_dataset


def cfd_fields(n=4000, seed=0, with_walls=False):
    """Synthetic linearized CFD state resembling the GE data."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 6 * np.pi, n)
    vx = 120 * np.sin(t) + 30 + 2 * rng.normal(size=n)
    vy = 60 * np.cos(t) + 1.5 * rng.normal(size=n)
    vz = 20 * np.sin(2 * t) + rng.normal(size=n)
    pressure = 1e5 + 2e4 * np.sin(t / 2) + 100 * rng.normal(size=n)
    density = 1.2 + 0.2 * np.cos(t / 3) + 0.002 * rng.normal(size=n)
    if with_walls:
        walls = slice(0, n, 20)
        vx[walls] = vy[walls] = vz[walls] = 0.0
    return dict(velocity_x=vx, velocity_y=vy, velocity_z=vz, pressure=pressure, density=density)


def ranges_of(fields):
    return {k: float(np.max(v) - np.min(v)) for k, v in fields.items()}


@pytest.fixture(scope="module", params=["pmgard_hb", "psz3_delta"])
def retriever_setup(request):
    fields = cfd_fields()
    refactored = refactor_dataset(fields, make_refactorer(request.param))
    return fields, QoIRetriever(refactored, ranges_of(fields))


class TestToleranceGuarantee:
    @pytest.mark.parametrize("tol", [1e-2, 1e-4])
    def test_vtot_error_within_tolerance(self, retriever_setup, tol):
        fields, retriever = retriever_setup
        qoi = total_velocity()
        truth = qoi.value({k: (v, 0.0) for k, v in fields.items() if k.startswith("velocity")})
        qrange = float(np.max(truth) - np.min(truth))
        result = retriever.retrieve([QoIRequest("VTOT", qoi, tol, qrange)])
        assert result.all_satisfied
        rec_vtot = qoi.value({k: (result.data[k], 0.0) for k in result.data})
        actual = float(np.max(np.abs(rec_vtot - truth)))
        assert actual <= result.estimated_errors["VTOT"] * (1 + 1e-9)
        assert actual <= tol * qrange

    def test_multiple_qois_all_respected(self, retriever_setup):
        fields, retriever = retriever_setup
        env0 = {k: (v, 0.0) for k, v in fields.items()}
        requests = []
        for name in ["VTOT", "T", "Mach"]:
            qoi = GE_QOIS[name]
            truth = qoi.value(env0)
            qrange = float(np.max(truth) - np.min(truth))
            requests.append(QoIRequest(name, qoi, 1e-3, qrange))
        result = retriever.retrieve(requests)
        assert result.all_satisfied
        for req in requests:
            truth = req.qoi.value(env0)
            rec = req.qoi.value({k: (result.data[k], 0.0) for k in result.data})
            assert np.max(np.abs(rec - truth)) <= req.absolute_tolerance * (1 + 1e-9)


class TestProgressiveEconomy:
    def test_tighter_tolerance_costs_more(self):
        fields = cfd_fields(seed=1)
        refactored = refactor_dataset(fields, make_refactorer("pmgard_hb"))
        qoi = total_velocity()
        truth = qoi.value({k: (v, 0.0) for k, v in fields.items() if "velocity" in k})
        qrange = float(np.max(truth) - np.min(truth))
        sizes = []
        for tol in [1e-1, 1e-3, 1e-5]:
            retriever = QoIRetriever(refactored, ranges_of(fields))
            res = retriever.retrieve([QoIRequest("VTOT", qoi, tol, qrange)])
            assert res.all_satisfied
            sizes.append(res.total_bytes)
        assert sizes[0] < sizes[1] < sizes[2]

    def test_unused_variables_not_fetched(self):
        fields = cfd_fields(seed=2)
        refactored = refactor_dataset(fields, make_refactorer("pmgard_hb"))
        retriever = QoIRetriever(refactored, ranges_of(fields))
        qoi = molar_product("pressure", "density")
        truth = qoi.value({k: (fields[k], 0.0) for k in ("pressure", "density")})
        qrange = float(np.max(truth) - np.min(truth))
        res = retriever.retrieve([QoIRequest("PD", qoi, 1e-3, qrange)])
        assert set(res.bytes_per_variable) == {"pressure", "density"}


class TestMaskIntegration:
    def test_wall_nodes_do_not_blow_up_retrieval(self):
        fields = cfd_fields(seed=3, with_walls=True)
        refactored = refactor_dataset(fields, make_refactorer("pmgard_hb"))
        vel = [fields[k] for k in ("velocity_x", "velocity_y", "velocity_z")]
        mask = ZeroMask.from_fields(*vel)
        assert mask.count > 0
        masks = {k: mask for k in ("velocity_x", "velocity_y", "velocity_z")}
        qoi = total_velocity()
        truth = qoi.value({k: (fields[k], 0.0) for k in masks})
        qrange = float(np.max(truth) - np.min(truth))
        with_mask = QoIRetriever(refactored, ranges_of(fields), masks=masks).retrieve(
            [QoIRequest("VTOT", qoi, 1e-4, qrange)]
        )
        assert with_mask.all_satisfied
        rec = qoi.value({k: (with_mask.data[k], 0.0) for k in with_mask.data})
        assert np.max(np.abs(rec - truth)) <= 1e-4 * qrange
        # masked nodes are exactly zero in the reconstruction
        assert np.all(with_mask.data["velocity_x"][mask.mask] == 0.0)

    def test_mask_bytes_accounted(self):
        fields = cfd_fields(seed=4, with_walls=True)
        refactored = refactor_dataset(fields, make_refactorer("pmgard_hb"))
        vel_names = ("velocity_x", "velocity_y", "velocity_z")
        mask = ZeroMask.from_fields(*(fields[k] for k in vel_names))
        masks = {k: mask for k in vel_names}
        qoi = total_velocity()
        truth = qoi.value({k: (fields[k], 0.0) for k in vel_names})
        qrange = float(np.max(truth) - np.min(truth))
        res = QoIRetriever(refactored, ranges_of(fields), masks=masks).retrieve(
            [QoIRequest("VTOT", qoi, 1e-2, qrange)]
        )
        for name in vel_names:
            assert res.bytes_per_variable[name] >= mask.nbytes


class TestValidation:
    def test_empty_requests(self):
        fields = cfd_fields(seed=5)
        refactored = refactor_dataset(fields, make_refactorer("pmgard_hb"))
        retriever = QoIRetriever(refactored, ranges_of(fields))
        with pytest.raises(ValueError):
            retriever.retrieve([])

    def test_unknown_variable(self):
        fields = cfd_fields(seed=6)
        refactored = refactor_dataset(fields, make_refactorer("pmgard_hb"))
        retriever = QoIRetriever(refactored, ranges_of(fields))
        from repro.core.expressions import Var

        with pytest.raises(ValueError, match="unknown variables"):
            retriever.retrieve([QoIRequest("bad", Var("nope"), 1e-3)])

    def test_missing_range(self):
        fields = cfd_fields(seed=7)
        refactored = refactor_dataset(fields, make_refactorer("pmgard_hb"))
        with pytest.raises(ValueError, match="missing value range"):
            QoIRetriever(refactored, {})

    def test_result_metadata(self, retriever_setup):
        fields, retriever = retriever_setup
        qoi = total_velocity()
        truth = qoi.value({k: (v, 0.0) for k, v in fields.items() if "velocity" in k})
        qrange = float(np.max(truth) - np.min(truth))
        res = retriever.retrieve([QoIRequest("VTOT", qoi, 1e-3, qrange)])
        assert res.rounds >= 1
        assert res.stopwatch.total() > 0
        assert set(res.final_ebs) == {"velocity_x", "velocity_y", "velocity_z"}
