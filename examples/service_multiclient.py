"""Serving one archive to many concurrent analysts through a shared cache.

Corresponds to: no single paper figure — this is the repo's extension of
the paper's progressive economy (incremental fragments per analyst,
§VI-C sessions) to the multi-user setting: a
:class:`repro.RetrievalService` multiplexes concurrent client sessions
over one sharded on-disk archive behind a shared LRU fragment cache, so
fragments read from disk for one client are served from memory to all
others.

Expected output: the archive size, then a two-row comparison — N
concurrent clients through the shared cache vs. N independent sessions —
where the shared configuration reads several times fewer bytes from the
store at a cache hit rate above 80%, followed by a per-client line
confirming every client's QoI guarantee held.

Run:  python examples/service_multiclient.py
"""

import tempfile
from concurrent.futures import ThreadPoolExecutor

import numpy as np

import repro
from repro.parallel import blockwise_archive, blockwise_refactor
from repro.storage.archive import Archive

N_CLIENTS = 6
TOLERANCES = [1e-2, 1e-3, 1e-4]


def main():
    # -- 1. Archive a dataset once, into a sharded on-disk store ------------
    fields = repro.data.ge_cfd(num_nodes=20_000, seed=11)
    velocities = {k: v for k, v in fields.items() if k.startswith("velocity")}
    blocked = repro.parallel.BlockedDataset.from_fields(velocities, 1)
    refactored = blockwise_refactor(blocked, lambda: repro.make_refactorer("pmgard_hb"))

    root = tempfile.mkdtemp(prefix="repro-archive-")
    store = repro.ShardedDiskStore(root)
    blockwise_archive(blocked, refactored, Archive(store), method="pmgard_hb")
    print(f"archived {store.nbytes() / 1e6:.2f} MB of fragments -> {root}")

    qoi = repro.total_velocity(*(repro.parallel.block_variable(v, 0) for v in velocities))
    truth = np.sqrt(sum(v ** 2 for v in velocities.values()))
    qrange = float(truth.max() - truth.min())

    def ladder(session):
        """One analyst: loose request first, then tighten (incremental)."""
        for tol in TOLERANCES:
            result = session.retrieve([repro.QoIRequest("VTOT", qoi, tol, qrange)])
            assert result.all_satisfied
        return session.bytes_retrieved()

    # -- 2. N concurrent clients through one service + shared cache ---------
    shared_store = repro.ShardedDiskStore(root)
    service = repro.RetrievalService(shared_store)
    with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
        per_client = list(pool.map(
            lambda _: ladder(service.open_session()), range(N_CLIENTS)
        ))
    stats = service.stats()

    # -- 3. The same clients as fully independent sessions -------------------
    indep_store = repro.ShardedDiskStore(root)
    archive = Archive(indep_store)
    ranges = {repro.parallel.block_variable(k, 0): float(v.max() - v.min())
              for k, v in velocities.items()}

    def independent(_):
        loaded = {name: archive.load(name) for name in ranges}
        return ladder(repro.QoIRetriever(loaded, ranges).session())

    with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
        list(pool.map(independent, range(N_CLIENTS)))

    print(f"\n{N_CLIENTS} clients, tolerance ladder {TOLERANCES}:")
    print(f"  shared cache : {shared_store.bytes_read / 1e6:8.2f} MB from store "
          f"(hit rate {stats.cache.hit_rate:.1%})")
    print(f"  independent  : {indep_store.bytes_read / 1e6:8.2f} MB from store")
    print(f"  -> {indep_store.bytes_read / max(shared_store.bytes_read, 1):.1f}x "
          f"less store traffic with the shared cache")
    print(f"\nall {N_CLIENTS} clients satisfied their guarantees; per-client "
          f"session bytes: {sorted(set(per_client))}")
    assert shared_store.bytes_read < indep_store.bytes_read


if __name__ == "__main__":
    main()
