"""Defining your own derivable QoI and retrieving it with guarantees.

Corresponds to: Table II (the derivable-QoI basis) and Theorems 1–9.
The paper's theory covers *any* quantity composable from that basis; this
example builds two QoIs that are not in the paper — dynamic pressure
q = 1/2 rho V^2 and a normalized stagnation ratio — straight from
operator syntax, and retrieves them with guaranteed bounds.

Expected output: each QoI's variable dependencies, then one line per QoI
showing requested tolerance >= guaranteed bound >= actual error, and a
final line with the retrieved size (~0.24 MB) and round count — both
guarantees hold.

Run:  python examples/custom_qoi.py
"""

import numpy as np

import repro
from repro.core.expressions import Radical, Sqrt, Var


def main():
    fields = repro.data.ge_cfd(num_nodes=15_000, seed=21)
    env0 = {k: (v, 0.0) for k, v in fields.items()}

    # dynamic pressure: q = 0.5 * rho * (Vx^2 + Vy^2 + Vz^2)
    v2 = Var("velocity_x") ** 2 + Var("velocity_y") ** 2 + Var("velocity_z") ** 2
    dynamic_pressure = 0.5 * Var("density") * v2

    # a made-up normalized ratio exercising sqrt + radical composition:
    #   r = sqrt(q) / (P + 101325)
    ratio = Sqrt(dynamic_pressure) * Radical(Var("pressure"), c=101325.0)

    requests = []
    for name, qoi, tol in [
        ("dynamic_pressure", dynamic_pressure, 1e-5),
        ("stagnation_ratio", ratio, 1e-4),
    ]:
        vals = qoi.value(env0)
        qoi_range = float(vals.max() - vals.min())
        requests.append(repro.QoIRequest(name, qoi, tol, qoi_range))
        print(f"{name}: depends on {sorted(qoi.variables())}")

    refactored = repro.refactor_dataset(fields, repro.make_refactorer("pmgard_hb"))
    ranges = {k: float(v.max() - v.min()) for k, v in fields.items()}
    result = repro.QoIRetriever(refactored, ranges).retrieve(requests)

    print()
    for req in requests:
        truth = req.qoi.value(env0)
        rec = req.qoi.value({**env0, **{k: (result.data[k], 0.0) for k in result.data}})
        actual = float(np.max(np.abs(rec - truth))) / req.qoi_range
        est = result.estimated_errors[req.name] / req.qoi_range
        print(f"{req.name:18s} requested {req.tolerance:.0e}  "
              f"guaranteed {est:.2e}  actual {actual:.2e}")
        assert actual <= est <= req.tolerance
    print(f"\nretrieved {result.total_bytes / 1e6:.2f} MB "
          f"in {result.rounds} round(s); both guarantees hold")


if __name__ == "__main__":
    main()
