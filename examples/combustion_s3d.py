"""S3D combustion: preserving reaction-rate intermediates during retrieval.

Corresponds to: Table III and Fig. 6 — the S3D case: 8 species molar
concentrations where downstream chemistry needs products like [O2][H]
for the reaction H + O2 <-> O + OH.  Multiplicative QoIs compose
Theorem 5 through Theorem 9, and the retrieved size depends strongly on
the tolerance.

Expected output: one table per molar product sweeping the tolerance
(1e-2 … 1e-5), each row showing bitrate growing as the tolerance
tightens while estimated error stays above actual error and below the
request — closing with a line confirming every guarantee held.

Run:  python examples/combustion_s3d.py
"""

import numpy as np

import repro
from repro.analysis.rate_distortion import qoi_error_sweep
from repro.analysis.reporting import format_curve
from repro.data.datasets import S3D_PRODUCTS


def main():
    ds = repro.load_dataset("S3D", scale=0.5, seed=3)
    print(f"S3D-like dataset: {len(ds.fields)} species, "
          f"{ds.num_elements} points per field\n")

    refactored = repro.refactor_dataset(ds.fields, repro.make_refactorer("pmgard_hb"))

    tolerances = [1e-2, 1e-3, 1e-4, 1e-5]
    for name, species in S3D_PRODUCTS.items():
        qoi = repro.molar_product(*species)
        points = qoi_error_sweep(refactored, ds.fields, qoi, name, tolerances)
        print(format_curve(f"molar product {name}", points))
        for p in points:
            assert p.actual <= p.estimated <= p.requested * (1 + 1e-12)
        print()

    print("all estimated errors bounded the actual errors; all tolerances met")


if __name__ == "__main__":
    main()
