"""Quickstart: archive a dataset once, retrieve with a guaranteed QoI bound.

Corresponds to: Fig. 1 of the paper — the two-phase workflow: a
*refactoring* stage run once at data-generation time, and a
*QoI-preserving retrieval* stage run per analysis request.

Expected output: four lines — archived size (~0.36 MB of fragments for
~0.48 MB raw), the requested relative QoI tolerance (1e-05), a guaranteed
(estimated) error below it, an actual error below the estimate, and the
retrieved fraction (~45% of raw in a handful of rounds).  The final
assert verifies the guarantee chain requested >= estimated >= actual.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main():
    # -- 1. "Simulation output": three velocity components ------------------
    fields = repro.data.ge_cfd(num_nodes=20_000, seed=42)
    velocities = {k: v for k, v in fields.items() if k.startswith("velocity")}

    # -- 2. Refactor once into progressive fragments (archival) -------------
    refactorer = repro.make_refactorer("pmgard_hb")  # the paper's best method
    refactored = repro.refactor_dataset(velocities, refactorer)
    archived = sum(r.total_bytes for r in refactored.values())
    raw = sum(v.nbytes for v in velocities.values())
    print(f"archived {archived / 1e6:.2f} MB of progressive fragments "
          f"({raw / 1e6:.2f} MB raw)")

    # -- 3. An analyst requests total velocity with a 1e-5 relative bound ---
    qoi = repro.total_velocity()
    truth = qoi.value({k: (v, 0.0) for k, v in velocities.items()})
    qoi_range = float(truth.max() - truth.min())

    ranges = {k: float(v.max() - v.min()) for k, v in velocities.items()}
    retriever = repro.QoIRetriever(refactored, ranges)
    result = retriever.retrieve(
        [repro.QoIRequest("VTOT", qoi, tolerance=1e-5, qoi_range=qoi_range)]
    )

    # -- 4. The guarantee: estimated >= actual, both below the tolerance ----
    rec = qoi.value({k: (result.data[k], 0.0) for k in result.data})
    actual = float(np.max(np.abs(rec - truth))) / qoi_range
    print(f"requested relative QoI error : 1e-05")
    print(f"estimated (guaranteed) error : {result.estimated_errors['VTOT'] / qoi_range:.3e}")
    print(f"actual error                 : {actual:.3e}")
    print(f"retrieved                    : {result.total_bytes / 1e6:.2f} MB "
          f"({100 * result.total_bytes / raw:.1f}% of raw) in {result.rounds} round(s)")
    assert result.all_satisfied and actual <= 1e-5


if __name__ == "__main__":
    main()
