"""GE CFD posthoc-analysis pipeline: six QoIs, zero-mask, method shootout.

Corresponds to: §III-A / §VI-B and Figs. 4, 7 — a turbomachinery CFD
state with wall nodes (the §V-A zero-value mask), the six derivable QoIs
of Eq. (1)-(6), and the three progressive approaches compared on
retrieved size.

Expected output: the masked wall-node count and bitmap cost, then a
method-per-row table (pmgard_hb / psz3_delta / psz3) showing all six QoI
guarantees met, round counts, retrieved MB, bitrate, and the worst
relative estimated error — with pmgard_hb retrieving the least, matching
the paper's ordering.

Run:  python examples/ge_cfd_pipeline.py
"""

import numpy as np

import repro
from repro.analysis.metrics import bitrate
from repro.analysis.reporting import format_table


def main():
    fields = repro.data.ge_cfd(num_nodes=12_000, wall_fraction=0.04, seed=7)
    ranges = {k: float(v.max() - v.min()) for k, v in fields.items()}
    env0 = {k: (v, 0.0) for k, v in fields.items()}

    # wall nodes (all velocity components exactly zero) would make the
    # sqrt estimator blow up -> record them in the paper's zero bitmap
    vel_names = ("velocity_x", "velocity_y", "velocity_z")
    mask = repro.ZeroMask.from_fields(*(fields[k] for k in vel_names))
    masks = {k: mask for k in vel_names}
    print(f"{mask.count} wall nodes masked ({mask.nbytes} B bitmap)\n")

    requests = []
    for name, qoi in repro.GE_QOIS.items():
        vals = qoi.value(env0)
        qoi_range = float(vals.max() - vals.min())
        requests.append(repro.QoIRequest(name, qoi, tolerance=1e-4, qoi_range=qoi_range))

    rows = []
    for method in ("pmgard_hb", "psz3_delta", "psz3"):
        refactored = repro.refactor_dataset(fields, repro.make_refactorer(method))
        retriever = repro.QoIRetriever(refactored, ranges, masks=masks)
        result = retriever.retrieve(requests)
        worst = max(
            result.estimated_errors[r.name] / r.qoi_range for r in requests
        )
        rows.append([
            method,
            "yes" if result.all_satisfied else "NO",
            result.rounds,
            f"{result.total_bytes / 1e6:.3f} MB",
            f"{bitrate(result.total_bytes, next(iter(fields.values())).size):.2f}",
            f"{worst:.2e}",
        ])
        # verify the guarantee against the originals
        for r in requests:
            truth = r.qoi.value(env0)
            rec_env = dict(env0)
            rec_env.update({k: (result.data[k], 0.0) for k in result.data})
            rec = r.qoi.value(rec_env)
            err = float(np.max(np.abs(rec - truth)))
            assert err <= r.absolute_tolerance * (1 + 1e-9), (method, r.name)

    print(format_table(
        ["method", "all QoIs met", "rounds", "retrieved", "bitrate", "worst rel. est."],
        rows,
        title="Six GE QoIs at relative tolerance 1e-4 (guarantees verified)",
    ))


if __name__ == "__main__":
    main()
