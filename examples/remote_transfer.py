"""Remote retrieval: how QoI-bounded progressive transfer beats raw copy.

Corresponds to: Fig. 9 — GE-large is archived at one site; 96 workers
at a remote site each retrieve one block through a Globus-like WAN and
need total velocity with a guaranteed error.

Expected output: the simulated raw-transfer baseline (~11.9 s, the
dashed line of Fig. 9), then a table sweeping the QoI tolerance
(1e-1 … 1e-5) with the retrieved fraction rising from ~26% to ~49% and
the projected speedup over raw copy falling from ~2.6x to ~1.7x.

Two things are *measured* here: the per-block retrieved-size fraction and
the local retrieval compute time, both on scaled-down synthetic blocks.
The WAN itself is simulated (DESIGN.md §1.3) with the paper's baseline
calibration (4.67 GB raw in ~11.7 s), and the measured fractions are
projected onto the paper's block sizes — the speedup is a property of the
size ratio, exactly as in the paper.

Run:  python examples/remote_transfer.py
"""

import numpy as np

import repro
from repro.analysis.rate_distortion import qoi_rd_point
from repro.analysis.reporting import format_table

PAPER_RAW_BYTES = int(4.67e9)  # 3 velocity variables of GE-large
PAPER_BLOCKS = 96


def main():
    num_blocks = 8  # measure on 8 distinct synthetic blocks, tile to 96
    blocks = [repro.data.ge_cfd(num_nodes=6_000, seed=100 + b) for b in range(num_blocks)]
    vel_names = ("velocity_x", "velocity_y", "velocity_z")
    qoi = repro.total_velocity()

    refactored_blocks = [
        repro.refactor_dataset({k: blk[k] for k in vel_names},
                               repro.make_refactorer("pmgard_hb"))
        for blk in blocks
    ]
    raw_bytes = sum(blk[k].nbytes for blk in blocks for k in vel_names)

    network = repro.GlobusTransferModel(max_streams=PAPER_BLOCKS)
    baseline = network.baseline(PAPER_RAW_BYTES, PAPER_BLOCKS)
    paper_block = PAPER_RAW_BYTES / PAPER_BLOCKS

    rows = []
    for tol in (1e-1, 1e-2, 1e-3, 1e-4, 1e-5):
        fractions, computes, rounds = [], [], []
        for blk, refactored in zip(blocks, refactored_blocks):
            fields = {k: blk[k] for k in vel_names}
            point = qoi_rd_point(refactored, fields, qoi, "VTOT", tol)
            block_raw = sum(fields[k].nbytes for k in vel_names)
            fractions.append(point.bytes_retrieved / block_raw)
            computes.append(point.seconds)
            rounds.append(point.rounds)
        # project measured fractions onto the paper's 96 equal blocks
        sizes = [int(fractions[i % num_blocks] * paper_block) for i in range(PAPER_BLOCKS)]
        comp = [computes[i % num_blocks] for i in range(PAPER_BLOCKS)]
        rnds = [rounds[i % num_blocks] for i in range(PAPER_BLOCKS)]
        report = network.transfer(sizes, compute_times=comp, rounds_per_block=rnds)
        rows.append([
            f"{tol:.0e}",
            f"{100 * float(np.mean(fractions)):.1f}%",
            f"{report.total_time:.2f} s",
            f"{report.speedup_over(baseline):.2f}x",
        ])

    print(f"measured on {num_blocks} synthetic blocks "
          f"({raw_bytes / 1e6:.1f} MB raw), projected to the paper's "
          f"{PAPER_BLOCKS} blocks / {PAPER_RAW_BYTES / 1e9:.2f} GB")
    print(f"raw-transfer baseline: {baseline.total_time:.2f} s "
          f"(the dashed line of Fig. 9)\n")
    print(format_table(
        ["QoI tolerance", "retrieved fraction", "total time", "speedup"],
        rows,
        title="Simulated WAN transfer of GE-large, VTOT",
    ))


if __name__ == "__main__":
    main()
