"""Archive snapshot/restore: copy a fragment store between two URLs.

``repro snapshot SRC DST`` (and the :func:`snapshot_store` function
behind it) copies every fragment of one :func:`~repro.storage.store.open_store`
URL into another — any scheme to any scheme, so a flat directory can be
snapshotted into a sharded layout, a tiered fabric into a plain backup
directory, or a remote HTTP store pulled down locally.  ``repro
restore`` is the same copy run the other way, with ``delete_extra=True``
by default so the destination converges to exactly the snapshot's
contents.

Properties the copy gives you:

* **Batched**: fragments move in :meth:`get_many`/``put_many`` batches
  bounded by ``chunk_bytes``, so a snapshot costs round trips
  proportional to its size over the chunk, never one per fragment.
* **Crash-safe on WAL destinations**: each batch lands as one commit
  record on the on-disk stores, so an interrupted snapshot leaves the
  destination with whole batches only — re-running the snapshot is
  always a safe repair (copying is idempotent).
* **Verified**: ``verify=True`` re-reads the destination after the copy
  and compares every payload byte-for-byte, which is what makes
  ``snapshot`` trustworthy as a backup primitive.

The report (:class:`SnapshotReport`) is what the CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.store import FragmentStore, open_store

#: Default payload bytes per copy batch: large enough to amortize a
#: remote round trip, small enough to bound peak memory.
DEFAULT_CHUNK_BYTES = 32 << 20


@dataclass
class SnapshotReport:
    """Outcome of one :func:`snapshot_store` / :func:`restore_store` call."""

    #: Fragments copied into the destination.
    fragments: int = 0
    #: Payload bytes copied.
    bytes_copied: int = 0
    #: Batches (``get_many`` + ``put_many`` pairs) the copy used.
    batches: int = 0
    #: Fragments already identical at the destination and skipped
    #: (same size; payloads are not pre-read unless verifying).
    skipped: int = 0
    #: Extra destination fragments deleted (``delete_extra=True``).
    deleted: int = 0
    #: Fragments re-read and compared byte-for-byte after the copy.
    verified: int = 0
    #: Keys whose post-copy verification failed (empty = success).
    mismatched: list = field(default_factory=list)


def _copy(src: FragmentStore, dst: FragmentStore, chunk_bytes: int,
          skip_same_size: bool) -> SnapshotReport:
    report = SnapshotReport()
    pending: list = []
    pending_bytes = 0

    def drain() -> None:
        nonlocal pending_bytes
        if not pending:
            return
        payloads = src.get_many(pending)
        dst.put_many([(v, s, payloads[(v, s)]) for v, s in pending])
        report.batches += 1
        report.fragments += len(pending)
        report.bytes_copied += sum(len(p) for p in payloads.values())
        pending.clear()
        pending_bytes = 0

    for variable, segment in src.keys():
        size = src.size_of(variable, segment)
        if (
            skip_same_size
            and dst.has(variable, segment)
            and dst.size_of(variable, segment) == size
        ):
            report.skipped += 1
            continue
        pending.append((variable, segment))
        pending_bytes += size
        if pending_bytes >= chunk_bytes:
            drain()
    drain()
    return report


def _verify(src: FragmentStore, dst: FragmentStore, chunk_bytes: int,
            report: SnapshotReport) -> None:
    pending: list = []
    pending_bytes = 0

    def drain() -> None:
        nonlocal pending_bytes
        if not pending:
            return
        want = src.get_many(pending)
        got = dst.get_many(pending)
        for key in pending:
            report.verified += 1
            if want[key] != got[key]:
                report.mismatched.append(key)
        pending.clear()
        pending_bytes = 0

    for key in src.keys():
        pending.append(key)
        pending_bytes += src.size_of(*key)
        if pending_bytes >= chunk_bytes:
            drain()
    drain()


def snapshot_store(
    src_url: str,
    dst_url: str,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    delete_extra: bool = False,
    verify: bool = True,
    skip_same_size: bool = False,
) -> SnapshotReport:
    """Copy every fragment of *src_url* into *dst_url*.

    Both arguments are ``open_store`` URLs (any scheme).  Fragments move
    in batches of about *chunk_bytes* payload — one ``get_many`` plus
    one ``put_many`` per batch, which on the WAL-backed disk stores
    makes every batch one crash-atomic commit.  With *delete_extra* the
    destination's fragments absent from the source are deleted after the
    copy (tombstoned on disk stores), converging the destination to the
    source's exact key set.  With *skip_same_size* fragments whose
    destination copy already has the source's size are not re-copied —
    the cheap resume heuristic for re-running an interrupted snapshot
    (sizes match ≠ bytes match; keep ``verify=True`` when it matters).
    *verify* re-reads everything from both sides afterwards and records
    byte-for-byte mismatches in the report.

    Raises ``ValueError`` when verification finds mismatched payloads.
    """
    src = open_store(src_url)
    dst = open_store(dst_url)
    try:
        report = _copy(src, dst, int(chunk_bytes), bool(skip_same_size))
        if delete_extra:
            src_keys = set(src.keys())
            for key in dst.keys():
                if key not in src_keys:
                    try:
                        dst.delete(*key)
                    except KeyError:
                        pass  # deleted concurrently
                    else:
                        report.deleted += 1
        if verify:
            _verify(src, dst, int(chunk_bytes), report)
            if report.mismatched:
                raise ValueError(
                    f"snapshot verification failed for {len(report.mismatched)} "
                    f"fragment(s), e.g. {report.mismatched[:3]}"
                )
        return report
    finally:
        dst.close()
        src.close()


def restore_store(
    snapshot_url: str,
    dst_url: str,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    verify: bool = True,
) -> SnapshotReport:
    """Restore *dst_url* to exactly the contents of *snapshot_url*.

    :func:`snapshot_store` with the roles reversed and
    ``delete_extra=True``: fragments the destination holds that the
    snapshot does not are removed, so after a verified restore the
    destination's key set and payloads equal the snapshot's.
    """
    return snapshot_store(
        snapshot_url,
        dst_url,
        chunk_bytes=chunk_bytes,
        delete_extra=True,
        verify=verify,
    )
