"""Refactoring metadata (the ``{m_i}`` of Algorithms 1–2).

The retrieval side of the framework never sees the original data; what it
does see is this metadata: per-variable shape, dtype, value range (needed
by Algorithm 3's relative-to-absolute bound conversion) and the archived
segment inventory.  Manifests serialize to JSON so the archival and
retrieval stages can live on different machines.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

#: Reserved store key under which a dataset's manifest is archived, so the
#: CLI, the retrieval service, and the block-parallel drivers all agree on
#: where refactoring metadata lives.
MANIFEST_VARIABLE = "_dataset"
MANIFEST_SEGMENT = "manifest.json"


@dataclass
class VariableMetadata:
    """Archival metadata of one refactored variable."""

    name: str
    shape: tuple
    dtype: str
    value_min: float
    value_max: float
    compressor: str
    total_bytes: int
    segments: list = field(default_factory=list)

    @property
    def value_range(self) -> float:
        """``max - min`` (1.0 for constant fields, so ratios stay finite)."""
        r = self.value_max - self.value_min
        return r if r > 0 else 1.0

    @classmethod
    def from_array(cls, name, data, compressor, total_bytes, segments=None):
        """Build metadata by inspecting the original array."""
        import numpy as np

        data = np.asarray(data)
        return cls(
            name=name,
            shape=tuple(int(n) for n in data.shape),
            dtype=str(data.dtype),
            value_min=float(np.min(data)),
            value_max=float(np.max(data)),
            compressor=compressor,
            total_bytes=int(total_bytes),
            segments=list(segments or []),
        )


@dataclass
class DatasetManifest:
    """All variables of one archived dataset."""

    dataset: str
    variables: dict = field(default_factory=dict)

    def add(self, meta: VariableMetadata) -> None:
        """Register (or replace) one variable's metadata."""
        self.variables[meta.name] = meta

    def value_ranges(self) -> dict:
        """The ``{range_i}`` input of Algorithm 2."""
        return {name: m.value_range for name, m in self.variables.items()}

    def to_json(self) -> str:
        """Serialize to deterministic (sorted, indented) JSON."""
        payload = {
            "dataset": self.dataset,
            "variables": {k: asdict(v) for k, v in self.variables.items()},
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "DatasetManifest":
        """Inverse of :meth:`to_json`."""
        raw = json.loads(payload)
        manifest = cls(dataset=raw["dataset"])
        for name, v in raw["variables"].items():
            v["shape"] = tuple(v["shape"])
            manifest.variables[name] = VariableMetadata(**v)
        return manifest

    def save_to(self, store) -> None:
        """Archive this manifest at the reserved store key."""
        store.put(MANIFEST_VARIABLE, MANIFEST_SEGMENT, self.to_json().encode())

    @classmethod
    def load_from(cls, store) -> "DatasetManifest":
        """Load the manifest archived in *store*; KeyError when absent."""
        # bytes() materializes the manifest when an arena-backed cache
        # serves it as a memoryview; a no-op for raw stores
        return cls.from_json(bytes(store.get(MANIFEST_VARIABLE, MANIFEST_SEGMENT)).decode())
