"""Tiered storage fabric: fast tier over slow tier with async promotion.

The SC24 deployment story keeps the full progressive archive on a
cheap-but-slow tier (object store, tape-fronted PFS, another site) while
the hot fragment prefix — the coarse levels every retrieval touches —
lives on fast storage near the analysts.  :class:`TieredStore` is that
composition as one :class:`~repro.storage.store.FragmentStore`:

* **Reads go fast-tier-first.**  ``get``/``get_many`` serve fast-tier
  residents locally; the misses of a batch move in **one** coalesced
  slow-tier ``get_many`` — so the pipelined retrieval engine's per-round
  batches cost one slow round trip however many fragments they span.
* **Writes are write-through or write-back.**  Write-through puts land
  on both tiers (the slow tier is durable immediately); write-back puts
  land on the fast tier only and are flushed to the slow tier
  asynchronously (:meth:`TieredStore.flush` or the transfer thread).
* **A background :class:`TransferManager` rebalances.**  Fragments
  served from the slow tier accumulate access counts/recency (the same
  read accounting every store already keeps); the manager *promotes* the
  hot ones into the fast tier in coalesced batches and *demotes* the
  coldest residents when the fast tier exceeds its byte budget (flushing
  dirty write-back data first, then ``delete`` — never dropping the only
  copy).  When tombstoned debt across the tiers crosses a threshold, a
  cycle also runs a background :meth:`TieredStore.compact`, reclaiming
  the dead bytes the WAL-backed tier stores defer (``docs/durability.md``).

Promotion and demotion are invisible to correctness: a demotion racing a
read simply falls back to the slow tier, and every fragment is always
durably held by at least one tier.  Per-tier counters
(:class:`TierStats`) surface through ``RetrievalService.stats`` and the
``repro stats`` CLI.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

from repro.storage.resilience import (
    CircuitOpenError,
    DegradedError,
    ResilienceStats,
    ResilientStore,
    is_transient,
    policy_from_params,
)
from repro.storage.store import (
    FragmentStore,
    open_store,
    parse_bytes,
    split_store_url,
    _split_query,
)
from repro.storage.wal import CompactionReport, DurabilityStats

#: Slow-tier accesses after which a fragment is a promotion candidate.
DEFAULT_PROMOTE_AFTER = 1

#: Default background transfer cycle period (seconds).
DEFAULT_TRANSFER_INTERVAL = 2.0

#: Dead (tombstoned) bytes across the tiers at which a transfer cycle
#: triggers a background compaction of the tier stores.
DEFAULT_COMPACT_DEAD_BYTES = 64 << 20

#: Byte bound of one coalesced write-back flush batch: keeps a huge
#: dirty set (a large write-back ingest) from materializing in memory
#: as one oversized slow-tier request.
FLUSH_CHUNK_BYTES = 32 << 20


@dataclass
class TierStats:
    """Per-tier accounting of one :class:`TieredStore`.

    ``fast_hits``/``slow_hits`` count *fragments served* per tier (a
    batched read contributes per fragment); the ``*_round_trips`` fields
    mirror each tier store's own round-trip counters so the coalescing
    is visible.  Promotion/demotion totals come from the transfer
    machinery, wherever it ran (background thread or ``run_once``).
    """

    fast_hits: int = 0
    slow_hits: int = 0
    fast_bytes_served: int = 0
    slow_bytes_served: int = 0
    fast_round_trips: int = 0
    slow_round_trips: int = 0
    promotions: int = 0
    promoted_bytes: int = 0
    demotions: int = 0
    demoted_bytes: int = 0
    writebacks_flushed: int = 0
    fast_resident_bytes: int = 0
    fast_budget_bytes: int = 0
    dirty_fragments: int = 0
    transfer_cycles: int = 0
    #: Read batches answered partially/not at all because the slow tier
    #: was unavailable (each raised a typed ``DegradedError``).
    degraded_batches: int = 0


class TieredStore(FragmentStore):
    """Fast tier composed over a slow tier behind one store interface.

    Parameters
    ----------
    fast / slow:
        Any two :class:`FragmentStore` backends.  The slow tier is
        treated as the archive of record; the fast tier as a bounded
        working set (typically local disk or memory in front of an
        :class:`~repro.storage.remote.HTTPFragmentStore` or
        :class:`~repro.storage.remote.KeyValueFragmentStore`).
    fast_budget_bytes:
        Byte budget of the fast tier (``None`` = unbounded).  Enforced
        by demotion during transfer cycles, not synchronously on put —
        the budget is a target the manager converges to.
    policy:
        ``"write-through"`` (puts land on both tiers; default) or
        ``"write-back"`` (puts land fast and are flushed by transfer
        cycles / :meth:`flush`).
    promote_after:
        Slow-tier accesses after which a fragment qualifies for
        promotion (1 = promote anything touched since the last cycle).
    transfer_interval:
        Period of the background transfer thread.  The thread is not
        started in ``__init__`` — call :meth:`start_transfer`, or drive
        cycles synchronously with :meth:`TransferManager.run_once` (what
        the benchmarks do for determinism).

    The store's own ``reads``/``bytes_read``/``round_trips`` counters
    record *client-visible* traffic (one round trip per ``get``/
    ``get_many`` call, like :class:`CachingFragmentStore`); the split
    between tiers lives in :meth:`stats`.
    """

    def __init__(
        self,
        fast: FragmentStore,
        slow: FragmentStore,
        fast_budget_bytes: int | None = None,
        policy: str = "write-through",
        promote_after: int = DEFAULT_PROMOTE_AFTER,
        transfer_interval: float = DEFAULT_TRANSFER_INTERVAL,
        compact_dead_bytes: int | None = DEFAULT_COMPACT_DEAD_BYTES,
    ):
        super().__init__()
        if policy not in ("write-through", "write-back"):
            raise ValueError(f"unknown put policy {policy!r}")
        if promote_after < 1:
            raise ValueError("promote_after must be >= 1")
        self.fast = fast
        self.slow = slow
        self.policy = policy
        self.fast_budget_bytes = (
            None if fast_budget_bytes is None else int(fast_budget_bytes)
        )
        self.promote_after = int(promote_after)
        # serializes client mutations (put/put_many/delete) with each
        # demotion victim's read-put-delete sequence: without it a
        # write-back put landing between demote's fast.get and its
        # fast.delete would lose the newer payload silently.  Lock
        # ordering is strict: _mutate_lock before _tier_lock, and
        # neither is ever taken while holding the other in reverse.
        self._mutate_lock = threading.RLock()
        self._tier_lock = threading.RLock()
        self._resident: set = set(fast.keys())  # keys served by the fast tier
        self._dirty: set = set()  # write-back keys the slow tier lacks
        self._dirty_epoch: dict = {}  # key -> version; bumped per dirtying put
        self._access: dict = {}  # key -> [slow-tier hits since promotion, tick]
        self._tick = 0  # monotonic access clock (recency for demotion)
        self._last_touch: dict = {}  # key -> tick of last client read
        self._tstats = TierStats(
            fast_budget_bytes=self.fast_budget_bytes or 0,
        )
        #: Optional :class:`~repro.storage.resilience.TripBudget` gating
        #: client-visible slow-tier round trips (the service installs
        #: one when ``slow_trip_rate`` is configured).  Background
        #: transfer traffic is deliberately exempt — throttling
        #: promotion would starve the mechanism that *reduces* slow
        #: trips — and hedged duplicate reads bypass the store entirely.
        self.trip_budget = None
        self.transfer = TransferManager(
            self,
            interval=float(transfer_interval),
            compact_dead_bytes=compact_dead_bytes,
        )
        # the union index: slow tier first, fast-tier-only keys (write-back
        # survivors, pre-seeded fast tiers) on top
        for variable, segment in slow.keys():
            self._record_put(variable, segment, slow.size_of(variable, segment))
        for variable, segment in fast.keys():
            if (variable, segment) not in self._sizes:
                self._record_put(variable, segment, fast.size_of(variable, segment))
                self._dirty.add((variable, segment))  # only copy is fast-side

    # -- URL form --------------------------------------------------------------

    @classmethod
    def from_url(cls, url: str) -> "TieredStore":
        """Open from a ``tiered://FAST_DIR?slow=URL[&...]`` URL.

        The path names the fast-tier directory (layout auto-detected;
        empty path = in-memory fast tier) and the query configures the
        composition: ``slow=`` (required; any ``open_store`` URL —
        percent-encode it if it carries its own query), ``fast=`` (a
        store URL overriding the path), ``budget=`` (bytes, binary
        suffixes allowed), ``policy=``, ``promote_after=``,
        ``interval=`` (seconds; ``start=1`` launches the background
        thread immediately), ``fsync=`` (WAL discipline of the fast-tier
        directory), and ``compact_dead=`` (dead-byte threshold of
        background compaction; ``0`` disables it).  The resilience keys
        of :func:`~repro.storage.resilience.policy_from_params`
        (``retries``/``retry_base``/``retry_max``/``breaker``/
        ``cooldown``) wrap the **slow tier** in a
        :class:`~repro.storage.resilience.ResilientStore`, enabling
        degraded reads while that backend is down.
        """
        scheme, rest = split_store_url(url)
        if scheme != "tiered":
            raise ValueError(f"not a tiered:// store URL: {url!r}")
        path, params = _split_query(rest)
        if "slow" not in params:
            raise ValueError(f"tiered:// URL needs a slow= backend: {url!r}")
        slow = open_store(params["slow"])
        retry, breaker = policy_from_params(params)
        if retry is not None or breaker is not None:
            if breaker is not None:
                breaker.name = params["slow"]
            slow = ResilientStore(slow, retry=retry, breaker=breaker)
        if "fast" in params:
            fast = open_store(params["fast"])
        elif path:
            fast = open_store(f"file://{path}?fsync={params.get('fsync', 'commit')}")
        else:
            fast = FragmentStore()
        budget = params.get("budget")
        compact_dead: int | None = parse_bytes(
            params.get("compact_dead", DEFAULT_COMPACT_DEAD_BYTES)
        )
        if compact_dead == 0:
            compact_dead = None
        store = cls(
            fast,
            slow,
            fast_budget_bytes=None if budget is None else parse_bytes(budget),
            policy=params.get("policy", "write-through"),
            promote_after=int(params.get("promote_after", DEFAULT_PROMOTE_AFTER)),
            transfer_interval=float(
                params.get("interval", DEFAULT_TRANSFER_INTERVAL)
            ),
            compact_dead_bytes=compact_dead,
        )
        if params.get("start", "0") not in ("0", "", "false"):
            store.start_transfer()
        return store

    # -- reads -----------------------------------------------------------------

    def _degrade(self, keys, exc: BaseException) -> None:
        """Convert a slow-tier outage into a typed :class:`DegradedError`.

        Transient backend failures (exhausted retries, timeouts) and an
        open circuit breaker become a ``DegradedError`` naming exactly
        the *keys* the fast tier could not cover — the caller knows what
        it *did* get served and what is temporarily unavailable.
        Permanent errors (``KeyError`` for unarchived fragments) return
        unchanged so the caller's ``raise`` surfaces them as-is.
        """
        if not (is_transient(exc) or isinstance(exc, CircuitOpenError)):
            return
        with self._tier_lock:
            self._tstats.degraded_batches += 1
        raise DegradedError(keys, reason=f"slow tier unavailable: {exc}") from exc

    def _note_fast(self, keys, nbytes: int) -> None:
        with self._tier_lock:
            self._tick += 1
            for key in keys:
                self._last_touch[key] = self._tick
            self._tstats.fast_hits += len(keys)
            self._tstats.fast_bytes_served += nbytes

    def _note_slow(self, keys, nbytes: int) -> None:
        with self._tier_lock:
            self._tick += 1
            for key in keys:
                self._last_touch[key] = self._tick
                entry = self._access.get(key)
                if entry is None:
                    self._access[key] = [1, self._tick]
                else:
                    entry[0] += 1
                    entry[1] = self._tick
            self._tstats.slow_hits += len(keys)
            self._tstats.slow_bytes_served += nbytes

    def get(self, variable: str, segment: str) -> bytes:
        """Serve one fragment, fast tier first.

        Fast residents keep flowing even while the slow tier is down; a
        fragment only the slow tier holds raises :class:`DegradedError`
        (see :meth:`_degrade`) instead of the raw backend error.
        """
        key = (variable, segment)
        if key not in self._sizes:
            raise KeyError(key)
        payload = None
        if key in self._resident:
            try:
                payload = self.fast.get(variable, segment)
            except (KeyError, OSError):
                payload = None  # demotion raced us; the slow tier has it
        if payload is not None:
            self._note_fast([key], len(payload))
        else:
            if self.trip_budget is not None:
                self.trip_budget.acquire()
            try:
                payload = self.slow.get(variable, segment)
            except Exception as exc:
                self._degrade([key], exc)
                raise
            self._note_slow([key], len(payload))
        with self._stats_lock:
            self.round_trips += 1
            self._count_read(len(payload))
        return payload

    def get_many(self, keys) -> dict:
        """Serve a batch: fast residents locally, all misses in one
        coalesced slow-tier round trip.

        While the slow tier is unavailable (transient failure after
        retries, or its circuit breaker open), batches fully covered by
        the fast tier still succeed — *degraded mode*; batches needing
        the slow tier raise :class:`DegradedError` naming exactly the
        keys that could not be served.
        """
        keys = list(dict.fromkeys((v, s) for v, s in keys))
        missing = [k for k in keys if k not in self._sizes]
        if missing:
            raise KeyError(missing)
        with self._tier_lock:
            fast_keys = [k for k in keys if k in self._resident]
        fast_set = set(fast_keys)
        slow_keys = [k for k in keys if k not in fast_set]
        out: dict = {}
        if fast_keys:
            try:
                out.update(self.fast.get_many(fast_keys))
            except (KeyError, OSError):
                # a demotion raced the residency snapshot: retry the whole
                # fast subset from the slow tier (still one round trip)
                slow_keys = [k for k in keys if k not in out]
            else:
                self._note_fast(fast_keys, sum(len(out[k]) for k in fast_keys))
        if slow_keys:
            if self.trip_budget is not None:
                self.trip_budget.acquire()
            try:
                served = self.slow.get_many(slow_keys)
            except Exception as exc:
                self._degrade(slow_keys, exc)
                raise
            out.update(served)
            self._note_slow(slow_keys, sum(len(p) for p in served.values()))
        with self._stats_lock:
            self.round_trips += 1
            for payload in out.values():
                self._count_read(len(payload))
        return {k: out[k] for k in keys}

    # -- writes ----------------------------------------------------------------

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        """Store one fragment under the configured write policy."""
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("fragment payload must be bytes")
        payload = bytes(payload)
        key = (variable, segment)
        with self._mutate_lock:  # never interleaves with a demotion victim
            self.fast.put(variable, segment, payload)
            if self.policy == "write-through":
                self.slow.put(variable, segment, payload)
            with self._tier_lock:
                self._resident.add(key)
                if self.policy == "write-back":
                    self._dirty.add(key)
                    self._dirty_epoch[key] = self._dirty_epoch.get(key, 0) + 1
            with self._stats_lock:
                self._record_put(variable, segment, len(payload))
                self.put_round_trips += 1
                self._count_write(1, len(payload))

    def put_many(self, items) -> None:
        """Store a batch under the configured write policy (batched per tier).

        The batch lands on the fast tier with one ``put_many``;
        write-through forwards the same batch to the slow tier with one
        more (the durable copy still exists before this call returns),
        while write-back marks every key dirty in one bookkeeping pass
        and leaves the slow-tier copy to :meth:`flush` / the transfer
        thread — so an ingestion flush costs one round trip per tier it
        must touch *now*, never one per fragment.
        """
        batch = self._check_batch(items)
        with self._mutate_lock:  # never interleaves with a demotion victim
            self.fast.put_many(batch)
            if self.policy == "write-through":
                self.slow.put_many(batch)
            keys = [(v, s) for v, s, _ in batch]
            with self._tier_lock:
                self._resident.update(keys)
                if self.policy == "write-back":
                    self._dirty.update(keys)
                    for key in keys:
                        self._dirty_epoch[key] = self._dirty_epoch.get(key, 0) + 1
            with self._stats_lock:
                for variable, segment, payload in batch:
                    self._record_put(variable, segment, len(payload))
                self.put_round_trips += 1
                self._count_write(len(batch), sum(len(p) for _, _, p in batch))

    def delete(self, variable: str, segment: str) -> None:
        """Remove one fragment from every tier holding it."""
        key = (variable, segment)
        with self._mutate_lock:  # never interleaves with a demotion victim
            if key not in self._sizes:
                raise KeyError(key)
            with self._tier_lock:
                resident = key in self._resident
                self._resident.discard(key)
                self._dirty.discard(key)
                self._dirty_epoch.pop(key, None)
                self._access.pop(key, None)
                self._last_touch.pop(key, None)
            if resident:
                try:
                    self.fast.delete(variable, segment)
                except KeyError:
                    pass
            try:
                self.slow.delete(variable, segment)
            except KeyError:
                pass  # write-back key never flushed
            with self._stats_lock:
                self._record_delete(variable, segment)

    def transact(self, puts, deletes=()) -> None:
        """Apply puts then deletes under one mutation-lock hold.

        Tier bookkeeping stays consistent against concurrent demotions;
        per-tier WAL atomicity is that of the underlying stores' own
        operations (the slow tier sees one ``put_many`` record plus one
        tombstone record per delete).
        """
        with self._mutate_lock:
            super().transact(puts, deletes)

    def flush(self) -> int:
        """Push every dirty write-back fragment to the slow tier.

        The dirty set moves in coalesced slow-tier ``put_many`` batches
        of at most :data:`FLUSH_CHUNK_BYTES` — an ingestion burst of
        write-back puts costs a handful of slow round trips to drain,
        not one per fragment, without ever materializing an unbounded
        dirty set in memory.  A fragment re-put while its batch was in
        flight keeps its dirty mark (per-key epochs detect the newer
        payload), so the next cycle ships the newer bytes — a
        write-back copy is never silently dropped.  Returns the number
        of fragments flushed.  Safe to call any time; the transfer
        thread calls it once per cycle.
        """
        with self._tier_lock:
            dirty = list(self._dirty)
        flushed = 0
        chunk: list = []  # (key, payload, epoch at staging time)
        chunk_bytes = 0

        def drain() -> None:
            nonlocal flushed, chunk_bytes
            if not chunk:
                return
            self.slow.put_many([(v, s, p) for (v, s), p, _ in chunk])
            undo = []
            with self._tier_lock:
                for key, _, epoch in chunk:
                    if key not in self._sizes:
                        undo.append(key)  # a delete raced the batch put:
                        continue          # the written copy must not survive
                    if self._dirty_epoch.get(key, 0) == epoch:
                        self._dirty.discard(key)
                        self._tstats.writebacks_flushed += 1
                        flushed += 1
                    # else: re-dirtied mid-flight; the mark stays and the
                    # next cycle ships the newer payload
            for key in undo:
                try:
                    self.slow.delete(*key)
                except KeyError:
                    pass
            chunk.clear()
            chunk_bytes = 0

        for key in dirty:
            with self._tier_lock:
                if key not in self._sizes or key not in self._dirty:
                    continue  # deleted (or flushed elsewhere) since the snapshot
                # capture the epoch *before* reading the payload: a put
                # landing in between bumps it, so the stale read below can
                # never clear the newer payload's dirty mark
                epoch = self._dirty_epoch.get(key, 0)
            try:
                payload = self.fast.get(*key)
            except (KeyError, OSError):
                continue  # deleted concurrently
            chunk.append((key, payload, epoch))
            chunk_bytes += len(payload)
            if chunk_bytes >= FLUSH_CHUNK_BYTES:
                drain()
        drain()
        return flushed

    # -- transfer machinery ----------------------------------------------------

    def promotion_candidates(self) -> list:
        """Non-resident keys hot enough to promote, hottest first.

        Hotness orders by slow-tier access count then recency; the
        access tallies reset when a key is promoted, so a later demotion
        requires fresh traffic to earn the fast tier back.
        """
        with self._tier_lock:
            ranked = sorted(
                (
                    (count, tick, key)
                    for key, (count, tick) in self._access.items()
                    if count >= self.promote_after and key not in self._resident
                ),
                reverse=True,
            )
        return [key for _, _, key in ranked]

    def promote(self, keys) -> int:
        """Copy *keys* from the slow tier into the fast tier (one batch).

        Reads move in a single coalesced slow-tier ``get_many``; keys
        that vanished concurrently are skipped.  Returns the number of
        fragments promoted.  Respects the byte budget: promotion stops
        once the fast tier would exceed it (the coldest data should be
        demoted first, not displaced by marginally warmer data).
        """
        keys = [k for k in keys if k in self._sizes and k not in self._resident]
        if not keys:
            return 0
        budget = self.fast_budget_bytes
        if budget is not None:
            room = budget - self.fast.nbytes()
            kept = []
            for key in keys:
                size = self._sizes.get(key, 0)
                if size <= room:
                    kept.append(key)
                    room -= size
            keys = kept
            if not keys:
                return 0
        try:
            payloads = self.slow.get_many(keys)
        except KeyError as exc:
            gone = set(exc.args[0]) if exc.args else set()
            keys = [k for k in keys if k not in gone]
            if not keys:
                return 0
            payloads = self.slow.get_many(keys)
        promoted = 0
        for key in keys:
            payload = payloads[key]
            with self._tier_lock:
                live = key in self._sizes
            if not live:
                continue  # deleted since the candidate scan
            self.fast.put(key[0], key[1], payload)
            with self._tier_lock:
                if key not in self._sizes:
                    pass  # a delete raced the put; undo below, outside the lock
                else:
                    self._resident.add(key)
                    self._access.pop(key, None)  # earned its seat; reset the tally
                    self._tstats.promotions += 1
                    self._tstats.promoted_bytes += len(payload)
                    promoted += 1
                    continue
            try:
                self.fast.delete(*key)  # orphan copy of a deleted fragment
            except KeyError:
                pass
        return promoted

    def demote(self, max_bytes: int | None = None) -> int:
        """Evict the coldest fast-tier residents down to the byte budget.

        *max_bytes* overrides the configured budget for this call.  A
        dirty fragment is flushed to the slow tier before its fast copy
        is deleted, so demotion never drops the only copy.  Returns the
        number of fragments demoted.
        """
        budget = self.fast_budget_bytes if max_bytes is None else int(max_bytes)
        if budget is None:
            return 0
        demoted = 0
        while self.fast.nbytes() > budget:
            # each victim's read-put-delete runs under the mutation lock:
            # a concurrent write-back put cannot land a newer payload
            # between the fast-tier read and the fast-tier delete (the
            # lost-update race the PR-5 tiering pass documented), and a
            # concurrent delete cannot resurrect via the slow-tier put
            with self._mutate_lock:
                with self._tier_lock:
                    if not self._resident:
                        break
                    victim = min(
                        self._resident, key=lambda k: self._last_touch.get(k, 0)
                    )
                    dirty = victim in self._dirty
                if dirty:
                    try:
                        payload = self.fast.get(*victim)
                    except (KeyError, OSError):
                        payload = None
                    if payload is not None:
                        self.slow.put(victim[0], victim[1], payload)
                try:
                    self.fast.delete(*victim)
                except KeyError:
                    pass
                with self._tier_lock:
                    self._resident.discard(victim)
                    self._dirty.discard(victim)
                    self._tstats.demotions += 1
                    self._tstats.demoted_bytes += self._sizes.get(victim, 0)
            demoted += 1
        return demoted

    # -- durability ------------------------------------------------------------

    def compact(self) -> "CompactionReport":
        """Compact both tiers; returns the merged reclaim report.

        Dirty write-backs are flushed first (compaction must never run
        ahead of durability), then each tier compacts itself — on the
        WAL-backed disk stores that rewrites the index log to live
        entries and unlinks tombstoned payload files.  Safe concurrent
        with readers and ingest: each tier's compact holds only that
        tier's writer lock.
        """
        if self.policy == "write-back":
            self.flush()
        report = self.fast.compact()
        report.merge(self.slow.compact())
        return report

    def durability(self) -> "DurabilityStats":
        """Merged durability counters of both tiers."""
        return self.fast.durability().merge(self.slow.durability())

    # -- introspection ---------------------------------------------------------

    def stats(self) -> TierStats:
        """Snapshot of the per-tier counters (includes tier round trips)."""
        with self._tier_lock:
            snapshot = replace(
                self._tstats,
                fast_round_trips=self.fast.round_trips,
                slow_round_trips=self.slow.round_trips,
                fast_resident_bytes=self.fast.nbytes(),
                fast_budget_bytes=self.fast_budget_bytes or 0,
                dirty_fragments=len(self._dirty),
            )
        return snapshot

    def resilience(self) -> "ResilienceStats":
        """Retry/breaker counters of the slow tier's resilience wrapper.

        All-zero (closed breaker, no retries) when the slow tier is not
        wrapped in a :class:`~repro.storage.resilience.ResilientStore` —
        the shape stays stable so stats consumers need no branching.
        """
        resilience = getattr(self.slow, "resilience", None)
        if resilience is None:
            return ResilienceStats()
        return resilience()

    def resident(self, variable: str, segment: str) -> bool:
        """Whether a fragment currently lives in the fast tier."""
        with self._tier_lock:
            return (variable, segment) in self._resident

    # -- lifecycle -------------------------------------------------------------

    def start_transfer(self) -> "TransferManager":
        """Start the background promotion/demotion thread (idempotent)."""
        self.transfer.start()
        return self.transfer

    def close(self) -> None:
        """Stop the transfer thread, flush write-backs, close the tiers."""
        self.transfer.stop()
        self.flush()
        self.fast.close()
        self.slow.close()


class TransferManager:
    """Background promotion/demotion/compaction loop of one :class:`TieredStore`.

    One cycle (:meth:`run_once`) flushes dirty write-backs, promotes the
    current hot set in one coalesced slow-tier batch, demotes down to
    the byte budget, and — when the tiers' tombstoned debt exceeds
    ``compact_dead_bytes`` — compacts the tier stores to reclaim it.
    :meth:`start` runs cycles on a daemon thread every *interval*
    seconds; benchmarks and tests call :meth:`run_once` directly so tier
    movement is deterministic.
    """

    def __init__(
        self,
        store: TieredStore,
        interval: float = DEFAULT_TRANSFER_INTERVAL,
        compact_dead_bytes: int | None = DEFAULT_COMPACT_DEAD_BYTES,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.store = store
        self.interval = float(interval)
        #: Dead-byte threshold that triggers a background compaction per
        #: cycle (``None`` disables background compaction entirely).
        self.compact_dead_bytes = (
            None if compact_dead_bytes is None else int(compact_dead_bytes)
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        """Whether the background thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def run_once(self) -> dict:
        """One synchronous transfer cycle; returns what moved."""
        flushed = self.store.flush()
        promoted = self.store.promote(self.store.promotion_candidates())
        demoted = self.store.demote()
        reclaimed = 0
        if (
            self.compact_dead_bytes is not None
            and self.store.durability().dead_bytes >= self.compact_dead_bytes
        ):
            reclaimed = self.store.compact().reclaimed_bytes
        with self.store._tier_lock:
            self.store._tstats.transfer_cycles += 1
        return {
            "flushed": flushed,
            "promoted": promoted,
            "demoted": demoted,
            "reclaimed_bytes": reclaimed,
        }

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.run_once()
            except Exception:
                # a failed cycle (slow tier briefly unreachable) must not
                # kill rebalancing; the next cycle retries everything
                continue

    def start(self) -> None:
        """Launch the cycle thread (idempotent)."""
        if not self.running:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-tier-transfer", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        """Signal the thread to exit and join it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
