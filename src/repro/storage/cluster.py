"""Scale-out cluster fabric: one archive namespace over N fragment servers.

Everything below this module scales *within* one process; the cluster
store goes horizontal.  :class:`ClusterFragmentStore` composes N backend
stores — typically :class:`~repro.storage.remote.HTTPFragmentStore`
clients for running :class:`~repro.storage.remote.HTTPFragmentServer`
processes — behind the ordinary
:class:`~repro.storage.store.FragmentStore` interface:

* **Consistent-hash placement.**  A :class:`HashRing` with virtual nodes
  maps every ``(variable, segment)`` key to an ordered owner list; the
  same key always lands on the same nodes, load spreads evenly (vnodes
  smooth the arcs), and a membership change moves only ~1/N of the keys.
* **K-way replication.**  ``put``/``put_many``/``transact`` write each
  fragment to its ``replicas`` owners (batched per node, all nodes in
  parallel); a write succeeds as long as every fragment lands on at
  least one owner, counting the under-replicated remainder as
  ``write_failovers`` for the rebalancer to repair.
* **Read failover.**  Every backend is wrapped in the PR-8
  :class:`~repro.storage.resilience.ResilientStore` with its own
  :class:`~repro.storage.resilience.CircuitBreaker`; a batched read fans
  out to the owning shards in parallel (one coalesced ``get_many`` per
  live shard, merged in completion order) and a dead or breaker-open
  primary transparently serves from the next replica — counted per node
  as ``failovers``, invisible to the client.  Only when *every* replica
  of a key is unavailable does the read raise a typed
  :class:`~repro.storage.resilience.DegradedError`.
* **Rebalancing.**  :meth:`ClusterFragmentStore.add_node` /
  :meth:`ClusterFragmentStore.remove_node` stage a membership change;
  :class:`Rebalancer` (the cluster twin of the tiered
  :class:`~repro.storage.tiered.TransferManager`) migrates fragments in
  coalesced byte-bounded batches.  Reads stay correct mid-move via
  old-then-new placement lookup: until a migration finalizes, lookups
  consult the pre-change ring first (where the data is guaranteed to
  live) and the post-change ring as additional failover candidates, and
  writes land on the union — so a kill mid-rebalance loses nothing and
  never serves stale bytes.

``cluster://host:port,host:port?replicas=2&vnodes=64`` URLs open the
whole fabric through :func:`~repro.storage.store.open_store`; see
``docs/cluster.md`` for the grammar, the placement math, and the chaos
guarantees the test suite enforces.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from urllib.parse import unquote

from repro.storage.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    DegradedError,
    ResilienceStats,
    ResilientStore,
    RetryPolicy,
    is_transient,
)
from repro.storage.store import (
    FragmentStore,
    _split_query,
    open_store,
    parse_bytes,
    split_store_url,
)
from repro.storage.wal import CompactionReport, DurabilityStats

#: Virtual nodes per physical node: enough to keep the max/min node
#: load ratio tight without making ring rebuilds noticeable.
DEFAULT_VNODES = 64

#: Copies of every fragment (1 = no replication).
DEFAULT_REPLICAS = 2

#: Per-node retry defaults: failover wants to move on quickly, so the
#: per-node budget is small — the replica set is the real redundancy.
DEFAULT_NODE_ATTEMPTS = 2
DEFAULT_RETRY_BASE = 0.02
DEFAULT_RETRY_MAX = 0.25

#: Consecutive transient failures that open a node's breaker, and how
#: long the node is skipped before a probe is allowed through.
DEFAULT_BREAKER_THRESHOLD = 3
DEFAULT_BREAKER_COOLDOWN = 2.0

#: Byte bound of one coalesced rebalance copy batch (the cluster twin of
#: the tiered store's ``FLUSH_CHUNK_BYTES``).
REBALANCE_CHUNK_BYTES = 32 << 20

#: Period of the background rebalance thread (it only acts while a
#: membership change is staged).
DEFAULT_REBALANCE_INTERVAL = 2.0


def _digest(text: str) -> int:
    """Stable 64-bit ring position of *text* (sha1 prefix, like shards)."""
    return int.from_bytes(hashlib.sha1(text.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring with virtual nodes over a set of node names.

    Each node contributes ``vnodes`` points on a 64-bit ring; a fragment
    key hashes to a point and its owners are the first ``k`` *distinct*
    nodes clockwise from there.  The construction gives the three
    placement properties the cluster needs (and the property suite
    checks): stability (same key → same owners), balance (max/min node
    load ratio bounded by the vnode smoothing), and minimal movement
    (adding or removing one of N nodes re-homes only ~1/N of the keys —
    the untouched nodes' arcs do not move).
    """

    def __init__(self, names, vnodes: int = DEFAULT_VNODES):
        self.names = [str(n) for n in names]
        if not self.names:
            raise ValueError("hash ring needs at least one node")
        if len(set(self.names)) != len(self.names):
            raise ValueError(f"duplicate node names: {sorted(self.names)}")
        self.vnodes = int(vnodes)
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        points = []
        for name in self.names:
            for v in range(self.vnodes):
                points.append((_digest(f"{name}#{v}"), name))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    @staticmethod
    def key_point(variable: str, segment: str) -> int:
        """Ring position of one fragment key (the sharded-store digest)."""
        return _digest(f"{variable}\x00{segment}")

    def owners(self, variable: str, segment: str, k: int = 1) -> list:
        """The first *k* distinct node names clockwise of the key's point.

        ``owners()[0]`` is the primary; the rest are the replicas in
        failover order.  *k* is clamped to the node count, so a
        one-node ring with ``replicas=2`` degenerates gracefully.
        """
        k = min(int(k), len(self.names))
        if k < 1:
            raise ValueError("k must be >= 1")
        start = bisect.bisect_right(self._hashes, self.key_point(variable, segment))
        picked: list = []
        seen: set = set()
        count = len(self._points)
        for i in range(count):
            name = self._points[(start + i) % count][1]
            if name not in seen:
                seen.add(name)
                picked.append(name)
                if len(picked) == k:
                    break
        return picked


@dataclass
class NodeStats:
    """Per-node counters of one :class:`ClusterFragmentStore` backend.

    All numeric fields flow into ``/metrics`` as
    ``repro_cluster_per_node_<name>_*`` gauges; ``url`` is the
    human-readable backend address (string, dropped by the exporter).
    """

    #: Backend address (``http://host:port``) or store type name.
    url: str = ""
    #: Batched requests this node served successfully.
    requests: int = 0
    #: Fragments this node served (batch reads count per fragment).
    fragments_served: int = 0
    #: Payload bytes this node served.
    bytes_read: int = 0
    #: Fragments replicated onto this node by writes.
    puts: int = 0
    #: Payload bytes written to this node.
    bytes_written: int = 0
    #: Fragments re-routed *away* from this node because it was dead,
    #: breaker-open, or missing the data (a replica served them).
    failovers: int = 0
    #: Fragments a write could not replicate here (node down mid-put).
    write_failovers: int = 0
    #: Fragments migrated onto this node by the rebalancer.
    rebalanced_in: int = 0
    #: Bytes migrated onto this node by the rebalancer.
    rebalanced_bytes: int = 0
    #: 1 while this node's circuit breaker is open/half-open, else 0.
    breaker_is_open: int = 0


@dataclass
class ClusterStats:
    """Aggregate + per-node accounting of one :class:`ClusterFragmentStore`."""

    #: Physical nodes currently in the cluster.
    nodes: int = 0
    #: Configured replication factor (clamped to the node count at
    #: placement time).
    replicas: int = 0
    #: Virtual nodes per physical node on the placement ring.
    vnodes: int = 0
    #: 1 while a membership change is staged and migrating, else 0.
    rebalancing: int = 0
    #: Total fragments transparently served by a replica after their
    #: primary (or an earlier replica) failed.
    failovers: int = 0
    #: Total fragments that missed one of their replica writes.
    write_failovers: int = 0
    #: Completed rebalance passes (membership changes finalized).
    rebalances: int = 0
    #: Fragments copied between nodes by the rebalancer.
    rebalanced_fragments: int = 0
    #: Bytes copied between nodes by the rebalancer.
    rebalanced_bytes: int = 0
    #: ``{node name: NodeStats}`` — per-node counters.
    per_node: dict = field(default_factory=dict)


class _Node:
    """One cluster member: resilience-wrapped store plus its counters."""

    __slots__ = ("name", "store", "stats")

    def __init__(self, name: str, store: FragmentStore, url: str):
        self.name = name
        self.store = store
        self.stats = NodeStats(url=url)

    @property
    def breaker(self):
        return getattr(self.store, "breaker", None)

    def breaker_open(self) -> bool:
        """Whether calls would be rejected fast right now (no probe due)."""
        breaker = self.breaker
        if breaker is None:
            return False
        return breaker.state == CircuitBreaker.OPEN and breaker.retry_after_s() > 0


def _backend_url(store: FragmentStore) -> str:
    """Best-effort display address of a backend store."""
    inner = getattr(store, "inner", store)
    host = getattr(inner, "host", None)
    port = getattr(inner, "port", None)
    if host is not None and port is not None:
        return f"http://{host}:{port}"
    return type(inner).__name__


class ClusterFragmentStore(FragmentStore):
    """One fragment namespace sharded and replicated over N backends.

    Parameters
    ----------
    backends:
        Iterable of :class:`~repro.storage.store.FragmentStore` backends
        or ``(name, store)`` pairs (names default to ``node0``,
        ``node1``, ...; they key the placement ring and the per-node
        stats).  Each backend is wrapped in a
        :class:`~repro.storage.resilience.ResilientStore` with its own
        circuit breaker unless it already is one.
    replicas:
        Copies of every fragment (clamped to the node count at
        placement time, so a one-node cluster still works).
    vnodes:
        Virtual nodes per physical node on the placement ring.
    retry:
        Per-node :class:`~repro.storage.resilience.RetryPolicy`
        (default: two fast attempts — the replica set, not the retry
        budget, is the redundancy).
    breaker_threshold / breaker_cooldown:
        Per-node circuit breaker knobs (``threshold <= 0`` disables the
        breakers).
    max_parallel:
        Upper bound on concurrently in-flight per-node requests.

    The store's own ``reads``/``round_trips``/``puts`` counters record
    *client-visible* traffic (one round trip per ``get_many`` call,
    like the tiered store); the per-shard truth lives in :meth:`stats`.
    """

    def __init__(
        self,
        backends,
        replicas: int = DEFAULT_REPLICAS,
        vnodes: int = DEFAULT_VNODES,
        retry: RetryPolicy | None = None,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        max_parallel: int = 8,
    ):
        super().__init__()
        if retry is None:
            retry = RetryPolicy(
                attempts=DEFAULT_NODE_ATTEMPTS,
                base_delay=DEFAULT_RETRY_BASE,
                max_delay=DEFAULT_RETRY_MAX,
            )
        self._nodes: list = []
        self._by_name: dict = {}
        for i, entry in enumerate(backends):
            if isinstance(entry, tuple):
                name, store = str(entry[0]), entry[1]
            else:
                name, store = f"node{i}", entry
            if name in self._by_name:
                raise ValueError(f"duplicate cluster node name {name!r}")
            url = _backend_url(store)
            if not isinstance(store, ResilientStore):
                breaker = None
                if breaker_threshold and int(breaker_threshold) > 0:
                    breaker = CircuitBreaker(
                        failure_threshold=int(breaker_threshold),
                        cooldown=float(breaker_cooldown),
                        name=url,
                    )
                store = ResilientStore(store, retry=retry, breaker=breaker)
            node = _Node(name, store, url)
            self._nodes.append(node)
            self._by_name[name] = node
        if not self._nodes:
            raise ValueError("cluster needs at least one backend")
        self.replicas = int(replicas)
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        self._ring = HashRing([n.name for n in self._nodes], vnodes=vnodes)
        self._old_ring: HashRing | None = None  # set while a move is staged
        self._leaving: set = set()  # names staged for removal
        self._cstats = ClusterStats(replicas=self.replicas, vnodes=self._ring.vnodes)
        # serializes client mutations with each rebalance copy batch: a
        # put can never interleave a read-copy-write migration chunk, so
        # a migrated replica is never overwritten with stale bytes
        self._mutate_lock = threading.RLock()
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, min(len(self._nodes) + 2, int(max_parallel))),
            thread_name_prefix="repro-cluster",
        )
        # Optional TripBudget: one token per shard round trip, acquired on
        # the calling thread before dispatch.  Rebalance copies are exempt.
        self.trip_budget = None
        self.rebalancer = Rebalancer(self)
        self._reindex()

    # -- URL form --------------------------------------------------------------

    @classmethod
    def from_url(cls, url: str) -> "ClusterFragmentStore":
        """Open from a ``cluster://HOST:PORT,HOST:PORT,...[?...]`` URL.

        The path is a comma-separated node list; bare ``host:port``
        entries open as HTTP fragment clients, and the ``nodes=`` query
        parameter accepts comma-separated (percent-encoded) full store
        URLs for anything else.  Query parameters: ``replicas=`` (copies
        per fragment), ``vnodes=`` (ring smoothing), ``timeout=``
        (seconds, HTTP nodes), ``chunk=`` (rebalance copy batch bytes,
        binary suffixes allowed), plus the per-node resilience knobs
        ``retries``/``retry_base``/``retry_max``/``breaker``/``cooldown``
        (defaults tuned for fast failover; ``breaker=0`` disables the
        per-node breakers).
        """
        scheme, rest = split_store_url(url)
        if scheme != "cluster":
            raise ValueError(f"not a cluster:// store URL: {url!r}")
        path, params = _split_query(rest)
        specs = []
        for part in path.split(","):
            part = part.strip().strip("/")
            if part:
                specs.append(part if "://" in part else f"http://{part}")
        for part in params.get("nodes", "").split(","):
            part = unquote(part.strip())
            if part:
                specs.append(part)
        if not specs:
            raise ValueError(f"cluster:// URL needs at least one node: {url!r}")
        timeout = params.get("timeout")
        stores = []
        for spec in specs:
            if timeout is not None and spec.startswith("http://") and "?" not in spec:
                spec = f"{spec}?timeout={timeout}"
            stores.append(open_store(spec))
        retry = RetryPolicy(
            attempts=int(params.get("retries", DEFAULT_NODE_ATTEMPTS)),
            base_delay=float(params.get("retry_base", DEFAULT_RETRY_BASE)),
            max_delay=float(params.get("retry_max", DEFAULT_RETRY_MAX)),
        )
        store = cls(
            stores,
            replicas=int(params.get("replicas", DEFAULT_REPLICAS)),
            vnodes=int(params.get("vnodes", DEFAULT_VNODES)),
            retry=retry,
            breaker_threshold=int(params.get("breaker", DEFAULT_BREAKER_THRESHOLD)),
            breaker_cooldown=float(params.get("cooldown", DEFAULT_BREAKER_COOLDOWN)),
        )
        if "chunk" in params:
            store.rebalancer.chunk_bytes = parse_bytes(params["chunk"])
        return store

    # -- placement -------------------------------------------------------------

    def nodes(self) -> list:
        """Current node names, ring order not implied."""
        return [node.name for node in self._nodes]

    def owners(self, variable: str, segment: str) -> list:
        """Node names that *should* hold a fragment (current placement)."""
        return self._ring.owners(variable, segment, self.replicas)

    def _read_plan(self, variable: str, segment: str) -> list:
        """Candidate nodes for one read, failover order.

        Mid-rebalance the pre-change owners come first — the data is
        guaranteed there until the move finalizes — and the post-change
        owners follow as extra candidates (they may already hold a
        migrated copy, and they cover reads that race finalization).
        """
        names: list = []
        if self._old_ring is not None:
            names.extend(self._old_ring.owners(variable, segment, self.replicas))
        for name in self._ring.owners(variable, segment, self.replicas):
            if name not in names:
                names.append(name)
        return [self._by_name[name] for name in names if name in self._by_name]

    def _write_plan(self, variable: str, segment: str) -> list:
        """Owner nodes one write must reach (old ∪ new mid-rebalance).

        Writing the union keeps every read candidate coherent while a
        migration is in flight — no replica can serve a stale payload
        after an overwrite, whichever ring a concurrent read consults.
        """
        return self._read_plan(variable, segment)

    def _reindex(self) -> None:
        """Rebuild the union index snapshot from every node's index."""
        with self._stats_lock:
            self._sizes.clear()
            self._var_bytes.clear()
            self._var_segments.clear()
            self._total_bytes = 0
            for node in self._nodes:
                for variable, segment in node.store.keys():
                    self._record_put(
                        variable, segment, node.store.size_of(variable, segment)
                    )

    def refresh(self) -> None:
        """Re-pull every node's index and rebuild the union snapshot."""
        for node in self._nodes:
            refresh = getattr(node.store, "refresh", None)
            if callable(refresh):
                refresh()
        self._reindex()

    # -- reads -----------------------------------------------------------------

    def _count_failover(self, node: _Node, fragments: int) -> None:
        with self._stats_lock:
            node.stats.failovers += fragments
            self._cstats.failovers += fragments

    def _note_served(self, node: _Node, fragments: int, nbytes: int) -> None:
        with self._stats_lock:
            node.stats.requests += 1
            node.stats.fragments_served += fragments
            node.stats.bytes_read += nbytes

    def _fetch(self, keys) -> dict:
        """Fan a key set out to its owning shards, merging as they land.

        One coalesced ``get_many`` per shard per round, all shards in
        parallel, merged in completion order.  A shard failing
        transiently (or fast-rejected by its open breaker, or missing a
        key mid-rebalance) re-routes the affected keys to each key's
        next replica; only keys whose *every* candidate failed raise —
        as a typed :class:`DegradedError` naming exactly those keys.
        """
        plans = {key: self._read_plan(*key) for key in keys}
        cursor = dict.fromkeys(keys, 0)
        out: dict = {}
        pending = set(keys)
        last_error: Exception | None = None
        while pending:
            groups: dict = {}
            exhausted: list = []
            for key in pending:
                plan, i = plans[key], cursor[key]
                # skip breaker-open candidates without burning an attempt
                while i < len(plan) and plan[i].breaker_open():
                    self._count_failover(plan[i], 1)
                    i += 1
                cursor[key] = i
                if i >= len(plan):
                    exhausted.append(key)
                else:
                    groups.setdefault(plan[i].name, []).append(key)
            if exhausted:
                reason = f"all replicas unavailable: {last_error or 'breakers open'}"
                raise DegradedError(sorted(exhausted), reason=reason)
            futures = {}
            for name, group in groups.items():
                if self.trip_budget is not None:
                    self.trip_budget.acquire()
                futures[
                    self._pool.submit(self._by_name[name].store.get_many, group)
                ] = (self._by_name[name], group)
            for future in as_completed(futures):
                node, group = futures[future]
                try:
                    served = future.result()
                except KeyError as exc:
                    # the node is live but lacks some keys (mid-rebalance,
                    # an earlier missed replica write): fail those over,
                    # keep the rest on this node for the next round
                    arg = exc.args[0] if exc.args else None
                    if isinstance(arg, list):
                        gone = {tuple(k) for k in arg}
                    elif isinstance(arg, tuple):
                        gone = {tuple(arg)}
                    else:
                        gone = set(group)
                    if not gone & set(group):
                        gone = set(group)  # unattributable: fail all over
                    for key in group:
                        if key in gone:
                            cursor[key] += 1
                            self._count_failover(node, 1)
                    last_error = exc
                except Exception as exc:
                    if not (is_transient(exc) or isinstance(exc, CircuitOpenError)):
                        raise
                    for key in group:
                        cursor[key] += 1
                    self._count_failover(node, len(group))
                    last_error = exc
                else:
                    out.update(served)
                    self._note_served(
                        node, len(served), sum(len(p) for p in served.values())
                    )
                    pending.difference_update(group)
        return out

    def get(self, variable: str, segment: str) -> bytes:
        """Read one fragment from its primary, failing over to replicas."""
        key = (variable, segment)
        if key not in self._sizes:
            raise KeyError(key)
        payload = self._fetch([key])[key]
        with self._stats_lock:
            self.round_trips += 1
            self._count_read(len(payload))
        return payload

    def get_many(self, keys) -> dict:
        """Read a batch: one parallel coalesced round trip per live shard.

        Client-visible accounting matches every other store (one
        ``round_trips`` per call); the per-shard fan-out, per-node
        traffic, and failovers are visible in :meth:`stats`.  Missing
        keys raise ``KeyError`` (listing all of them) before any shard
        is contacted; keys whose every replica is down raise
        :class:`~repro.storage.resilience.DegradedError`.
        """
        keys = list(dict.fromkeys((v, s) for v, s in keys))
        missing = [k for k in keys if k not in self._sizes]
        if missing:
            raise KeyError(missing)
        out = self._fetch(keys)
        with self._stats_lock:
            self.round_trips += 1
            for payload in out.values():
                self._count_read(len(payload))
        return {k: out[k] for k in keys}

    # -- writes ----------------------------------------------------------------

    def _apply_node(self, node: _Node, puts: list, deletes: list) -> None:
        if puts and deletes:
            node.store.transact(puts, deletes)
        elif puts:
            node.store.put_many(puts)
        elif deletes:
            node.store.transact((), deletes)

    def _replicate(self, batch, deletes=()) -> None:
        """Write each fragment to all its owners, all nodes in parallel.

        One batched request per node carries everything that node
        replicates.  A node failing transiently under a pure put batch
        is tolerated as long as every fragment still reached at least
        one owner (the miss is counted as ``write_failovers``); a node
        carrying deletes fails the call — a surviving stale replica
        could otherwise serve deleted data later.
        """
        puts_by: dict = {}
        for variable, segment, payload in batch:
            for node in self._write_plan(variable, segment):
                puts_by.setdefault(node.name, []).append((variable, segment, payload))
        dels_by: dict = {}
        for variable, segment in deletes:
            for node in self._write_plan(variable, segment):
                if node.store.has(variable, segment):
                    dels_by.setdefault(node.name, []).append((variable, segment))
        replicas_ok = {(v, s): 0 for v, s, _ in batch}
        failures: list = []
        names = set(puts_by) | set(dels_by)
        futures = {
            self._pool.submit(
                self._apply_node,
                self._by_name[name],
                puts_by.get(name, []),
                dels_by.get(name, []),
            ): name
            for name in names
        }
        for future in as_completed(futures):
            name = futures[future]
            node = self._by_name[name]
            try:
                future.result()
            except Exception as exc:
                strict = bool(dels_by.get(name)) or not (
                    is_transient(exc) or isinstance(exc, CircuitOpenError)
                )
                failures.append((name, exc, strict))
                lost = len(puts_by.get(name, ()))
                with self._stats_lock:
                    node.stats.write_failovers += lost
                    self._cstats.write_failovers += lost
            else:
                stored = puts_by.get(name, ())
                for variable, segment, _ in stored:
                    replicas_ok[(variable, segment)] += 1
                with self._stats_lock:
                    node.stats.puts += len(stored)
                    node.stats.bytes_written += sum(len(p) for _, _, p in stored)
        for name, exc, strict in failures:
            if strict:
                raise exc
        lost_keys = [key for key, ok in replicas_ok.items() if ok == 0]
        if lost_keys:
            raise failures[0][1] if failures else AssertionError("unreachable")

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        """Replicate one fragment to its owners (a singleton batch)."""
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("fragment payload must be bytes")
        self.put_many([(variable, segment, payload)])

    def put_many(self, items) -> None:
        """Replicate a batch: one batched request per owning node.

        Each node receives one ``put_many`` carrying every fragment it
        replicates, all nodes written in parallel — a K-replicated batch
        costs K·(bytes) of traffic but only ``nodes`` round trips.
        Client-visible accounting matches :meth:`FragmentStore.put_many`
        (one write round trip, per-fragment ``puts``).
        """
        batch = self._check_batch(items)
        with self._mutate_lock:
            if batch:
                self._replicate(batch)
            with self._stats_lock:
                for variable, segment, payload in batch:
                    self._record_put(variable, segment, len(payload))
                self.put_round_trips += 1
                self._count_write(len(batch), sum(len(p) for _, _, p in batch))

    def delete(self, variable: str, segment: str) -> None:
        """Remove one fragment from every owner holding it."""
        self.transact((), [(variable, segment)])

    def transact(self, puts, deletes=()) -> None:
        """Apply puts then deletes, grouped per node, as one parallel pass.

        Per-node atomicity is that of each backend's own ``transact``
        (one WAL commit record on the disk-backed servers); cross-node
        atomicity is not promised — a failed node's deletes fail the
        whole call so a stale replica can never survive silently.
        Delete keys must exist and must not collide with the batch.
        """
        batch = self._check_batch(puts)
        doomed = list(dict.fromkeys((str(v), str(s)) for v, s in deletes))
        overlap = {(v, s) for v, s, _ in batch} & set(doomed)
        if overlap:
            raise ValueError(f"keys both written and deleted: {sorted(overlap)}")
        with self._mutate_lock:
            missing = [k for k in doomed if k not in self._sizes]
            if missing:
                raise KeyError(missing[0] if len(missing) == 1 else missing)
            if batch or doomed:
                self._replicate(batch, doomed)
            with self._stats_lock:
                for variable, segment, payload in batch:
                    self._record_put(variable, segment, len(payload))
                for variable, segment in doomed:
                    self._record_delete(variable, segment)
                if batch:
                    self.put_round_trips += 1
                    self._count_write(
                        len(batch), sum(len(p) for _, _, p in batch)
                    )

    # -- membership ------------------------------------------------------------

    def add_node(self, store: FragmentStore, name: str | None = None) -> str:
        """Stage a new node into the placement ring; returns its name.

        The node starts taking *writes* for its share of the keyspace
        immediately (writes land on the old ∪ new owner union) but
        serves reads only as a failover candidate until
        :meth:`rebalance` migrates its share over and finalizes the
        ring.  Fragments the new backend already holds join the
        namespace at once.
        """
        with self._mutate_lock:
            if name is None:
                taken = set(self._by_name)
                i = len(self._nodes)
                while f"node{i}" in taken:
                    i += 1
                name = f"node{i}"
            name = str(name)
            if name in self._by_name:
                raise ValueError(f"duplicate cluster node name {name!r}")
            url = _backend_url(store)
            if not isinstance(store, ResilientStore):
                template = self._nodes[0].store
                breaker = None
                if template.breaker is not None:
                    breaker = CircuitBreaker(
                        failure_threshold=template.breaker.failure_threshold,
                        cooldown=template.breaker.cooldown,
                        name=url,
                    )
                store = ResilientStore(store, retry=template.retry, breaker=breaker)
            node = _Node(name, store, url)
            self._nodes.append(node)
            self._by_name[name] = node
            with self._stats_lock:
                for variable, segment in node.store.keys():
                    self._record_put(
                        variable, segment, node.store.size_of(variable, segment)
                    )
            if self._old_ring is None:
                self._old_ring = self._ring
            active = [n.name for n in self._nodes if n.name not in self._leaving]
            self._ring = HashRing(active, vnodes=self._ring.vnodes)
            return name

    def remove_node(self, name: str) -> None:
        """Stage a node's departure (planned drain or observed death).

        The node leaves the *new* placement ring immediately but keeps
        serving reads (when alive) as an old-ring candidate until
        :meth:`rebalance` has copied its exclusive share to the
        surviving owners and finalized — so draining a live node never
        has a moment with fewer readable copies, and removing a dead
        one simply migrates from the surviving replicas.
        """
        with self._mutate_lock:
            if name not in self._by_name:
                raise KeyError(name)
            active = [
                n.name
                for n in self._nodes
                if n.name not in self._leaving and n.name != name
            ]
            if not active:
                raise ValueError("cannot remove the last cluster node")
            self._leaving.add(name)
            if self._old_ring is None:
                self._old_ring = self._ring
            self._ring = HashRing(active, vnodes=self._ring.vnodes)

    def rebalance(self, chunk_bytes: int | None = None) -> dict:
        """Run one synchronous rebalance pass (see :class:`Rebalancer`)."""
        return self.rebalancer.run_once(chunk_bytes)

    def start_rebalancer(self) -> "Rebalancer":
        """Start the background rebalance thread (idempotent)."""
        self.rebalancer.start()
        return self.rebalancer

    # -- durability / aggregation ----------------------------------------------

    def compact(self) -> CompactionReport:
        """Compact every reachable node; returns the merged reclaim report.

        A node that is transiently unreachable is skipped (its dead
        bytes wait for the next pass); permanent errors propagate.
        """
        report = CompactionReport()
        for node in self._nodes:
            try:
                report.merge(node.store.compact())
            except Exception as exc:
                if not (is_transient(exc) or isinstance(exc, CircuitOpenError)):
                    raise
        return report

    def durability(self) -> DurabilityStats:
        """Merged durability counters of every reachable node.

        Uses the :meth:`~repro.storage.wal.DurabilityStats.merge` seam,
        so ``repro stats`` and ``/metrics`` see the *cluster's* WAL
        traffic — not just node 0's.  Unreachable nodes contribute
        nothing rather than failing the whole snapshot.
        """
        stats = DurabilityStats()
        for node in self._nodes:
            try:
                stats.merge(node.store.durability())
            except Exception as exc:
                if not (is_transient(exc) or isinstance(exc, CircuitOpenError)):
                    raise
        return stats

    def resilience(self) -> ResilienceStats:
        """Merged retry/breaker counters across every node's wrapper.

        Counter fields sum; the breaker flags report the *worst* node
        (any open breaker marks the cluster's breaker state open), so
        alerting on ``breaker_is_open`` catches a single dead node.
        """
        merged = ResilienceStats()
        for node in self._nodes:
            resilience_of = getattr(node.store, "resilience", None)
            if callable(resilience_of):
                merged.merge(resilience_of())
        return merged

    def stats(self) -> ClusterStats:
        """Snapshot of the aggregate and per-node cluster counters."""
        with self._stats_lock:
            per_node = {}
            for node in self._nodes:
                snap = replace(node.stats)
                breaker = node.breaker
                snap.breaker_is_open = int(
                    breaker is not None and breaker.state != CircuitBreaker.CLOSED
                )
                per_node[node.name] = snap
            return replace(
                self._cstats,
                nodes=len(self._nodes),
                replicas=self.replicas,
                vnodes=self._ring.vnodes,
                rebalancing=int(self._old_ring is not None),
                per_node=per_node,
            )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Stop the rebalance thread, the fan-out pool, and every node."""
        self.rebalancer.stop()
        self._pool.shutdown(wait=True)
        for node in self._nodes:
            node.store.close()


class Rebalancer:
    """Background shard migration of one :class:`ClusterFragmentStore`.

    The cluster twin of the tiered
    :class:`~repro.storage.tiered.TransferManager`: one pass
    (:meth:`run_once`) copies every fragment a post-change owner lacks
    onto it in coalesced byte-bounded ``put_many`` batches (sourcing
    through the cluster's failover-aware reads, so a dead node's share
    migrates from its surviving replicas), finalizes the ring swap, and
    only then garbage-collects the copies that no longer own their keys.
    A crash or node death anywhere mid-pass leaves the staged old+new
    lookup in place — every fragment stays readable and a retried pass
    completes idempotently.  :meth:`start` runs passes on a daemon
    thread every *interval* seconds (no-ops while no move is staged);
    tests and benchmarks call :meth:`run_once` for determinism.
    """

    def __init__(
        self,
        cluster: ClusterFragmentStore,
        chunk_bytes: int = REBALANCE_CHUNK_BYTES,
        interval: float = DEFAULT_REBALANCE_INTERVAL,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.cluster = cluster
        self.chunk_bytes = int(chunk_bytes)
        self.interval = float(interval)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        """Whether the background thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    @staticmethod
    def _holds(node: _Node, variable: str, segment: str) -> bool | None:
        """Whether *node* holds a fragment, or ``None`` if unreachable.

        A dead or breaker-open node can neither receive a copy nor
        confirm a drop, so planning treats "unknown" as "leave it alone
        this pass" — the next pass repairs whatever it finds.
        """
        try:
            return node.store.has(variable, segment)
        except Exception as exc:
            if is_transient(exc) or isinstance(exc, CircuitOpenError):
                return None
            raise

    def _plan(self) -> tuple:
        """``(copies, drops)``: per-node key lists to receive / release.

        A node receives every key it owns under the *new* ring but does
        not hold yet — which covers both placement changes and the
        repair of earlier missed replica writes — and releases the keys
        it holds but no longer owns.  Unreachable nodes are skipped on
        both sides (see :meth:`_holds`).
        """
        cluster = self.cluster
        copies: dict = {}
        drops: dict = {}
        replicas = cluster.replicas
        for variable, segment in list(cluster._sizes):
            new_owners = cluster._ring.owners(variable, segment, replicas)
            wanted = set(new_owners)
            for name in new_owners:
                node = cluster._by_name.get(name)
                if node is not None and self._holds(node, variable, segment) is False:
                    copies.setdefault(name, []).append((variable, segment))
            for node in cluster._nodes:
                if node.name not in wanted and self._holds(node, variable, segment):
                    drops.setdefault(node.name, []).append((variable, segment))
        return copies, drops

    def _chunks(self, keys):
        """Split a key list into byte-bounded copy batches."""
        sizes = self.cluster._sizes
        chunk: list = []
        chunk_bytes = 0
        for key in keys:
            chunk.append(key)
            chunk_bytes += sizes.get(key, 0)
            if chunk_bytes >= self.chunk_bytes:
                yield chunk
                chunk, chunk_bytes = [], 0
        if chunk:
            yield chunk

    def run_once(self, chunk_bytes: int | None = None) -> dict:
        """One synchronous rebalance pass; returns what moved.

        No-op unless a membership change is staged.  Copy batches run
        under the cluster's mutation lock, so a concurrent overwrite
        can never be clobbered by an in-flight stale copy; the ring
        finalizes only after every copy landed, and the garbage-collect
        pass (tolerant of dead departing nodes) runs last.
        """
        cluster = self.cluster
        if chunk_bytes is not None:
            self.chunk_bytes = int(chunk_bytes)
        with cluster._mutate_lock:
            if cluster._old_ring is None:
                return {"moved_fragments": 0, "moved_bytes": 0, "dropped": 0}
            copies, _ = self._plan()
        moved = moved_bytes = 0
        for name, keylist in sorted(copies.items()):
            node = cluster._by_name[name]
            for chunk in self._chunks(keylist):
                with cluster._mutate_lock:
                    chunk = [k for k in chunk if k in cluster._sizes]
                    if not chunk:
                        continue
                    payloads = cluster._fetch(chunk)
                    node.store.put_many(
                        [(v, s, payloads[(v, s)]) for v, s in chunk]
                    )
                    nbytes = sum(len(p) for p in payloads.values())
                    with cluster._stats_lock:
                        node.stats.rebalanced_in += len(chunk)
                        node.stats.rebalanced_bytes += nbytes
                        cluster._cstats.rebalanced_fragments += len(chunk)
                        cluster._cstats.rebalanced_bytes += nbytes
                    moved += len(chunk)
                    moved_bytes += nbytes
        with cluster._mutate_lock:
            # every new owner now holds its share: swap the ring live
            _, drops = self._plan()
            for name in cluster._leaving:
                node = cluster._by_name.pop(name, None)
                if node is not None:
                    cluster._nodes.remove(node)
                drops.pop(name, None)
            cluster._leaving = set()
            cluster._old_ring = None
            with cluster._stats_lock:
                cluster._cstats.rebalances += 1
        dropped = 0
        for name, keylist in sorted(drops.items()):
            node = cluster._by_name.get(name)
            if node is None:
                continue
            with cluster._mutate_lock:
                try:
                    live = [
                        k for k in keylist
                        if k in cluster._sizes and node.store.has(*k)
                    ]
                    node.store.transact((), live)
                    dropped += len(live)
                except Exception as exc:
                    # dead-node garbage is harmless; reclaim next pass
                    if not (
                        is_transient(exc)
                        or isinstance(exc, (CircuitOpenError, KeyError))
                    ):
                        raise
        return {
            "moved_fragments": moved,
            "moved_bytes": moved_bytes,
            "dropped": dropped,
        }

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.run_once()
            except Exception:
                # a failed pass (node briefly unreachable) must not kill
                # rebalancing; the staged rings keep reads correct and
                # the next pass retries everything
                continue

    def start(self) -> None:
        """Launch the rebalance thread (idempotent)."""
        if not self.running:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-cluster-rebalance", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        """Signal the thread to exit and join it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
