"""Simulated wide-area transfer (the Fig. 9 substrate).

The paper measures end-to-end data movement between two real clusters
(MCC at Kentucky → Anvil at Purdue) through Globus with 96 workers, each
retrieving one block of the GE-large dataset.  We cannot reach those
machines, so this module provides a deterministic performance model with
the same structure:

* an **aggregate WAN bandwidth** shared by all concurrent streams,
* a **per-request latency** charged once per fetch round (progressive
  retrieval pays it every time it goes back for more fragments),
* **per-block workers** running in parallel; the job finishes when the
  slowest worker finishes (plus each worker's local retrieval compute
  time, which the caller measures for real).

The default calibration reproduces the paper's dashed baseline: 4.67 GB
of raw data in ≈ 11.7 s (aggregate ≈ 0.4 GB/s).  Reported speedups are
therefore driven by the *measured* retrieved-size ratios, exactly like
the paper's Fig. 9.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.storage.store import FragmentStore
from repro.utils.validation import check_positive

#: Aggregate WAN bandwidth calibrated to the paper's baseline
#: (4.67 GB / 11.7 s ≈ 0.399 GB/s).
DEFAULT_AGGREGATE_BANDWIDTH = 4.67e9 / 11.7

#: Per-request latency of one Globus fetch round (seconds).
DEFAULT_REQUEST_LATENCY = 0.2


@dataclass(frozen=True)
class TransferReport:
    """Outcome of one simulated parallel transfer."""

    total_time: float
    transfer_time: float
    compute_time: float
    total_bytes: int
    num_blocks: int

    def speedup_over(self, baseline: "TransferReport") -> float:
        """End-to-end speedup of this transfer relative to *baseline*."""
        return baseline.total_time / self.total_time


class GlobusTransferModel:
    """Deterministic bandwidth/latency model for parallel block transfer.

    Parameters
    ----------
    aggregate_bandwidth:
        Bytes/second shared by all streams.
    request_latency:
        Seconds charged per fetch round per worker.
    max_streams:
        Number of parallel workers (96 in the paper's experiment).
    """

    def __init__(
        self,
        aggregate_bandwidth: float = DEFAULT_AGGREGATE_BANDWIDTH,
        request_latency: float = DEFAULT_REQUEST_LATENCY,
        max_streams: int = 96,
    ):
        self.aggregate_bandwidth = check_positive(aggregate_bandwidth, name="bandwidth")
        self.request_latency = float(request_latency)
        if self.request_latency < 0:
            raise ValueError("latency must be >= 0")
        if max_streams < 1:
            raise ValueError("max_streams must be >= 1")
        self.max_streams = int(max_streams)

    def transfer(
        self,
        block_bytes,
        compute_times=None,
        rounds_per_block=1,
    ) -> TransferReport:
        """Simulate moving *block_bytes* (one entry per block) in parallel.

        Parameters
        ----------
        block_bytes:
            Retrieved size of each block.
        compute_times:
            Optional per-block local retrieval/decode seconds (measured by
            the caller; defaults to zero).
        rounds_per_block:
            Fetch rounds each worker performed (progressive retrieval pays
            the request latency once per round).  Scalar or per-block.
        """
        blocks = [int(b) for b in block_bytes]
        if not blocks:
            raise ValueError("need at least one block")
        if any(b < 0 for b in blocks):
            raise ValueError("block sizes must be >= 0")
        n = len(blocks)
        computes = list(compute_times) if compute_times is not None else [0.0] * n
        if len(computes) != n:
            raise ValueError("compute_times length mismatch")
        try:
            rounds = [int(rounds_per_block)] * n
        except TypeError:
            rounds = [int(r) for r in rounds_per_block]
            if len(rounds) != n:
                raise ValueError("rounds_per_block length mismatch")

        streams = min(self.max_streams, n)
        per_stream_bw = self.aggregate_bandwidth / streams
        # round-robin assignment of blocks to streams
        stream_time = [0.0] * streams
        for i, (b, c, r) in enumerate(zip(blocks, computes, rounds)):
            s = i % streams
            stream_time[s] += c + r * self.request_latency + b / per_stream_bw
        total = max(stream_time)
        pure_transfer = max(
            sum(
                blocks[i] / per_stream_bw
                for i in range(s, n, streams)
            )
            for s in range(streams)
        )
        return TransferReport(
            total_time=float(total),
            transfer_time=float(pure_transfer),
            compute_time=float(max(computes)),
            total_bytes=int(sum(blocks)),
            num_blocks=n,
        )

    def baseline(self, total_bytes: int, num_blocks: int) -> TransferReport:
        """Raw transfer of the original (unreduced) data, evenly blocked."""
        per_block = int(round(total_bytes / num_blocks))
        return self.transfer([per_block] * num_blocks, rounds_per_block=1)


class LatencyFragmentStore(FragmentStore):
    """A :class:`FragmentStore` behind a simulated slow link (real sleeps).

    Wraps any store and charges every *round trip* a fixed latency plus a
    bandwidth cost proportional to the bytes it moves — the cost model of
    an object store or parallel file system reached over a network.  A
    batched :meth:`get_many` pays the latency **once** for the whole
    batch, which is exactly the economy the pipelined retrieval engine's
    coalesced fetches exploit; the benchmarks use this wrapper to measure
    that effect end to end without needing a real remote tier.

    Sleeps are real (``time.sleep``), so concurrent clients overlap their
    waits like real network requests would.  Writes are not delayed by
    default (archival happens once and is not what the retrieval
    benchmarks time); pass ``write_latency`` to charge each write round
    trip too — a batched :meth:`put_many` then pays it **once** for the
    whole flush, the economy the ingestion benchmarks measure.
    """

    def __init__(
        self,
        inner: FragmentStore,
        latency: float = 0.002,
        bandwidth: float = 2e9,
        write_latency: float | None = None,
    ):
        super().__init__()
        self.inner = inner
        self.latency = float(latency)
        self.bandwidth = check_positive(bandwidth, name="bandwidth")
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        self.write_latency = None if write_latency is None else float(write_latency)
        if self.write_latency is not None and self.write_latency < 0:
            raise ValueError("write_latency must be >= 0")

    def _charge(self, nbytes: int) -> None:
        time.sleep(self.latency + nbytes / self.bandwidth)

    def _charge_write(self, nbytes: int) -> None:
        if self.write_latency is not None:
            time.sleep(self.write_latency + nbytes / self.bandwidth)

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        """Write one fragment, charging one write round trip (if enabled)."""
        self.inner.put(variable, segment, payload)
        self._charge_write(len(payload))
        with self._stats_lock:
            self.put_round_trips += 1
            self._count_write(1, len(payload))

    def put_many(self, items) -> None:
        """Write a batch, charging the write latency **once** for all of it."""
        batch = self._check_batch(items)
        self.inner.put_many(batch)
        self._charge_write(sum(len(p) for _, _, p in batch))
        with self._stats_lock:
            self.put_round_trips += 1
            self._count_write(len(batch), sum(len(p) for _, _, p in batch))

    def delete(self, variable: str, segment: str) -> None:
        """Delete from the inner store (metadata-sized; not delayed)."""
        self.inner.delete(variable, segment)

    def transact(self, puts, deletes=()) -> None:
        """Commit puts+tombstones on the inner store, one write round trip."""
        batch = self._check_batch(puts)
        self.inner.transact(batch, deletes)
        self._charge_write(sum(len(p) for _, _, p in batch))
        with self._stats_lock:
            if batch:
                self.put_round_trips += 1
                self._count_write(len(batch), sum(len(p) for _, _, p in batch))

    def compact(self):
        """Delegate compaction to the inner store (not delayed)."""
        return self.inner.compact()

    def durability(self):
        """Durability counters of the inner store."""
        return self.inner.durability()

    def get(self, variable: str, segment: str) -> bytes:
        """Read one fragment, charging one latency + bandwidth sleep."""
        payload = self.inner.get(variable, segment)
        self._charge(len(payload))
        with self._stats_lock:
            self.round_trips += 1
            self._count_read(len(payload))
        return payload

    def get_many(self, keys) -> dict:
        """Read a batch, charging the latency **once** for all of it."""
        out = self.inner.get_many(keys)
        self._charge(sum(len(p) for p in out.values()))
        with self._stats_lock:
            self.round_trips += 1
            for payload in out.values():
                self._count_read(len(payload))
        return out

    def has(self, variable: str, segment: str) -> bool:
        """Delegate to the inner store (metadata is not delayed)."""
        return self.inner.has(variable, segment)

    def keys(self) -> list:
        """Delegate to the inner store (metadata is not delayed)."""
        return self.inner.keys()

    def variables(self) -> list:
        """Delegate to the inner store (metadata is not delayed)."""
        return self.inner.variables()

    def segments(self, variable: str) -> list:
        """Delegate to the inner store (metadata is not delayed)."""
        return self.inner.segments(variable)

    def size_of(self, variable: str, segment: str) -> int:
        """Delegate to the inner store (metadata is not delayed)."""
        return self.inner.size_of(variable, segment)

    def nbytes(self, variable: str | None = None) -> int:
        """Delegate to the inner store (metadata is not delayed)."""
        return self.inner.nbytes(variable)
