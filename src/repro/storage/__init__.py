"""Storage and data-movement substrates.

* :mod:`repro.storage.store` — fragment stores (in-memory / on-disk) with
  byte accounting, standing in for the PFS / tape tiers of Fig. 1.
* :mod:`repro.storage.metadata` — dataset manifests recording the
  refactoring metadata Algorithm 2 needs (shapes, value ranges).
* :mod:`repro.storage.transfer` — the simulated Globus-like wide-area
  transfer model used to reproduce Fig. 9 (remote retrieval MCC→Anvil).
"""

from repro.storage.store import FragmentStore, DiskFragmentStore
from repro.storage.metadata import VariableMetadata, DatasetManifest
from repro.storage.transfer import GlobusTransferModel, TransferReport
from repro.storage.archive import Archive

__all__ = [
    "FragmentStore",
    "DiskFragmentStore",
    "VariableMetadata",
    "DatasetManifest",
    "GlobusTransferModel",
    "TransferReport",
    "Archive",
]
