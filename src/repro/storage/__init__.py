"""Storage and data-movement substrates.

* :mod:`repro.storage.store` — local fragment stores (in-memory /
  on-disk / sharded) with byte accounting, plus :func:`open_store`, the
  URL entry point over every backend (``file://``, ``sharded://``,
  ``memory://``, ``http://``, ``tiered://``, ``cluster://``).
* :mod:`repro.storage.remote` — the remote tier: in-process HTTP
  object-store server/client with a coalesced batch endpoint, and the
  key-value adapter for S3-style buckets.
* :mod:`repro.storage.cluster` — the scale-out fabric: one namespace
  consistent-hash sharded and K-way replicated over N fragment servers,
  with per-node circuit breakers, transparent read failover, and a
  background rebalancer for membership changes.  See
  ``docs/cluster.md``.
* :mod:`repro.storage.tiered` — the tiered fabric: fast tier over slow
  tier with write-through/write-back puts and a background transfer
  manager promoting hot fragments and demoting cold ones under a byte
  budget.
* :mod:`repro.storage.cache` — the shared, byte-budgeted LRU fragment
  cache that lets many clients retrieve through one archive without
  re-reading overlapping fragments from disk.
* :mod:`repro.storage.wal` — the append-only commit log behind the
  on-disk stores: crash-atomic multi-fragment writes (stage → one
  fsync'd commit record → publish), tombstones, and log compaction.
  See ``docs/durability.md``.
* :mod:`repro.storage.snapshot` — batched snapshot/restore of a whole
  store between any two ``open_store`` URLs, with byte-for-byte
  verification.
* :mod:`repro.storage.metadata` — dataset manifests recording the
  refactoring metadata Algorithm 2 needs (shapes, value ranges).
* :mod:`repro.storage.transfer` — the simulated Globus-like wide-area
  transfer model used to reproduce Fig. 9 (remote retrieval MCC→Anvil).

See ``docs/storage.md`` for the store hierarchy, URL grammar, tiering
policy, and a backend decision table.
"""

from repro.storage.store import (
    DiskFragmentStore,
    FragmentStore,
    ShardedDiskStore,
    open_directory_store,
    open_store,
)
from repro.storage.cache import CacheStats, CachingFragmentStore, FragmentCache
from repro.storage.metadata import (
    MANIFEST_SEGMENT,
    MANIFEST_VARIABLE,
    DatasetManifest,
    VariableMetadata,
)
from repro.storage.remote import (
    HTTPFragmentServer,
    HTTPFragmentStore,
    InMemoryObjectBucket,
    KeyValueFragmentStore,
    ObjectBucket,
    RemoteFragmentStore,
)
from repro.storage.cluster import (
    ClusterFragmentStore,
    ClusterStats,
    HashRing,
    NodeStats,
    Rebalancer,
)
from repro.storage.snapshot import SnapshotReport, restore_store, snapshot_store
from repro.storage.tiered import TieredStore, TierStats, TransferManager
from repro.storage.wal import CommitLog, CompactionReport, DurabilityStats
from repro.storage.transfer import GlobusTransferModel, LatencyFragmentStore, TransferReport
from repro.storage.archive import Archive, FragmentSource, prefetch_plans

__all__ = [
    "FragmentStore",
    "DiskFragmentStore",
    "ShardedDiskStore",
    "open_store",
    "open_directory_store",
    "FragmentCache",
    "CachingFragmentStore",
    "CacheStats",
    "VariableMetadata",
    "DatasetManifest",
    "MANIFEST_VARIABLE",
    "MANIFEST_SEGMENT",
    "RemoteFragmentStore",
    "HTTPFragmentServer",
    "HTTPFragmentStore",
    "ObjectBucket",
    "InMemoryObjectBucket",
    "KeyValueFragmentStore",
    "TieredStore",
    "TierStats",
    "TransferManager",
    "ClusterFragmentStore",
    "ClusterStats",
    "HashRing",
    "NodeStats",
    "Rebalancer",
    "CommitLog",
    "CompactionReport",
    "DurabilityStats",
    "SnapshotReport",
    "snapshot_store",
    "restore_store",
    "GlobusTransferModel",
    "LatencyFragmentStore",
    "TransferReport",
    "Archive",
    "FragmentSource",
    "prefetch_plans",
]
