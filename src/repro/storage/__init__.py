"""Storage and data-movement substrates.

* :mod:`repro.storage.store` — fragment stores (in-memory / on-disk /
  sharded) with byte accounting, standing in for the PFS / tape tiers of
  Fig. 1.
* :mod:`repro.storage.cache` — the shared, byte-budgeted LRU fragment
  cache that lets many clients retrieve through one archive without
  re-reading overlapping fragments from disk.
* :mod:`repro.storage.metadata` — dataset manifests recording the
  refactoring metadata Algorithm 2 needs (shapes, value ranges).
* :mod:`repro.storage.transfer` — the simulated Globus-like wide-area
  transfer model used to reproduce Fig. 9 (remote retrieval MCC→Anvil).
"""

from repro.storage.store import (
    DiskFragmentStore,
    FragmentStore,
    ShardedDiskStore,
    open_store,
)
from repro.storage.cache import CacheStats, CachingFragmentStore, FragmentCache
from repro.storage.metadata import (
    MANIFEST_SEGMENT,
    MANIFEST_VARIABLE,
    DatasetManifest,
    VariableMetadata,
)
from repro.storage.transfer import GlobusTransferModel, LatencyFragmentStore, TransferReport
from repro.storage.archive import Archive, FragmentSource, prefetch_plans

__all__ = [
    "FragmentStore",
    "DiskFragmentStore",
    "ShardedDiskStore",
    "open_store",
    "FragmentCache",
    "CachingFragmentStore",
    "CacheStats",
    "VariableMetadata",
    "DatasetManifest",
    "MANIFEST_VARIABLE",
    "MANIFEST_SEGMENT",
    "GlobusTransferModel",
    "LatencyFragmentStore",
    "TransferReport",
    "Archive",
    "FragmentSource",
    "prefetch_plans",
]
