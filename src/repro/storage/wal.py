"""Write-ahead commit log: crash atomicity for the on-disk fragment stores.

The disk stores' index logs (``.repro-index.jsonl`` / ``index.jsonl``)
were append-only from the start, but a batch ``put_many`` wrote its
fragment *files* before its index lines — a kill in between left some
keys' bytes new and some old under the old index, and nothing recorded
which.  :class:`CommitLog` turns those logs into a real WAL with a
three-step protocol every write follows:

1. **Stage.**  Each payload lands in a *staged* file next to its final
   path (``<final>.stg<txn>``); the live file — and therefore every
   concurrent reader — is untouched.
2. **Commit.**  One fsync'd log record carries the whole batch's index
   entries: ``{"txn": N, "commit": [entry, ...]}``.  This single append
   is the atomicity point — before it the batch does not exist, after
   it the batch is durable however far publishing got.
3. **Publish.**  Each staged file is ``os.replace``d onto its final
   path (atomic per file, idempotent on replay).

Recovery on reopen replays the log (tolerating a torn final line, which
is truncated away — an append can only tear at the tail), then resolves
leftover staged files: a staged file whose transaction committed *and*
is still that path's latest writer is published, everything else is
discarded.  Any kill point therefore lands the store on exactly the
pre- or post-state of the interrupted batch, which
``tests/test_failure_injection.py`` asserts over randomized crash
schedules via :func:`crash_point` hooks placed through the protocol.

Deletes only append a tombstone record — the payload file *stays on
disk* as dead bytes until :meth:`~repro.storage.store.FragmentStore.compact`
reclaims it by rewriting the log to its live entries
(:meth:`CommitLog.rewrite`, itself atomic) and unlinking the dead
files.  :class:`CompactionReport` is the accounting every ``compact``
implementation returns.

Legacy logs (entry-per-line, no transaction framing) replay unchanged:
a line without a ``commit`` key is one committed entry.

fsync discipline (the ``fsync`` constructor/URL parameter):

* ``"commit"`` (default) — fsync the log on every commit record.  Full
  atomicity across process kill; an OS crash can lose the very last
  staged payloads but never tear a batch.
* ``"always"`` — additionally fsync every staged payload file before
  its commit record, surviving OS/power loss at higher write cost.
* ``"off"`` — flush without fsync; atomic across process kill only.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

#: Marker splicing a staged file's name: ``<final>.stg<txn>``.
STAGED_MARKER = ".stg"

#: Accepted values of the ``fsync`` knob, strictest first.
FSYNC_MODES = ("always", "commit", "off")

#: Index entries per record when :meth:`CommitLog.rewrite` chunks a
#: compacted log (bounds the longest line a replay must parse).
REWRITE_CHUNK = 512

_crash_hook = None


def set_crash_hook(hook):
    """Install *hook* as the process-wide crash-injection hook.

    *hook* is ``callable(point_name)`` or ``None`` to clear.  The fault
    tests install a hook that raises after a scheduled number of
    :func:`crash_point` visits, simulating a process kill at that exact
    protocol step.  Returns the previously installed hook so callers
    can restore it.
    """
    global _crash_hook
    previous = _crash_hook
    _crash_hook = hook
    return previous


def crash_point(name: str) -> None:
    """Announce a named kill point of the commit protocol.

    A no-op unless a hook is installed (production never pays more than
    one ``is None`` check).  Hooks raise to simulate dying here.
    """
    if _crash_hook is not None:
        _crash_hook(name)


def staged_path(final_path: str, txn: int) -> str:
    """The staging path of *final_path* under transaction *txn*."""
    return f"{final_path}{STAGED_MARKER}{txn}"


def split_staged(name: str):
    """Split a staged file name into ``(final_name, txn)``; else ``None``."""
    head, sep, tail = name.rpartition(STAGED_MARKER)
    if not sep or not head or not tail.isdigit():
        return None
    return head, int(tail)


def write_staged(final_path: str, payload: bytes, txn: int, fsync: bool = False) -> str:
    """Write *payload* to the staged file of *final_path*; returns its path."""
    path = staged_path(final_path, txn)
    with open(path, "wb") as fh:
        fh.write(payload)
        if fsync:
            fh.flush()
            os.fsync(fh.fileno())
    return path


def publish_staged(staged: str, final_path: str) -> None:
    """Atomically move a staged file onto its final path."""
    os.replace(staged, final_path)


def discard_staged(path: str) -> None:
    """Best-effort removal of an abandoned staged file."""
    try:
        os.remove(path)
    except OSError:
        pass


@dataclass
class CompactionReport:
    """Outcome of one ``compact()`` call (summable across tiers).

    ``reclaimed_bytes`` counts dead payload bytes actually unlinked;
    log shrinkage is visible separately as ``log_bytes_before`` vs
    ``log_bytes_after``.  Stores without tombstone debt return an
    all-zero report with ``compactions=0`` (the call is a no-op there).
    """

    compactions: int = 0
    removed_files: int = 0
    reclaimed_bytes: int = 0
    log_bytes_before: int = 0
    log_bytes_after: int = 0
    live_fragments: int = 0

    def merge(self, other: "CompactionReport") -> "CompactionReport":
        """Fold *other* into this report (tiered stores sum per tier)."""
        self.compactions += other.compactions
        self.removed_files += other.removed_files
        self.reclaimed_bytes += other.reclaimed_bytes
        self.log_bytes_before += other.log_bytes_before
        self.log_bytes_after += other.log_bytes_after
        self.live_fragments += other.live_fragments
        return self


@dataclass
class DurabilityStats:
    """Durability counters of one store handle (``repro stats``/metrics).

    ``wal_commits``/``wal_entries`` count this handle's appended commit
    records and index entries; ``tombstones``/``dead_bytes`` describe
    the reclaimable debt compaction would collect *right now*;
    ``compactions``/``reclaimed_bytes`` total what compaction has
    collected through this handle.
    """

    wal_commits: int = 0
    wal_entries: int = 0
    log_bytes: int = 0
    tombstones: int = 0
    dead_bytes: int = 0
    compactions: int = 0
    reclaimed_bytes: int = 0

    def merge(self, other: "DurabilityStats") -> "DurabilityStats":
        """Fold *other* in (tiered stores aggregate their tiers)."""
        for key in self.__dataclass_fields__:
            setattr(self, key, getattr(self, key) + getattr(other, key))
        return self


class CommitLog:
    """Append-only transaction log of one on-disk fragment store.

    One instance owns one log file.  :meth:`replay` parses it into
    ``(txn, entries)`` records — legacy entry-per-line logs come back
    as single-entry records with ``txn=None`` — truncating a torn final
    line when the file is writable.  :meth:`reserve` hands out the next
    transaction id (staged file names need it before the commit
    record), :meth:`append` writes one fsync'd commit record, and
    :meth:`rewrite` atomically replaces the whole log with a compacted
    entry set.
    """

    def __init__(self, path: str, fsync: str = "commit"):
        if fsync not in FSYNC_MODES:
            raise ValueError(
                f"unknown fsync mode {fsync!r} (known: {', '.join(FSYNC_MODES)})"
            )
        self.path = path
        self.fsync = fsync
        #: Next transaction id handed out by :meth:`reserve`.
        self.next_txn = 1
        #: Ids of every committed transaction seen or written.
        self.committed: set = set()
        #: Commit records appended through this handle.
        self.commits = 0
        #: Index entries appended through this handle.
        self.entries_appended = 0

    # -- fsync discipline ------------------------------------------------------

    @property
    def fsync_payloads(self) -> bool:
        """Whether staged payload files must fsync before their commit."""
        return self.fsync == "always"

    @property
    def fsync_commits(self) -> bool:
        """Whether commit records (and rewrites) fsync."""
        return self.fsync != "off"

    # -- introspection ---------------------------------------------------------

    def exists(self) -> bool:
        """Whether the log file is present on disk."""
        return os.path.isfile(self.path)

    def nbytes(self) -> int:
        """Current size of the log file (0 when absent)."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    # -- replay ----------------------------------------------------------------

    def replay(self) -> list:
        """Parse the log into ordered ``(txn, [entry, ...])`` records.

        Tolerates exactly one torn line — the last, which a killed
        append can leave behind — by discarding it (and truncating the
        file when writable, so later appends don't chase garbage).  A
        malformed line anywhere else is corruption and raises
        ``ValueError``.  Side effects: ``committed`` and ``next_txn``
        reflect everything replayed.
        """
        records: list = []
        if not os.path.isfile(self.path):
            return records
        with open(self.path, "rb") as fh:
            raw = fh.read()
        offset = 0
        torn_at = None
        for line in raw.split(b"\n"):
            stripped = line.strip()
            if stripped:
                try:
                    obj = json.loads(stripped)
                except ValueError:
                    torn_at = offset
                    break
                if isinstance(obj, dict) and "commit" in obj:
                    txn = int(obj.get("txn", 0))
                    records.append((txn, list(obj["commit"])))
                    self.committed.add(txn)
                    self.next_txn = max(self.next_txn, txn + 1)
                else:
                    records.append((None, [obj]))
            offset += len(line) + 1
        if torn_at is not None:
            tail = raw[torn_at:]
            if b"\n" in tail.rstrip(b"\n"):
                raise ValueError(
                    f"corrupt commit log {self.path!r}: unparseable record "
                    f"before the final line"
                )
            try:  # drop the torn append so the log is clean for new commits
                with open(self.path, "ab") as fh:
                    fh.truncate(torn_at)
            except OSError:
                pass  # read-only mount: replay still ignores the torn tail
        return records

    # -- writes ----------------------------------------------------------------

    def reserve(self) -> int:
        """Claim the next transaction id (monotonic per handle)."""
        txn = self.next_txn
        self.next_txn = txn + 1
        return txn

    def append(self, entries, txn: int | None = None) -> int:
        """Append one commit record carrying *entries*; returns its txn.

        The append is flushed (and fsync'd under the ``commit`` /
        ``always`` disciplines) before returning — when this method
        returns, the transaction is durable and recovery will treat its
        staged files as publishable.
        """
        if txn is None:
            txn = self.reserve()
        entries = list(entries)
        record = json.dumps({"txn": txn, "commit": entries})
        crash_point("wal.append")
        with open(self.path, "a") as fh:
            fh.write(record + "\n")
            fh.flush()
            if self.fsync_commits:
                os.fsync(fh.fileno())
        crash_point("wal.committed")
        self.committed.add(txn)
        self.commits += 1
        self.entries_appended += len(entries)
        return txn

    def rewrite(self, entries) -> None:
        """Atomically replace the log with a compacted *entries* set.

        Entries are framed into committed records of at most
        :data:`REWRITE_CHUNK` each, written to a sibling temp file,
        fsync'd, and ``os.replace``d over the log — a crash leaves
        either the old full log or the new compacted one, never a mix.
        """
        entries = list(entries)
        tmp = f"{self.path}.rw.{os.getpid()}"
        with open(tmp, "w") as fh:
            for start in range(0, len(entries), REWRITE_CHUNK):
                chunk = entries[start:start + REWRITE_CHUNK]
                txn = self.reserve()
                fh.write(json.dumps({"txn": txn, "commit": chunk}) + "\n")
                self.committed.add(txn)
            fh.flush()
            if self.fsync_commits:
                os.fsync(fh.fileno())
        crash_point("wal.rewrite")
        os.replace(tmp, self.path)
        crash_point("wal.rewritten")
