"""Retries, circuit breakers, and degraded reads for fragment stores.

A remote tier fails in two very different ways.  *Transient* faults —
connection resets, timeouts, HTTP 5xx answers, injected
:class:`FaultStoreError` chaos — heal themselves and are worth retrying
with backoff.  *Permanent* faults — ``KeyError`` for a fragment that is
not archived, ``TypeError``/``ValueError`` for a malformed request — will
fail identically forever and must surface immediately.  This module
encodes that taxonomy once (:func:`is_transient`) and builds the three
resilience primitives on top of it:

* :class:`RetryPolicy` — capped exponential backoff with jitter around
  any callable, retrying only transient faults.  The sleep function and
  jitter RNG are injectable so tests run instantly and deterministically.
* :class:`CircuitBreaker` — a per-backend closed → open → half-open
  state machine.  After ``failure_threshold`` *consecutive* transient
  failures the breaker opens and callers fail fast with
  :class:`CircuitOpenError` (carrying ``retry_after_s``) instead of
  stacking timeouts onto a dead backend; after ``cooldown`` seconds a
  single probe call is let through, and its outcome re-closes or
  re-opens the circuit.
* :class:`ResilientStore` — a wrapper store applying both to every
  operation of any inner :class:`~repro.storage.store.FragmentStore`.
  All fragment operations are safe to retry: reads are pure, ``put`` of
  the same payload is idempotent (last-write-wins), and a ``delete``
  retried across an ambiguous failure at worst reports ``KeyError`` for
  work already done.

The taxonomy is what makes *degraded* reads possible one layer up:
:class:`~repro.storage.tiered.TieredStore` converts an exhausted retry
budget or an open breaker on its slow tier into a typed
:class:`DegradedError` naming exactly the keys it could not serve, while
fast-tier-resident fragments keep flowing — the storage half of the
progressive degraded-answer story (``docs/resilience.md``).
"""

from __future__ import annotations

import http.client
import random
import threading
import time
from dataclasses import dataclass

from repro.storage.store import FragmentStore

__all__ = [
    "FaultStoreError",
    "CircuitOpenError",
    "DegradedError",
    "PERMANENT_ERRORS",
    "is_transient",
    "RetryPolicy",
    "CircuitBreaker",
    "ResilienceStats",
    "ResilientStore",
    "TripBudget",
    "policy_from_params",
    "wrap_with_resilience",
]


class TripBudget:
    """Blocking token bucket rate-limiting slow-path store round trips.

    The admission-control token bucket (PR 8) guards the service's front
    door — requests per client.  This is the same idea pushed *down* the
    stack: each token admits one slow-backend round trip (a
    :class:`~repro.storage.tiered.TieredStore` slow-tier read, one
    shard's ``get_many`` in a cluster fetch), so however many sessions a
    service serves, the archive of record sees at most ``rate`` trips
    per second with ``burst`` of headroom.  Unlike the front-door bucket
    it *blocks* instead of shedding: a round trip is already admitted
    work, so the right behavior under pressure is to queue — and while a
    fetch queues here, the service's round scheduler keeps accumulating
    concurrent sessions' plans, so budget pressure literally makes
    rounds merge harder rather than fail.

    Thread-safe.  ``acquire`` returns the seconds it waited (0.0 for a
    free token); ``waits``/``wait_seconds``/``acquires`` are the
    counters the service surfaces as ``slow_tier_throttle_*`` stats.
    *clock* and *sleep* are injectable for deterministic tests.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        self.rate = float(rate)
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        self.burst = max(1.0, self.rate) if burst is None else float(burst)
        if self.burst < 1.0:
            raise ValueError("burst must be >= 1")
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._tokens = self.burst
        self._stamp = clock()
        #: Acquires that had to wait at least one refill.
        self.waits = 0
        #: Total seconds spent waiting across all acquires.
        self.wait_seconds = 0.0
        #: Round trips admitted (every acquire eventually succeeds).
        self.acquires = 0

    def acquire(self) -> float:
        """Take one trip token, sleeping until the bucket refills it.

        Returns the seconds this call waited.  Fair enough in practice:
        sleeping callers re-contend on wakeup, and the service's round
        scheduler is typically the only caller anyway (one thread
        draining a merge queue).
        """
        waited = 0.0
        while True:
            with self._lock:
                now = self._clock()
                self._tokens = min(
                    self.burst, self._tokens + (now - self._stamp) * self.rate
                )
                self._stamp = now
                if self._tokens >= 1.0:
                    self._tokens -= 1.0
                    self.acquires += 1
                    if waited > 0.0:
                        self.waits += 1
                        self.wait_seconds += waited
                    return waited
                shortfall = (1.0 - self._tokens) / self.rate
            self._sleep(shortfall)
            waited += shortfall

    def snapshot(self) -> dict:
        """Counters as a plain dict (for stats plumbing)."""
        with self._lock:
            return {
                "waits": self.waits,
                "wait_seconds": self.wait_seconds,
                "acquires": self.acquires,
            }


class FaultStoreError(ConnectionError):
    """An injected transient store fault (chaos tests, fault harness).

    Subclasses ``ConnectionError`` so the production taxonomy treats it
    exactly like a real broken backend: transient, retryable, counted
    against the circuit breaker.
    """


class CircuitOpenError(ConnectionError):
    """Fail-fast rejection because a backend's circuit breaker is open.

    Deliberately **not** transient for :class:`RetryPolicy` — retrying
    into an open breaker would just burn the backoff budget; callers
    should degrade or surface the outage.  ``retry_after_s`` says when
    the breaker will next allow a probe.
    """

    def __init__(self, backend: str, retry_after_s: float):
        super().__init__(
            f"circuit breaker open for {backend} "
            f"(retry after {retry_after_s:.3f}s)"
        )
        #: Name of the backend whose breaker rejected the call.
        self.backend = str(backend)
        #: Seconds until the breaker will admit a probe call.
        self.retry_after_s = float(retry_after_s)


class DegradedError(RuntimeError):
    """A read could not be served in full while a backend is unavailable.

    Raised by :class:`~repro.storage.tiered.TieredStore` when fragments
    resident in a healthy fast tier can still be served but the listed
    ``missing`` keys live only behind a failed/open slow tier.  Callers
    that can live with looser bounds (the progressive retrieval loop)
    catch this and return a degraded answer; everyone else sees a typed
    error naming exactly what is unavailable and why.
    """

    def __init__(self, missing, reason: str):
        missing = [tuple(k) for k in missing]
        super().__init__(
            f"{len(missing)} fragment(s) unavailable ({reason}): "
            f"{missing[:4]}{'...' if len(missing) > 4 else ''}"
        )
        #: The ``(variable, segment)`` keys that could not be served.
        self.missing = missing
        #: Human-readable cause (e.g. the stringified backend error).
        self.reason = str(reason)


#: Errors that will fail identically on retry: wrong request, not a sick
#: backend.  They never trip a breaker and are never retried.
PERMANENT_ERRORS = (KeyError, TypeError, ValueError)

#: Errors worth retrying: socket/OS failures (``ConnectionError`` —
#: including :class:`FaultStoreError` — and timeouts are ``OSError``
#: subclasses) and HTTP protocol breakage.  HTTP 5xx answers surface as
#: ``ConnectionError`` from the remote store client, so they are covered.
TRANSIENT_ERRORS = (OSError, http.client.HTTPException)


def is_transient(exc: BaseException) -> bool:
    """Whether *exc* is worth retrying per the store fault taxonomy."""
    if isinstance(exc, (CircuitOpenError,) + PERMANENT_ERRORS):
        return False
    return isinstance(exc, TRANSIENT_ERRORS)


class RetryPolicy:
    """Capped exponential backoff with jitter for transient store faults.

    Attempt ``i`` (zero-based) failing transiently sleeps
    ``min(max_delay, base_delay * multiplier**i)`` scaled down by up to
    ``jitter`` (uniformly), then retries — up to ``attempts`` total
    tries.  Permanent errors and :class:`CircuitOpenError` propagate
    immediately.  *sleep* and *rng* are injectable so tests can assert
    exact schedules without waiting.

    Parameters
    ----------
    attempts:
        Total tries per call (1 = no retries).
    base_delay / multiplier / max_delay:
        The capped exponential schedule, in seconds.
    jitter:
        Fraction of the delay randomized away (0 = deterministic,
        0.5 = sleep between 50% and 100% of the scheduled delay).
    sleep / rng:
        Injection points for tests (default real ``time.sleep`` and a
        private ``random.Random``).
    """

    def __init__(
        self,
        attempts: int = 3,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        sleep=time.sleep,
        rng: random.Random | None = None,
    ):
        self.attempts = int(attempts)
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.multiplier = float(multiplier)
        self.jitter = float(jitter)
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.sleep = sleep
        self.rng = rng if rng is not None else random.Random()

    def schedule(self) -> list:
        """The un-jittered backoff delays, one per possible retry."""
        return [
            min(self.max_delay, self.base_delay * self.multiplier**i)
            for i in range(self.attempts - 1)
        ]

    def backoff(self, retry: int) -> float:
        """Jittered sleep before re-attempt number *retry* (zero-based)."""
        delay = min(self.max_delay, self.base_delay * self.multiplier**retry)
        return delay * (1.0 - self.jitter * self.rng.random())

    def run(self, fn, breaker: "CircuitBreaker | None" = None, observer=None):
        """Call *fn* under this policy (and *breaker*, when given).

        *observer*, when given, is called with one of ``"attempt"``,
        ``"failure"``, ``"retry"``, ``"giveup"`` as events happen — the
        hook :class:`ResilientStore` uses for lock-protected counters.
        Transient errors are retried on the backoff schedule; permanent
        errors, :class:`CircuitOpenError`, and the final transient
        failure propagate.
        """

        def note(event: str) -> None:
            if observer is not None:
                observer(event)

        for attempt in range(self.attempts):
            if breaker is not None:
                breaker.before_call()
            note("attempt")
            try:
                result = fn()
            except Exception as exc:
                if not is_transient(exc):
                    raise
                if breaker is not None:
                    breaker.record_failure()
                note("failure")
                if attempt + 1 >= self.attempts:
                    note("giveup")
                    raise
                note("retry")
                self.sleep(self.backoff(attempt))
            else:
                if breaker is not None:
                    breaker.record_success()
                return result
        raise AssertionError("unreachable")


class CircuitBreaker:
    """Per-backend closed → open → half-open circuit breaker.

    ``failure_threshold`` *consecutive* transient failures open the
    circuit; while open, :meth:`before_call` rejects immediately with
    :class:`CircuitOpenError` instead of letting callers stack timeouts
    onto a dead backend.  After ``cooldown`` seconds the next caller is
    admitted as a single half-open *probe*; its success re-closes the
    circuit, its failure re-opens it for another cooldown.  Thread-safe;
    *clock* is injectable for deterministic tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 5.0,
        clock=time.monotonic,
        name: str = "backend",
    ):
        self.failure_threshold = int(failure_threshold)
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.cooldown = float(cooldown)
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.clock = clock
        self.name = str(name)
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        #: closed→open transitions (including probe failures re-opening).
        self.opens = 0
        #: half-open→closed transitions (successful probes).
        self.closes = 0
        #: Probe calls admitted while half-open.
        self.probes = 0
        #: Calls rejected fast because the circuit was open.
        self.rejections = 0

    @property
    def state(self) -> str:
        """Current state: ``"closed"``, ``"open"``, or ``"half_open"``."""
        with self._lock:
            return self._state

    def before_call(self) -> None:
        """Gate one call: no-op when closed, else admit a probe or reject.

        Raises :class:`CircuitOpenError` (with the remaining cooldown as
        ``retry_after_s``) when the circuit is open or another probe is
        already in flight.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return
            now = self.clock()
            if self._state == self.OPEN:
                remaining = self.cooldown - (now - self._opened_at)
                if remaining > 0:
                    self.rejections += 1
                    raise CircuitOpenError(self.name, remaining)
                self._state = self.HALF_OPEN
                self._probe_inflight = True
                self.probes += 1
                return
            # half-open: one probe at a time decides the circuit's fate
            if self._probe_inflight:
                self.rejections += 1
                raise CircuitOpenError(self.name, self.cooldown)
            self._probe_inflight = True
            self.probes += 1

    def record_success(self) -> None:
        """Report a successful call: closes the circuit, resets failures."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            if self._state != self.CLOSED:
                self._state = self.CLOSED
                self.closes += 1

    def record_failure(self) -> None:
        """Report a transient failure: may trip the circuit open.

        A failed half-open probe re-opens immediately; in the closed
        state the circuit opens after ``failure_threshold`` consecutive
        failures.
        """
        with self._lock:
            self._consecutive_failures += 1
            tripped = (
                self._state == self.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            )
            self._probe_inflight = False
            if tripped and self._state != self.OPEN:
                self._state = self.OPEN
                self.opens += 1
            if tripped:
                self._opened_at = self.clock()

    def retry_after_s(self) -> float:
        """Seconds until the breaker would next admit a probe (0 if now)."""
        with self._lock:
            if self._state != self.OPEN:
                return 0.0
            return max(0.0, self.cooldown - (self.clock() - self._opened_at))


@dataclass
class ResilienceStats:
    """Counters of one :class:`ResilientStore` (all numeric → /metrics).

    ``breaker_state`` is the human-readable duplicate of
    ``breaker_is_open`` — the Prometheus exporter drops string fields, so
    the numeric flag is what alerting keys on.
    """

    #: Store calls attempted (first tries and retries both count).
    attempts: int = 0
    #: Transient failures observed across all attempts.
    failures: int = 0
    #: Re-attempts issued after a transient failure.
    retries: int = 0
    #: Calls that exhausted the retry budget and surfaced their error.
    giveups: int = 0
    #: 1 while the breaker is open or half-open, else 0.
    breaker_is_open: int = 0
    #: closed→open breaker transitions.
    breaker_opens: int = 0
    #: half-open→closed breaker transitions.
    breaker_closes: int = 0
    #: Probe calls admitted while half-open.
    breaker_probes: int = 0
    #: Calls rejected fast because the breaker was open.
    breaker_rejections: int = 0
    #: Breaker state name (``closed`` when no breaker is configured).
    breaker_state: str = "closed"

    def merge(self, other: "ResilienceStats") -> "ResilienceStats":
        """Fold *other*'s counters into this one; returns ``self``.

        Counter fields sum; the breaker flags report the *worst* member
        (any open breaker marks the merged state open, half-open beats
        closed) — so a cluster store can aggregate per-node wrappers
        into one snapshot without hiding a single dead node.
        """
        rank = {
            CircuitBreaker.CLOSED: 0,
            CircuitBreaker.HALF_OPEN: 1,
            CircuitBreaker.OPEN: 2,
        }
        for fname in self.__dataclass_fields__:
            if fname in ("breaker_is_open", "breaker_state"):
                continue
            setattr(self, fname, getattr(self, fname) + getattr(other, fname))
        self.breaker_is_open = max(self.breaker_is_open, other.breaker_is_open)
        if rank.get(other.breaker_state, 0) > rank.get(self.breaker_state, 0):
            self.breaker_state = other.breaker_state
        return self


class ResilientStore(FragmentStore):
    """Retry + circuit-breaker wrapper around any fragment store.

    Every operation that talks to the backend — reads, writes, deletes,
    index queries on remote stores, compaction — runs under *retry* (a
    :class:`RetryPolicy`) and, when given, *breaker* (a shared
    :class:`CircuitBreaker` gating the whole backend).  Counters mirror
    the wrapped traffic exactly like the other wrapper stores
    (:class:`~repro.storage.cache.CachingFragmentStore` et al.), and
    :meth:`resilience` snapshots the retry/breaker counters for
    ``ServiceStats`` and the metrics exporter.

    Retry safety: fragment reads are pure; ``put``/``put_many`` rewrite
    identical payloads (idempotent); a ``delete`` replayed across an
    ambiguous failure can report ``KeyError`` for work the first attempt
    already did — callers treating delete-of-absent as success (the
    tiering layer does) are unaffected.
    """

    def __init__(
        self,
        inner: FragmentStore,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ):
        super().__init__()
        self.inner = inner
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker
        self._attempts = 0
        self._failures = 0
        self._retries = 0
        self._giveups = 0

    # -- plumbing -------------------------------------------------------------

    def _note(self, event: str) -> None:
        with self._stats_lock:
            if event == "attempt":
                self._attempts += 1
            elif event == "failure":
                self._failures += 1
            elif event == "retry":
                self._retries += 1
            elif event == "giveup":
                self._giveups += 1

    def _call(self, fn):
        return self.retry.run(fn, breaker=self.breaker, observer=self._note)

    def resilience(self) -> ResilienceStats:
        """Snapshot the retry and breaker counters of this wrapper."""
        with self._stats_lock:
            stats = ResilienceStats(
                attempts=self._attempts,
                failures=self._failures,
                retries=self._retries,
                giveups=self._giveups,
            )
        breaker = self.breaker
        if breaker is not None:
            state = breaker.state
            stats.breaker_state = state
            stats.breaker_is_open = int(state != CircuitBreaker.CLOSED)
            stats.breaker_opens = breaker.opens
            stats.breaker_closes = breaker.closes
            stats.breaker_probes = breaker.probes
            stats.breaker_rejections = breaker.rejections
        return stats

    # -- reads ----------------------------------------------------------------

    def get(self, variable: str, segment: str) -> bytes:
        """Read one fragment, retrying transient backend faults."""
        payload = self._call(lambda: self.inner.get(variable, segment))
        with self._stats_lock:
            self.round_trips += 1
            self._count_read(len(payload))
        return payload

    def get_many(self, keys) -> dict:
        """Read a batch, retrying the whole (idempotent) batch on faults."""
        keys = list(dict.fromkeys((v, s) for v, s in keys))
        out = self._call(lambda: self.inner.get_many(keys))
        with self._stats_lock:
            self.round_trips += 1
            for payload in out.values():
                self._count_read(len(payload))
        return out

    # -- writes ---------------------------------------------------------------

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        """Write one fragment, retrying transient backend faults."""
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("fragment payload must be bytes")
        payload = bytes(payload)
        self._call(lambda: self.inner.put(variable, segment, payload))
        with self._stats_lock:
            self._record_put(variable, segment, len(payload))
            self.put_round_trips += 1
            self._count_write(1, len(payload))

    def put_many(self, items) -> None:
        """Write a batch, retrying the whole (idempotent) batch on faults."""
        batch = self._check_batch(items)
        self._call(lambda: self.inner.put_many(batch))
        with self._stats_lock:
            for variable, segment, payload in batch:
                self._record_put(variable, segment, len(payload))
            self.put_round_trips += 1
            self._count_write(len(batch), sum(len(p) for _, _, p in batch))

    def delete(self, variable: str, segment: str) -> None:
        """Delete one fragment, retrying transient backend faults."""
        self._call(lambda: self.inner.delete(variable, segment))
        with self._stats_lock:
            if (variable, segment) in self._sizes:
                self._record_delete(variable, segment)

    def transact(self, puts, deletes=()) -> None:
        """Apply puts+deletes, retrying the transaction as one unit."""
        batch = self._check_batch(puts)
        deletes = list(deletes)
        self._call(lambda: self.inner.transact(batch, deletes))
        with self._stats_lock:
            if batch:
                for variable, segment, payload in batch:
                    self._record_put(variable, segment, len(payload))
                self.put_round_trips += 1
                self._count_write(len(batch), sum(len(p) for _, _, p in batch))

    # -- index (delegated; retried — remote stores do I/O here) ---------------

    def has(self, variable: str, segment: str) -> bool:
        """Delegate to the inner store under the retry policy."""
        return self._call(lambda: self.inner.has(variable, segment))

    def keys(self) -> list:
        """Delegate to the inner store under the retry policy."""
        return self._call(self.inner.keys)

    def variables(self) -> list:
        """Delegate to the inner store under the retry policy."""
        return self._call(self.inner.variables)

    def segments(self, variable: str) -> list:
        """Delegate to the inner store under the retry policy."""
        return self._call(lambda: self.inner.segments(variable))

    def size_of(self, variable: str, segment: str) -> int:
        """Delegate to the inner store under the retry policy."""
        return self._call(lambda: self.inner.size_of(variable, segment))

    def nbytes(self, variable: str | None = None) -> int:
        """Delegate to the inner store under the retry policy."""
        return self._call(lambda: self.inner.nbytes(variable))

    # -- durability / lifecycle ------------------------------------------------

    def refresh(self) -> None:
        """Re-pull the inner store's index snapshot (remote stores)."""
        refresh = getattr(self.inner, "refresh", None)
        if refresh is not None:
            self._call(refresh)

    def compact(self):
        """Delegate compaction (idempotent) under the retry policy."""
        return self._call(self.inner.compact)

    def durability(self):
        """Durability counters of the inner store, under the retry policy."""
        return self._call(self.inner.durability)

    def close(self) -> None:
        """Close the inner store (never retried; best effort by contract)."""
        self.inner.close()


def policy_from_params(params: dict, prefix: str = ""):
    """Build ``(RetryPolicy | None, CircuitBreaker | None)`` from URL params.

    Recognized keys (optionally prefixed, e.g. ``slow_retries``):
    ``retries`` (total attempts), ``retry_base`` / ``retry_max``
    (backoff window, seconds), ``breaker`` (consecutive-failure
    threshold), ``cooldown`` (breaker cooldown, seconds).  Returns
    ``(None, None)`` when no resilience keys are present, so URL
    grammars can stay zero-cost by default.
    """

    def value(key):
        return params.get(prefix + key)

    retry = None
    if value("retries") is not None or value("retry_base") is not None:
        retry = RetryPolicy(
            attempts=int(value("retries") or 3),
            base_delay=float(value("retry_base") or 0.05),
            max_delay=float(value("retry_max") or 2.0),
        )
    breaker = None
    if value("breaker") is not None:
        breaker = CircuitBreaker(
            failure_threshold=int(value("breaker")),
            cooldown=float(value("cooldown") or 5.0),
        )
    return retry, breaker


def wrap_with_resilience(
    store: FragmentStore,
    retry: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
) -> FragmentStore:
    """Apply retry/breaker to *store* in the most useful place.

    A :class:`~repro.storage.tiered.TieredStore` gets its **slow tier**
    wrapped in place — that is the fragile backend, and keeping the
    tiered store outermost preserves its degraded-read behavior.  A
    :class:`~repro.storage.cluster.ClusterFragmentStore` is returned
    unchanged: it already wraps every node in its own
    :class:`ResilientStore` + breaker, and an outer wrapper would defeat
    per-node failover by retrying the whole fan-out.  Any other store is
    wrapped whole.  With neither *retry* nor *breaker*, returns *store*
    unchanged.
    """
    if retry is None and breaker is None:
        return store
    from repro.storage.cluster import ClusterFragmentStore
    from repro.storage.tiered import TieredStore

    if isinstance(store, ClusterFragmentStore):
        return store
    if isinstance(store, TieredStore):
        if not isinstance(store.slow, ResilientStore):
            store.slow = ResilientStore(store.slow, retry=retry, breaker=breaker)
        return store
    return ResilientStore(store, retry=retry, breaker=breaker)
