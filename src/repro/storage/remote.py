"""Remote fragment backends: HTTP object store and key-value adapter.

PR 3 proved the retrieval engine's economics against a *simulated*
remote tier (:class:`~repro.storage.transfer.LatencyFragmentStore`);
this module provides real ones.  Two backends implement the
:class:`RemoteFragmentStore` protocol — the read/write surface the rest
of the stack (archive, cache, tiering, service) composes over:

* :class:`HTTPFragmentServer` / :class:`HTTPFragmentStore` — an
  in-process HTTP object-store server over any local
  :class:`~repro.storage.store.FragmentStore`, and the client that
  speaks to it.  The wire protocol is five endpoints (index, single
  fragment with HTTP ``Range`` support, a coalesced ``/batch`` read
  moving a whole fragment set in **one** round trip, its write-side
  mirror ``/batch_put``, and put/delete), so a batched retrieval round
  — or a batched ingestion flush — costs one HTTP request however many
  fragments it spans, the same economy the pipelined engines exploit
  locally.
* :class:`KeyValueFragmentStore` — adapts any object with S3-style
  bucket semantics (:class:`ObjectBucket`: get/put/delete/list by string
  key) to the fragment-store interface.  :class:`InMemoryObjectBucket`
  is the reference bucket; a real S3/GCS client satisfies the same five
  methods.

Both backends keep a local index snapshot (keys + payload sizes) so
``has``/``segments``/``size_of``/``nbytes`` — the metadata queries
retrieval planning hammers — never touch the network.
"""

from __future__ import annotations

import http.client
import http.server
import json
import threading
from typing import Protocol, runtime_checkable
from urllib.parse import parse_qs, quote, unquote, urlparse

from dataclasses import asdict

from repro.storage.store import FragmentStore, _split_query, split_store_url
from repro.storage.wal import CompactionReport, DurabilityStats

#: URL path prefix of the fragment protocol (versioned for evolution).
API_PREFIX = "/v1"


@runtime_checkable
class RemoteFragmentStore(Protocol):
    """The store surface a remote backend must provide.

    Structural (``isinstance`` works via ``runtime_checkable``): any
    object with these methods composes with :class:`Archive`,
    :class:`~repro.storage.cache.CachingFragmentStore`, and
    :class:`~repro.storage.tiered.TieredStore`.  ``get_many`` is the
    load-bearing method — it must move its whole batch in one backend
    round trip, because that is what the pipelined retrieval engine and
    the tiering layer coalesce misses into.
    """

    def get(self, variable: str, segment: str) -> bytes:
        """Fetch one fragment payload; KeyError when absent."""

    def get_many(self, keys) -> dict:
        """Fetch a batch of fragments in one backend round trip."""

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        """Durably store one fragment."""

    def put_many(self, items) -> None:
        """Durably store a batch of fragments in one backend round trip.

        The write-side mirror of ``get_many``: what the streaming
        ingestion engine coalesces its flushes into.
        """

    def delete(self, variable: str, segment: str) -> None:
        """Remove one fragment; KeyError when absent."""

    def has(self, variable: str, segment: str) -> bool:
        """Whether a fragment is indexed (no payload movement)."""

    def size_of(self, variable: str, segment: str) -> int:
        """Payload size in bytes without fetching."""

    def keys(self) -> list:
        """All indexed ``(variable, segment)`` keys."""

    def segments(self, variable: str) -> list:
        """Segment names indexed for one variable."""

    def nbytes(self, variable: str | None = None) -> int:
        """Total indexed bytes (optionally for one variable)."""


# ---------------------------------------------------------------------------
# HTTP object-store server
# ---------------------------------------------------------------------------


def _frag_query(variable: str, segment: str) -> str:
    return f"variable={quote(variable, safe='')}&segment={quote(segment, safe='')}"


class _Handler(http.server.BaseHTTPRequestHandler):
    """Request handler of :class:`HTTPFragmentServer` (one per request)."""

    protocol_version = "HTTP/1.1"
    server_version = "ReproFragmentStore/1"

    # -- helpers --------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        """Silence per-request stderr logging (tests and benchmarks)."""

    @property
    def _store(self) -> FragmentStore:
        return self.server.inner  # type: ignore[attr-defined]

    def _send(self, code: int, payload: bytes, content_type="application/octet-stream"):
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, code: int, obj) -> None:
        self._send(code, json.dumps(obj).encode(), content_type="application/json")

    def _key(self) -> tuple | None:
        query = parse_qs(urlparse(self.path).query)
        try:
            return unquote(query["variable"][0]), unquote(query["segment"][0])
        except (KeyError, IndexError):
            self._send_json(400, {"error": "variable and segment are required"})
            return None

    def _route(self) -> str:
        return urlparse(self.path).path

    # -- verbs ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        """Serve the index listing or one (optionally ranged) fragment."""
        route = self._route()
        if route == API_PREFIX + "/index":
            fragments = [
                {"variable": v, "segment": s, "nbytes": self._store.size_of(v, s)}
                for v, s in self._store.keys()
            ]
            self._send_json(200, {"fragments": fragments})
            return
        if route == API_PREFIX + "/durability":
            self._send_json(200, asdict(self._store.durability()))
            return
        if route == API_PREFIX + "/frag":
            key = self._key()
            if key is None:
                return
            try:
                payload = self._store.get(*key)
            except KeyError:
                self._send_json(404, {"error": "no such fragment", "key": list(key)})
                return
            span = self._range(len(payload))
            if span is None:
                self._send(200, payload)
            else:
                start, stop = span
                self.send_response(206)
                self.send_header("Content-Type", "application/octet-stream")
                self.send_header(
                    "Content-Range", f"bytes {start}-{stop - 1}/{len(payload)}"
                )
                self.send_header("Content-Length", str(stop - start))
                self.end_headers()
                self.wfile.write(payload[start:stop])
            return
        self._send_json(404, {"error": f"no route {route!r}"})

    def _range(self, total: int) -> tuple | None:
        """Parse a ``Range: bytes=a-b`` header into a clamped [a, b+1) span."""
        header = self.headers.get("Range", "")
        if not header.startswith("bytes="):
            return None
        start_s, _, stop_s = header[len("bytes="):].partition("-")
        try:
            start = int(start_s)
            stop = int(stop_s) + 1 if stop_s else total
        except ValueError:
            return None
        return max(0, start), min(stop, total)

    def do_POST(self) -> None:  # noqa: N802
        """Serve ``/batch`` (coalesced read) and ``/batch_put`` (coalesced write).

        ``/batch``: the request body is ``{"keys": [[variable, segment],
        ...]}``; the response is one JSON header line (per-key payload
        lengths, in request order) followed by the concatenated raw
        payloads.  Any missing key fails the whole batch with 404 listing
        every missing key — mirroring :meth:`FragmentStore.get_many`'s
        no-partial-batch contract.

        ``/batch_put`` is the mirror image: one JSON header line
        (``keys`` + per-key ``lengths``) followed by the concatenated
        payloads, stored with a single inner ``put_many`` — so a whole
        ingestion flush costs one HTTP round trip and one index append.
        """
        route = self._route()
        if route == API_PREFIX + "/batch_put":
            self._do_batch_put()
            return
        if route == API_PREFIX + "/compact":
            # server-side compaction: the store the payloads live on is
            # the one whose log and dead files need rewriting
            self._send_json(200, asdict(self._store.compact()))
            return
        if route != API_PREFIX + "/batch":
            self._send_json(404, {"error": f"no route {route!r}"})
            return
        try:
            body = self.rfile.read(int(self.headers.get("Content-Length", 0)))
            keys = [(str(v), str(s)) for v, s in json.loads(body)["keys"]]
        except (ValueError, KeyError, TypeError) as exc:
            self._send_json(400, {"error": f"malformed batch request: {exc}"})
            return
        try:
            payloads = self._store.get_many(keys)
        except KeyError as exc:
            missing = exc.args[0] if exc.args else []
            self._send_json(
                404, {"error": "missing fragments", "missing": [list(k) for k in missing]}
            )
            return
        ordered = [payloads[k] for k in dict.fromkeys(keys)]
        header = json.dumps({"lengths": [len(p) for p in ordered]}).encode() + b"\n"
        self._send(200, header + b"".join(ordered))

    def _do_batch_put(self) -> None:
        """Store one coalesced write batch (see :meth:`do_POST`)."""
        try:
            body = self.rfile.read(int(self.headers.get("Content-Length", 0)))
            header_end = body.index(b"\n")
            header = json.loads(body[:header_end])
            keys = [(str(v), str(s)) for v, s in header["keys"]]
            lengths = [int(n) for n in header["lengths"]]
            if len(keys) != len(lengths):
                raise ValueError("keys/lengths mismatch")
            items = []
            offset = header_end + 1
            for key, length in zip(keys, lengths):
                items.append((key[0], key[1], body[offset:offset + length]))
                offset += length
            if offset != len(body):
                raise ValueError("payload length mismatch")
        except (ValueError, KeyError, TypeError) as exc:
            self._send_json(400, {"error": f"malformed batch_put request: {exc}"})
            return
        self._store.put_many(items)
        self._send_json(200, {"stored": len(items)})

    def do_PUT(self) -> None:  # noqa: N802
        """Store one fragment (the request body is the payload)."""
        if self._route() != API_PREFIX + "/frag":
            self._send_json(404, {"error": f"no route {self._route()!r}"})
            return
        key = self._key()
        if key is None:
            return
        payload = self.rfile.read(int(self.headers.get("Content-Length", 0)))
        self._store.put(key[0], key[1], payload)
        self._send_json(200, {"stored": len(payload)})

    def do_DELETE(self) -> None:  # noqa: N802
        """Delete one fragment (404 when absent)."""
        if self._route() != API_PREFIX + "/frag":
            self._send_json(404, {"error": f"no route {self._route()!r}"})
            return
        key = self._key()
        if key is None:
            return
        try:
            self._store.delete(*key)
        except KeyError:
            self._send_json(404, {"error": "no such fragment", "key": list(key)})
            return
        self._send_json(200, {"deleted": True})


class HTTPFragmentServer:
    """In-process HTTP object-store server over a local fragment store.

    Binds a :class:`http.server.ThreadingHTTPServer` (ephemeral port by
    default) exposing *inner* through the fragment wire protocol.  Use as
    a context manager, or call :meth:`start` / :meth:`stop`::

        with HTTPFragmentServer(ShardedDiskStore(root)) as server:
            client = open_store(server.url)

    The server thread is a daemon; fragments are served straight from
    *inner* (its ``reads``/``round_trips`` counters therefore record the
    server-side truth, batch endpoint included).
    """

    def __init__(self, inner: FragmentStore, host: str = "127.0.0.1", port: int = 0):
        self.inner = inner
        self._httpd = http.server.ThreadingHTTPServer((host, port), _Handler)
        self._httpd.inner = inner  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple:
        """``(host, port)`` actually bound (resolves ephemeral ports)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """The ``http://host:port`` URL clients and ``open_store`` accept."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "HTTPFragmentServer":
        """Start serving on a daemon thread; idempotent."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="repro-http-store", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "HTTPFragmentServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# HTTP client
# ---------------------------------------------------------------------------


class HTTPFragmentStore(FragmentStore):
    """Client for :class:`HTTPFragmentServer`: a remote tier over HTTP.

    Opens by pulling the server's index once, so every metadata query
    (``has``/``segments``/``size_of``/``nbytes``) is answered locally;
    call :meth:`refresh` to re-pull after another writer changes the
    archive.  ``get`` costs one request, :meth:`get_many` moves a whole
    batch in **one** request via the ``/batch`` endpoint.  Connections
    are per-thread and kept alive, so concurrent retrieval sessions don't
    serialize on a shared socket; a stale keep-alive (server restarted,
    idle socket reaped) is re-dialed transparently exactly once per
    request and counted in ``reconnects``.  Anything beyond that single
    re-dial is the retry layer's job: wrap the client in a
    :class:`~repro.storage.resilience.ResilientStore` (or pass
    ``retries=``/``breaker=`` URL parameters to :meth:`from_url`) for
    backoff and circuit breaking.

    Parameters
    ----------
    host / port:
        Address of a running :class:`HTTPFragmentServer`.
    timeout:
        Socket timeout in seconds for each request.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        super().__init__()
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)
        self._local = threading.local()
        #: Stale keep-alive connections transparently re-dialed.
        self.reconnects = 0
        self.refresh()

    @classmethod
    def from_url(cls, url: str, timeout: float = 30.0) -> FragmentStore:
        """Open from an ``http://host:port[?...]`` URL (no path component).

        Query parameters: ``timeout`` (seconds) plus the resilience keys
        of :func:`~repro.storage.resilience.policy_from_params`
        (``retries``/``retry_base``/``retry_max``/``breaker``/
        ``cooldown``) — when any of those are present the client comes
        back wrapped in a
        :class:`~repro.storage.resilience.ResilientStore`.
        """
        from repro.storage.resilience import ResilientStore, policy_from_params

        scheme, rest = split_store_url(url)
        if scheme != "http":
            raise ValueError(f"not an http:// store URL: {url!r}")
        rest, params = _split_query(rest)
        netloc = rest.split("/", 1)[0]
        host, sep, port = netloc.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(f"http:// store URL needs host:port, got {url!r}")
        timeout = float(params.get("timeout", timeout))
        store = cls(host, int(port), timeout=timeout)
        retry, breaker = policy_from_params(params)
        if retry is None and breaker is None:
            return store
        if breaker is not None:
            breaker.name = f"http://{host}:{port}"
        return ResilientStore(store, retry=retry, breaker=breaker)

    # -- wire -----------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
            self._local.conn = conn
        return conn

    def _request(self, method: str, path: str, body: bytes | None = None,
                 headers: dict | None = None):
        """One HTTP exchange, transparently reconnecting a stale keep-alive."""
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers or {})
                response = conn.getresponse()
                return response.status, response.read()
            except (http.client.HTTPException, OSError):
                conn.close()
                self._local.conn = None
                if attempt:
                    raise
                with self._stats_lock:
                    self.reconnects += 1
        raise AssertionError("unreachable")

    @staticmethod
    def _raise_for(status: int, payload: bytes, key=None):
        if status == 404:
            try:
                detail = json.loads(payload)
            except ValueError:
                detail = {}
            missing = detail.get("missing")
            raise KeyError(
                [tuple(k) for k in missing] if missing is not None else key
            )
        if status >= 400:
            raise ConnectionError(f"fragment server answered {status}: {payload[:200]!r}")

    # -- index ----------------------------------------------------------------

    def refresh(self) -> None:
        """Re-pull the server's fragment index into the local snapshot."""
        status, payload = self._request("GET", API_PREFIX + "/index")
        self._raise_for(status, payload)
        listing = json.loads(payload)["fragments"]
        with self._stats_lock:
            self._sizes.clear()
            self._var_bytes.clear()
            self._var_segments.clear()
            self._total_bytes = 0
            for entry in listing:
                self._record_put(
                    entry["variable"], entry["segment"], int(entry["nbytes"])
                )

    # -- reads ----------------------------------------------------------------

    def get(self, variable: str, segment: str) -> bytes:
        """Fetch one fragment in one HTTP round trip."""
        status, payload = self._request(
            "GET", f"{API_PREFIX}/frag?{_frag_query(variable, segment)}"
        )
        self._raise_for(status, payload, key=(variable, segment))
        with self._stats_lock:
            self.round_trips += 1
            self._count_read(len(payload))
        return payload

    def get_range(self, variable: str, segment: str, start: int, stop: int) -> bytes:
        """Fetch ``payload[start:stop]`` via an HTTP ``Range`` request."""
        status, payload = self._request(
            "GET",
            f"{API_PREFIX}/frag?{_frag_query(variable, segment)}",
            headers={"Range": f"bytes={int(start)}-{int(stop) - 1}"},
        )
        self._raise_for(status, payload, key=(variable, segment))
        with self._stats_lock:
            self.round_trips += 1
            self._count_read(len(payload))
        return payload

    def get_many(self, keys) -> dict:
        """Fetch a whole batch in one ``/batch`` HTTP round trip."""
        keys = list(dict.fromkeys((v, s) for v, s in keys))
        if not keys:
            return {}
        body = json.dumps({"keys": [list(k) for k in keys]}).encode()
        status, payload = self._request("POST", API_PREFIX + "/batch", body=body)
        self._raise_for(status, payload, key=keys)
        header_end = payload.index(b"\n")
        lengths = json.loads(payload[:header_end])["lengths"]
        out = {}
        offset = header_end + 1
        for key, length in zip(keys, lengths):
            out[key] = payload[offset:offset + length]
            offset += length
        if offset != len(payload):
            raise ConnectionError("batch response length mismatch")
        with self._stats_lock:
            self.round_trips += 1
            for fragment in out.values():
                self._count_read(len(fragment))
        return out

    # -- writes ---------------------------------------------------------------

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        """Store one fragment on the server (write-through, synchronous)."""
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("fragment payload must be bytes")
        status, answer = self._request(
            "PUT", f"{API_PREFIX}/frag?{_frag_query(variable, segment)}", body=bytes(payload)
        )
        self._raise_for(status, answer)
        with self._stats_lock:
            self._record_put(variable, segment, len(payload))
            self.put_round_trips += 1
            self._count_write(1, len(payload))

    def put_many(self, items) -> None:
        """Store a whole batch in one ``/batch_put`` HTTP round trip."""
        batch = self._check_batch(items)
        if not batch:
            return
        header = json.dumps({
            "keys": [[v, s] for v, s, _ in batch],
            "lengths": [len(p) for _, _, p in batch],
        }).encode() + b"\n"
        body = header + b"".join(p for _, _, p in batch)
        status, answer = self._request("POST", API_PREFIX + "/batch_put", body=body)
        self._raise_for(status, answer)
        with self._stats_lock:
            for variable, segment, payload in batch:
                self._record_put(variable, segment, len(payload))
            self.put_round_trips += 1
            self._count_write(len(batch), sum(len(p) for _, _, p in batch))

    def delete(self, variable: str, segment: str) -> None:
        """Delete one fragment on the server; KeyError when absent."""
        status, answer = self._request(
            "DELETE", f"{API_PREFIX}/frag?{_frag_query(variable, segment)}"
        )
        self._raise_for(status, answer, key=(variable, segment))
        with self._stats_lock:
            if (variable, segment) in self._sizes:
                self._record_delete(variable, segment)

    # -- durability -----------------------------------------------------------

    def compact(self) -> CompactionReport:
        """Ask the server to compact its backing store (one request).

        Compaction must run where the payload files live; the client
        just triggers it and relays the server's reclaim report.
        """
        status, answer = self._request("POST", API_PREFIX + "/compact")
        self._raise_for(status, answer)
        return CompactionReport(**json.loads(answer))

    def durability(self) -> DurabilityStats:
        """The server-side store's durability counters (one request)."""
        status, answer = self._request("GET", API_PREFIX + "/durability")
        self._raise_for(status, answer)
        return DurabilityStats(**json.loads(answer))

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Close this thread's kept-alive connection (others expire idle)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None


# ---------------------------------------------------------------------------
# Key-value (S3-style) adapter
# ---------------------------------------------------------------------------


@runtime_checkable
class ObjectBucket(Protocol):
    """S3-style bucket semantics the key-value adapter composes over.

    Five methods, string keys, byte values.  ``get_object`` raises
    ``KeyError`` for a missing key.  ``get_objects`` (batched read) and
    ``put_objects`` (batched write) are optional — buckets that support
    them move a whole batch in one round trip; the adapter falls back to
    per-key gets/puts otherwise.
    """

    def get_object(self, key: str) -> bytes:
        """Read one object; KeyError when absent."""

    def put_object(self, key: str, data: bytes) -> None:
        """Write one object (overwrite allowed)."""

    def delete_object(self, key: str) -> None:
        """Remove one object; KeyError when absent."""

    def list_objects(self) -> list:
        """All ``(key, nbytes)`` pairs currently stored."""


class InMemoryObjectBucket:
    """Reference :class:`ObjectBucket`: a thread-safe in-process dict.

    Counts ``requests`` (bucket round trips: one per get/put/delete/list
    and one per batched ``get_objects``) so tests and benchmarks can
    assert the adapter's coalescing.
    """

    def __init__(self):
        self._objects: dict = {}
        self._lock = threading.Lock()
        #: Bucket round trips served (batched reads count once).
        self.requests = 0

    def get_object(self, key: str) -> bytes:
        """Read one object; KeyError when absent."""
        with self._lock:
            self.requests += 1
            return self._objects[key]

    def get_objects(self, keys) -> dict:
        """Batched read: the whole batch costs one bucket request."""
        with self._lock:
            self.requests += 1
            missing = [k for k in keys if k not in self._objects]
            if missing:
                raise KeyError(missing)
            return {k: self._objects[k] for k in keys}

    def put_object(self, key: str, data: bytes) -> None:
        """Write one object (overwrite allowed)."""
        with self._lock:
            self.requests += 1
            self._objects[key] = bytes(data)

    def put_objects(self, objects: dict) -> None:
        """Batched write: the whole ``{key: data}`` batch costs one request."""
        with self._lock:
            self.requests += 1
            for key, data in objects.items():
                self._objects[key] = bytes(data)

    def delete_object(self, key: str) -> None:
        """Remove one object; KeyError when absent."""
        with self._lock:
            self.requests += 1
            del self._objects[key]

    def list_objects(self) -> list:
        """All ``(key, nbytes)`` pairs, insertion-ordered."""
        with self._lock:
            self.requests += 1
            return [(k, len(v)) for k, v in self._objects.items()]


def object_key(variable: str, segment: str) -> str:
    """Encode a fragment key as one reversible bucket key string."""
    return f"{quote(variable, safe='')}/{quote(segment, safe='')}"


def fragment_key(key: str) -> tuple:
    """Inverse of :func:`object_key`; ValueError for foreign keys."""
    variable, sep, segment = key.partition("/")
    if not sep:
        raise ValueError(f"not a fragment object key: {key!r}")
    return unquote(variable), unquote(segment)


class KeyValueFragmentStore(FragmentStore):
    """Fragment store over any :class:`ObjectBucket` (S3-style semantics).

    Fragment keys map to bucket keys via :func:`object_key` (percent-
    encoded, so arbitrary variable/segment names survive).  The bucket is
    listed once at open to rebuild the index; foreign keys in the bucket
    are ignored.  ``get_many`` uses the bucket's batched ``get_objects``
    when available (one bucket round trip per batch) and falls back to
    per-key gets otherwise — ``round_trips`` records whichever actually
    happened.
    """

    def __init__(self, bucket: ObjectBucket):
        super().__init__()
        self.bucket = bucket
        for key, nbytes in bucket.list_objects():
            try:
                variable, segment = fragment_key(key)
            except ValueError:
                continue  # not ours; buckets may hold unrelated objects
            self._record_put(variable, segment, int(nbytes))

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        """Write one fragment object to the bucket."""
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("fragment payload must be bytes")
        self.bucket.put_object(object_key(variable, segment), bytes(payload))
        with self._stats_lock:
            self._record_put(variable, segment, len(payload))
            self.put_round_trips += 1
            self._count_write(1, len(payload))

    def put_many(self, items) -> None:
        """Batched write; one bucket round trip when the bucket supports it."""
        batch = self._check_batch(items)
        put_objects = getattr(self.bucket, "put_objects", None)
        trips = 1
        if put_objects is not None:
            put_objects({object_key(v, s): p for v, s, p in batch})
        else:
            for variable, segment, payload in batch:
                self.bucket.put_object(object_key(variable, segment), payload)
            trips = max(1, len(batch))  # honest accounting, like get_many
        with self._stats_lock:
            for variable, segment, payload in batch:
                self._record_put(variable, segment, len(payload))
            self.put_round_trips += trips
            self._count_write(len(batch), sum(len(p) for _, _, p in batch))

    def delete(self, variable: str, segment: str) -> None:
        """Delete one fragment object; KeyError when absent."""
        if (variable, segment) not in self._sizes:
            raise KeyError((variable, segment))
        self.bucket.delete_object(object_key(variable, segment))
        with self._stats_lock:
            self._record_delete(variable, segment)

    def get(self, variable: str, segment: str) -> bytes:
        """Read one fragment object (one bucket round trip)."""
        if (variable, segment) not in self._sizes:
            raise KeyError((variable, segment))
        payload = self.bucket.get_object(object_key(variable, segment))
        with self._stats_lock:
            self.round_trips += 1
            self._count_read(len(payload))
        return payload

    def get_many(self, keys) -> dict:
        """Batched read; one bucket round trip when the bucket supports it."""
        keys = list(dict.fromkeys((v, s) for v, s in keys))
        missing = [k for k in keys if k not in self._sizes]
        if missing:
            raise KeyError(missing)
        get_objects = getattr(self.bucket, "get_objects", None)
        trips = 1
        if get_objects is not None:
            raw = get_objects([object_key(v, s) for v, s in keys])
            out = {key: raw[object_key(*key)] for key in keys}
        else:
            out = {key: self.bucket.get_object(object_key(*key)) for key in keys}
            trips = len(keys)  # honest accounting for non-batching buckets
        with self._stats_lock:
            self.round_trips += trips
            for payload in out.values():
                self._count_read(len(payload))
        return out
