"""Durable archival of refactored representations (the Fig. 1 storage tier).

:class:`Archive` persists every progressive fragment of a refactored
variable as an individually addressable object in a
:class:`~repro.storage.store.FragmentStore` — one fragment per snapshot
(PSZ3/PSZ3-delta) or per level/bitplane (PMGARD) — plus a JSON index.
Partial retrieval therefore maps onto partial reads of the archival tier,
which is the deployment story behind the paper's remote-retrieval numbers.

``load()`` reconstructs a fully functional :class:`Refactored` object
from the store; its readers behave identically (byte accounting included)
to the ones produced directly by the refactorers, which the round-trip
tests assert.
"""

from __future__ import annotations

import json

import numpy as np

from repro.compressors.pmgard import PMGARDRefactored
from repro.compressors.psz3 import PSZ3Refactored
from repro.compressors.psz3_delta import PSZ3DeltaRefactored
from repro.compressors.sz3 import SZ3Blob, SZ3Compressor
from repro.encoding.bitplane import BitplaneStream
from repro.storage.store import FragmentStore
from repro.transforms.multilevel import MultilevelDecomposition, MultilevelTransform

_INDEX_SEGMENT = "_index.json"


class Archive:
    """Fragment-addressable archive for refactored variables."""

    def __init__(self, store: FragmentStore):
        self.store = store

    # -- save ----------------------------------------------------------------

    def save(self, variable: str, refactored) -> dict:
        """Persist *refactored* under *variable*; returns the JSON index."""
        if isinstance(refactored, PMGARDRefactored):
            index = self._save_pmgard(variable, refactored)
        elif isinstance(refactored, PSZ3Refactored):
            index = self._save_snapshots(variable, refactored, kind="psz3")
        elif isinstance(refactored, PSZ3DeltaRefactored):
            index = self._save_snapshots(variable, refactored, kind="psz3_delta")
        else:
            raise TypeError(f"cannot archive {type(refactored).__name__}")
        self.store.put(variable, _INDEX_SEGMENT, json.dumps(index).encode())
        return index

    def _save_snapshots(self, variable, refactored, kind) -> dict:
        for i, blob in enumerate(refactored.blobs):
            self.store.put(variable, f"snapshot_{i:03d}", blob.payload)
        if refactored.lossless_payload is not None:
            self.store.put(variable, "lossless", refactored.lossless_payload)
        return {
            "kind": kind,
            "shape": list(refactored.shape),
            "ebs": list(refactored.ebs),
            "num_snapshots": len(refactored.blobs),
            "has_lossless": refactored.lossless_payload is not None,
        }

    def _save_pmgard(self, variable, refactored) -> dict:
        self.store.put(variable, "coarse", refactored.coarse_payload)
        stream_meta = []
        for level, stream in enumerate(refactored.streams):
            if stream.exponent is not None:
                self.store.put(variable, f"L{level:02d}_signs", stream.sign_segment)
                for p, seg in enumerate(stream.plane_segments):
                    self.store.put(variable, f"L{level:02d}_p{p:02d}", seg)
            stream_meta.append({
                "shape": list(stream.shape),
                "exponent": stream.exponent,
                "num_planes": stream.num_planes,
            })
        tr = refactored.transform
        return {
            "kind": "pmgard",
            "basis": tr.basis,
            "max_levels": tr.max_levels,
            "min_size": tr.min_size,
            "backend": refactored.backend,
            "level_shapes": [list(s) for s in refactored.decomp.shapes],
            "coarse_shape": list(refactored.coarse_shape),
            "streams": stream_meta,
        }

    # -- load ----------------------------------------------------------------

    def load(self, variable: str):
        """Reconstruct the :class:`Refactored` archived under *variable*."""
        index = json.loads(self.store.get(variable, _INDEX_SEGMENT).decode())
        kind = index["kind"]
        if kind == "pmgard":
            return self._load_pmgard(variable, index)
        if kind in ("psz3", "psz3_delta"):
            return self._load_snapshots(variable, index, kind)
        raise ValueError(f"unknown archive kind {kind!r}")

    def _load_snapshots(self, variable, index, kind):
        blobs = [
            SZ3Blob(self.store.get(variable, f"snapshot_{i:03d}"))
            for i in range(index["num_snapshots"])
        ]
        tail = self.store.get(variable, "lossless") if index["has_lossless"] else None
        cls = PSZ3Refactored if kind == "psz3" else PSZ3DeltaRefactored
        return cls(
            tuple(index["shape"]), index["ebs"], blobs, tail, SZ3Compressor()
        )

    def _load_pmgard(self, variable, index):
        streams = []
        for level, meta in enumerate(index["streams"]):
            if meta["exponent"] is None:
                streams.append(
                    BitplaneStream(tuple(meta["shape"]), None, meta["num_planes"], b"", [])
                )
                continue
            signs = self.store.get(variable, f"L{level:02d}_signs")
            planes = [
                self.store.get(variable, f"L{level:02d}_p{p:02d}")
                for p in range(meta["num_planes"])
            ]
            streams.append(
                BitplaneStream(
                    tuple(meta["shape"]), int(meta["exponent"]),
                    meta["num_planes"], signs, planes,
                )
            )
        transform = MultilevelTransform(
            basis=index["basis"],
            max_levels=index["max_levels"],
            min_size=index["min_size"],
        )
        decomp = MultilevelDecomposition(
            shapes=[tuple(s) for s in index["level_shapes"]],
            coefficients=[None] * len(index["level_shapes"]),
            coarse=None,
            basis=index["basis"],
        )
        return PMGARDRefactored(
            decomp,
            streams,
            self.store.get(variable, "coarse"),
            transform,
            index["backend"],
            coarse_shape=tuple(index["coarse_shape"]),
        )

    # -- bulk helpers ----------------------------------------------------------

    def save_dataset(self, refactored: dict) -> None:
        """Archive every variable of a refactored dataset."""
        for name, ref in refactored.items():
            self.save(name, ref)

    def load_dataset(self, variables) -> dict:
        """Reload a set of archived variables."""
        return {name: self.load(name) for name in variables}

    def variables(self) -> list:
        """Names of all archived variables (those with an index segment)."""
        seen = []
        for var, seg in self.store.keys():
            if seg == _INDEX_SEGMENT and var not in seen:
                seen.append(var)
        return seen
