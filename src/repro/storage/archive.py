"""Durable archival of refactored representations (the Fig. 1 storage tier).

:class:`Archive` persists every progressive fragment of a refactored
variable as an individually addressable object in a
:class:`~repro.storage.store.FragmentStore` — one fragment per snapshot
(PSZ3/PSZ3-delta) or per level/bitplane (PMGARD) — plus a JSON index.
Partial retrieval therefore maps onto partial reads of the archival tier,
which is the deployment story behind the paper's remote-retrieval numbers.

``save()`` is incremental: it writes exactly the
:func:`encode_fragments` enumeration (the contract the streaming
ingestion engine shares — see :mod:`repro.core.ingest`), never touches
other variables, and tombstones the segments a re-saved variable no
longer holds.  It is also atomic by default: the whole enumeration plus
the index segment goes down as one ``put_many`` batch — one WAL commit
record on the disk stores — so a crash mid-save can never leave a torn
variable (``docs/durability.md``).  ``load()`` reconstructs a fully functional
:class:`Refactored` object from the store; its readers behave
identically (byte accounting included) to the ones produced directly by
the refactorers, which the round-trip tests assert.  ``load(..., lazy=True)`` defers the bulk fragments — the
bitplane / snapshot payloads that dominate the archive — behind a
:class:`FragmentSource`, so a variable costs one small store round trip
to open and fragments are fetched only when (and in whatever batches) the
retrieval engine actually needs them.  :func:`prefetch_plans` is the
batch entry point: it coalesces many variables' planned segments into one
``get_many`` per backing store.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np

from repro.compressors.pmgard import PMGARDRefactored
from repro.compressors.psz3 import PSZ3Refactored
from repro.compressors.psz3_delta import PSZ3DeltaRefactored
from repro.compressors.sz3 import SZ3Blob, SZ3Compressor
from repro.encoding.bitplane import BitplaneStream
from repro.utils.fragment_keys import (
    COARSE_SEGMENT,
    INDEX_SEGMENT,
    LOSSLESS_SEGMENT,
    pmgard_plane_segment,
    pmgard_signs_segment,
    snapshot_segment,
)
from repro.storage.store import FragmentStore
from repro.transforms.multilevel import MultilevelDecomposition, MultilevelTransform


class FragmentSource:
    """Lazily fetched fragment view of one archived variable.

    Readers opened over a lazily loaded variable pull payloads through
    this object.  With ``retain_payloads=True`` (raw stores) every
    fragment a prefetch delivers is memoized locally, so a batched fetch
    sticks and decode never re-reads the store.  Behind a
    :class:`~repro.storage.cache.CachingFragmentStore` the shared LRU is
    the retention layer — retaining here too would silently duplicate
    the cache and defeat its byte budget — so only the *names* of
    fetched segments are remembered (for prefetch dedup) and payloads
    are re-read through the cache.  A cache eviction between prefetch
    and decode therefore costs one extra store read, never correctness.
    """

    #: Longest a ``get`` waits for an in-flight batch before fetching the
    #: fragment itself (a correctness-safe duplicate read).
    PENDING_WAIT_SECONDS = 30.0

    def __init__(self, store: FragmentStore, variable: str, retain_payloads: bool = True):
        self.store = store
        self.variable = variable
        self._retain = bool(retain_payloads)
        self._payloads: dict = {}
        self._seen: set = set()
        self._pending: set = set()  # claimed by an in-flight batched fetch
        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)

    def fetched(self, segment: str) -> bool:
        """Whether *segment* has already arrived (or been read) here."""
        with self._lock:
            return segment in self._seen

    def get(self, segment: str) -> bytes:
        """One segment's payload, awaiting an in-flight batch if cheaper.

        Falls back to a direct (correctness-safe, possibly duplicate)
        store read when the batch does not land within
        :data:`PENDING_WAIT_SECONDS`.
        """
        with self._arrived:
            # a batch already carrying this segment is cheaper to await
            # than to race with another store read
            deadline = time.monotonic() + self.PENDING_WAIT_SECONDS
            while segment in self._pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._arrived.wait(timeout=remaining):
                    break
            payload = self._payloads.get(segment)
        if payload is None:
            payload = self.store.get(self.variable, segment)
            with self._lock:
                self._seen.add(segment)
                if self._retain:
                    self._payloads[segment] = payload
        return payload

    def size_of(self, segment: str) -> int:
        """Payload size without fetching (store indexes track sizes)."""
        with self._lock:
            payload = self._payloads.get(segment)
        if payload is not None:
            return len(payload)
        return self.store.size_of(self.variable, segment)

    def handle(self, segment: str):
        """Zero-copy payload handle for *segment*, or None (no store I/O).

        Returns the memoized payload when this source retains payloads,
        or an :class:`~repro.parallel.executor.ArenaRef` when the backing
        caching store has the fragment slab-resident — the handle a
        process-backend decode worker can resolve without the bytes ever
        crossing a pipe.  None means the caller must :meth:`get`.
        """
        with self._lock:
            payload = self._payloads.get(segment)
        if payload is not None:
            return payload
        probe = getattr(self.store, "fragment_handle", None)
        if probe is not None:
            return probe(self.variable, segment)
        return None

    def absorb(self, payloads: dict) -> None:
        """Merge ``{segment: payload}`` results of a batched fetch."""
        with self._arrived:
            self._seen.update(payloads)
            self._pending.difference_update(payloads)
            if self._retain:
                self._payloads.update(payloads)
            self._arrived.notify_all()

    def missing(self, segments) -> list:
        """The subset of *segments* not fetched or in flight, in order."""
        with self._lock:
            return [
                s for s in segments
                if s not in self._seen and s not in self._pending
            ]

    def unarrived(self, segments) -> list:
        """The subset of *segments* not yet arrived, claimed or not.

        Where :meth:`missing` excludes segments an in-flight batch has
        claimed (dedup for cooperating prefetches), this keeps them — it
        is the planning view of a *hedged* fetch, which deliberately
        duplicates a straggling batch's reads rather than queueing
        behind it.
        """
        with self._lock:
            return [s for s in segments if s not in self._seen]

    def claim(self, segments) -> list:
        """Atomically claim the fetchable subset of *segments*.

        Concurrent batched fetches (a round fetch racing a speculative
        one, or two clients sharing the source) would otherwise both
        pass a plain ``missing`` check and read the same fragments from
        the store twice.  Claimed segments are excluded from later
        claims until :meth:`absorb` lands them or :meth:`release` gives
        them up (failed fetch).
        """
        with self._lock:
            out = [
                s for s in segments
                if s not in self._seen and s not in self._pending
            ]
            self._pending.update(out)
            return out

    def release(self, segments) -> None:
        """Un-claim segments whose batched fetch failed."""
        with self._arrived:
            self._pending.difference_update(segments)
            self._arrived.notify_all()


def prefetch_plans(plans) -> int:
    """Fetch many variables' planned segments in one pass per store.

    *plans* is an iterable of ``(FragmentSource, [segment, ...])`` pairs.
    Segments already fetched or claimed by a concurrent batch are
    skipped (atomically, via :meth:`FragmentSource.claim` — a fragment
    is read from the store at most once however many round/speculative
    fetches plan it); the remainder are grouped by backing store and
    fetched with a single ``get_many`` each (one store round trip — and,
    behind a shared cache, one single-flight batch that concurrent
    clients' overlapping plans coalesce into).  Returns the number of
    fragments actually fetched.
    """
    by_store: dict = {}
    for source, segments in plans:
        wanted = source.claim(segments)
        if wanted:
            by_store.setdefault(id(source.store), (source.store, []))[1].extend(
                (source, seg) for seg in wanted
            )
    fetched = 0
    outstanding = list(by_store.values())
    try:
        while outstanding:
            store, entries = outstanding[0]
            payloads = store.get_many([(src.variable, seg) for src, seg in entries])
            per_source: dict = {}
            for src, seg in entries:
                per_source.setdefault(id(src), (src, {}))[1][seg] = payloads[
                    (src.variable, seg)
                ]
            for src, batch in per_source.values():
                src.absorb(batch)
                fetched += len(batch)
            outstanding.pop(0)
    except BaseException:
        # release *every* still-claimed segment — including stores whose
        # batch never ran — or they would block gets and dodge refetching
        # for the life of their sources
        for _, entries in outstanding:
            for src, seg in entries:
                src.release([seg])
        raise
    return fetched


class _LazyPlaneList:
    """Sequence of one PMGARD level's plane payloads, fetched on access."""

    def __init__(self, source: FragmentSource, level: int, num_planes: int):
        self._source = source
        self._level = level
        self._n = int(num_planes)

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, plane: int):
        if not 0 <= plane < self._n:
            raise IndexError(plane)
        return self._source.get(pmgard_plane_segment(self._level, plane))


class _LazyBitplaneStream(BitplaneStream):
    """Archive-backed stream: plane payloads load lazily, sizes do not."""

    def __init__(self, shape, exponent, num_planes, sign_segment, source, level):
        super().__init__(
            tuple(shape),
            exponent,
            int(num_planes),
            sign_segment,
            _LazyPlaneList(source, level, num_planes),
        )
        self._source = source
        self._level = level

    def segment_bytes(self, start_plane: int, stop_plane: int) -> int:
        # size queries must not pull payloads: answer from the store index
        if self.exponent is None:
            return 0
        total = sum(
            self._source.size_of(pmgard_plane_segment(self._level, p))
            for p in range(start_plane, min(stop_plane, self.num_planes))
        )
        if start_plane == 0 and stop_plane > 0:
            total += len(self.sign_segment)
        return total

    def plane_handle(self, plane: int):
        """Zero-copy handle for one plane payload (see FragmentSource.handle)."""
        return self._source.handle(pmgard_plane_segment(self._level, plane))


class _LazyBlob:
    """Duck-typed :class:`SZ3Blob` whose payload fetches on first access."""

    def __init__(self, source: FragmentSource, segment: str):
        self._source = source
        self._segment = segment

    @property
    def payload(self) -> bytes:
        return self._source.get(self._segment)

    @property
    def nbytes(self) -> int:
        return self._source.size_of(self._segment)

    def handle(self):
        """Zero-copy payload handle, or None (see FragmentSource.handle)."""
        return self._source.handle(self._segment)


def _snapshot_fragments(refactored, kind) -> tuple:
    fragments = [
        (snapshot_segment(i), blob.payload)
        for i, blob in enumerate(refactored.blobs)
    ]
    if refactored.lossless_payload is not None:
        fragments.append((LOSSLESS_SEGMENT, refactored.lossless_bytes()))
    index = {
        "kind": kind,
        "shape": list(refactored.shape),
        "ebs": list(refactored.ebs),
        "num_snapshots": len(refactored.blobs),
        "has_lossless": refactored.lossless_payload is not None,
    }
    return fragments, index


def _pmgard_fragments(refactored) -> tuple:
    fragments = [(COARSE_SEGMENT, refactored.coarse_payload)]
    stream_meta = []
    for level, stream in enumerate(refactored.streams):
        if stream.exponent is not None:
            fragments.append((pmgard_signs_segment(level), stream.sign_segment))
            fragments.extend(
                (pmgard_plane_segment(level, p), seg)
                for p, seg in enumerate(stream.plane_segments)
            )
        stream_meta.append({
            "shape": list(stream.shape),
            "exponent": stream.exponent,
            "num_planes": stream.num_planes,
        })
    tr = refactored.transform
    index = {
        "kind": "pmgard",
        "basis": tr.basis,
        "max_levels": tr.max_levels,
        "min_size": tr.min_size,
        "backend": refactored.backend,
        "level_shapes": [list(s) for s in refactored.decomp.shapes],
        "coarse_shape": list(refactored.coarse_shape),
        "streams": stream_meta,
    }
    return fragments, index


def encode_fragments(refactored) -> tuple:
    """Enumerate one refactored variable's archive fragments canonically.

    Returns ``(fragments, index)`` where *fragments* is the ordered list
    of ``(segment, payload)`` pairs and *index* the JSON-serializable
    variable index (the :data:`~repro.utils.fragment_keys.INDEX_SEGMENT`
    payload, not included in the list).  Both the serial
    :meth:`Archive.save` path and the parallel ingestion engine
    (:mod:`repro.core.ingest`) write exactly this enumeration, which is
    what makes their archives bit-identical by construction.  Raises
    ``TypeError`` for representations that cannot be archived.
    """
    if isinstance(refactored, PMGARDRefactored):
        return _pmgard_fragments(refactored)
    if isinstance(refactored, PSZ3Refactored):
        return _snapshot_fragments(refactored, kind="psz3")
    if isinstance(refactored, PSZ3DeltaRefactored):
        return _snapshot_fragments(refactored, kind="psz3_delta")
    raise TypeError(f"cannot archive {type(refactored).__name__}")


class Archive:
    """Fragment-addressable archive for refactored variables."""

    def __init__(self, store: FragmentStore):
        self.store = store
        self._sources: dict = {}

    def source(self, variable: str) -> FragmentSource:
        """The (shared) fragment source of one variable."""
        source = self._sources.get(variable)
        if source is None:
            from repro.storage.cache import CachingFragmentStore

            source = self._sources[variable] = FragmentSource(
                self.store,
                variable,
                retain_payloads=not isinstance(self.store, CachingFragmentStore),
            )
        return source

    def invalidate_source(self, variable: str) -> None:
        """Drop the memoized fragment source of one rewritten variable.

        Called by :meth:`save` (and the ingestion paths) after a
        variable's fragments change on the store: a retained
        :class:`FragmentSource` memoizes payloads, so keeping it would
        serve the superseded bytes to later lazy loads.  Readers opened
        before the rewrite keep their already-fetched fragments — a
        session's view stays internally consistent — while every new
        ``load`` observes the new archive state.
        """
        self._sources.pop(variable, None)

    # -- save ----------------------------------------------------------------

    def save(self, variable: str, refactored, replace: bool = True,
             atomic: bool = True) -> dict:
        """Persist *refactored* under *variable*; returns the JSON index.

        Incremental by construction: fragments of other variables are
        never touched, so adding a variable (or a new timestep) to an
        existing archive rewrites nothing.  With ``replace=True`` (the
        default) segments left over from a previous save of the same
        variable that the new representation does not overwrite — e.g. a
        re-save with fewer snapshots or planes — are deleted afterwards,
        which appends tombstones on the disk stores so a reopened
        archive stays consistent.

        With ``atomic=True`` (the default) every fragment, the
        variable's index segment, **and** the stale-segment tombstones
        land in one :meth:`~repro.storage.store.FragmentStore.transact`
        call — on the WAL-backed disk stores a single commit record, so
        a process killed mid-save leaves a reopened archive
        bit-identical to the old version or the new one, never a torn
        mix and never with leftover superseded segments.
        ``atomic=False`` restores the serial one-``put``-per-fragment
        path (the index segment still written last, stale segments
        deleted afterwards), which the benchmarks use to measure what
        batching saves.
        """
        fragments, index = encode_fragments(refactored)
        stale: list = []
        if replace:
            keep = {segment for segment, _ in fragments}
            keep.add(INDEX_SEGMENT)
            stale = [s for s in self.store.segments(variable) if s not in keep]
        index_payload = json.dumps(index).encode()
        if atomic:
            batch = [(variable, segment, payload) for segment, payload in fragments]
            batch.append((variable, INDEX_SEGMENT, index_payload))
            while True:
                try:
                    self.store.transact(batch, [(variable, s) for s in stale])
                    break
                except KeyError:
                    # a concurrent writer superseded stale segments
                    # between listing and committing; drop the vanished
                    # ones and retry (strictly shrinking, so this ends)
                    live = set(self.store.segments(variable))
                    stale = [s for s in stale if s in live]
        else:
            for segment, payload in fragments:
                self.store.put(variable, segment, payload)
            self.store.put(variable, INDEX_SEGMENT, index_payload)
            for segment in stale:
                try:
                    self.store.delete(variable, segment)
                except KeyError:
                    pass  # a concurrent writer already superseded it
        self.invalidate_source(variable)
        return index

    # -- load ----------------------------------------------------------------

    def load(self, variable: str, lazy: bool = False):
        """Reconstruct the :class:`Refactored` archived under *variable*.

        With ``lazy=False`` every fragment is fetched up front (one
        ``get`` each — the eager seed behavior).  With ``lazy=True`` only
        the index and the small per-variable segments (coarse
        approximation, sign planes) are fetched — batched into a single
        store round trip — while bitplane / snapshot payloads are wired
        to a :class:`FragmentSource` and fetched on demand; the returned
        object carries that source as ``fragment_source`` so the
        retrieval engine can batch-prefetch planned fragments.
        """
        # bytes() is a no-op for raw stores and materializes the (small)
        # index when an arena-backed cache serves it as a memoryview
        index = json.loads(bytes(self.store.get(variable, INDEX_SEGMENT)).decode())
        kind = index["kind"]
        if kind == "pmgard":
            return self._load_pmgard(variable, index, lazy)
        if kind in ("psz3", "psz3_delta"):
            return self._load_snapshots(variable, index, kind, lazy)
        raise ValueError(f"unknown archive kind {kind!r}")

    def _load_snapshots(self, variable, index, kind, lazy=False):
        cls = PSZ3Refactored if kind == "psz3" else PSZ3DeltaRefactored
        if not lazy:
            blobs = [
                SZ3Blob(self.store.get(variable, snapshot_segment(i)))
                for i in range(index["num_snapshots"])
            ]
            tail = (
                self.store.get(variable, LOSSLESS_SEGMENT)
                if index["has_lossless"]
                else None
            )
            return cls(
                tuple(index["shape"]), index["ebs"], blobs, tail, SZ3Compressor()
            )
        source = self.source(variable)
        blobs = [
            _LazyBlob(source, snapshot_segment(i))
            for i in range(index["num_snapshots"])
        ]
        tail = None
        tail_nbytes = None
        if index["has_lossless"]:
            tail = lambda: source.get(LOSSLESS_SEGMENT)  # noqa: E731
            tail_nbytes = source.size_of(LOSSLESS_SEGMENT)
        ref = cls(
            tuple(index["shape"]), index["ebs"], blobs, tail, SZ3Compressor(),
            lossless_nbytes=tail_nbytes,
        )
        ref.fragment_source = source
        return ref

    def _load_pmgard(self, variable, index, lazy=False):
        source = self.source(variable) if lazy else None
        if lazy:
            # the small segments — coarse approximation plus every level's
            # signs — arrive in one batched round trip at open time; the
            # (dominant) plane payloads stay behind the fragment source
            small = [(variable, COARSE_SEGMENT)]
            small += [
                (variable, pmgard_signs_segment(level))
                for level, meta in enumerate(index["streams"])
                if meta["exponent"] is not None
            ]
            source.absorb(
                {seg: payload for (_, seg), payload in self.store.get_many(small).items()}
            )
        streams = []
        for level, meta in enumerate(index["streams"]):
            if meta["exponent"] is None:
                streams.append(
                    BitplaneStream(tuple(meta["shape"]), None, meta["num_planes"], b"", [])
                )
                continue
            if lazy:
                streams.append(
                    _LazyBitplaneStream(
                        tuple(meta["shape"]), int(meta["exponent"]),
                        meta["num_planes"], source.get(pmgard_signs_segment(level)),
                        source, level,
                    )
                )
                continue
            signs = self.store.get(variable, pmgard_signs_segment(level))
            planes = [
                self.store.get(variable, pmgard_plane_segment(level, p))
                for p in range(meta["num_planes"])
            ]
            streams.append(
                BitplaneStream(
                    tuple(meta["shape"]), int(meta["exponent"]),
                    meta["num_planes"], signs, planes,
                )
            )
        transform = MultilevelTransform(
            basis=index["basis"],
            max_levels=index["max_levels"],
            min_size=index["min_size"],
        )
        decomp = MultilevelDecomposition(
            shapes=[tuple(s) for s in index["level_shapes"]],
            coefficients=[None] * len(index["level_shapes"]),
            coarse=None,
            basis=index["basis"],
        )
        coarse = (
            source.get(COARSE_SEGMENT) if lazy
            else self.store.get(variable, COARSE_SEGMENT)
        )
        ref = PMGARDRefactored(
            decomp,
            streams,
            coarse,
            transform,
            index["backend"],
            coarse_shape=tuple(index["coarse_shape"]),
        )
        if lazy:
            ref.fragment_source = source
        return ref

    # -- bulk helpers ----------------------------------------------------------

    def save_dataset(self, refactored: dict) -> None:
        """Archive every variable of a refactored dataset."""
        for name, ref in refactored.items():
            self.save(name, ref)

    def load_dataset(self, variables, lazy: bool = False) -> dict:
        """Reload a set of archived variables."""
        return {name: self.load(name, lazy=lazy) for name in variables}

    def variables(self) -> list:
        """Names of all archived variables (those with an index segment)."""
        return [
            var
            for var in self.store.variables()
            if self.store.has(var, INDEX_SEGMENT)
        ]
