"""Shared fragment cache: the storage half of multi-client retrieval.

Progressive retrieval only pays for *incremental* fragments — but the
seed model pays that price per analyst.  When many clients work against
one archive, most of their fragment reads overlap (everyone starts from
the coarse levels), so a shared, byte-budgeted LRU cache in front of the
store turns N clients' disk traffic into roughly one client's worth.
:class:`FragmentCache` is that cache; :class:`CachingFragmentStore`
adapts it to the :class:`~repro.storage.store.FragmentStore` interface so
the archive layer (and everything above it) needs no changes.

Misses are *single-flight per key*: the first client to miss a fragment
claims it and loads outside the cache lock; concurrent clients wanting
the same fragment wait on that load, while hits and misses on *other*
keys proceed unblocked.  One fragment is therefore read from the store
at most once however many clients race for it, and a slow store tier
never serializes unrelated cache traffic.

:meth:`FragmentCache.get_many` extends single-flight to whole *batches*:
the keys a caller claims are loaded with one ``store.get_many`` round
trip, keys other callers are already loading are awaited and absorbed —
so the retrieval engine's per-round fragment sets coalesce across
concurrent clients into shared batched store passes.

Waiters *pin* the keys they wait on: an entry another caller just loaded
cannot be evicted (however tight the byte budget) until every waiter has
picked it up, so an eviction racing a claimed batch never turns one
store read into several.  Pins are reference counts, balanced in
``finally`` blocks — they can never go negative and never outlive the
request that took them — and eviction simply skips pinned entries (the
budget may be exceeded transiently by at most the pinned bytes).

Writes invalidate.  ``put``/``put_many``/``delete`` through
:class:`CachingFragmentStore` drop the cached entry for every written
key, and :meth:`FragmentCache.invalidate` also covers loads *in flight*:
a fragment overwritten while another thread is still reading the old
payload from the store is marked stale, and the landing payload is
served to that reader but never cached — so a re-saved variable can
never pin its old bytes into the cache, however the write races the
read.

With an *arena* (a :class:`~repro.parallel.executor.SlabArena`), large
payloads are written once into a shared-memory slab at load time and the
cache stores only the slab reference; ``get``/``get_many`` then serve
read-only memoryviews over the slab, and decode workers in other
processes attach the same slab by name — the payload bytes are never
copied again between fetch, cache and decode.  A slab-backed entry is
charged against the byte budget exactly once, by its slab residency
(``ArenaRef.length``), no matter how many views of it are outstanding.
Eviction drops the entry's arena refcount rather than freeing bytes; the
arena reclaims a slab only when every entry in it is gone, and even then
live views stay readable (the slab is unlinked but kept mapped until the
last view is released), so eviction can never invalidate a memoryview a
client still holds.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

from repro.storage.store import FragmentStore

#: Default cache budget: 256 MiB, plenty for the laptop-scale archives the
#: benchmarks generate while still small enough to exercise eviction.
DEFAULT_CACHE_BYTES = 256 << 20


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`FragmentCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_from_cache: int = 0
    bytes_from_store: int = 0
    current_bytes: int = 0
    capacity_bytes: int = 0
    slab_resident_bytes: int = 0
    slab_entries: int = 0

    @property
    def requests(self) -> int:
        """Total fragment requests (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of fragment requests served without touching the store."""
        return self.hits / self.requests if self.requests else 0.0


class _SlabEntry:
    """Cache entry whose payload lives in a shared-memory arena slab."""

    __slots__ = ("ref",)

    def __init__(self, ref):
        self.ref = ref


def _entry_size(entry) -> int:
    """Budget charge of an entry: slab residency for slab-backed ones."""
    if isinstance(entry, _SlabEntry):
        return entry.ref.length
    return len(entry)


class FragmentCache:
    """Thread-safe LRU cache of fragment payloads with a byte budget.

    Keys are ``(variable, segment)`` pairs; values are the fragment
    payloads.  Payloads larger than the whole budget are served but never
    cached (they would evict everything for a single entry).

    When *arena* is given (a :class:`~repro.parallel.executor.SlabArena`),
    payloads at least ``arena.min_bytes`` long are stored in shared-memory
    slabs and served as read-only memoryviews; smaller payloads stay plain
    ``bytes``.  See the module docstring for the accounting rules.
    """

    def __init__(self, capacity_bytes: int = DEFAULT_CACHE_BYTES, arena=None):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.arena = arena
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()
        self._inflight: dict = {}  # key -> Event set when its load finishes
        self._pins: dict = {}  # key -> waiter refcount; pinned entries dodge eviction
        self._stale: set = set()  # in-flight keys invalidated by a write
        self._stats = CacheStats(capacity_bytes=self.capacity_bytes)

    # -- pinning (all callers hold self._lock) ---------------------------------

    def _pin(self, key) -> None:
        self._pins[key] = self._pins.get(key, 0) + 1

    def _unpin(self, key) -> None:
        count = self._pins.pop(key, 0)
        if count > 1:
            self._pins[key] = count - 1
        elif count < 1:
            raise AssertionError(f"unbalanced unpin of {key!r}")

    def __contains__(self, key) -> bool:
        with self._lock:
            return tuple(key) in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_load(self, variable: str, segment: str, loader) -> bytes:
        """Return the cached payload, or load, cache, and return it.

        *loader* is a zero-argument callable hitting the backing store.
        It runs *outside* the cache lock; concurrent requests for the
        same key wait for the one in-flight load instead of re-reading
        the store, and requests for other keys are never blocked.
        """
        key = (variable, segment)
        pinned = False
        while True:
            with self._lock:
                if pinned:
                    self._unpin(key)
                    pinned = False
                if key in self._entries:
                    entry = self._entries.pop(key)
                    self._entries[key] = entry  # move to MRU position
                    self._stats.hits += 1
                    self._stats.bytes_from_cache += _entry_size(entry)
                    return self._serve(entry)
                flight = self._inflight.get(key)
                if flight is None:
                    flight = threading.Event()
                    self._inflight[key] = flight
                    break  # this thread owns the load
                # pin before waiting: once the in-flight load lands, its
                # entry must survive eviction until this thread's re-check
                self._pin(key)
                pinned = True
            # another thread is loading this key; wait, then re-check (the
            # entry may also be oversized or invalidated, in which case we
            # retry as the loader ourselves)
            flight.wait()
        try:
            payload = loader()
        except BaseException:
            with self._lock:
                del self._inflight[key]
                self._stale.discard(key)
            flight.set()
            raise
        with self._lock:
            self._stats.misses += 1
            self._stats.bytes_from_store += len(payload)
            # a write that raced this load marked the key stale: serve the
            # payload to this caller but never cache it (the next request
            # re-reads the store and sees the overwritten bytes)
            if len(payload) <= self.capacity_bytes and key not in self._stale:
                entry = self._admit(payload)
                self._entries[key] = entry
                self._stats.current_bytes += _entry_size(entry)
                self._evict_to_budget()
                result = self._serve(entry)
            else:
                result = bytes(payload)
            self._stale.discard(key)
            del self._inflight[key]
        flight.set()
        return result

    def get_many(self, keys, loader_many) -> dict:
        """Batched :meth:`get_or_load`: one store round trip for all misses.

        *keys* is an iterable of ``(variable, segment)`` pairs and
        *loader_many* a callable mapping a list of keys to a ``{key:
        payload}`` dict (typically ``store.get_many``).  Hits are served
        from the cache; the misses this caller *claims* are loaded with a
        single *loader_many* call outside the lock, so a retrieval
        round's fragment set costs one coalesced store pass however many
        fragments it spans.  Keys another caller is already loading are
        not re-requested — the batch waits for those flights and absorbs
        their results — so concurrent clients with overlapping batches
        share loads single-flight per key, exactly like ``get_or_load``.
        """
        pending = list(dict.fromkeys((v, s) for v, s in keys))
        out: dict = {}
        pinned: set = set()  # keys this caller pinned while waiting on flights
        try:
            while pending:
                owned: list = []
                waits: list = []
                with self._lock:
                    for key in pending:
                        if key in pinned:
                            # the wait is over; release the pin inside the
                            # same lock hold that serves (or reclaims) the
                            # key, so eviction cannot slip in between
                            self._unpin(key)
                            pinned.discard(key)
                        if key in self._entries:
                            entry = self._entries.pop(key)
                            self._entries[key] = entry  # move to MRU position
                            self._stats.hits += 1
                            self._stats.bytes_from_cache += _entry_size(entry)
                            out[key] = self._serve(entry)
                        elif key in self._inflight:
                            waits.append((key, self._inflight[key]))
                            self._pin(key)  # the landing entry must outlive the wait
                            pinned.add(key)
                        else:
                            flight = threading.Event()
                            self._inflight[key] = flight
                            owned.append((key, flight))
                if owned:
                    # whatever happens — loader failure, a partial result
                    # dict, a non-bytes payload — every claimed flight must
                    # be released and signalled, or waiters block forever
                    try:
                        loaded = loader_many([k for k, _ in owned])
                        with self._lock:
                            for key, flight in owned:
                                payload = loaded[key]
                                self._stats.misses += 1
                                self._stats.bytes_from_store += len(payload)
                                # stale = overwritten while in flight: serve
                                # but never cache (see get_or_load)
                                if (
                                    len(payload) <= self.capacity_bytes
                                    and key not in self._stale
                                ):
                                    entry = self._admit(payload)
                                    self._entries[key] = entry
                                    self._stats.current_bytes += _entry_size(entry)
                                    out[key] = self._serve(entry)
                                else:
                                    out[key] = bytes(payload)
                            self._evict_to_budget()
                    finally:
                        with self._lock:
                            for key, _ in owned:
                                self._inflight.pop(key, None)
                                self._stale.discard(key)
                        for _, flight in owned:
                            flight.set()
                for _, flight in waits:
                    flight.wait()
                # waited keys re-check the cache on the next pass; an entry
                # that was invalidated or oversized is retried as an owned
                # load, mirroring the get_or_load loop
                pending = [key for key, _ in waits]
        finally:
            if pinned:
                # loader blew up mid-batch: drop the leftover pins or the
                # waited entries would dodge eviction forever
                with self._lock:
                    for key in pinned:
                        self._unpin(key)
        return out

    def _evict_to_budget(self) -> None:
        """Evict LRU-first down to the byte budget, skipping pinned keys.

        A pinned entry has waiters between its load and their pickup;
        evicting it would silently re-issue the store read the pin
        exists to save.  When everything resident is pinned the budget
        is exceeded transiently — the next unpinned insert re-converges.
        """
        while self._stats.current_bytes > self.capacity_bytes:
            victim = next(
                (k for k in self._entries if not self._pins.get(k)), None
            )
            if victim is None:
                break  # every resident entry is pinned right now
            evicted = self._entries.pop(victim)
            self._stats.current_bytes -= _entry_size(evicted)
            self._stats.evictions += 1
            self._discard(evicted)

    def invalidate(self, variable: str, segment: str) -> None:
        """Drop one entry after its fragment was overwritten or deleted.

        Covers loads in flight too: a concurrent reader that already
        started loading the old payload will receive it (its read began
        before the write) but the payload is never cached, so no later
        request can observe the superseded bytes.
        """
        with self._lock:
            self._invalidate_locked((variable, segment))

    def invalidate_many(self, keys) -> None:
        """Batched :meth:`invalidate` (one lock hold for a whole write batch)."""
        with self._lock:
            for variable, segment in keys:
                self._invalidate_locked((variable, segment))

    def _invalidate_locked(self, key) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._stats.current_bytes -= _entry_size(entry)
            self._discard(entry)
        if key in self._inflight:
            self._stale.add(key)

    def clear(self) -> None:
        """Drop every entry (counters other than residency are kept)."""
        with self._lock:
            for entry in self._entries.values():
                self._discard(entry)
            self._entries.clear()
            self._stats.current_bytes = 0

    def handle(self, variable: str, segment: str):
        """Arena reference for a resident slab-backed entry, else None.

        A peek: no LRU touch, no hit/miss accounting.  The returned
        :class:`~repro.parallel.executor.ArenaRef` lets a decode worker in
        another process attach the payload without any bytes crossing the
        pipe.  It does not pin the entry — if eviction wins the race the
        worker raises ``ArenaLookupError`` and the caller re-fetches, one
        extra read but never a wrong answer.
        """
        with self._lock:
            entry = self._entries.get((variable, segment))
            if isinstance(entry, _SlabEntry):
                return entry.ref
            return None

    def inflight_keys(self) -> set:
        """Snapshot of keys with loads currently in flight.

        This is the shared *in-flight registry* the service-level fetch
        scheduler consults before speculating: a ``(variable, segment)``
        listed here is already being read from the store on some
        caller's behalf and will be cache-resident when it lands, so
        planning it into a speculative batch would only duplicate work.
        Purely advisory — the set may change the moment the lock drops,
        and acting on a stale view costs at most one redundant
        (single-flighted) load, never correctness.
        """
        with self._lock:
            return set(self._inflight)

    def stats(self) -> CacheStats:
        """Snapshot of the accounting counters.

        For an arena-backed cache, ``slab_resident_bytes``/``slab_entries``
        report the arena's live residency (which may include entries of
        other caches sharing the arena).
        """
        with self._lock:
            snapshot = replace(self._stats)
            if self.arena is not None:
                arena_stats = self.arena.stats()
                snapshot.slab_resident_bytes = arena_stats.resident_bytes
                snapshot.slab_entries = arena_stats.entries
            return snapshot

    # -- arena-backed entries (callers hold self._lock) ------------------------

    def _admit(self, payload):
        """Choose the entry representation for a loaded payload."""
        if self.arena is not None and len(payload) >= getattr(self.arena, "min_bytes", 0):
            try:
                return _SlabEntry(self.arena.write(payload))
            except Exception:
                pass  # arena closing mid-request: fall back to a bytes entry
        return bytes(payload)

    def _serve(self, entry):
        if isinstance(entry, _SlabEntry):
            return self.arena.view(entry.ref)
        return entry

    def _discard(self, entry) -> None:
        if isinstance(entry, _SlabEntry):
            self.arena.decref(entry.ref)


class CachingFragmentStore(FragmentStore):
    """Read-through :class:`FragmentStore` adapter over a shared cache.

    ``get`` serves from *cache*, falling back to *inner* exactly once per
    fragment; everything else (``has``/``segments``/``nbytes``/``keys``)
    delegates to *inner*.  Several adapters may share one cache, and one
    adapter may serve many concurrent clients — the cache is the only
    shared mutable state and it is lock-protected.
    """

    def __init__(self, inner: FragmentStore, cache: FragmentCache):
        super().__init__()
        self.inner = inner
        self.cache = cache

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        """Write through to the inner store, invalidating any cached copy.

        Invalidation runs after the inner write and also marks loads in
        flight, so a re-saved fragment can never serve its old payload
        from the cache (see :meth:`FragmentCache.invalidate`).
        """
        self.inner.put(variable, segment, payload)
        self.cache.invalidate(variable, segment)
        with self._stats_lock:
            self.put_round_trips += 1
            self._count_write(1, len(payload))

    def put_many(self, items) -> None:
        """Batched write-through: one inner round trip, batch invalidation."""
        batch = self._check_batch(items)
        self.inner.put_many(batch)
        self.cache.invalidate_many([(v, s) for v, s, _ in batch])
        with self._stats_lock:
            self.put_round_trips += 1
            self._count_write(len(batch), sum(len(p) for _, _, p in batch))

    def delete(self, variable: str, segment: str) -> None:
        """Delete from the inner store, invalidating any cached copy."""
        self.inner.delete(variable, segment)
        self.cache.invalidate(variable, segment)

    def transact(self, puts, deletes=()) -> None:
        """Forward the whole transaction to the inner store in one call.

        Keeps the inner store's atomicity (one WAL commit record on the
        disk stores) and invalidates every touched key — written and
        deleted — in one batched cache pass.
        """
        batch = self._check_batch(puts)
        doomed = list(deletes)
        self.inner.transact(batch, doomed)
        self.cache.invalidate_many(
            [(v, s) for v, s, _ in batch] + [(v, s) for v, s in doomed]
        )
        with self._stats_lock:
            if batch:
                self.put_round_trips += 1
                self._count_write(len(batch), sum(len(p) for _, _, p in batch))

    def get(self, variable: str, segment: str) -> bytes:
        """Read one fragment through the cache (at most one inner read)."""
        payload = self.cache.get_or_load(
            variable, segment, lambda: self.inner.get(variable, segment)
        )
        # the adapter's counters are uniformly *client-visible*: requests
        # this client issued, whether the cache or the inner store served
        # them (the inner store's own counters hold the store-side truth)
        with self._stats_lock:
            self.round_trips += 1
            self._count_read(len(payload))
        return payload

    def get_many(self, keys) -> dict:
        """Batched read-through: one inner round trip for the batch's misses."""
        out = self.cache.get_many(keys, self.inner.get_many)
        with self._stats_lock:
            self.round_trips += 1
            for payload in out.values():
                self._count_read(len(payload))  # client-visible traffic
        return out

    def fragment_handle(self, variable: str, segment: str):
        """Arena reference for a cached fragment, else None (no store I/O).

        See :meth:`FragmentCache.handle` — this is how decoders obtain
        zero-copy payload handles to ship to process-backend workers.
        """
        return self.cache.handle(variable, segment)

    def has(self, variable: str, segment: str) -> bool:
        """Delegate to the inner store's index."""
        return self.inner.has(variable, segment)

    def keys(self) -> list:
        """Delegate to the inner store's index."""
        return self.inner.keys()

    def variables(self) -> list:
        """Delegate to the inner store's index."""
        return self.inner.variables()

    def size_of(self, variable: str, segment: str) -> int:
        """Delegate to the inner store's index."""
        return self.inner.size_of(variable, segment)

    def segments(self, variable: str) -> list:
        """Delegate to the inner store's index."""
        return self.inner.segments(variable)

    def nbytes(self, variable: str | None = None) -> int:
        """Delegate to the inner store's index."""
        return self.inner.nbytes(variable)

    def compact(self):
        """Compact the inner store (cached payloads are never dead bytes).

        Compaction only reclaims tombstoned files, and every delete on
        this adapter already invalidated its cached copy — so no cache
        interaction is needed beyond delegating.
        """
        return self.inner.compact()

    def durability(self):
        """Delegate to the inner store's durability counters."""
        return self.inner.durability()

    def close(self) -> None:
        """Close the inner store (the shared cache may outlive it)."""
        self.inner.close()
