"""Keyed fragment stores.

Progressive fragments are opaque byte strings addressed by
``(variable, segment)`` keys.  The in-memory store backs unit tests and
benchmarks; the on-disk store demonstrates the archival layout a real
deployment would use (one file per fragment, so partial retrieval maps to
partial reads).
"""

from __future__ import annotations

import os
import re

_KEY_RE = re.compile(r"[^A-Za-z0-9._-]")


class FragmentStore:
    """In-memory fragment store with byte accounting."""

    def __init__(self):
        self._data: dict = {}

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        """Archive one fragment."""
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("fragment payload must be bytes")
        self._data[(variable, segment)] = bytes(payload)

    def get(self, variable: str, segment: str) -> bytes:
        """Fetch one fragment; KeyError when absent."""
        return self._data[(variable, segment)]

    def has(self, variable: str, segment: str) -> bool:
        return (variable, segment) in self._data

    def segments(self, variable: str) -> list:
        """Segment names archived for *variable*, insertion-ordered."""
        return [seg for (var, seg) in self._data if var == variable]

    def nbytes(self, variable: str | None = None) -> int:
        """Total archived bytes (optionally for a single variable)."""
        return sum(
            len(payload)
            for (var, _), payload in self._data.items()
            if variable is None or var == variable
        )


class DiskFragmentStore(FragmentStore):
    """One-file-per-fragment store rooted at a directory."""

    def __init__(self, root: str):
        super().__init__()
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, variable: str, segment: str) -> str:
        safe_var = _KEY_RE.sub("_", variable)
        safe_seg = _KEY_RE.sub("_", segment)
        return os.path.join(self.root, f"{safe_var}__{safe_seg}.bin")

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("fragment payload must be bytes")
        with open(self._path(variable, segment), "wb") as fh:
            fh.write(payload)
        self._data[(variable, segment)] = None  # index only; bytes on disk

    def get(self, variable: str, segment: str) -> bytes:
        if (variable, segment) not in self._data:
            raise KeyError((variable, segment))
        with open(self._path(variable, segment), "rb") as fh:
            return fh.read()

    def nbytes(self, variable: str | None = None) -> int:
        total = 0
        for var, seg in self._data:
            if variable is None or var == variable:
                total += os.path.getsize(self._path(var, seg))
        return total
