"""Keyed fragment stores.

Progressive fragments are opaque byte strings addressed by
``(variable, segment)`` keys.  The in-memory store backs unit tests and
benchmarks; the on-disk stores demonstrate the archival layouts a real
deployment would use (one file per fragment, so partial retrieval maps to
partial reads).  :class:`ShardedDiskStore` additionally fans fragments out
over hashed subdirectories — the layout that keeps directory operations
flat when an archive holds millions of fragments — and persists an
append-only index so a reopened store serves everything archived before.

Every store counts the reads it serves (``reads`` / ``bytes_read``); the
service layer compares those counters against the shared
:class:`~repro.storage.cache.FragmentCache` statistics to show how much
disk traffic multi-client retrieval avoids.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading

_KEY_RE = re.compile(r"[^A-Za-z0-9._-]")

#: Append-only sidecar recording the original (un-sanitized) fragment keys
#: of a :class:`DiskFragmentStore`, one JSON object per line.
DISK_INDEX_LOG = ".repro-index.jsonl"

#: Append-only persisted index of a :class:`ShardedDiskStore`.
SHARD_INDEX_LOG = "index.jsonl"


def _write_atomic(path: str, payload: bytes) -> None:
    """Write *payload* so concurrent readers see old-or-new, never partial."""
    tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    with open(tmp, "wb") as fh:
        fh.write(payload)
    os.replace(tmp, path)


def open_store(archive_dir: str) -> "FragmentStore":
    """Open an on-disk archive directory, auto-detecting its layout.

    A :class:`ShardedDiskStore` is recognized by the persisted index it
    leaves behind; anything else opens as a flat
    :class:`DiskFragmentStore`.
    """
    if os.path.isfile(os.path.join(archive_dir, SHARD_INDEX_LOG)):
        return ShardedDiskStore(archive_dir)
    return DiskFragmentStore(archive_dir)


class FragmentStore:
    """In-memory fragment store with byte accounting."""

    def __init__(self):
        self._data: dict = {}
        #: Number of ``get`` calls served.
        self.reads = 0
        #: Total payload bytes served by ``get`` (the store-side traffic).
        self.bytes_read = 0

    def _count_read(self, nbytes: int) -> None:
        self.reads += 1
        self.bytes_read += int(nbytes)

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        """Archive one fragment."""
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("fragment payload must be bytes")
        self._data[(variable, segment)] = bytes(payload)

    def get(self, variable: str, segment: str) -> bytes:
        """Fetch one fragment; KeyError when absent."""
        payload = self._data[(variable, segment)]
        self._count_read(len(payload))
        return payload

    def has(self, variable: str, segment: str) -> bool:
        return (variable, segment) in self._data

    def keys(self) -> list:
        """All archived ``(variable, segment)`` keys, insertion-ordered."""
        return list(self._data)

    def segments(self, variable: str) -> list:
        """Segment names archived for *variable*, insertion-ordered."""
        return [seg for (var, seg) in self._data if var == variable]

    def nbytes(self, variable: str | None = None) -> int:
        """Total archived bytes (optionally for a single variable)."""
        return sum(
            len(payload)
            for (var, _), payload in self._data.items()
            if variable is None or var == variable
        )


class DiskFragmentStore(FragmentStore):
    """One-file-per-fragment store rooted at a flat directory.

    The fragment index survives process restarts: ``__init__`` rescans
    ``root`` for fragment files and replays the append-only key log (which
    preserves the original keys that filename sanitization would lose), so
    ``has``/``get``/``segments``/``nbytes`` work on a reopened store.
    """

    def __init__(self, root: str):
        super().__init__()
        self.root = root
        self._lock = threading.Lock()
        os.makedirs(root, exist_ok=True)
        self._reindex()

    def _reindex(self) -> None:
        log_path = os.path.join(self.root, DISK_INDEX_LOG)
        logged_files = set()
        if os.path.isfile(log_path):
            with open(log_path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    entry = json.loads(line)
                    self._data[(entry["variable"], entry["segment"])] = None
                    logged_files.add(entry["file"])
        # Legacy directories (written before the key log existed) are
        # recovered from filenames; sanitization is idempotent, so lookups
        # on the recovered keys resolve to the same files.
        for fname in sorted(os.listdir(self.root)):
            if fname in logged_files or not fname.endswith(".bin") or "__" not in fname:
                continue
            var, seg = fname[:-4].split("__", 1)
            self._data[(var, seg)] = None

    def _path(self, variable: str, segment: str) -> str:
        safe_var = _KEY_RE.sub("_", variable)
        safe_seg = _KEY_RE.sub("_", segment)
        return os.path.join(self.root, f"{safe_var}__{safe_seg}.bin")

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("fragment payload must be bytes")
        path = self._path(variable, segment)
        with self._lock:
            is_new = (variable, segment) not in self._data
            _write_atomic(path, bytes(payload))
            self._data[(variable, segment)] = None  # index only; bytes on disk
            if is_new:
                entry = {
                    "variable": variable,
                    "segment": segment,
                    "file": os.path.basename(path),
                }
                with open(os.path.join(self.root, DISK_INDEX_LOG), "a") as fh:
                    fh.write(json.dumps(entry) + "\n")

    def get(self, variable: str, segment: str) -> bytes:
        if (variable, segment) not in self._data:
            raise KeyError((variable, segment))
        with open(self._path(variable, segment), "rb") as fh:
            payload = fh.read()
        with self._lock:
            self._count_read(len(payload))
        return payload

    def nbytes(self, variable: str | None = None) -> int:
        total = 0
        for var, seg in self._data:
            if variable is None or var == variable:
                total += os.path.getsize(self._path(var, seg))
        return total


class ShardedDiskStore(FragmentStore):
    """Fan-out fragment store with a persisted append-only index.

    Fragments are hashed into ``fanout`` subdirectories so no single
    directory grows with the archive (the layout object stores and
    parallel file systems want), and every ``put`` appends one JSON line
    to ``index.jsonl``.  Reopening replays the index, so a restarted
    service immediately serves everything previously archived.  A short
    digest suffix in each filename keeps distinct keys distinct even when
    sanitization would collide them (``a/b`` vs. ``a_b``).
    """

    def __init__(self, root: str, fanout: int = 256):
        super().__init__()
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.root = root
        self.fanout = int(fanout)
        self._lock = threading.Lock()
        self._index: dict = {}  # (variable, segment) -> (relpath, nbytes)
        self._log_path = os.path.join(root, SHARD_INDEX_LOG)
        os.makedirs(root, exist_ok=True)
        if os.path.isfile(self._log_path):
            with open(self._log_path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    entry = json.loads(line)
                    self._index[(entry["variable"], entry["segment"])] = (
                        entry["path"],
                        int(entry["nbytes"]),
                    )

    def _relpath(self, variable: str, segment: str) -> str:
        digest = hashlib.sha1(f"{variable}\x00{segment}".encode()).hexdigest()
        shard = f"{int(digest[:8], 16) % self.fanout:03x}"
        safe_var = _KEY_RE.sub("_", variable)
        safe_seg = _KEY_RE.sub("_", segment)
        return os.path.join(shard, f"{safe_var}__{safe_seg}__{digest[:8]}.bin")

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("fragment payload must be bytes")
        rel = self._relpath(variable, segment)
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        _write_atomic(path, bytes(payload))
        entry = {
            "variable": variable,
            "segment": segment,
            "path": rel,
            "nbytes": len(payload),
        }
        with self._lock:
            self._index[(variable, segment)] = (rel, len(payload))
            with open(self._log_path, "a") as fh:
                fh.write(json.dumps(entry) + "\n")

    def get(self, variable: str, segment: str) -> bytes:
        with self._lock:
            if (variable, segment) not in self._index:
                raise KeyError((variable, segment))
            rel, _ = self._index[(variable, segment)]
        with open(os.path.join(self.root, rel), "rb") as fh:
            payload = fh.read()
        with self._lock:
            self._count_read(len(payload))
        return payload

    def has(self, variable: str, segment: str) -> bool:
        return (variable, segment) in self._index

    def keys(self) -> list:
        return list(self._index)

    def segments(self, variable: str) -> list:
        return [seg for (var, seg) in self._index if var == variable]

    def nbytes(self, variable: str | None = None) -> int:
        return sum(
            n
            for (var, _), (_, n) in self._index.items()
            if variable is None or var == variable
        )
