"""Keyed fragment stores.

Progressive fragments are opaque byte strings addressed by
``(variable, segment)`` keys.  The in-memory store backs unit tests and
benchmarks; the on-disk stores demonstrate the archival layouts a real
deployment would use (one file per fragment, so partial retrieval maps to
partial reads).  :class:`ShardedDiskStore` additionally fans fragments out
over hashed subdirectories — the layout that keeps directory operations
flat when an archive holds millions of fragments — and persists an
append-only index so a reopened store serves everything archived before.

Every store counts the reads it serves (``reads`` / ``bytes_read``) and
the *round trips* those reads cost (``round_trips``): a ``get`` is one
round trip for one fragment, a :meth:`FragmentStore.get_many` is one
round trip for a whole batch.  The pipelined retrieval engine exists to
shrink the round-trip count without changing the fragment traffic, so the
two counters are tracked separately.  Writes are accounted symmetrically
(``puts`` / ``bytes_written`` / ``put_round_trips``): a ``put`` is one
write round trip for one fragment, a :meth:`FragmentStore.put_many`
batch is one write round trip however many fragments it carries — the
economy the streaming ingestion engine (:mod:`repro.core.ingest`)
exploits.  On the disk stores a ``put_many`` batch also costs a single
index append, not one per fragment.

Byte totals and per-variable segment lists are maintained incrementally
by ``put`` and ``delete`` — ``nbytes``/``segments``/``size_of`` never
rescan the index, which keeps them safe to call on retrieval hot paths.
``delete`` exists for the tiering layer (:mod:`repro.storage.tiered`):
demoting a cold fragment out of a fast tier un-indexes it with a
tombstone in the persisted log, so a reopened store stays consistent.

The on-disk stores are crash-atomic: every write routes through the
commit log of :mod:`repro.storage.wal` (stage the payload files, commit
the batch with one fsync'd log record, publish), so a process killed at
any point leaves a reopened store on exactly the pre- or post-state of
the interrupted batch.  Deleted payload files are *not* unlinked eagerly
— they sit as dead bytes until :meth:`FragmentStore.compact` rewrites
the log to its live entries and reclaims them, returning a
:class:`~repro.storage.wal.CompactionReport`.
:meth:`FragmentStore.durability` exposes the WAL/tombstone counters.
``docs/durability.md`` specifies the full protocol.

:func:`open_store` is the one entry point deployments need: it accepts a
plain directory path or a store URL (``file://``, ``sharded://``,
``memory://``, ``http://``, ``tiered://``, ``cluster://`` — see
``docs/storage.md``) and
returns the right backend, auto-detecting on-disk layouts.  On-disk URLs
accept ``?fsync=always|commit|off`` to pick the WAL's fsync discipline.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading

from repro.storage import wal
from repro.storage.wal import CommitLog, CompactionReport, DurabilityStats, crash_point

_KEY_RE = re.compile(r"[^A-Za-z0-9._-]")

#: Append-only sidecar recording the original (un-sanitized) fragment keys
#: of a :class:`DiskFragmentStore`, one JSON object per line.
DISK_INDEX_LOG = ".repro-index.jsonl"

#: Append-only persisted index of a :class:`ShardedDiskStore`.
SHARD_INDEX_LOG = "index.jsonl"

#: Layout marker written once per on-disk store so :func:`open_store` can
#: identify (and correctly parameterize) the store class that wrote the
#: directory without guessing from its contents.
LAYOUT_MARKER = ".repro-store.json"


def _write_atomic(path: str, payload: bytes) -> None:
    """Write *payload* so concurrent readers see old-or-new, never partial."""
    tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    with open(tmp, "wb") as fh:
        fh.write(payload)
    os.replace(tmp, path)


def _read_layout_marker(archive_dir: str) -> dict | None:
    path = os.path.join(archive_dir, LAYOUT_MARKER)
    if not os.path.isfile(path):
        return None
    try:
        with open(path) as fh:
            marker = json.load(fh)
    except (OSError, ValueError):
        return None
    return marker if isinstance(marker, dict) else None


_URL_RE = re.compile(r"^([a-z][a-z0-9+.-]*)://(.*)$", re.IGNORECASE)

#: Suffix multipliers accepted by byte-size URL parameters (binary units).
_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}


def split_store_url(url: str) -> tuple:
    """Split a store URL into ``(scheme, rest)``; plain paths get ``None``.

    ``rest`` is everything after ``scheme://`` with no further parsing —
    each scheme interprets its own path/query grammar.  Windows-style
    drive letters never match (schemes must be at least two characters).
    """
    match = _URL_RE.match(url)
    if match is None or len(match.group(1)) < 2:
        return None, url
    return match.group(1).lower(), match.group(2)


def parse_bytes(text: str) -> int:
    """Parse a byte count with an optional binary suffix (``64M``, ``2g``)."""
    text = str(text).strip()
    if text and text[-1].lower() in _SIZE_SUFFIXES:
        return int(float(text[:-1]) * _SIZE_SUFFIXES[text[-1].lower()])
    return int(text)


def _split_query(rest: str) -> tuple:
    """Split ``path?k=v&...`` into ``(path, {k: v})`` (last value wins)."""
    from urllib.parse import parse_qsl

    path, _, query = rest.partition("?")
    return path, dict(parse_qsl(query, keep_blank_values=True))


def open_directory_store(archive_dir: str, fsync: str = "commit") -> "FragmentStore":
    """Open an on-disk archive directory, auto-detecting its layout.

    A directory is sharded when it holds the persisted shard index or a
    :data:`LAYOUT_MARKER` saying so (the marker, written on first
    ``put``, also restores the fan-out width, which filenames alone
    cannot); anything else opens as a flat :class:`DiskFragmentStore`.
    The shard index outranks the marker, so a directory that somehow
    carries both layouts still opens the way pre-marker revisions did.
    *fsync* picks the commit log's discipline (see :mod:`.wal`).
    """
    marker = _read_layout_marker(archive_dir)
    if os.path.isfile(os.path.join(archive_dir, SHARD_INDEX_LOG)) or (
        marker is not None and marker.get("layout") == "sharded"
    ):
        # fan-out restored from the marker
        return ShardedDiskStore(archive_dir, fsync=fsync)
    return DiskFragmentStore(archive_dir, fsync=fsync)


def open_store(url: str) -> "FragmentStore":
    """Open a fragment store from a directory path or a store URL.

    Accepted forms (the full grammar lives in ``docs/storage.md``):

    * a plain path or ``file://PATH`` — on-disk archive directory with
      layout auto-detection (:func:`open_directory_store`),
    * ``sharded://PATH[?fanout=N]`` — explicitly sharded layout,
    * ``memory://`` — a fresh, empty in-process store (never persists),
    * ``http://HOST:PORT`` — client for a running
      :class:`~repro.storage.remote.HTTPFragmentServer`,
    * ``tiered://FAST_DIR?slow=URL[&...]`` — a
      :class:`~repro.storage.tiered.TieredStore` composing a fast tier
      over any slow backend (itself an ``open_store`` URL),
    * ``cluster://HOST:PORT,HOST:PORT,...[?replicas=K&vnodes=V&...]`` —
      a :class:`~repro.storage.cluster.ClusterFragmentStore` sharding
      and replicating one namespace over N fragment servers (see
      ``docs/cluster.md`` for the grammar).

    On-disk schemes accept ``fsync=always|commit|off`` as a query
    parameter (plain paths take the default discipline).

    Raises ``ValueError`` for an unknown scheme or malformed URL.
    """
    scheme, rest = split_store_url(url)
    if scheme is None:
        return open_directory_store(rest)
    if scheme == "file":
        path, params = _split_query(rest)
        return open_directory_store(path, fsync=params.get("fsync", "commit"))
    if scheme == "memory":
        return FragmentStore()
    if scheme == "sharded":
        path, params = _split_query(rest)
        if not path:
            raise ValueError(f"sharded:// URL needs a directory path: {url!r}")
        return ShardedDiskStore(
            path,
            fanout=int(params.get("fanout", 256)),
            fsync=params.get("fsync", "commit"),
        )
    if scheme == "http":
        from repro.storage.remote import HTTPFragmentStore

        return HTTPFragmentStore.from_url(url)
    if scheme == "tiered":
        from repro.storage.tiered import TieredStore

        return TieredStore.from_url(url)
    if scheme == "cluster":
        from repro.storage.cluster import ClusterFragmentStore

        return ClusterFragmentStore.from_url(url)
    raise ValueError(
        f"unknown store URL scheme {scheme!r} in {url!r} "
        f"(known: file, sharded, memory, http, tiered, cluster)"
    )


class FragmentStore:
    """In-memory fragment store with byte and round-trip accounting."""

    def __init__(self):
        self._data: dict = {}
        #: Number of fragments served by ``get``/``get_many``.
        self.reads = 0
        #: Total payload bytes served (the store-side traffic).
        self.bytes_read = 0
        #: Number of store requests issued: one per ``get`` call and one
        #: per ``get_many`` call, however many fragments the batch holds.
        self.round_trips = 0
        #: Number of fragments written by ``put``/``put_many``.
        self.puts = 0
        #: Total payload bytes written (the store-side write traffic).
        self.bytes_written = 0
        #: Number of write requests issued: one per ``put`` call and one
        #: per ``put_many`` call, however many fragments the batch holds.
        self.put_round_trips = 0
        # counters are read-modify-write and every store may serve
        # concurrent clients; the disk stores reuse their own wider lock
        self._stats_lock = threading.Lock()
        # running index totals, maintained by _record_put (satisfies
        # nbytes/segments/size_of without a full index scan per call)
        self._sizes: dict = {}  # (variable, segment) -> payload bytes
        self._var_bytes: dict = {}  # variable -> archived bytes
        self._var_segments: dict = {}  # variable -> [segment, ...] in put order
        self._total_bytes = 0

    # -- accounting -----------------------------------------------------------

    def _count_read(self, nbytes: int) -> None:
        self.reads += 1
        self.bytes_read += int(nbytes)

    def _count_write(self, fragments: int, nbytes: int) -> None:
        self.puts += int(fragments)
        self.bytes_written += int(nbytes)

    @staticmethod
    def _check_batch(items) -> list:
        """Validate and materialize a ``put_many`` batch.

        *items* is an iterable of ``(variable, segment, payload)``
        triples; payload types are checked for the whole batch before
        anything is written, so a bad entry never leaves a partial batch
        behind.  Duplicate keys keep their order (last write wins, as
        with repeated ``put`` calls).
        """
        batch = []
        for variable, segment, payload in items:
            if not isinstance(payload, (bytes, bytearray)):
                raise TypeError("fragment payload must be bytes")
            batch.append((variable, segment, bytes(payload)))
        return batch

    def _record_put(self, variable: str, segment: str, nbytes: int) -> None:
        """Fold one archived fragment into the running index totals."""
        key = (variable, segment)
        old = self._sizes.get(key)
        if old is None:
            self._var_segments.setdefault(variable, []).append(segment)
        else:
            self._total_bytes -= old
            self._var_bytes[variable] -= old
        self._sizes[key] = int(nbytes)
        self._total_bytes += int(nbytes)
        self._var_bytes[variable] = self._var_bytes.get(variable, 0) + int(nbytes)

    def _record_delete(self, variable: str, segment: str) -> None:
        """Drop one fragment from the running index totals."""
        nbytes = self._sizes.pop((variable, segment))
        self._total_bytes -= nbytes
        self._var_bytes[variable] -= nbytes
        segments = self._var_segments[variable]
        segments.remove(segment)
        if not segments:
            del self._var_segments[variable]
            del self._var_bytes[variable]

    # -- write ----------------------------------------------------------------

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        """Archive one fragment (one write round trip)."""
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("fragment payload must be bytes")
        self._data[(variable, segment)] = bytes(payload)
        self._record_put(variable, segment, len(payload))
        with self._stats_lock:
            self.put_round_trips += 1
            self._count_write(1, len(payload))

    def put_many(self, items) -> None:
        """Archive a batch of fragments in one store round trip.

        *items* is an iterable of ``(variable, segment, payload)``
        triples, written in order (duplicate keys: last write wins).
        Per-fragment ``puts``/``bytes_written`` accounting is identical
        to ``put``; only ``put_round_trips`` records the coalescing —
        the exact write-side mirror of :meth:`get_many`.
        """
        batch = self._check_batch(items)
        for variable, segment, payload in batch:
            self._data[(variable, segment)] = payload
            self._record_put(variable, segment, len(payload))
        with self._stats_lock:
            self.put_round_trips += 1
            self._count_write(len(batch), sum(len(p) for _, _, p in batch))

    def delete(self, variable: str, segment: str) -> None:
        """Remove one fragment; KeyError when absent.

        Exists for the tiering layer: demotion removes a fragment from a
        fast tier once the slow tier durably holds it.
        """
        if (variable, segment) not in self._sizes:
            raise KeyError((variable, segment))
        self._data.pop((variable, segment), None)
        self._record_delete(variable, segment)

    def transact(self, puts, deletes=()) -> None:
        """Apply a batch of puts and then deletes as one transaction.

        *puts* is a ``put_many`` batch; *deletes* is an iterable of
        ``(variable, segment)`` keys, which must exist and must not
        collide with the batch's keys.  On the WAL-backed disk stores
        the whole transaction is a single fsync'd commit record, so a
        crash leaves either none or all of it — this is what makes
        ``Archive.save`` (new fragments in, superseded segments out)
        atomic.  This base implementation — inherited by the in-memory
        store and the wrapper stores, where the delegated operations
        are individually safe — applies the parts sequentially without
        a joint atomicity guarantee.
        """
        if puts:
            self.put_many(puts)
        for variable, segment in deletes:
            self.delete(variable, segment)

    # -- read -----------------------------------------------------------------

    def get(self, variable: str, segment: str) -> bytes:
        """Fetch one fragment; KeyError when absent."""
        payload = self._data[(variable, segment)]
        with self._stats_lock:
            self.round_trips += 1
            self._count_read(len(payload))
        return payload

    def get_many(self, keys) -> dict:
        """Fetch a batch of fragments in one store round trip.

        *keys* is an iterable of ``(variable, segment)`` pairs; the result
        maps each (deduplicated) key to its payload.  All keys are checked
        against the index in a single pass before any payload is read, so
        a missing key raises ``KeyError`` (listing every missing key)
        without serving a partial batch.  Per-fragment ``reads`` /
        ``bytes_read`` accounting is identical to ``get``; only
        ``round_trips`` records the coalescing.
        """
        keys = list(dict.fromkeys((v, s) for v, s in keys))
        missing = [k for k in keys if k not in self._data]
        if missing:
            raise KeyError(missing)
        out = {key: self._data[key] for key in keys}
        with self._stats_lock:
            self.round_trips += 1
            for payload in out.values():
                self._count_read(len(payload))
        return out

    # -- index ----------------------------------------------------------------

    def has(self, variable: str, segment: str) -> bool:
        """Whether a fragment is archived (index-only; no payload read)."""
        return (variable, segment) in self._sizes

    def keys(self) -> list:
        """All archived ``(variable, segment)`` keys, insertion-ordered."""
        return list(self._sizes)

    def variables(self) -> list:
        """Archived variable names, first-put order."""
        return list(self._var_segments)

    def segments(self, variable: str) -> list:
        """Segment names archived for *variable*, insertion-ordered."""
        return list(self._var_segments.get(variable, ()))

    def size_of(self, variable: str, segment: str) -> int:
        """Payload size of one archived fragment without reading it."""
        return self._sizes[(variable, segment)]

    def nbytes(self, variable: str | None = None) -> int:
        """Total archived bytes (optionally for a single variable)."""
        if variable is None:
            return self._total_bytes
        return self._var_bytes.get(variable, 0)

    # -- durability ------------------------------------------------------------

    def compact(self) -> CompactionReport:
        """Reclaim tombstoned bytes; returns what was collected.

        The in-memory store has nothing to reclaim (deletes free payloads
        immediately), so this base implementation is a zero no-op report.
        The on-disk stores rewrite their commit log to its live entries
        and unlink dead payload files; composite stores (tiered, caching,
        HTTP) delegate and merge per-backend reports.
        """
        return CompactionReport()

    def durability(self) -> DurabilityStats:
        """Durability counters of this handle (WAL traffic, dead bytes).

        All-zero for backends without a commit log; the on-disk stores
        report real counters and composite stores aggregate them.
        """
        return DurabilityStats()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (no-op for local stores).

        Remote clients close their connections and tiered stores stop
        their transfer thread here; callers may always call it.
        """

    def __enter__(self) -> "FragmentStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class DiskFragmentStore(FragmentStore):
    """One-file-per-fragment store rooted at a flat directory.

    The fragment index survives process restarts: ``__init__`` rescans
    ``root`` for fragment files and replays the append-only key log (which
    preserves the original keys that filename sanitization would lose), so
    ``has``/``get``/``segments``/``nbytes`` work on a reopened store.

    All writes follow the stage → commit → publish protocol of
    :mod:`repro.storage.wal`, so a kill anywhere leaves a reopened store
    on the batch's pre- or post-state.  Deletes tombstone without
    unlinking; :meth:`compact` reclaims the dead files.
    """

    def __init__(self, root: str, fsync: str = "commit"):
        super().__init__()
        self.root = root
        self._lock = threading.Lock()
        # serializes writers (file content and index-log appends land in
        # the same order per key) without making readers — who only take
        # self._lock briefly — wait behind batch file I/O
        self._write_lock = threading.Lock()
        self._log = CommitLog(os.path.join(root, DISK_INDEX_LOG), fsync=fsync)
        self._dead: dict = {}  # dead file name -> reclaimable bytes
        self._compactions = 0
        self._reclaimed_bytes = 0
        os.makedirs(root, exist_ok=True)
        self._reindex()

    def _write_marker(self) -> None:
        # written on first put, never on open: opening must work on
        # read-only mounts, and an empty directory must not get pinned
        # to a layout it may never hold
        path = os.path.join(self.root, LAYOUT_MARKER)
        try:
            if not os.path.isfile(path):
                _write_atomic(path, json.dumps({"layout": "flat"}).encode())
        except OSError:
            pass  # best-effort: open_store falls back to index heuristics

    def _reindex(self) -> None:
        log_existed = self._log.exists()
        file_txn: dict = {}  # file name -> last committed writer txn
        for txn, entries in self._log.replay():
            for entry in entries:
                var, seg = entry["variable"], entry["segment"]
                if entry.get("deleted"):
                    if (var, seg) in self._sizes:
                        self._data.pop((var, seg), None)
                        self._record_delete(var, seg)
                    continue
                nbytes = entry.get("nbytes")
                if nbytes is None:  # log predates size tracking
                    try:
                        nbytes = os.path.getsize(
                            os.path.join(self.root, entry["file"])
                        )
                    except OSError:
                        # dangling entry (file cleaned up externally):
                        # keep the key indexed — size 0, unreadable on
                        # access — rather than failing the whole open
                        nbytes = 0
                self._data[(var, seg)] = None
                self._record_put(var, seg, int(nbytes))
                file_txn[entry["file"]] = 0 if txn is None else txn
        # Resolve staged files an interrupted batch left behind: publish
        # a staged payload whose transaction committed and is still the
        # path's latest writer; discard everything else (the batch never
        # committed, or a later batch superseded it).
        listing = sorted(os.listdir(self.root))
        for fname in listing:
            parsed = wal.split_staged(fname)
            if parsed is None:
                continue
            final, txn = parsed
            staged = os.path.join(self.root, fname)
            if txn in self._log.committed and file_txn.get(final) == txn:
                wal.publish_staged(staged, os.path.join(self.root, final))
            else:
                wal.discard_staged(staged)
        if log_existed:
            # The log is authoritative: any fragment file it does not
            # index live is dead weight (a delete awaiting reclaim, or a
            # compaction interrupted before its unlink pass) — never
            # resurrect it, earmark it for the next compact().
            live_files = {
                os.path.basename(self._path(var, seg)) for var, seg in self._sizes
            }
            for fname in listing:
                if not fname.endswith(".bin") or fname in live_files:
                    continue
                try:
                    self._dead[fname] = os.path.getsize(
                        os.path.join(self.root, fname)
                    )
                except OSError:
                    continue  # vanished between listdir and stat
            return
        # Legacy directories (written before the key log existed) are
        # recovered from filenames; sanitization is idempotent, so lookups
        # on the recovered keys resolve to the same files.
        for fname in listing:
            if not fname.endswith(".bin") or "__" not in fname:
                continue
            var, seg = fname[:-4].split("__", 1)
            try:
                nbytes = os.path.getsize(os.path.join(self.root, fname))
            except OSError:
                continue  # vanished between listdir and stat
            self._data[(var, seg)] = None
            self._record_put(var, seg, nbytes)

    def _path(self, variable: str, segment: str) -> str:
        safe_var = _KEY_RE.sub("_", variable)
        safe_seg = _KEY_RE.sub("_", segment)
        return os.path.join(self.root, f"{safe_var}__{safe_seg}.bin")

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        """Archive one fragment via stage → commit → publish.

        A singleton batch: identical accounting (one put, one write
        round trip) and the identical crash-atomicity protocol.
        """
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("fragment payload must be bytes")
        self.put_many([(variable, segment, payload)])

    def put_many(self, items) -> None:
        """Archive a batch crash-atomically with one fsync'd commit record.

        Stage → commit → publish: every payload lands in a staged sibling
        file first, one log append commits the whole batch, then each
        staged file is atomically renamed live.  A kill before the commit
        record leaves the store exactly as it was; a kill after it leaves
        a batch that recovery finishes publishing on reopen — never a
        torn mix.  Files land in batch order — preserving each variable's
        segment insertion order, so a batched archive indexes identically
        to a serial one.  The batch holds the writer lock but not the
        reader lock, so concurrent reads never stall behind batch I/O,
        and the log grows by one append for the whole batch.
        """
        self.transact(items)

    def transact(self, puts, deletes=()) -> None:
        """Commit a batch of puts plus tombstones in one WAL record.

        The puts follow the stage → commit → publish protocol of
        :meth:`put_many`; each *deletes* key contributes a tombstone
        entry to the **same** fsync'd commit record, so the whole
        transaction — e.g. an ``Archive.save`` replacing a variable's
        segment set — is atomic across a crash: the reopened store
        holds either none of it or all of it.  Delete keys must exist
        and must not collide with the batch (ValueError), and the
        tombstoned files wait for :meth:`compact` as usual.
        """
        batch = self._check_batch(puts)
        doomed = list(dict.fromkeys((str(v), str(s)) for v, s in deletes))
        overlap = {(v, s) for v, s, _ in batch} & set(doomed)
        if overlap:
            raise ValueError(f"keys both written and deleted: {sorted(overlap)}")
        entries = []
        staged: dict = {}  # final path -> staged path (last write wins)
        total = 0
        with self._write_lock:
            dead_names: dict = {}  # doomed key -> (file name, nbytes)
            if doomed:
                with self._lock:
                    missing = [k for k in doomed if k not in self._data]
                    if missing:
                        raise KeyError(missing[0] if len(missing) == 1 else missing)
                    dead_names = {
                        (v, s): (
                            os.path.basename(self._path(v, s)),
                            self._sizes[(v, s)],
                        )
                        for v, s in doomed
                    }
            txn = self._log.reserve()
            crash_point("disk.stage")
            for variable, segment, payload in batch:
                path = self._path(variable, segment)
                staged[path] = wal.write_staged(
                    path, payload, txn, fsync=self._log.fsync_payloads
                )
                total += len(payload)
                entries.append({
                    "variable": variable,
                    "segment": segment,
                    "file": os.path.basename(path),
                    "nbytes": len(payload),
                })
                crash_point("disk.staged")
            for variable, segment in doomed:
                crash_point("disk.tombstone")
                entries.append({
                    "variable": variable,
                    "segment": segment,
                    "file": dead_names[(variable, segment)][0],
                    "deleted": True,
                })
            self._log.append(entries, txn=txn)  # the atomicity point
            for path, spath in staged.items():
                crash_point("disk.publish")
                wal.publish_staged(spath, path)
            with self._lock:
                self._write_marker()
                for variable, segment, payload in batch:
                    self._dead.pop(os.path.basename(self._path(variable, segment)), None)
                    self._data[(variable, segment)] = None
                    self._record_put(variable, segment, len(payload))
                for variable, segment in doomed:
                    fname, nbytes = dead_names[(variable, segment)]
                    del self._data[(variable, segment)]
                    self._record_delete(variable, segment)
                    self._dead[fname] = nbytes
                if batch:
                    self.put_round_trips += 1
                    self._count_write(len(batch), total)

    def delete(self, variable: str, segment: str) -> None:
        """Tombstone one fragment; its file waits for :meth:`compact`.

        Only the fsync'd tombstone record is written — the payload file
        stays on disk as dead bytes (invisible to the index, so reads
        raise ``KeyError`` immediately) until compaction reclaims it.
        """
        self.transact((), [(variable, segment)])

    def compact(self) -> CompactionReport:
        """Rewrite the log to live entries and unlink dead payload files.

        Holds the writer lock for the whole pass (writers queue briefly;
        readers are never blocked — live files are untouched and the log
        rewrite is an atomic rename).  Crash-safe: a kill before the
        rewrite leaves the old log; one after it leaves orphaned dead
        files that the next reopen re-earmarks and the next compact
        reclaims.
        """
        with self._write_lock:
            report = CompactionReport(log_bytes_before=self._log.nbytes())
            with self._lock:
                entries = [
                    {
                        "variable": var,
                        "segment": seg,
                        "file": os.path.basename(self._path(var, seg)),
                        "nbytes": nbytes,
                    }
                    for (var, seg), nbytes in self._sizes.items()
                ]
                dead = dict(self._dead)
            crash_point("compact.begin")
            self._log.rewrite(entries)
            crash_point("compact.rewritten")
            removed = reclaimed = 0
            for fname, nbytes in dead.items():
                try:
                    os.remove(os.path.join(self.root, fname))
                except OSError:
                    continue  # already gone; nothing reclaimed
                removed += 1
                reclaimed += nbytes
                crash_point("compact.unlink")
            with self._lock:
                for fname in dead:
                    self._dead.pop(fname, None)
                self._compactions += 1
                self._reclaimed_bytes += reclaimed
            report.compactions = 1
            report.removed_files = removed
            report.reclaimed_bytes = reclaimed
            report.log_bytes_after = self._log.nbytes()
            report.live_fragments = len(entries)
            return report

    def durability(self) -> DurabilityStats:
        """WAL and tombstone counters of this handle."""
        with self._lock:
            return DurabilityStats(
                wal_commits=self._log.commits,
                wal_entries=self._log.entries_appended,
                log_bytes=self._log.nbytes(),
                tombstones=len(self._dead),
                dead_bytes=sum(self._dead.values()),
                compactions=self._compactions,
                reclaimed_bytes=self._reclaimed_bytes,
            )

    def get(self, variable: str, segment: str) -> bytes:
        """Read one fragment file; KeyError when unindexed."""
        if (variable, segment) not in self._data:
            raise KeyError((variable, segment))
        with open(self._path(variable, segment), "rb") as fh:
            payload = fh.read()
        with self._lock:
            self.round_trips += 1
            self._count_read(len(payload))
        return payload

    def get_many(self, keys) -> dict:
        """Read a batch in filename order (one accounted round trip)."""
        keys = list(dict.fromkeys((v, s) for v, s in keys))
        with self._lock:
            missing = [k for k in keys if k not in self._data]
        if missing:
            raise KeyError(missing)
        # one pass over the directory in filename order: sequential reads
        # on spinning media, and a stable order for the accounting below
        ordered = sorted(keys, key=lambda k: self._path(*k))
        out = {}
        total = 0
        for key in ordered:
            with open(self._path(*key), "rb") as fh:
                payload = fh.read()
            out[key] = payload
            total += len(payload)
        with self._lock:
            self.round_trips += 1
            self.reads += len(out)
            self.bytes_read += total
        return out

    def nbytes(self, variable: str | None = None) -> int:
        """Total archived bytes (lock-protected; maintained incrementally)."""
        with self._lock:
            return super().nbytes(variable)


class ShardedDiskStore(FragmentStore):
    """Fan-out fragment store with a persisted append-only index.

    Fragments are hashed into ``fanout`` subdirectories so no single
    directory grows with the archive (the layout object stores and
    parallel file systems want), and every ``put`` appends one JSON line
    to ``index.jsonl``.  Reopening replays the index, so a restarted
    service immediately serves everything previously archived.  A short
    digest suffix in each filename keeps distinct keys distinct even when
    sanitization would collide them (``a/b`` vs. ``a_b``).

    The layout marker records the fan-out width; when reopening a
    directory whose marker disagrees with the *fanout* argument, the
    marker wins — new fragments must land in the shard their digest
    already points at.
    """

    def __init__(self, root: str, fanout: int = 256, fsync: str = "commit"):
        super().__init__()
        self.root = root
        self._lock = threading.Lock()
        # serializes writers (file content and index appends in the same
        # order per key) without stalling readers behind batch file I/O
        self._write_lock = threading.Lock()
        self._index: dict = {}  # (variable, segment) -> relpath
        self._log_path = os.path.join(root, SHARD_INDEX_LOG)
        self._log = CommitLog(self._log_path, fsync=fsync)
        self._dead: dict = {}  # dead relpath -> reclaimable bytes
        self._compactions = 0
        self._reclaimed_bytes = 0
        os.makedirs(root, exist_ok=True)
        marker = _read_layout_marker(root)
        if marker is not None and marker.get("layout") == "sharded":
            fanout = int(marker.get("fanout", fanout))
        if fanout < 1:  # validate the *effective* width, marker included
            raise ValueError("fanout must be >= 1")
        self.fanout = int(fanout)
        self._reindex()

    def _reindex(self) -> None:
        log_existed = self._log.exists()
        file_txn: dict = {}  # relpath -> last committed writer txn
        for txn, entries in self._log.replay():
            for entry in entries:
                var, seg = entry["variable"], entry["segment"]
                if entry.get("deleted"):
                    if (var, seg) in self._index:
                        del self._index[(var, seg)]
                        self._record_delete(var, seg)
                    continue
                self._index[(var, seg)] = entry["path"]
                self._record_put(var, seg, int(entry["nbytes"]))
                file_txn[entry["path"]] = 0 if txn is None else txn
        if not log_existed:
            return
        # One pass over the shard directories: resolve staged leftovers
        # (publish iff committed and still the path's latest writer) and
        # earmark dead payload files — anything the log does not index
        # live — for the next compact().
        live = set(self._index.values())
        for rel, size in self._scan_shards():
            parsed = wal.split_staged(rel)
            if parsed is not None:
                final, txn = parsed
                staged = os.path.join(self.root, rel)
                if txn in self._log.committed and file_txn.get(final) == txn:
                    wal.publish_staged(staged, os.path.join(self.root, final))
                else:
                    wal.discard_staged(staged)
                continue
            if rel not in live:
                self._dead[rel] = size

    def _scan_shards(self):
        """Yield ``(relpath, nbytes)`` for every file under a shard dir."""
        try:
            top = sorted(os.scandir(self.root), key=lambda e: e.name)
        except OSError:
            return
        for shard in top:
            if not shard.is_dir():
                continue
            try:
                files = sorted(os.scandir(shard.path), key=lambda e: e.name)
            except OSError:
                continue
            for item in files:
                try:
                    yield os.path.join(shard.name, item.name), item.stat().st_size
                except OSError:
                    continue  # vanished between scandir and stat

    def _write_marker(self) -> None:
        # on first put, never on open (read-only mounts must stay openable)
        path = os.path.join(self.root, LAYOUT_MARKER)
        try:
            if not os.path.isfile(path):
                _write_atomic(
                    path,
                    json.dumps({"layout": "sharded", "fanout": self.fanout}).encode(),
                )
        except OSError:
            pass  # best-effort: the shard index is the detection fallback

    def _relpath(self, variable: str, segment: str) -> str:
        digest = hashlib.sha1(f"{variable}\x00{segment}".encode()).hexdigest()
        shard = f"{int(digest[:8], 16) % self.fanout:03x}"
        safe_var = _KEY_RE.sub("_", variable)
        safe_seg = _KEY_RE.sub("_", segment)
        return os.path.join(shard, f"{safe_var}__{safe_seg}__{digest[:8]}.bin")

    def put(self, variable: str, segment: str, payload: bytes) -> None:
        """Archive one fragment into its hashed shard (a singleton batch)."""
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("fragment payload must be bytes")
        self.put_many([(variable, segment, payload)])

    def put_many(self, items) -> None:
        """Archive a batch crash-atomically, grouped per shard.

        The stage → commit → publish protocol of the flat store, plus the
        shard grouping: shard directories are created once per distinct
        shard, files land in batch order (each variable's segment
        insertion order matches a serial sequence of ``put`` calls), and
        the persisted index grows by one fsync'd commit record for the
        whole batch.  The batch holds the writer lock but takes the
        reader lock only for the index update, so concurrent reads never
        stall behind batch file I/O.
        """
        self.transact(items)

    def transact(self, puts, deletes=()) -> None:
        """Commit a batch of puts plus tombstones in one WAL record.

        The sharded twin of :meth:`DiskFragmentStore.transact`: puts
        stage → commit → publish into their hashed shards, and each
        *deletes* key adds a tombstone entry to the same fsync'd commit
        record — one atomic transaction across a crash.  Delete keys
        must exist and must not collide with the batch (ValueError).
        """
        batch = self._check_batch(puts)
        doomed = list(dict.fromkeys((str(v), str(s)) for v, s in deletes))
        overlap = {(v, s) for v, s, _ in batch} & set(doomed)
        if overlap:
            raise ValueError(f"keys both written and deleted: {sorted(overlap)}")
        rels = [self._relpath(v, s) for v, s, _ in batch]
        for shard in {os.path.dirname(rel) for rel in rels}:
            os.makedirs(os.path.join(self.root, shard), exist_ok=True)
        entries = []
        staged: dict = {}  # final path -> staged path (last write wins)
        total = 0
        with self._write_lock:
            dead_rels: dict = {}  # doomed key -> (relpath, nbytes)
            if doomed:
                with self._lock:
                    missing = [k for k in doomed if k not in self._index]
                    if missing:
                        raise KeyError(missing[0] if len(missing) == 1 else missing)
                    dead_rels = {
                        (v, s): (self._index[(v, s)], self._sizes[(v, s)])
                        for v, s in doomed
                    }
            txn = self._log.reserve()
            crash_point("disk.stage")
            for (variable, segment, payload), rel in zip(batch, rels):
                path = os.path.join(self.root, rel)
                staged[path] = wal.write_staged(
                    path, payload, txn, fsync=self._log.fsync_payloads
                )
                total += len(payload)
                entries.append({
                    "variable": variable,
                    "segment": segment,
                    "path": rel,
                    "nbytes": len(payload),
                })
                crash_point("disk.staged")
            for variable, segment in doomed:
                crash_point("disk.tombstone")
                entries.append(
                    {"variable": variable, "segment": segment, "deleted": True}
                )
            self._log.append(entries, txn=txn)  # the atomicity point
            for path, spath in staged.items():
                crash_point("disk.publish")
                wal.publish_staged(spath, path)
            with self._lock:
                self._write_marker()
                for (variable, segment, payload), rel in zip(batch, rels):
                    self._dead.pop(rel, None)
                    self._index[(variable, segment)] = rel
                    self._record_put(variable, segment, len(payload))
                for variable, segment in doomed:
                    rel, nbytes = dead_rels[(variable, segment)]
                    del self._index[(variable, segment)]
                    self._record_delete(variable, segment)
                    self._dead[rel] = nbytes
                if batch:
                    self.put_round_trips += 1
                    self._count_write(len(batch), total)

    def delete(self, variable: str, segment: str) -> None:
        """Tombstone one fragment; its file waits for :meth:`compact`."""
        self.transact((), [(variable, segment)])

    def compact(self) -> CompactionReport:
        """Rewrite the index log to live entries and reclaim dead files.

        Identical protocol and guarantees to
        :meth:`DiskFragmentStore.compact`, with the dead-file pass
        walking only the relpaths earmarked at delete/reopen time (no
        full shard scan — reopen already did one).
        """
        with self._write_lock:
            report = CompactionReport(log_bytes_before=self._log.nbytes())
            with self._lock:
                entries = [
                    {
                        "variable": var,
                        "segment": seg,
                        "path": rel,
                        "nbytes": self._sizes[(var, seg)],
                    }
                    for (var, seg), rel in self._index.items()
                ]
                dead = dict(self._dead)
            crash_point("compact.begin")
            self._log.rewrite(entries)
            crash_point("compact.rewritten")
            removed = reclaimed = 0
            for rel, nbytes in dead.items():
                try:
                    os.remove(os.path.join(self.root, rel))
                except OSError:
                    continue  # already gone; nothing reclaimed
                removed += 1
                reclaimed += nbytes
                crash_point("compact.unlink")
            with self._lock:
                for rel in dead:
                    self._dead.pop(rel, None)
                self._compactions += 1
                self._reclaimed_bytes += reclaimed
            report.compactions = 1
            report.removed_files = removed
            report.reclaimed_bytes = reclaimed
            report.log_bytes_after = self._log.nbytes()
            report.live_fragments = len(entries)
            return report

    def durability(self) -> DurabilityStats:
        """WAL and tombstone counters of this handle."""
        with self._lock:
            return DurabilityStats(
                wal_commits=self._log.commits,
                wal_entries=self._log.entries_appended,
                log_bytes=self._log.nbytes(),
                tombstones=len(self._dead),
                dead_bytes=sum(self._dead.values()),
                compactions=self._compactions,
                reclaimed_bytes=self._reclaimed_bytes,
            )

    def get(self, variable: str, segment: str) -> bytes:
        """Read one fragment via the persisted index; KeyError when absent."""
        with self._lock:
            if (variable, segment) not in self._index:
                raise KeyError((variable, segment))
            rel = self._index[(variable, segment)]
        with open(os.path.join(self.root, rel), "rb") as fh:
            payload = fh.read()
        with self._lock:
            self.round_trips += 1
            self._count_read(len(payload))
        return payload

    def get_many(self, keys) -> dict:
        """Read a batch grouped per shard, each shard in filename order."""
        keys = list(dict.fromkeys((v, s) for v, s in keys))
        with self._lock:  # single index pass resolves every path up front
            missing = [k for k in keys if k not in self._index]
            if missing:
                raise KeyError(missing)
            rels = {k: self._index[k] for k in keys}
        # group by shard directory and read each shard's files in filename
        # order: one directory's worth of sequential reads at a time
        by_shard: dict = {}
        for key, rel in rels.items():
            by_shard.setdefault(os.path.dirname(rel), []).append((rel, key))
        out = {}
        total = 0
        for shard in sorted(by_shard):
            for rel, key in sorted(by_shard[shard]):
                with open(os.path.join(self.root, rel), "rb") as fh:
                    payload = fh.read()
                out[key] = payload
                total += len(payload)
        with self._lock:
            self.round_trips += 1
            self.reads += len(out)
            self.bytes_read += total
        return {k: out[k] for k in keys}

    def has(self, variable: str, segment: str) -> bool:
        """Whether the persisted index holds this key (no payload read)."""
        with self._lock:
            return (variable, segment) in self._index

    def keys(self) -> list:
        """All indexed ``(variable, segment)`` keys, replay-ordered."""
        with self._lock:
            return list(self._index)

    def nbytes(self, variable: str | None = None) -> int:
        """Total archived bytes (lock-protected; maintained incrementally)."""
        with self._lock:
            return super().nbytes(variable)
