"""Multi-client retrieval service (the data-service tier above Fig. 1).

* :mod:`repro.service.service` — :class:`RetrievalService` multiplexing
  concurrent :class:`ClientSession`\\ s over one archive behind a shared
  :class:`~repro.storage.cache.FragmentCache`.
* :mod:`repro.service.server` — the JSON-lines-over-TCP front end
  (``repro serve`` / ``repro client`` in the CLI) plus a blocking
  :class:`ServiceClient`.
* :mod:`repro.service.metrics` — the HTTP operability sidecar serving
  Prometheus-format ``/metrics`` and a JSON ``/health`` probe
  (``repro serve --metrics-port``).
"""

from repro.service.metrics import MetricsServer, health_payload, render_metrics
from repro.service.service import ClientSession, RetrievalService, ServiceStats
from repro.service.server import (
    RetrievalServer,
    ServiceClient,
    ServiceError,
    decode_array,
    encode_array,
)

__all__ = [
    "RetrievalService",
    "ClientSession",
    "ServiceStats",
    "RetrievalServer",
    "ServiceClient",
    "ServiceError",
    "encode_array",
    "decode_array",
    "MetricsServer",
    "render_metrics",
    "health_payload",
]
