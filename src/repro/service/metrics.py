"""HTTP operability sidecar: ``/metrics`` and ``/health`` for a service.

The JSON-lines protocol of :mod:`repro.service.server` is for clients;
operators want scrapeable endpoints.  :class:`MetricsServer` attaches a
tiny threaded HTTP server to a running
:class:`~repro.service.service.RetrievalService` and serves:

* ``GET /metrics`` — the full ``repro stats`` counter set (sessions,
  store reads/writes, cache hit rate, tier occupancy when tiered, the
  WAL durability counters, and the resilience surface: admitted / shed /
  degraded request counts, hedged fetches, and the backing store's
  retry/breaker counters including the numeric
  ``repro_resilience_breaker_is_open``) in Prometheus text exposition
  format, every sample prefixed ``repro_``;
* ``GET /health`` — a small JSON liveness document (``status``,
  variable count, active sessions, durability counters) suitable for a
  load-balancer or Kubernetes probe.

Started alongside the JSON-lines server by ``repro serve
--metrics-port``; both endpoints read a consistent
:class:`~repro.service.service.ServiceStats` snapshot per request and
never block retrievals or ingests.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.service import RetrievalService, ServiceStats


def _flatten(prefix: str, obj, out: list) -> None:
    """Flatten nested dicts of numbers into ``(name, value)`` samples."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            _flatten(f"{prefix}_{key}", value, out)
    elif isinstance(obj, bool):
        out.append((prefix, int(obj)))
    elif isinstance(obj, (int, float)) and obj == obj:  # drop NaN
        out.append((prefix, obj))


def render_metrics(stats: ServiceStats) -> str:
    """Render a stats snapshot as Prometheus text exposition format.

    Every counter of the ``repro stats`` surface becomes one
    ``repro_<path>`` sample (nested dataclasses flatten with ``_``
    separators, e.g. ``repro_durability_dead_bytes``); the derived cache
    hit rate is added as ``repro_cache_hit_rate`` (and the planner's as
    ``repro_planner_plan_cache_hit_rate`` when the shared planner runs).
    """
    payload = asdict(stats)
    payload["cache"]["hit_rate"] = stats.cache.hit_rate
    if stats.planner is not None:
        payload["planner"]["plan_cache_hit_rate"] = stats.planner.plan_cache_hit_rate
    samples: list = []
    _flatten("repro", payload, samples)
    lines = []
    for name, value in samples:
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {value}")
    return "\n".join(lines) + "\n"


def health_payload(service: RetrievalService) -> dict:
    """The ``/health`` JSON document (shared with the ``health`` op).

    ``status`` is ``"ok"`` whenever the snapshot can be taken — the
    probe's real signal is that the service answered at all — and the
    body carries enough (variables, active sessions, WAL durability
    counters) for an operator to see state at a glance.
    """
    stats = service.stats()
    return {
        "status": "ok",
        "variables": len(service.variables()),
        "sessions_active": stats.sessions_active,
        "sessions_opened": stats.sessions_opened,
        "durability": asdict(stats.durability) if stats.durability else {},
    }


class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = render_metrics(self.server.service.stats()).encode()
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            elif path == "/health":
                body = (
                    json.dumps(health_payload(self.server.service)) + "\n"
                ).encode()
                ctype = "application/json"
            else:
                self.send_error(404, "unknown path (try /metrics or /health)")
                return
        except Exception as exc:  # a probe must see failures, not silence
            self.send_error(500, f"{type(exc).__name__}: {exc}")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:
        """Silence per-request logging (probes hit /health constantly)."""


class MetricsServer(ThreadingHTTPServer):
    """Threaded ``/metrics`` + ``/health`` HTTP server over one service.

    Pass ``port=0`` for an ephemeral port (tests); the bound address is
    :attr:`address`.  :meth:`start` serves on a daemon thread;
    :meth:`stop` shuts it down.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, service: RetrievalService, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _MetricsHandler)
        self.service = service
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple:
        """``(host, port)`` actually bound (resolves ephemeral ports)."""
        return self.server_address[:2]

    def start(self) -> "MetricsServer":
        """Serve on a background daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
