"""Cross-request query planning and round-merged fetch scheduling.

The storage layers already dedup *bytes* across concurrent clients (the
shared single-flight :class:`~repro.storage.cache.FragmentCache`, the
per-variable claim registry of
:class:`~repro.storage.archive.FragmentSource`), but every
:class:`~repro.service.service.ClientSession` still *plans* alone: it
re-loads its own representation, re-runs Algorithm 3's estimation
seeding, re-computes ``plan_segments`` per round, and drives its own
fetch round trips.  With N clients asking overlapping tolerance ladders
that is N planning passes and up to N store round trips per round for
one round's worth of work — and round trips, not bytes, dominate
cold-remote wall time (``BENCH_retrieval.json``: 621→26 trips = 24x).

This module moves the dedup one layer up, from bytes to plans and
rounds:

* :class:`QueryPlanner` — a generation-aware **plan cache**.  Archived
  representations memoize on ``(variable, generation)`` with
  single-flight loading, so N sessions opening one variable cost one
  archive load (and one PMGARD plan-table build) instead of N.
  Estimation seeds (Algorithm 3) memoize on their exact inputs, and
  ``plan_segments`` results memoize on
  ``(variable, generation, reader state token, exact error bound)`` —
  the *exact* ``eb`` float, never a quantized rung, which is what keeps
  memoized plans bit-identical to per-session planning.  Every memo
  invalidates on the per-variable generation bump a live ingest makes.
* :class:`FetchScheduler` — **cross-request round merging**.  Sessions
  submit whole round plans; a dedicated scheduler thread drains the
  queue each tick, merges every concurrent round, claims segments
  atomically through the shared fragment sources (dropping duplicates),
  and issues ONE coalesced ``get_many`` per backing store — per shard
  on a cluster backend, whose ``get_many`` fans out internally.
  Results are demultiplexed to the waiting sessions as their stores
  complete.  This extends single-flight from per-key to whole rounds:
  rounds that queue while a fetch (or a
  :class:`~repro.storage.resilience.TripBudget` wait) is in flight
  accumulate and merge into the next tick for free.

Speculative prefetches route through :meth:`FetchScheduler.fetch_speculative`:
they additionally consult the shared cache's in-flight registry
(:meth:`~repro.storage.cache.FragmentCache.inflight_keys`) so two
sessions never speculate the same predicted batch, and their store
errors are swallowed (a fragment that truly matters is re-requested by
decode, which surfaces the error).

Bit-identity: planning is read-only (``plan_segments`` computes from
metadata, never mutates), merged fetches only *warm* sources and the
shared cache (``absorb`` is idempotent, decode consumes exactly what its
own plan demands), and memo keys capture the full reader state — so a
service with the planner on returns byte-for-byte the results of one
with it off, which ``tests/test_service_planner.py`` asserts.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass

from repro.core.estimators import seed_bounds

#: Bound on memoized plans / estimation seeds: reader state tokens advance
#: monotonically per session generation, so old entries go cold — an LRU
#: keeps a long-lived service's memo from growing without bound.
MAX_PLAN_MEMO = 4096

#: How long a scheduling tick holds its first round for concurrent rounds
#: to join before dispatching.  Concurrent sessions' rounds are never
#: perfectly aligned; a hold of roughly one fast-store round trip lets
#: unaligned rounds coalesce into one ``get_many`` instead of each paying
#: its own — the difference between ~1.5x and >2x trip reduction on an
#: 8-client overlapping workload.  A solo session pays at most this much
#: extra latency per round, negligible against any remote store hop.
DEFAULT_COALESCE_WINDOW_S = 0.002


def _freeze(segments):
    """Immutable memo form of a ``plan_segments`` result."""
    return None if segments is None else tuple(segments)


@dataclass
class PlannerStats:
    """Counters of one service's planner + scheduler (all numeric → /metrics).

    The plan-cache pair counts memo lookups (``plan_segments`` and
    estimation-seed computations together); ``representations_shared`` /
    ``representations_loaded`` split variable opens into memo hits and
    actual archive loads.  ``merged_rounds`` counts round fetches that
    rode along in another round's scheduling tick (0 when every tick
    carried one round); ``deduped_fragments`` counts segments dropped at
    merge time because a concurrent request already claimed them, and
    ``speculation_deduped`` those dropped from speculative batches
    because the shared cache was already loading them.
    ``coalesced_round_trips`` is the store ``get_many`` calls the
    scheduler actually issued across ``scheduler_ticks`` ticks.  The
    ``slow_tier_throttle_*`` triple mirrors the service's
    :class:`~repro.storage.resilience.TripBudget` (zeros when no budget
    is configured).
    """

    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    representations_shared: int = 0
    representations_loaded: int = 0
    merged_rounds: int = 0
    scheduler_ticks: int = 0
    coalesced_round_trips: int = 0
    deduped_fragments: int = 0
    speculation_deduped: int = 0
    slow_tier_trips_budgeted: int = 0
    slow_tier_throttle_waits: int = 0
    slow_tier_throttle_wait_seconds: float = 0.0

    @property
    def plan_cache_hit_rate(self) -> float:
        """Fraction of plan lookups served from the memo."""
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0


class QueryPlanner:
    """Generation-aware shared plan cache for one retrieval service.

    Thread-safe; one instance is shared by every
    :class:`~repro.service.service.ClientSession` of a service.  Memo
    *computation* runs outside the lock (plans are pure functions of
    reader metadata), so a cache miss never serializes other sessions'
    lookups; representation loads are single-flight (concurrent opens of
    the same variable wait on one archive load).
    """

    def __init__(self, max_plan_memo: int = MAX_PLAN_MEMO):
        self.max_plan_memo = int(max_plan_memo)
        self._lock = threading.Lock()
        self._reps: dict = {}  # (variable, generation) -> Refactored
        self._rep_flights: dict = {}  # key -> Event set when its load lands
        self._plans: OrderedDict = OrderedDict()  # plan memo (LRU)
        self._plan_flights: dict = {}  # key -> Event (in-flight computation)
        self._seeds: OrderedDict = OrderedDict()  # Algorithm 3 seed memo (LRU)
        self._seed_flights: dict = {}
        self._stats = PlannerStats()

    def _count(self, field: str, n: int = 1) -> None:
        with self._lock:
            setattr(self._stats, field, getattr(self._stats, field) + n)

    # -- representation cache --------------------------------------------------

    def load(self, variable: str, generation: int, loader):
        """Memoized, single-flight archive load of one variable.

        *loader* is a zero-argument callable producing the
        :class:`~repro.compressors.base.Refactored`; it runs at most
        once per ``(variable, generation)`` however many sessions open
        the variable concurrently.  Sharing the representation across
        sessions is safe: fragment payloads and streams are read-only
        after construction, reader state lives in each session's own
        readers, and the lazily-memoized extras (PMGARD plan table,
        PSZ3 lossless payload) are idempotent to racing builders.
        """
        key = (variable, int(generation))
        while True:
            with self._lock:
                rep = self._reps.get(key)
                if rep is not None:
                    self._stats.representations_shared += 1
                    return rep
                flight = self._rep_flights.get(key)
                if flight is None:
                    flight = threading.Event()
                    self._rep_flights[key] = flight
                    break  # this thread owns the load
            flight.wait()  # another session is loading; then re-check
        try:
            rep = loader()
        except BaseException:
            with self._lock:
                del self._rep_flights[key]
            flight.set()
            raise
        with self._lock:
            # an invalidate may have raced the load; serve this caller
            # but only memoize when the generation is still current
            if key in self._rep_flights:
                self._reps[key] = rep
                del self._rep_flights[key]
            self._stats.representations_loaded += 1
        flight.set()
        return rep

    # -- plan memo -------------------------------------------------------------

    def plan_segments(self, reader, variable: str, generation: int, eb: float):
        """Memoized :meth:`~repro.compressors.base.ProgressiveReader.plan_segments`.

        The key is ``(variable, generation, reader.plan_token(), eb)``
        with the **exact** ``eb`` float — identical ladders produce
        identical bounds through the deterministic Algorithm 3/4
        arithmetic, so exact keys hit across sessions while never
        aliasing two genuinely different plans (which would break
        bit-identity).  Readers without a state token
        (``plan_token() is None``) are planned directly, uncached.
        """
        token = reader.plan_token()
        if token is None:
            return reader.plan_segments(eb)
        key = (variable, int(generation), token, float(eb))
        cached = self._memoized(
            self._plans, self._plan_flights, key,
            lambda: _freeze(reader.plan_segments(eb)),
        )
        return None if cached is None else list(cached)

    def seed_bounds(self, value_ranges, incidence, tolerances):
        """Memoized Algorithm 3 estimation seeding (vectorized).

        Arguments are the (hashable) tuple forms of
        :func:`repro.core.estimators.seed_bounds` inputs; the value
        ranges are part of the key, so a live ingest changing a range
        can never serve stale seeds.  Counted with the plan-cache pair —
        seeds are the estimation half of the plan cache.
        """
        key = (tuple(value_ranges), tuple(incidence), tuple(tolerances))
        return self._memoized(
            self._seeds, self._seed_flights, key,
            lambda: tuple(
                float(s)
                for s in seed_bounds(
                    list(key[0]), [list(r) for r in key[1]], list(key[2])
                )
            ),
        )

    def _memoized(self, memo: OrderedDict, flights: dict, key, compute):
        """Single-flight LRU memoization shared by plans and seeds.

        Concurrent sessions missing on the same key produce ONE
        computation and ONE counted miss — the literal "one planning
        pass" contract ``tests/test_service_planner.py`` asserts by
        counter equality.  A racing :meth:`invalidate` removes the
        flight entry, so the computed value is served to waiters but
        never memoized stale.
        """
        while True:
            with self._lock:
                if key in memo:
                    memo.move_to_end(key)
                    self._stats.plan_cache_hits += 1
                    return memo[key]
                flight = flights.get(key)
                if flight is None:
                    flight = threading.Event()
                    flights[key] = flight
                    break  # this thread owns the computation
            flight.wait()  # then re-check the memo
        try:
            value = compute()  # pure; computed unlocked
        except BaseException:
            with self._lock:
                flights.pop(key, None)
            flight.set()
            raise
        with self._lock:
            self._stats.plan_cache_misses += 1
            if flights.pop(key, None) is not None:
                memo[key] = value
                while len(memo) > self.max_plan_memo:
                    memo.popitem(last=False)
        flight.set()
        return value

    # -- staleness -------------------------------------------------------------

    def invalidate(self, variable: str) -> None:
        """Drop every memo of one variable (its generation just bumped).

        Called by the service's live-ingest path next to
        :meth:`~repro.storage.archive.Archive.invalidate_source`:
        memoized representations would keep serving the superseded
        fragments to new sessions, and memoized plans name segments of
        the old layout.  In-flight loads of the variable are left to
        land (their waiters get a usable representation) but are never
        memoized afterwards.
        """
        with self._lock:
            for key in [k for k in self._reps if k[0] == variable]:
                del self._reps[key]
            for key in [k for k in self._rep_flights if k[0] == variable]:
                del self._rep_flights[key]
            for key in [k for k in self._plans if k[0] == variable]:
                del self._plans[key]
            for key in [k for k in self._plan_flights if k[0] == variable]:
                del self._plan_flights[key]

    def stats(self) -> PlannerStats:
        """Snapshot of the planner/scheduler counters."""
        with self._lock:
            from dataclasses import replace

            return replace(self._stats)


class _FetchRequest:
    """One session's round (or speculative) fetch awaiting the scheduler."""

    __slots__ = ("plans", "speculative", "event", "fetched", "error", "pending_stores")

    def __init__(self, plans, speculative: bool):
        self.plans = plans  # [(FragmentSource, [segment, ...]), ...]
        self.speculative = speculative
        self.event = threading.Event()
        self.fetched = 0
        self.error: BaseException | None = None
        self.pending_stores: set = set()  # store ids still owing this request


class FetchScheduler:
    """Merge concurrent sessions' round fetches into coalesced store passes.

    Sessions call :meth:`fetch` (blocking) from their pipeline's fetch
    workers; a dedicated daemon thread drains the whole queue each tick,
    so rounds that arrive while a fetch is in flight — or while a
    :class:`~repro.storage.resilience.TripBudget` gates the slow tier —
    accumulate and merge into the next tick without any added idle
    latency.  Per tick the merged plan is claimed atomically through the
    shared :class:`~repro.storage.archive.FragmentSource` registry
    (cross-request duplicates drop here) and fetched with one
    ``get_many`` per backing store; a cluster store's ``get_many`` fans
    out per shard internally, with replica failover, so a merged round
    spanning a dead node still completes.

    Failure semantics mirror :func:`~repro.storage.archive.prefetch_plans`:
    a store error releases every still-claimed segment (its fragments
    become refetchable immediately) and surfaces to exactly the
    non-speculative requests whose plans touched an unserved store;
    requests fully served by earlier stores in the same tick succeed.
    """

    def __init__(
        self, planner: QueryPlanner, cache=None,
        coalesce_window_s: float = DEFAULT_COALESCE_WINDOW_S,
    ):
        self._planner = planner
        self._cache = cache  # FragmentCache (its in-flight registry) or None
        self._window = max(0.0, float(coalesce_window_s))
        self._cv = threading.Condition()
        self._queue: deque = deque()
        self._thread: threading.Thread | None = None
        self._closed = False

    # -- session-facing entry points ------------------------------------------

    def fetch(self, plans) -> int:
        """Submit one round's plan; block until its fragments land.

        *plans* is the ``[(source, segments), ...]`` round plan.
        Returns the number of fragments fetched *for this request* (its
        claimed share of the merged fetch).  Store errors propagate to
        the caller exactly as a private fetch's would.
        """
        return self._submit(plans, speculative=False)

    def fetch_speculative(self, plans) -> int:
        """Submit a predicted future plan; errors are swallowed.

        Speculative batches additionally dedup against the shared
        cache's in-flight registry — a segment some session is already
        loading will be cache-resident, so re-planning it here would
        only duplicate a store read another speculator is paying for.
        """
        return self._submit(plans, speculative=True)

    def _submit(self, plans, speculative: bool) -> int:
        plans = [
            (source, list(segments)) for source, segments in plans if segments
        ]
        if not plans:
            return 0
        request = _FetchRequest(plans, speculative)
        with self._cv:
            if self._closed:
                raise RuntimeError("fetch scheduler is closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="repro-scheduler", daemon=True
                )
                self._thread.start()
            self._queue.append(request)
            self._cv.notify()
        request.event.wait()
        if request.error is not None and not speculative:
            raise request.error
        return request.fetched

    # -- the scheduling tick ---------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if not self._queue:
                    return  # closed and drained
                if self._window > 0.0 and not self._closed:
                    # hold the tick open briefly so concurrent sessions'
                    # unaligned rounds land in this batch, not the next
                    deadline = time.monotonic() + self._window
                    while not self._closed:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0.0:
                            break
                        self._cv.wait(timeout=remaining)
                batch = list(self._queue)
                self._queue.clear()
            try:
                self._dispatch(batch)
            finally:
                for request in batch:
                    request.event.set()  # no waiter may hang, whatever happened

    def _dispatch(self, batch) -> None:
        planner = self._planner
        with planner._lock:
            planner._stats.scheduler_ticks += 1
            planner._stats.merged_rounds += max(0, len(batch) - 1)
        inflight = (
            self._cache.inflight_keys()
            if self._cache is not None and any(r.speculative for r in batch)
            else ()
        )
        speculation_deduped = 0
        deduped = 0
        # claim in arrival order: the first round to plan a segment fetches
        # it, later rounds ride along (their decode awaits the absorb)
        by_store: dict = {}
        for request in batch:
            for source, segments in request.plans:
                if request.speculative and inflight:
                    kept = [
                        s for s in segments
                        if (source.variable, s) not in inflight
                    ]
                    speculation_deduped += len(segments) - len(kept)
                    segments = kept
                wanted = source.claim(segments)
                deduped += len(segments) - len(wanted)
                if wanted:
                    sid = id(source.store)
                    request.pending_stores.add(sid)
                    by_store.setdefault(sid, (source.store, []))[1].append(
                        (request, source, wanted)
                    )
        if speculation_deduped or deduped:
            with planner._lock:
                planner._stats.speculation_deduped += speculation_deduped
                planner._stats.deduped_fragments += deduped
        outstanding = list(by_store.items())
        while outstanding:
            sid, (store, entries) = outstanding[0]
            try:
                payloads = store.get_many(
                    [(source.variable, seg) for _, source, segs in entries for seg in segs]
                )
            except BaseException as exc:
                # release every still-claimed segment — this store's and
                # every unfetched one's — and attribute the error to the
                # requests an unserved store was owing
                for _, (_, failed_entries) in outstanding:
                    for request, source, segs in failed_entries:
                        source.release(segs)
                        if not request.speculative:
                            request.error = exc
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                return
            per_source: dict = {}
            for request, source, segs in entries:
                request.fetched += len(segs)
                bucket = per_source.setdefault(id(source), (source, {}))[1]
                for seg in segs:
                    bucket[seg] = payloads[(source.variable, seg)]
            for source, arrived in per_source.values():
                source.absorb(arrived)
            for request, _, _ in entries:
                request.pending_stores.discard(sid)
            planner._count("coalesced_round_trips")
            outstanding.pop(0)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting fetches; drain the queue and join the thread.

        Queued requests still run (their sessions are blocked on them);
        requests submitted after close fail fast.  Idempotent.
        """
        with self._cv:
            self._closed = True
            thread = self._thread
            self._cv.notify_all()
        if thread is not None:
            thread.join(timeout=30.0)
