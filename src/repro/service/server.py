"""Network front end of the retrieval service (JSON-lines over TCP).

One :class:`RetrievalServer` wraps one
:class:`~repro.service.service.RetrievalService`; each TCP connection
gets its own :class:`~repro.service.service.ClientSession`, handled on
its own thread.  The protocol is deliberately plain — one JSON object per
line in each direction — so any language can speak it:

* ``{"op": "info"}`` → archived variables and their metadata,
* ``{"op": "retrieve", "qoi": "vtot", "fields": [...], "tolerance": 1e-4,
  "qoi_range": 350.0, "include_data": true}`` → the retrieval report,
  optionally with base64-encoded ``.npy`` payloads per variable.
  Optional ``"priority"`` (negative = shed-first) and ``"deadline_ms"``
  engage the service's admission control and deadline-aware rounds: a
  shed request answers ``{"ok": false, "error": "overloaded",
  "retry_after_ms": ...}`` immediately, and a deadline-hit request
  answers with ``"degraded": true`` plus the best bounds achieved,
* ``{"op": "ingest", "variables": {"p": "<b64 .npy>"}, "method":
  "pmgard_hb"}`` → absorb new or updated variables into the live
  archive through the streaming ingestion engine (optionally with
  ``workers`` / ``flush_bytes`` / ``timestep``), returning its report,
* ``{"op": "stats"}`` → service/cache accounting,
* ``{"op": "health"}`` → liveness summary (variables, sessions, WAL
  durability counters) — the same payload the sidecar
  :class:`~repro.service.metrics.MetricsServer` serves on ``/health``,
* ``{"op": "compact"}`` → compact the backing store's commit log and
  return the :class:`~repro.storage.wal.CompactionReport`.

Because the session persists for the life of the connection, a client
that retrieves loosely and then tightens pays only for the incremental
fragments — the paper's progressive economy, now over a socket — and
fragments any client pulls through the shared cache are free for all
other connections.
"""

from __future__ import annotations

import base64
import io
import json
import socket
import socketserver
import time
from dataclasses import asdict

import numpy as np

from repro.core.qois import qoi_from_spec
from repro.core.retrieval import QoIRequest
from repro.service.service import OverloadedError, RetrievalService


def _json_safe(obj):
    """Replace non-finite floats with their string forms ("inf", "nan").

    ``json.dumps`` would otherwise emit bare ``Infinity``/``NaN`` tokens,
    which are invalid JSON for strict (non-Python) parsers; the strings
    round-trip through ``float()`` on the client side.
    """
    if isinstance(obj, float) and not np.isfinite(obj):
        return repr(obj)
    if isinstance(obj, dict):
        return {k: _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    return obj


def encode_array(data: np.ndarray) -> str:
    """Serialize an array as base64 ``.npy`` bytes (self-describing)."""
    buf = io.BytesIO()
    np.save(buf, np.asarray(data), allow_pickle=False)
    return base64.b64encode(buf.getvalue()).decode("ascii")


def decode_array(payload: str) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    return np.load(io.BytesIO(base64.b64decode(payload)), allow_pickle=False)


class ServiceError(RuntimeError):
    """A request the server answered with ``ok: false``."""


class OverloadedResponse(ServiceError):
    """The server shed this request (admission control).

    Carries the server's ``retry_after_ms`` backoff hint and the limit
    that fired (``reason``: ``"inflight"`` or ``"rate"``).  Raised by
    :class:`ServiceClient` only after its configured overload retries
    are exhausted.
    """

    def __init__(self, retry_after_ms: float, reason: str = "overloaded"):
        super().__init__(
            f"server overloaded ({reason}); retry after {retry_after_ms:.0f} ms"
        )
        self.retry_after_ms = float(retry_after_ms)
        self.reason = reason


class _ClientHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        session = self.server.service.open_session()
        try:
            for line in self.rfile:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                    response = self._dispatch(request, session)
                except Exception as exc:  # malformed request must not kill the server
                    response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                self.wfile.write(
                    json.dumps(_json_safe(response), allow_nan=False).encode() + b"\n"
                )
                self.wfile.flush()
        finally:
            session.close()

    def _dispatch(self, request: dict, session) -> dict:
        op = request.get("op")
        service = self.server.service
        if op == "info":
            manifest = service.manifest
            variables = {}
            for name in service.variables():
                if manifest is not None and name in manifest.variables:
                    meta = manifest.variables[name]
                    variables[name] = {
                        "shape": list(meta.shape),
                        "dtype": meta.dtype,
                        "compressor": meta.compressor,
                        "total_bytes": meta.total_bytes,
                        "value_range": meta.value_range,
                    }
                else:
                    variables[name] = {}
            return {"ok": True, "variables": variables}
        if op == "stats":
            stats = service.stats()
            payload = asdict(stats)
            payload["cache"]["hit_rate"] = stats.cache.hit_rate
            if stats.planner is not None:
                payload["planner"]["plan_cache_hit_rate"] = (
                    stats.planner.plan_cache_hit_rate
                )
            return {"ok": True, "stats": payload}
        if op == "health":
            from repro.service.metrics import health_payload

            return {"ok": True, "health": health_payload(service)}
        if op == "compact":
            return {"ok": True, "report": asdict(service.compact())}
        if op == "retrieve":
            fields = list(request["fields"])
            qoi = qoi_from_spec(request["qoi"], fields)
            deadline_ms = request.get("deadline_ms")
            try:
                result = session.retrieve(
                    [
                        QoIRequest(
                            request["qoi"],
                            qoi,
                            float(request["tolerance"]),
                            float(request.get("qoi_range", 1.0)),
                        )
                    ],
                    max_rounds=int(request.get("max_rounds", 100)),
                    priority=int(request.get("priority", 0)),
                    deadline_ms=None if deadline_ms is None else float(deadline_ms),
                )
            except OverloadedError as exc:
                # explicit shed: no state was created server-side, and the
                # client gets a concrete backoff hint instead of a hang
                return {
                    "ok": False,
                    "error": "overloaded",
                    "reason": exc.reason,
                    "retry_after_ms": exc.retry_after_ms,
                }
            response = {
                "ok": True,
                "satisfied": result.all_satisfied,
                "estimated_error": float(result.estimated_errors[request["qoi"]]),
                "rounds": result.rounds,
                "bytes_retrieved": result.total_bytes,
                "session_bytes": session.bytes_retrieved(),
                "degraded": result.degraded,
                "degraded_reason": result.degraded_reason,
                "hedged_fetches": result.hedged_fetches,
            }
            if request.get("include_data"):
                response["data"] = {
                    name: encode_array(data) for name, data in result.data.items()
                }
            return response
        if op == "ingest":
            arrays = {
                str(name): decode_array(payload)
                for name, payload in dict(request["variables"]).items()
            }
            workers = request.get("workers")
            flush_bytes = request.get("flush_bytes")
            timestep = request.get("timestep")
            report = service.ingest(
                arrays,
                method=str(request.get("method", "pmgard_hb")),
                workers=None if workers is None else int(workers),
                flush_bytes=None if flush_bytes is None else int(flush_bytes),
                timestep=None if timestep is None else int(timestep),
            )
            return {"ok": True, "report": asdict(report)}
        return {"ok": False, "error": f"unknown op {op!r}"}


class RetrievalServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server: one connection = one client session.

    Pass ``port=0`` to bind an ephemeral port (tests); the bound address
    is available as :attr:`address`.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: RetrievalService, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _ClientHandler)
        self.service = service

    @property
    def address(self) -> tuple:
        """``(host, port)`` actually bound (resolves ephemeral ports)."""
        return self.server_address[:2]


class ServiceClient:
    """Blocking client for :class:`RetrievalServer` (one session per client).

    A dropped TCP connection is re-dialed once per call and the request
    re-issued — every op is idempotent at the protocol level (a re-run
    ``retrieve`` returns the same bounds; a re-run ``ingest`` replaces
    variables with identical data), though the re-dial starts a fresh
    server-side session, so incremental per-session economics reset.
    When the server sheds a request (``error: "overloaded"``), the
    client honors the ``retry_after_ms`` hint: it sleeps and re-issues
    up to ``overload_retries`` times before raising
    :class:`OverloadedResponse`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        overload_retries: int = 0,
    ):
        self._host = host
        self._port = int(port)
        self._timeout = float(timeout)
        self.overload_retries = int(overload_retries)
        self.reconnects = 0
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._rfile = self._sock.makefile("rb")

    def _reconnect(self) -> None:
        try:
            self.close()
        except OSError:
            pass
        self._connect()
        self.reconnects += 1

    def _send_recv(self, payload: dict) -> dict:
        """One request/response round trip, re-dialing a dead socket once."""
        data = json.dumps(payload).encode() + b"\n"
        try:
            self._sock.sendall(data)
            line = self._rfile.readline()
        except OSError:
            line = b""
        if not line:
            self._reconnect()
            self._sock.sendall(data)
            line = self._rfile.readline()
            if not line:
                raise ConnectionError("server closed the connection")
        return json.loads(line)

    def _call(self, payload: dict) -> dict:
        for attempt in range(self.overload_retries + 1):
            response = self._send_recv(payload)
            if response.get("ok"):
                return response
            if response.get("error") == "overloaded":
                retry_after_ms = float(response.get("retry_after_ms", 50.0))
                if attempt < self.overload_retries:
                    time.sleep(retry_after_ms / 1000.0)
                    continue
                raise OverloadedResponse(
                    retry_after_ms, response.get("reason", "overloaded")
                )
            raise ServiceError(response.get("error", "unknown server error"))
        raise AssertionError("unreachable")  # loop always returns or raises

    def info(self) -> dict:
        """Archived variables and their metadata."""
        return self._call({"op": "info"})["variables"]

    def stats(self) -> dict:
        """Service/cache accounting as plain dicts."""
        return self._call({"op": "stats"})["stats"]

    def health(self) -> dict:
        """Liveness summary (status, variables, sessions, durability)."""
        return self._call({"op": "health"})["health"]

    def compact(self) -> dict:
        """Compact the server's commit log; returns the report as a dict."""
        return self._call({"op": "compact"})["report"]

    def retrieve(
        self,
        qoi: str,
        fields,
        tolerance: float,
        qoi_range: float = 1.0,
        include_data: bool = False,
        max_rounds: int = 100,
        priority: int = 0,
        deadline_ms: float | None = None,
    ) -> dict:
        """QoI-preserved retrieval; arrays are decoded when requested.

        ``priority`` and ``deadline_ms`` flow to the server's admission
        control and deadline-aware rounds; a deadline-hit response has
        ``"degraded": true`` with the best bounds achieved so far.
        """
        payload = {
            "op": "retrieve",
            "qoi": qoi,
            "fields": list(fields),
            "tolerance": tolerance,
            "qoi_range": qoi_range,
            "include_data": include_data,
            "max_rounds": max_rounds,
        }
        if priority:
            payload["priority"] = int(priority)
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        response = self._call(payload)
        if "data" in response:
            response["data"] = {
                name: decode_array(payload) for name, payload in response["data"].items()
            }
        # non-finite errors travel as strings (see _json_safe)
        response["estimated_error"] = float(response["estimated_error"])
        return response

    def ingest(
        self,
        variables: dict,
        method: str = "pmgard_hb",
        workers: int | None = None,
        flush_bytes: int | None = None,
        timestep: int | None = None,
    ) -> dict:
        """Push new or updated variables into the server's live archive.

        *variables* maps names to arrays (serialized as base64 ``.npy``
        on the wire); the server runs the streaming ingestion engine and
        answers with its :class:`~repro.core.ingest.IngestReport` as a
        plain dict.
        """
        payload = {
            "op": "ingest",
            "variables": {
                name: encode_array(data) for name, data in variables.items()
            },
            "method": method,
        }
        if workers is not None:
            payload["workers"] = int(workers)
        if flush_bytes is not None:
            payload["flush_bytes"] = int(flush_bytes)
        if timestep is not None:
            payload["timestep"] = int(timestep)
        return self._call(payload)["report"]

    def close(self) -> None:
        """Close the connection (the server ends this client's session)."""
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
