"""Network front end of the retrieval service (JSON-lines over TCP).

One :class:`RetrievalServer` wraps one
:class:`~repro.service.service.RetrievalService`; each TCP connection
gets its own :class:`~repro.service.service.ClientSession`, handled on
its own thread.  The protocol is deliberately plain — one JSON object per
line in each direction — so any language can speak it:

* ``{"op": "info"}`` → archived variables and their metadata,
* ``{"op": "retrieve", "qoi": "vtot", "fields": [...], "tolerance": 1e-4,
  "qoi_range": 350.0, "include_data": true}`` → the retrieval report,
  optionally with base64-encoded ``.npy`` payloads per variable,
* ``{"op": "ingest", "variables": {"p": "<b64 .npy>"}, "method":
  "pmgard_hb"}`` → absorb new or updated variables into the live
  archive through the streaming ingestion engine (optionally with
  ``workers`` / ``flush_bytes`` / ``timestep``), returning its report,
* ``{"op": "stats"}`` → service/cache accounting,
* ``{"op": "health"}`` → liveness summary (variables, sessions, WAL
  durability counters) — the same payload the sidecar
  :class:`~repro.service.metrics.MetricsServer` serves on ``/health``,
* ``{"op": "compact"}`` → compact the backing store's commit log and
  return the :class:`~repro.storage.wal.CompactionReport`.

Because the session persists for the life of the connection, a client
that retrieves loosely and then tightens pays only for the incremental
fragments — the paper's progressive economy, now over a socket — and
fragments any client pulls through the shared cache are free for all
other connections.
"""

from __future__ import annotations

import base64
import io
import json
import socket
import socketserver
from dataclasses import asdict

import numpy as np

from repro.core.qois import qoi_from_spec
from repro.core.retrieval import QoIRequest
from repro.service.service import RetrievalService


def _json_safe(obj):
    """Replace non-finite floats with their string forms ("inf", "nan").

    ``json.dumps`` would otherwise emit bare ``Infinity``/``NaN`` tokens,
    which are invalid JSON for strict (non-Python) parsers; the strings
    round-trip through ``float()`` on the client side.
    """
    if isinstance(obj, float) and not np.isfinite(obj):
        return repr(obj)
    if isinstance(obj, dict):
        return {k: _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    return obj


def encode_array(data: np.ndarray) -> str:
    """Serialize an array as base64 ``.npy`` bytes (self-describing)."""
    buf = io.BytesIO()
    np.save(buf, np.asarray(data), allow_pickle=False)
    return base64.b64encode(buf.getvalue()).decode("ascii")


def decode_array(payload: str) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    return np.load(io.BytesIO(base64.b64decode(payload)), allow_pickle=False)


class ServiceError(RuntimeError):
    """A request the server answered with ``ok: false``."""


class _ClientHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        session = self.server.service.open_session()
        try:
            for line in self.rfile:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                    response = self._dispatch(request, session)
                except Exception as exc:  # malformed request must not kill the server
                    response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                self.wfile.write(
                    json.dumps(_json_safe(response), allow_nan=False).encode() + b"\n"
                )
                self.wfile.flush()
        finally:
            session.close()

    def _dispatch(self, request: dict, session) -> dict:
        op = request.get("op")
        service = self.server.service
        if op == "info":
            manifest = service.manifest
            variables = {}
            for name in service.variables():
                if manifest is not None and name in manifest.variables:
                    meta = manifest.variables[name]
                    variables[name] = {
                        "shape": list(meta.shape),
                        "dtype": meta.dtype,
                        "compressor": meta.compressor,
                        "total_bytes": meta.total_bytes,
                        "value_range": meta.value_range,
                    }
                else:
                    variables[name] = {}
            return {"ok": True, "variables": variables}
        if op == "stats":
            stats = service.stats()
            payload = asdict(stats)
            payload["cache"]["hit_rate"] = stats.cache.hit_rate
            return {"ok": True, "stats": payload}
        if op == "health":
            from repro.service.metrics import health_payload

            return {"ok": True, "health": health_payload(service)}
        if op == "compact":
            return {"ok": True, "report": asdict(service.compact())}
        if op == "retrieve":
            fields = list(request["fields"])
            qoi = qoi_from_spec(request["qoi"], fields)
            result = session.retrieve(
                [
                    QoIRequest(
                        request["qoi"],
                        qoi,
                        float(request["tolerance"]),
                        float(request.get("qoi_range", 1.0)),
                    )
                ],
                max_rounds=int(request.get("max_rounds", 100)),
            )
            response = {
                "ok": True,
                "satisfied": result.all_satisfied,
                "estimated_error": float(result.estimated_errors[request["qoi"]]),
                "rounds": result.rounds,
                "bytes_retrieved": result.total_bytes,
                "session_bytes": session.bytes_retrieved(),
            }
            if request.get("include_data"):
                response["data"] = {
                    name: encode_array(data) for name, data in result.data.items()
                }
            return response
        if op == "ingest":
            arrays = {
                str(name): decode_array(payload)
                for name, payload in dict(request["variables"]).items()
            }
            workers = request.get("workers")
            flush_bytes = request.get("flush_bytes")
            timestep = request.get("timestep")
            report = service.ingest(
                arrays,
                method=str(request.get("method", "pmgard_hb")),
                workers=None if workers is None else int(workers),
                flush_bytes=None if flush_bytes is None else int(flush_bytes),
                timestep=None if timestep is None else int(timestep),
            )
            return {"ok": True, "report": asdict(report)}
        return {"ok": False, "error": f"unknown op {op!r}"}


class RetrievalServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server: one connection = one client session.

    Pass ``port=0`` to bind an ephemeral port (tests); the bound address
    is available as :attr:`address`.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: RetrievalService, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _ClientHandler)
        self.service = service

    @property
    def address(self) -> tuple:
        """``(host, port)`` actually bound (resolves ephemeral ports)."""
        return self.server_address[:2]


class ServiceClient:
    """Blocking client for :class:`RetrievalServer` (one session per client)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    def _call(self, payload: dict) -> dict:
        self._sock.sendall(json.dumps(payload).encode() + b"\n")
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown server error"))
        return response

    def info(self) -> dict:
        """Archived variables and their metadata."""
        return self._call({"op": "info"})["variables"]

    def stats(self) -> dict:
        """Service/cache accounting as plain dicts."""
        return self._call({"op": "stats"})["stats"]

    def health(self) -> dict:
        """Liveness summary (status, variables, sessions, durability)."""
        return self._call({"op": "health"})["health"]

    def compact(self) -> dict:
        """Compact the server's commit log; returns the report as a dict."""
        return self._call({"op": "compact"})["report"]

    def retrieve(
        self,
        qoi: str,
        fields,
        tolerance: float,
        qoi_range: float = 1.0,
        include_data: bool = False,
        max_rounds: int = 100,
    ) -> dict:
        """QoI-preserved retrieval; arrays are decoded when requested."""
        response = self._call(
            {
                "op": "retrieve",
                "qoi": qoi,
                "fields": list(fields),
                "tolerance": tolerance,
                "qoi_range": qoi_range,
                "include_data": include_data,
                "max_rounds": max_rounds,
            }
        )
        if "data" in response:
            response["data"] = {
                name: decode_array(payload) for name, payload in response["data"].items()
            }
        # non-finite errors travel as strings (see _json_safe)
        response["estimated_error"] = float(response["estimated_error"])
        return response

    def ingest(
        self,
        variables: dict,
        method: str = "pmgard_hb",
        workers: int | None = None,
        flush_bytes: int | None = None,
        timestep: int | None = None,
    ) -> dict:
        """Push new or updated variables into the server's live archive.

        *variables* maps names to arrays (serialized as base64 ``.npy``
        on the wire); the server runs the streaming ingestion engine and
        answers with its :class:`~repro.core.ingest.IngestReport` as a
        plain dict.
        """
        payload = {
            "op": "ingest",
            "variables": {
                name: encode_array(data) for name, data in variables.items()
            },
            "method": method,
        }
        if workers is not None:
            payload["workers"] = int(workers)
        if flush_bytes is not None:
            payload["flush_bytes"] = int(flush_bytes)
        if timestep is not None:
            payload["timestep"] = int(timestep)
        return self._call(payload)["report"]

    def close(self) -> None:
        """Close the connection (the server ends this client's session)."""
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
