"""Multi-client retrieval service over one fragment archive.

The seed model of the repo is one analyst driving one
:class:`~repro.core.retrieval.RetrievalSession`.  A data service has a
different shape: one archive, many concurrent clients, and heavily
overlapping fragment demand (every client's Algorithm 2 loop starts from
the same coarse levels).  :class:`RetrievalService` multiplexes client
sessions over a single archive behind a shared
:class:`~repro.storage.cache.FragmentCache`, so a fragment read from the
store for one client is served from memory to every other.

Layering::

    ClientSession  (one per client; per-client reader state)
        └── RetrievalService  (shared; value ranges, masks, accounting)
              └── Archive over CachingFragmentStore
                    ├── FragmentCache   (shared LRU, byte budget)
                    └── FragmentStore   (disk / sharded / in-memory)

Each :class:`ClientSession` keeps the full incremental economics of
:class:`~repro.core.retrieval.RetrievalSession` — successive, tighter
requests from the same client only move incremental fragments — while the
cache collapses the *cross-client* redundancy that sessions alone cannot
see.  ``ClientSession.retrieve`` is self-contained per client; the only
state shared between threads is the lock-protected cache and the service
counters, so sessions may run on concurrent threads.

Under heavy traffic the service applies *admission control* rather than
unbounded queueing: a bounded in-flight budget (``max_inflight``),
per-client :class:`TokenBucket` rate limits, and per-request priorities —
a request that cannot be admitted is shed immediately with
:class:`OverloadedError` carrying a ``retry_after_ms`` hint, leaving no
server-side state behind.  Admitted requests may still come back
*degraded* (deadline hit, slow tier down — see
:class:`~repro.core.retrieval.RetrievalResult`); every outcome —
admitted, shed, degraded — is counted in :class:`ServiceStats`, so
overload is always an explicit, observable contract, never a hang.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.core.assigner import DEFAULT_REDUCTION_FACTOR
from repro.core.ingest import (
    DEFAULT_FLUSH_BYTES,
    DEFAULT_INGEST_WORKERS,
    IngestConfig,
    IngestPipeline,
    IngestReport,
    update_manifest,
)
from repro.core.pipeline import DEFAULT_MAX_WORKERS, DEFAULT_PIPELINE_DEPTH, PipelineConfig
from repro.core.retrieval import QoIRetriever, RetrievalResult, RetrievalSession
from repro.storage.archive import Archive
from repro.storage.cache import CacheStats, CachingFragmentStore, DEFAULT_CACHE_BYTES, FragmentCache
from repro.storage.cluster import ClusterFragmentStore, ClusterStats
from repro.service.planner import FetchScheduler, PlannerStats, QueryPlanner
from repro.storage.metadata import MANIFEST_SEGMENT, MANIFEST_VARIABLE, DatasetManifest
from repro.storage.resilience import ResilienceStats, TripBudget
from repro.storage.store import DiskFragmentStore, FragmentStore, ShardedDiskStore, open_store
from repro.storage.tiered import TieredStore, TierStats
from repro.storage.wal import CompactionReport, DurabilityStats
from repro.utils.fragment_keys import timestep_variable

# Fraction of the in-flight budget low-priority requests may fill: above
# this watermark ``priority < 0`` work is shed so headroom remains for
# normal traffic even before the budget is exhausted.
LOW_PRIORITY_WATERMARK = 0.75

# Floor on the retry-after hint handed to shed clients, so a freshly
# started service (no latency history yet) still spreads retries out.
MIN_RETRY_AFTER_MS = 50.0


class OverloadedError(RuntimeError):
    """A request was shed by admission control instead of queued.

    Raised *before* any per-request state is created, so a shed request
    leaves the service exactly as it found it.  ``retry_after_ms`` is the
    server's backoff hint — an EWMA of recent retrieval wall time — and
    ``reason`` says which limit fired (``"inflight"`` budget or per-client
    ``"rate"`` bucket).
    """

    def __init__(self, reason: str, retry_after_ms: float):
        super().__init__(f"overloaded ({reason}); retry after {retry_after_ms:.0f} ms")
        self.reason = reason
        self.retry_after_ms = float(retry_after_ms)


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``try_acquire`` either takes one token and returns ``0.0`` or takes
    nothing and returns the seconds until a token will be available —
    the natural ``retry_after`` hint for a shed response.  Not thread
    safe on its own; callers serialize access (the service holds its
    admission lock).
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_acquire(self) -> float:
        """Take one token (return 0.0) or return seconds until one exists."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


@dataclass
class ServiceStats:
    """Aggregate accounting of one :class:`RetrievalService`.

    ``tiers`` carries the per-tier counters
    (:class:`~repro.storage.tiered.TierStats`) when the backing store is
    a :class:`~repro.storage.tiered.TieredStore`, else ``None``.  The
    ``store_puts`` / ``store_bytes_written`` / ``store_put_round_trips``
    triple mirrors the read-side store counters for the write path
    (live ingestion through :meth:`RetrievalService.ingest`).
    ``durability`` carries the backing store's WAL/compaction counters
    (:class:`~repro.storage.wal.DurabilityStats`; all zeros on backends
    without a commit log).  ``io_wait_seconds`` / ``compute_seconds`` /
    ``retrieval_rounds`` aggregate the per-round compute-vs-I/O
    wall-time split every client retrieval records (see
    :meth:`~repro.core.pipeline.FetchPipeline.record_round`), and
    ``executor`` carries the kernel executor's task/fallback counters
    (:class:`~repro.parallel.executor.ExecutorStats`) when the service
    runs one.

    The admission-control triple makes every overload outcome visible:
    ``requests_admitted`` / ``requests_shed`` / ``requests_degraded``
    partition traffic into the three explicit contracts (served at full
    tolerance, rejected with a retry hint, served with looser-but-valid
    bounds).  ``requests_inflight`` is the instantaneous concurrency,
    ``hedged_fetches`` counts duplicated straggler reads, and
    ``worst_degraded_ratio`` is the largest achieved-error /
    requested-tolerance ratio any degraded request returned (1.0 would
    mean it met tolerance after all).  ``resilience`` carries the backing
    store's retry/breaker counters when it is resilience-wrapped — for a
    cluster backend these are the per-node wrappers *merged*, so a
    single dead node still flips ``breaker_is_open``.  ``cluster``
    carries the scale-out fabric's aggregate and per-node counters
    (requests, bytes, failovers, rebalanced fragments) when the backing
    store is a :class:`~repro.storage.cluster.ClusterFragmentStore`.
    """

    sessions_opened: int
    sessions_active: int
    variables_loaded: int
    store_reads: int
    store_bytes_read: int
    store_round_trips: int
    cache: CacheStats
    tiers: TierStats | None = None
    store_puts: int = 0
    store_bytes_written: int = 0
    store_put_round_trips: int = 0
    variables_ingested: int = 0
    durability: DurabilityStats | None = None
    io_wait_seconds: float = 0.0
    compute_seconds: float = 0.0
    retrieval_rounds: int = 0
    executor: "ExecutorStats | None" = None
    requests_admitted: int = 0
    requests_shed: int = 0
    requests_degraded: int = 0
    requests_inflight: int = 0
    hedged_fetches: int = 0
    worst_degraded_ratio: float = 0.0
    resilience: ResilienceStats | None = None
    cluster: ClusterStats | None = None
    planner: PlannerStats | None = None


class RetrievalService:
    """Serve QoI-preserved retrieval to many clients from one archive.

    Parameters
    ----------
    store:
        The backing fragment store (any :class:`FragmentStore`).  If it
        holds a dataset manifest at the reserved key, value ranges are
        loaded from it automatically.
    value_ranges:
        Extra/override ``{variable: max - min}`` entries (Algorithm 3's
        input) for archives without a manifest.
    masks:
        Optional ``{variable: ZeroMask}`` applied in every client session
        (§V-A).
    cache / cache_bytes:
        Share an existing :class:`FragmentCache` across services, or size
        a private one.
    pipeline_depth / max_workers:
        Fetch/decode pipeline knobs every client session retrieves with
        (see :class:`~repro.core.pipeline.PipelineConfig`).  Sessions
        plan each round's fragment set up front and pull it through the
        shared cache with single-flight *batched* loads, so concurrent
        clients' overlapping rounds coalesce into shared store passes.
    lazy_loading:
        Load archived variables lazily (the default): opening a variable
        costs one small store round trip and fragments move only when a
        client's retrieval plan demands them.  Set False to restore the
        eager fetch-everything-at-load behavior.
    executor / workers:
        Kernel executor every client session decodes through — an
        instance, a backend name (``"serial"``/``"thread"``/
        ``"process"``), or None to follow the ``REPRO_EXECUTOR``
        environment default.  With the process backend the service's
        fragment cache is arena-backed: payloads land in shared-memory
        slabs on fetch and decode workers read them in place, so cross-
        client cache hits *and* kernel inputs are zero-copy.
    max_inflight:
        Bound on concurrently-executing retrievals.  ``None`` (default)
        disables admission control entirely; with a bound, a request
        that would exceed it is shed with :class:`OverloadedError`
        instead of queued, and low-priority requests are shed earlier
        (at ``LOW_PRIORITY_WATERMARK`` of the budget).
    client_rate / client_burst:
        Per-client :class:`TokenBucket` parameters (requests/second and
        burst size).  ``client_rate=None`` (default) disables per-client
        rate limiting.
    hedge_delay_s:
        Straggler hedging delay for every client session's fetch
        pipeline (see :class:`~repro.core.pipeline.PipelineConfig`).
    shared_planner:
        Run the cross-request :class:`~repro.service.planner.QueryPlanner`
        and :class:`~repro.service.planner.FetchScheduler` (the default):
        concurrent sessions share one plan cache, and their fetch rounds
        merge into one coalesced store round trip per tick.  Results are
        bit-identical either way; set False to restore fully independent
        per-session planning.
    coalesce_ms:
        How long a scheduling tick holds its first round open for
        concurrent rounds to join (``None`` follows
        :data:`~repro.service.planner.DEFAULT_COALESCE_WINDOW_S`).
        Size it to roughly one fast-store round trip: larger windows
        merge unaligned rounds harder at the cost of that much added
        per-round latency for a solo client.
    slow_trip_rate / slow_trip_burst:
        Budget slow-tier round trips (tiered backend's capacity tier,
        cluster shard fan-outs) to *rate* trips/second with *burst*
        headroom via a :class:`~repro.storage.resilience.TripBudget`.
        Over-budget rounds *wait* (they are admitted work), and queued
        rounds keep merging in the scheduler while they do.  ``None``
        (default) disables budgeting.
    """

    def __init__(
        self,
        store: FragmentStore,
        value_ranges: dict | None = None,
        masks: dict | None = None,
        cache: FragmentCache | None = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        reduction_factor: float = DEFAULT_REDUCTION_FACTOR,
        pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
        max_workers: int = DEFAULT_MAX_WORKERS,
        lazy_loading: bool = True,
        executor=None,
        workers: int | None = None,
        max_inflight: int | None = None,
        client_rate: float | None = None,
        client_burst: float | None = None,
        hedge_delay_s: float | None = None,
        shared_planner: bool = True,
        coalesce_ms: float | None = None,
        slow_trip_rate: float | None = None,
        slow_trip_burst: float | None = None,
    ):
        from repro.parallel.executor import make_executor

        self._inner = store
        self.executor = make_executor(executor, workers=workers)
        arena = getattr(self.executor, "arena", None)
        self.cache = (
            cache if cache is not None else FragmentCache(cache_bytes, arena=arena)
        )
        self.store = CachingFragmentStore(store, self.cache)
        self.archive = Archive(self.store)
        self.reduction_factor = float(reduction_factor)
        self.pipeline = PipelineConfig(
            pipeline_depth=int(pipeline_depth),
            max_workers=int(max_workers),
            hedge_delay_s=None if hedge_delay_s is None else float(hedge_delay_s),
        )
        self.lazy_loading = bool(lazy_loading)
        self._masks = dict(masks or {})
        self.manifest: DatasetManifest | None = None
        self._ranges: dict = {}
        if store.has(MANIFEST_VARIABLE, MANIFEST_SEGMENT):
            self.manifest = DatasetManifest.load_from(self.store)
            self._ranges.update(self.manifest.value_ranges())
        if value_ranges:
            self._ranges.update({k: float(v) for k, v in value_ranges.items()})
        self._lock = threading.Lock()
        self._ingest_lock = threading.Lock()  # one ingest mutates at a time
        self._generations: dict = {}  # variable -> live-ingest version
        self._sessions_opened = 0
        self._sessions_active = 0
        self._variables_loaded = 0
        self._variables_ingested = 0
        self._io_wait_seconds = 0.0
        self._compute_seconds = 0.0
        self._retrieval_rounds = 0
        self.max_inflight = None if max_inflight is None else int(max_inflight)
        self.client_rate = None if client_rate is None else float(client_rate)
        self.client_burst = (
            max(1.0, self.client_rate)
            if client_burst is None and self.client_rate is not None
            else (None if client_burst is None else float(client_burst))
        )
        self._buckets: dict = {}  # client_id -> TokenBucket
        self._inflight = 0
        self._requests_admitted = 0
        self._requests_shed = 0
        self._requests_degraded = 0
        self._hedged_fetches = 0
        self._worst_degraded_ratio = 0.0
        self._latency_ewma_s = 0.0  # recent retrieval wall time
        self.planner = QueryPlanner() if shared_planner else None
        self.scheduler = None
        if shared_planner:
            scheduler_kwargs = {}
            if coalesce_ms is not None:
                scheduler_kwargs["coalesce_window_s"] = float(coalesce_ms) / 1000.0
            self.scheduler = FetchScheduler(
                self.planner, cache=self.cache, **scheduler_kwargs
            )
        self.trip_budget = None
        if slow_trip_rate is not None:
            self.trip_budget = TripBudget(float(slow_trip_rate), slow_trip_burst)
            self._install_trip_budget(store)

    def _install_trip_budget(self, store) -> None:
        """Hook the service's TripBudget onto every slow-trip layer.

        Walks the ``.inner`` decoration chain (resilience wrappers etc.)
        and sets ``trip_budget`` on any layer that exposes the attribute
        — :class:`~repro.storage.tiered.TieredStore` (slow-tier gets) and
        :class:`~repro.storage.cluster.ClusterFragmentStore` (per-shard
        fan-outs).  A cluster of tiered nodes would budget at the
        cluster layer only; node-local tiers are behind the network hop.
        """
        seen: set = set()
        layer = store
        while layer is not None and id(layer) not in seen:
            seen.add(id(layer))
            if hasattr(layer, "trip_budget"):
                layer.trip_budget = self.trip_budget
            layer = getattr(layer, "inner", None)

    @classmethod
    def open(
        cls, archive_dir: str, sharded: bool | None = None, **kwargs
    ) -> "RetrievalService":
        """Open a service over an archive directory or store URL.

        *archive_dir* accepts everything :func:`open_store` does —
        a plain directory (``sharded=None`` auto-detects the layout from
        the persisted index a :class:`ShardedDiskStore` leaves behind)
        or a ``file://``/``sharded://``/``http://``/``tiered://``/
        ``cluster://`` URL.  A tiered backend's transfer thread is
        started so promotion runs for the life of the service; a cluster
        backend's rebalancer thread likewise, so membership changes
        migrate in the background.
        """
        if sharded is None:
            store = open_store(archive_dir)
        elif sharded:
            store = ShardedDiskStore(archive_dir)
        else:
            store = DiskFragmentStore(archive_dir)
        if isinstance(store, TieredStore):
            store.start_transfer()
        if isinstance(store, ClusterFragmentStore):
            store.start_rebalancer()
        return cls(store, **kwargs)

    def variables(self) -> list:
        """Names of the variables this service can retrieve."""
        if self.manifest is not None:
            # under the lock: a live ingest mutates the manifest dict,
            # and iterating it concurrently would raise
            with self._lock:
                return sorted(self.manifest.variables)
        return self.archive.variables()

    def variable_generation(self, variable: str) -> int:
        """Monotonic per-variable version, bumped by every live ingest.

        Client sessions compare this against the generation they loaded
        a variable at, so a replaced variable is re-resolved (fresh
        representation, reset reader state) on the session's next
        retrieve instead of mixing superseded fragments forever.
        """
        with self._lock:
            return self._generations.get(variable, 0)

    def value_range(self, variable: str) -> float:
        """Algorithm 3's per-variable range; KeyError with guidance if unknown."""
        if variable not in self._ranges:
            raise KeyError(
                f"no value range for variable {variable!r}; known: "
                f"{sorted(self._ranges)} (archive a manifest or pass value_ranges)"
            )
        return self._ranges[variable]

    def load_refactored(self, variable: str, lazy: bool | None = None):
        """Load one archived variable through the shared cache.

        ``lazy=None`` follows the service's ``lazy_loading`` default.
        With the shared planner on, loads memoize on
        ``(variable, generation)`` with single-flight, so N concurrent
        sessions opening one variable cost one archive load; an explicit
        *lazy* override bypasses the memo (it changes the load shape).
        """
        with self._lock:
            self._variables_loaded += 1
            generation = self._generations.get(variable, 0)
        use_lazy = self.lazy_loading if lazy is None else lazy
        if self.planner is not None and lazy is None:
            return self.planner.load(
                variable, generation, lambda: self.archive.load(variable, lazy=use_lazy)
            )
        return self.archive.load(variable, lazy=use_lazy)

    def ingest(
        self,
        variables: dict,
        method: str = "pmgard_hb",
        workers: int | None = None,
        flush_bytes: int | None = None,
        timestep: int | None = None,
    ) -> IngestReport:
        """Absorb new or updated variables into the live archive.

        Runs the streaming ingestion engine
        (:class:`~repro.core.ingest.IngestPipeline`) against the
        service's caching store, so every batched write invalidates the
        shared cache's stale entries — a replaced variable can never be
        served from cache memory after this call returns.  The dataset
        manifest, the service's value ranges, and the per-variable
        generations are updated: new sessions see the new data
        immediately, and existing sessions re-resolve a replaced
        variable (fresh representation, reset reader state) at their
        *next* retrieve.  The one unguarded window is a retrieval
        actively decoding a variable while this call replaces it — that
        retrieval may fail or mix representations; *appending* new
        variables or timesteps (the continuous-update scenario) is
        always safe for concurrent readers.

        *variables* maps names to arrays; *method* selects the
        progressive compressor; *timestep* appends each variable under
        its :func:`~repro.utils.fragment_keys.timestep_variable`
        qualified name.  Concurrent ingests serialize on a lock (client
        retrievals are never blocked).  Returns the engine's
        :class:`~repro.core.ingest.IngestReport`.
        """
        from repro.compressors.base import make_refactorer

        config = IngestConfig(
            workers=DEFAULT_INGEST_WORKERS if workers is None else int(workers),
            flush_bytes=(
                DEFAULT_FLUSH_BYTES if flush_bytes is None else int(flush_bytes)
            ),
        )
        refactorer = make_refactorer(method)
        with self._ingest_lock:
            report = IngestPipeline(self.store, config, executor=self.executor).ingest(
                variables, refactorer, timestep=timestep
            )
            with self._lock:
                if self.manifest is None:
                    self.manifest = DatasetManifest(dataset="live")
                update_manifest(
                    self.manifest, self.store, variables, method, report,
                    timestep=timestep,
                )
                for name in variables:
                    archived = (
                        timestep_variable(name, timestep)
                        if timestep is not None
                        else name
                    )
                    # the memoized fragment source would serve superseded
                    # payloads to later lazy loads — drop it, and every
                    # planner memo (representation, plans, seeds) with it
                    self.archive.invalidate_source(archived)
                    if self.planner is not None:
                        self.planner.invalidate(archived)
                    self._ranges[archived] = (
                        self.manifest.variables[archived].value_range
                    )
                    self._generations[archived] = (
                        self._generations.get(archived, 0) + 1
                    )
                    self._variables_ingested += 1
            self.manifest.save_to(self.store)
        return report

    def open_session(self, client_id: str | None = None) -> "ClientSession":
        """Open an independent client session (safe to use on its own thread)."""
        with self._lock:
            self._sessions_opened += 1
            self._sessions_active += 1
            if client_id is None:
                client_id = f"client-{self._sessions_opened}"
        return ClientSession(self, client_id)

    def _session_closed(self) -> None:
        with self._lock:
            self._sessions_active -= 1

    def _retry_after_ms(self) -> float:
        # caller holds self._lock
        return max(MIN_RETRY_AFTER_MS, self._latency_ewma_s * 1000.0)

    def _admit(self, client_id: str, priority: int = 0) -> None:
        """Admit one request or shed it with :class:`OverloadedError`.

        Checks the per-client token bucket first (cheapest to refuse),
        then the in-flight budget; ``priority < 0`` requests are shed
        once the budget is ``LOW_PRIORITY_WATERMARK`` full.  On success
        the in-flight count is taken — the caller must pair this with
        :meth:`_release` (try/finally).  A shed request mutates nothing
        but the shed counter.
        """
        with self._lock:
            if self.client_rate is not None:
                bucket = self._buckets.get(client_id)
                if bucket is None:
                    bucket = TokenBucket(self.client_rate, self.client_burst)
                    self._buckets[client_id] = bucket
                wait = bucket.try_acquire()
                if wait > 0.0:
                    self._requests_shed += 1
                    raise OverloadedError("rate", max(MIN_RETRY_AFTER_MS, wait * 1000.0))
            if self.max_inflight is not None:
                budget = self.max_inflight
                if priority < 0:
                    budget = max(1, int(budget * LOW_PRIORITY_WATERMARK))
                if self._inflight >= budget:
                    self._requests_shed += 1
                    raise OverloadedError("inflight", self._retry_after_ms())
            self._inflight += 1
            self._requests_admitted += 1

    def _release(self) -> None:
        """Return one admitted request's in-flight slot."""
        with self._lock:
            self._inflight -= 1

    def _record_retrieval(self, result, tolerance_ratio: float = 0.0) -> None:
        """Fold one client retrieval's wall-time split into the counters.

        *tolerance_ratio* is the worst achieved-error / requested-
        tolerance ratio across the request batch — meaningful (and > 1)
        only when the result is degraded.
        """
        with self._lock:
            self._io_wait_seconds += result.stopwatch.get("fetch")
            self._compute_seconds += result.stopwatch.get("decode")
            self._retrieval_rounds += result.rounds
            self._hedged_fetches += getattr(result, "hedged_fetches", 0)
            if getattr(result, "degraded", False):
                self._requests_degraded += 1
                self._worst_degraded_ratio = max(
                    self._worst_degraded_ratio, float(tolerance_ratio)
                )
            wall = result.stopwatch.total()
            if wall > 0.0:
                if self._latency_ewma_s == 0.0:
                    self._latency_ewma_s = wall
                else:
                    self._latency_ewma_s += 0.2 * (wall - self._latency_ewma_s)

    def compact(self) -> CompactionReport:
        """Compact the backing store's commit log, reclaiming dead bytes.

        Safe to call while clients retrieve and ingests run — the disk
        stores compact under their write locks and readers never touch
        dead files.  Returns the store's
        :class:`~repro.storage.wal.CompactionReport` (all zeros on
        backends without a commit log).
        """
        return self._inner.compact()

    def close(self) -> None:
        """Close the backing store (flushes and stops a tiered backend).

        The kernel executor is *not* closed here: string-spec executors
        are process-wide shared instances (released atexit), and an
        instance passed in belongs to its caller.
        """
        if self.scheduler is not None:
            self.scheduler.close()
        self._inner.close()

    def stats(self) -> ServiceStats:
        """Snapshot of session, store, cache, tier, and cluster accounting."""
        tiers: TierStats | None = None
        if isinstance(self._inner, TieredStore):
            tiers = self._inner.stats()
        cluster: ClusterStats | None = None
        if isinstance(self._inner, ClusterFragmentStore):
            cluster = self._inner.stats()
        resilience_of = getattr(self._inner, "resilience", None)
        resilience = resilience_of() if callable(resilience_of) else None
        planner_stats = self.planner.stats() if self.planner is not None else None
        if self.trip_budget is not None:
            if planner_stats is None:
                planner_stats = PlannerStats()
            budget = self.trip_budget.snapshot()
            planner_stats.slow_tier_trips_budgeted = budget["acquires"]
            planner_stats.slow_tier_throttle_waits = budget["waits"]
            planner_stats.slow_tier_throttle_wait_seconds = budget["wait_seconds"]
        with self._lock:
            return ServiceStats(
                sessions_opened=self._sessions_opened,
                sessions_active=self._sessions_active,
                variables_loaded=self._variables_loaded,
                store_reads=self._inner.reads,
                store_bytes_read=self._inner.bytes_read,
                store_round_trips=self._inner.round_trips,
                cache=self.cache.stats(),
                tiers=tiers,
                store_puts=self._inner.puts,
                store_bytes_written=self._inner.bytes_written,
                store_put_round_trips=self._inner.put_round_trips,
                variables_ingested=self._variables_ingested,
                durability=self._inner.durability(),
                io_wait_seconds=self._io_wait_seconds,
                compute_seconds=self._compute_seconds,
                retrieval_rounds=self._retrieval_rounds,
                executor=(
                    self.executor.stats() if self.executor is not None else None
                ),
                requests_admitted=self._requests_admitted,
                requests_shed=self._requests_shed,
                requests_degraded=self._requests_degraded,
                requests_inflight=self._inflight,
                hedged_fetches=self._hedged_fetches,
                worst_degraded_ratio=self._worst_degraded_ratio,
                resilience=resilience,
                cluster=cluster,
                planner=planner_stats,
            )


class ClientSession:
    """One client's stateful view of a :class:`RetrievalService`.

    Wraps a :class:`~repro.core.retrieval.RetrievalSession`, resolving the
    variables each request needs lazily through the service (and therefore
    through the shared cache).  Successive ``retrieve`` calls reuse this
    client's readers, so tightening a tolerance only moves incremental
    fragments — the single-analyst economy — while the shared cache keeps
    *other* clients from re-reading what this one already pulled from the
    store.
    """

    def __init__(self, service: RetrievalService, client_id: str):
        self.client_id = client_id
        self._service = service
        self._retriever = QoIRetriever(
            {}, {},
            reduction_factor=service.reduction_factor,
            pipeline_depth=service.pipeline.pipeline_depth,
            max_workers=service.pipeline.max_workers,
            hedge_delay_s=service.pipeline.hedge_delay_s,
            executor=service.executor,
        )
        self._session = RetrievalSession(self._retriever)
        self._generations: dict = {}  # variable -> generation loaded at
        if service.planner is not None:
            # share the service planner's memos and route this session's
            # fetch rounds through the merging scheduler; the retriever's
            # generation map aliases ours so _ensure_variables keeps the
            # planner's memo keys current for free
            self._retriever.planner = service.planner
            self._retriever.fetch_sink = service.scheduler
            self._retriever.plan_generations = self._generations
        self._closed = False

    def _ensure_variables(self, requests) -> None:
        involved = set().union(*(r.qoi.variables() for r in requests))
        for name in sorted(involved):
            generation = self._service.variable_generation(name)
            if (
                name in self._retriever._refactored
                and self._generations.get(name) == generation
            ):
                continue
            value_range = self._service.value_range(name)
            refactored = self._service.load_refactored(name)
            self._retriever.add_variable(
                name, refactored, value_range, mask=self._service._masks.get(name)
            )
            if name in self._generations:
                # a live ingest replaced this variable since it was
                # loaded: the old reader decodes superseded fragments,
                # so this session's state for it starts from scratch
                self._session.reset_variable(name)
            self._generations[name] = generation

    def retrieve(
        self,
        requests,
        max_rounds: int = 100,
        priority: int = 0,
        deadline_ms: float | None = None,
    ) -> RetrievalResult:
        """Run the QoI-preserved retrieval loop for this client.

        The request first passes the service's admission control
        (:meth:`RetrievalService._admit`) — it may be shed with
        :class:`OverloadedError` before touching any session state.
        ``priority < 0`` marks the request sheddable-first;
        ``deadline_ms`` bounds the retrieval's wall time, after which the
        best bounds achieved so far are returned with
        ``result.degraded`` set (see
        :meth:`~repro.core.retrieval.RetrievalSession.retrieve`).
        """
        if self._closed:
            raise RuntimeError(f"session {self.client_id!r} is closed")
        requests = list(requests)
        if not requests:
            raise ValueError("at least one QoIRequest is required")
        self._service._admit(self.client_id, priority=priority)
        try:
            self._ensure_variables(requests)
            result = self._session.retrieve(
                requests,
                max_rounds=max_rounds,
                deadline_s=None if deadline_ms is None else float(deadline_ms) / 1000.0,
            )
        finally:
            self._service._release()
        ratio = 0.0
        if result.degraded:
            for req in requests:
                est = result.estimated_errors.get(req.name)
                if est is not None and req.absolute_tolerance > 0:
                    ratio = max(ratio, float(est) / req.absolute_tolerance)
        self._service._record_retrieval(result, tolerance_ratio=ratio)
        return result

    def bytes_retrieved(self, variable: str | None = None) -> int:
        """Cumulative bytes this client's readers have consumed."""
        return self._session.bytes_retrieved(variable)

    def close(self) -> None:
        """Mark the session closed (idempotent; further retrieves fail)."""
        if not self._closed:
            self._closed = True
            self._service._session_closed()

    def __enter__(self) -> "ClientSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
