"""Command-line interface: archive, ingest, inspect, retrieve, and serve.

Wires the whole pipeline into ten subcommands::

    python -m repro.cli archive  --out ar/ --method pmgard_hb p=pressure.npy d=density.npy
    python -m repro.cli ingest   --archive ar/ --method pmgard_hb t=temperature.npy
    python -m repro.cli info     --archive ar/
    python -m repro.cli retrieve --archive ar/ --qoi product --fields p,d \\
        --tolerance 1e-4 --out rec/
    python -m repro.cli serve    --archive ar/ --port 7117 --metrics-port 9117
    python -m repro.cli client   --port 7117 --qoi product --fields p,d \\
        --tolerance 1e-4 --out rec/
    python -m repro.cli stats    --port 7117          # or: --archive ar/
    python -m repro.cli compact  --archive ar/        # or: --port 7117
    python -m repro.cli snapshot --archive ar/ --dest file:///backups/ar
    python -m repro.cli restore  --snapshot file:///backups/ar --archive ar/

``archive`` refactors each ``name=path.npy`` variable into a
fragment-addressable archive (one object per fragment; pass
``--sharded`` for the hashed fan-out layout) and records the dataset
manifest (shapes, value ranges) that Algorithm 2 needs.  ``ingest`` is
its streaming sibling for archives that already exist: variables are
refactored on ``--workers`` parallel encode threads and flushed with
byte-balanced coalesced ``put_many`` batches (``--flush-bytes``),
adding or replacing variables — or appending ``--timestep`` qualified
steps — without rewriting untouched fragments.  ``retrieve`` runs the
QoI-preserved retrieval loop against the archive — lazily loaded and
driven by the pipelined engine (``--pipeline-depth`` /
``--fetch-workers`` tune it, ``--serial`` disables it) — and writes the
reconstructed variables plus a JSON report of the guaranteed errors.
``retrieve``, ``serve``, and ``ingest`` all take ``--executor
serial|thread|process`` (and ``retrieve``/``serve`` ``--workers N``) to
run the decode/encode kernels on the pluggable kernel executor; the
process backend reads fragment payloads zero-copy out of shared-memory
arena slabs (see docs/architecture.md).
``serve`` exposes the archive to many concurrent clients over TCP behind
a shared fragment cache (``--metrics-port`` adds the HTTP operability
sidecar serving Prometheus ``/metrics`` and a JSON ``/health`` probe);
``client`` runs one retrieval against a running server; ``stats`` prints
either a running server's live counters (store reads/round trips and
puts/bytes written, cache hit/miss/eviction rates, per-tier promotion
counters for tiered backends, WAL durability counters) or a static
summary of an archive.  ``compact`` rewrites an archive's commit log
and unlinks tombstoned fragment files (dead bytes accumulate from
replaced/deleted variables); ``snapshot`` copies a whole store between
any two URLs with byte-for-byte verification, and ``restore`` brings an
archive back to exactly a snapshot's contents (see docs/durability.md).

Everywhere a command takes ``--archive`` (or ``archive --out``), it
accepts either a directory path or a store URL — ``file://``,
``sharded://``, ``memory://``, ``http://host:port`` (a running
``HTTPFragmentServer``), ``tiered://fast?slow=...`` (the tiered
fabric), or ``cluster://host:port,host:port?replicas=2`` (the scale-out
fabric; see ``docs/storage.md`` and ``docs/cluster.md`` for the
grammars).

QoI specs: ``identity`` (1 field), ``vtot`` (3 fields), ``temperature``
(pressure, density), ``mach`` (5 fields), ``product`` (>= 2 fields).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from repro.compressors.base import make_refactorer
from repro.core.ingest import (
    DEFAULT_FLUSH_BYTES,
    DEFAULT_INGEST_WORKERS,
    ingest_dataset,
    update_manifest,
)
from repro.core.pipeline import DEFAULT_MAX_WORKERS, DEFAULT_PIPELINE_DEPTH
from repro.core.qois import qoi_from_spec
from repro.core.retrieval import QoIRequest, QoIRetriever, refactor_dataset
from repro.service.server import RetrievalServer, ServiceClient
from repro.service.service import RetrievalService
from repro.storage.archive import Archive
from repro.storage.cache import DEFAULT_CACHE_BYTES
from repro.storage.metadata import DatasetManifest, VariableMetadata
from repro.storage.store import (
    DiskFragmentStore,
    ShardedDiskStore,
    open_store,
    parse_bytes,
    split_store_url,
)
from repro.storage.cluster import ClusterFragmentStore
from repro.storage.tiered import TieredStore

#: Kept as the public CLI name for the shared spec parser.
build_qoi = qoi_from_spec


def _load_variables(pairs) -> dict:
    """Parse ``name=path.npy`` CLI arguments into ``{name: ndarray}``."""
    variables = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"expected name=path.npy, got {pair!r}")
        name, path = pair.split("=", 1)
        variables[name] = np.load(path)
    return variables


def _cmd_archive(args) -> int:
    variables = _load_variables(args.variables)
    refactorer = make_refactorer(args.method)
    refactored = refactor_dataset(variables, refactorer)
    scheme, rest = split_store_url(args.out)
    if scheme is not None:  # archive straight into any URL-addressed backend
        if getattr(args, "sharded", False):
            raise SystemExit(
                "--sharded only applies to plain directory paths; "
                f"use a sharded:// URL instead of {args.out!r}"
            )
        store = open_store(args.out)
        dataset = os.path.basename(rest.partition("?")[0].rstrip("/")) or "dataset"
    else:
        store_cls = ShardedDiskStore if getattr(args, "sharded", False) else DiskFragmentStore
        store = store_cls(args.out)
        dataset = os.path.basename(args.out.rstrip("/")) or "dataset"
    archive = Archive(store)
    manifest = DatasetManifest(dataset=dataset)
    for name, data in variables.items():
        archive.save(name, refactored[name])
        manifest.add(
            VariableMetadata.from_array(
                name, data, args.method, refactored[name].total_bytes,
                segments=store.segments(name),
            )
        )
    manifest.save_to(store)
    store.close()  # flushes write-back tiers; no-op for local stores
    total = sum(m.total_bytes for m in manifest.variables.values())
    raw = sum(v.nbytes for v in variables.values())
    print(f"archived {len(variables)} variable(s) with {args.method}: "
          f"{total / 1e6:.2f} MB ({raw / 1e6:.2f} MB raw) -> {args.out}")
    return 0


def _cmd_ingest(args) -> int:
    variables = _load_variables(args.variables)
    store = open_store(args.archive)
    try:
        manifest = DatasetManifest.load_from(store)
    except KeyError:  # first ingest into a fresh (or manifest-less) archive
        scheme, rest = split_store_url(args.archive)
        path = (rest if scheme is not None else args.archive).partition("?")[0]
        manifest = DatasetManifest(
            dataset=os.path.basename(path.rstrip("/")) or "dataset"
        )
    report = ingest_dataset(
        store,
        variables,
        make_refactorer(args.method),
        workers=args.workers,
        flush_bytes=parse_bytes(args.flush_bytes),
        timestep=args.timestep,
        executor=args.executor,
    )
    update_manifest(
        manifest, store, variables, args.method, report, timestep=args.timestep
    )
    manifest.save_to(store)
    store.close()  # flushes write-back tiers; no-op for local stores
    superseded = (
        f", {report.superseded} superseded fragment(s) tombstoned"
        if report.superseded else ""
    )
    print(f"ingested {len(variables)} variable(s) with {args.method}: "
          f"{report.fragments} fragment(s) ({report.bytes_written / 1e6:.2f} MB) "
          f"in {report.flushes} batched flush(es), {report.seconds:.2f}s"
          f"{superseded} -> {args.archive}")
    return 0


def _load_manifest(archive_dir: str) -> tuple:
    store = open_store(archive_dir)  # stores reindex themselves on reopen
    manifest = DatasetManifest.load_from(store)
    return store, manifest


def _cmd_info(args) -> int:
    _, manifest = _load_manifest(args.archive)
    print(f"dataset: {manifest.dataset}")
    for name, meta in sorted(manifest.variables.items()):
        print(f"  {name}: shape={meta.shape} dtype={meta.dtype} "
              f"compressor={meta.compressor} archived={meta.total_bytes}B "
              f"range=[{meta.value_min:.6g}, {meta.value_max:.6g}]")
    return 0


def _resilience_from_args(args):
    """Build the (RetryPolicy, CircuitBreaker) pair from --retry/--breaker.

    Either may be None (flag left at 0 = disabled); callers hand the pair
    to :func:`~repro.storage.resilience.wrap_with_resilience`.
    """
    from repro.storage.resilience import CircuitBreaker, RetryPolicy

    retry = RetryPolicy(attempts=args.retry) if args.retry else None
    breaker = (
        CircuitBreaker(
            failure_threshold=args.breaker, cooldown=args.breaker_cooldown
        )
        if args.breaker
        else None
    )
    return retry, breaker


def _cmd_retrieve(args) -> int:
    store, manifest = _load_manifest(args.archive)
    from repro.storage.resilience import wrap_with_resilience

    store = wrap_with_resilience(store, *_resilience_from_args(args))
    fields = [f.strip() for f in args.fields.split(",") if f.strip()]
    qoi = build_qoi(args.qoi, fields)
    missing = [f for f in fields if f not in manifest.variables]
    if missing:
        raise SystemExit(f"fields not in archive: {missing}")
    from repro.parallel.executor import make_executor

    executor = make_executor(args.executor, workers=args.workers)
    arena = getattr(executor, "arena", None)
    if arena is not None:
        # route fragments through an arena-backed cache so decode
        # workers read payloads in place (the zero-copy path)
        from repro.storage.cache import CachingFragmentStore, FragmentCache

        store = CachingFragmentStore(
            store, FragmentCache(DEFAULT_CACHE_BYTES, arena=arena)
        )
    archive = Archive(store)
    lazy = not args.serial
    refactored = {name: archive.load(name, lazy=lazy) for name in fields}
    retriever = QoIRetriever(
        refactored,
        manifest.value_ranges(),
        pipeline_depth=args.pipeline_depth,
        max_workers=args.fetch_workers,
        hedge_delay_s=None if args.hedge_ms is None else args.hedge_ms / 1000.0,
        executor=executor,
    )
    request = QoIRequest(args.qoi, qoi, args.tolerance, args.qoi_range)
    result = retriever.retrieve(
        [request],
        deadline_s=None if args.deadline_ms is None else args.deadline_ms / 1000.0,
    )

    os.makedirs(args.out, exist_ok=True)
    for name, data in result.data.items():
        np.save(os.path.join(args.out, f"{name}.npy"), data)
    report = {
        "qoi": args.qoi,
        "fields": fields,
        "tolerance": args.tolerance,
        "qoi_range": args.qoi_range,
        "satisfied": result.all_satisfied,
        "estimated_error": result.estimated_errors[args.qoi],
        "rounds": result.rounds,
        "bytes_retrieved": result.total_bytes,
        "degraded": result.degraded,
        "degraded_reason": result.degraded_reason,
    }
    with open(os.path.join(args.out, "report.json"), "w") as fh:
        json.dump(report, fh, indent=2)
    if result.degraded:
        status = f"DEGRADED ({result.degraded_reason})"
    elif result.all_satisfied:
        status = "satisfied"
    else:
        status = "NOT satisfied (representation exhausted)"
    print(f"retrieved {result.total_bytes} B in {result.rounds} round(s); "
          f"guaranteed QoI error {result.estimated_errors[args.qoi]:.3e} "
          f"({status}) -> {args.out}")
    store.close()
    return 0 if result.all_satisfied else 2


def _print_tier_stats(tiers: dict) -> None:
    """Print one tiered backend's per-tier counter block."""
    print(f"tiers: fast {tiers['fast_hits']} hit(s) "
          f"({tiers['fast_bytes_served']} B, {tiers['fast_round_trips']} trip(s)) / "
          f"slow {tiers['slow_hits']} hit(s) "
          f"({tiers['slow_bytes_served']} B, {tiers['slow_round_trips']} trip(s))")
    budget = (
        f"{tiers['fast_budget_bytes']} B" if tiers["fast_budget_bytes"] else "unbounded"
    )
    print(f"  fast resident: {tiers['fast_resident_bytes']} B / {budget}; "
          f"{tiers['promotions']} promotion(s) ({tiers['promoted_bytes']} B), "
          f"{tiers['demotions']} demotion(s) ({tiers['demoted_bytes']} B)")
    print(f"  write-back: {tiers['dirty_fragments']} dirty, "
          f"{tiers['writebacks_flushed']} flushed; "
          f"{tiers['transfer_cycles']} transfer cycle(s)")


def _print_cluster_stats(cluster: dict) -> None:
    """Print one cluster backend's aggregate and per-node counter block."""
    print(f"cluster: {cluster['nodes']} node(s), "
          f"replicas={cluster['replicas']}, vnodes={cluster['vnodes']}"
          f"{' (rebalancing)' if cluster.get('rebalancing') else ''}")
    print(f"  failovers: {cluster['failovers']} read(s), "
          f"{cluster['write_failovers']} write(s); "
          f"rebalance: {cluster['rebalances']} pass(es), "
          f"{cluster['rebalanced_fragments']} fragment(s) "
          f"({cluster['rebalanced_bytes']} B) moved")
    for name in sorted(cluster.get("per_node", {})):
        node = cluster["per_node"][name]
        flags = " [breaker open]" if node.get("breaker_is_open") else ""
        print(f"  {name} ({node['url']}): {node['requests']} request(s), "
              f"{node['fragments_served']} served ({node['bytes_read']} B), "
              f"{node['puts']} put(s) ({node['bytes_written']} B), "
              f"{node['failovers']} failover(s), "
              f"{node['rebalanced_in']} rebalanced in{flags}")


def _print_durability(d: dict) -> None:
    """Print the WAL durability counter block of ``repro stats``."""
    print(f"durability: {d['wal_commits']} WAL commit(s) "
          f"({d['wal_entries']} entrie(s), log {d['log_bytes']} B); "
          f"{d['tombstones']} tombstone(s), {d['dead_bytes']} dead B")
    print(f"  compaction: {d['compactions']} run(s), "
          f"{d['reclaimed_bytes']} B reclaimed")


def _cmd_stats(args) -> int:
    if args.archive is not None:
        store = open_store(args.archive)
        archive = Archive(store)
        variables = archive.variables()
        print(f"archive: {args.archive} ({type(store).__name__})")
        print(f"  variables: {len(variables)}")
        print(f"  fragments: {len(store.keys())}")
        print(f"  archived bytes: {store.nbytes()}")
        print(f"  writes this handle: {store.puts} put(s) in "
              f"{store.put_round_trips} round trip(s), {store.bytes_written} B")
        for name in variables:
            print(f"    {name}: {len(store.segments(name))} segment(s), "
                  f"{store.nbytes(name)} B")
        from dataclasses import asdict

        if isinstance(store, TieredStore):
            _print_tier_stats(asdict(store.stats()))
        if isinstance(store, ClusterFragmentStore):
            _print_cluster_stats(asdict(store.stats()))
        _print_durability(asdict(store.durability()))
        store.close()
        return 0
    try:
        client_ctx = ServiceClient(args.host, args.port)
    except OSError as exc:
        raise SystemExit(
            f"cannot reach server at {args.host}:{args.port}: {exc} "
            f"(pass --archive DIR for a static archive summary)"
        )
    with client_ctx as client:
        stats = client.stats()
    cache = stats["cache"]
    print(f"sessions: {stats['sessions_active']} active / "
          f"{stats['sessions_opened']} opened; "
          f"variables loaded: {stats['variables_loaded']}")
    print(f"store: {stats['store_reads']} fragment read(s) in "
          f"{stats['store_round_trips']} round trip(s), "
          f"{stats['store_bytes_read']} B")
    print(f"  writes: {stats['store_puts']} put(s) in "
          f"{stats['store_put_round_trips']} round trip(s), "
          f"{stats['store_bytes_written']} B; "
          f"{stats['variables_ingested']} variable(s) ingested live")
    requests = cache["hits"] + cache["misses"]
    print(f"cache: {cache['hits']} hit(s) / {cache['misses']} miss(es) "
          f"({100.0 * cache['hit_rate']:.1f}% of {requests} request(s)), "
          f"{cache['evictions']} eviction(s)")
    print(f"  resident: {cache['current_bytes']} / {cache['capacity_bytes']} B; "
          f"served {cache['bytes_from_cache']} B from cache, "
          f"{cache['bytes_from_store']} B from store")
    total = stats.get("io_wait_seconds", 0.0) + stats.get("compute_seconds", 0.0)
    if total > 0:
        print(f"retrieval wall time: {stats['compute_seconds']:.3f}s compute / "
              f"{stats['io_wait_seconds']:.3f}s I/O wait "
              f"({100.0 * stats['compute_seconds'] / total:.1f}% compute) "
              f"over {stats['retrieval_rounds']} round(s)")
    executor = stats.get("executor")
    if executor:
        print(f"executor: {executor['backend']} x{executor['workers']} worker(s), "
              f"{executor['tasks']} task(s), {executor['fallbacks']} inline fallback(s)")
    slab_entries = cache.get("slab_entries", 0)
    if slab_entries:
        print(f"  arena: {slab_entries} slab entrie(s), "
              f"{cache['slab_resident_bytes']} B resident in shared memory")
    admitted = stats.get("requests_admitted", 0)
    shed = stats.get("requests_shed", 0)
    degraded = stats.get("requests_degraded", 0)
    if admitted or shed or degraded:
        print(f"admission: {admitted} admitted / {shed} shed / "
              f"{degraded} degraded "
              f"({stats.get('requests_inflight', 0)} in flight, "
              f"{stats.get('hedged_fetches', 0)} hedged fetch(es))")
        if stats.get("worst_degraded_ratio", 0.0) > 0:
            print(f"  worst degraded error/tolerance ratio: "
                  f"{stats['worst_degraded_ratio']:.2f}x")
    planner = stats.get("planner")
    if planner:
        lookups = planner["plan_cache_hits"] + planner["plan_cache_misses"]
        rate = planner["plan_cache_hits"] / lookups if lookups else 0.0
        print(f"planner: {planner['plan_cache_hits']} plan hit(s) / "
              f"{planner['plan_cache_misses']} miss(es) "
              f"({100.0 * rate:.1f}% of {lookups} lookup(s)); "
              f"{planner['representations_shared']} shared / "
              f"{planner['representations_loaded']} loaded representation(s)")
        print(f"  scheduler: {planner['merged_rounds']} merged round(s) over "
              f"{planner['scheduler_ticks']} tick(s) -> "
              f"{planner['coalesced_round_trips']} coalesced trip(s); "
              f"{planner['deduped_fragments']} fragment(s) deduped, "
              f"{planner['speculation_deduped']} speculation(s) deduped")
        if planner["slow_tier_trips_budgeted"]:
            print(f"  slow-tier budget: "
                  f"{planner['slow_tier_trips_budgeted']} trip(s) budgeted, "
                  f"{planner['slow_tier_throttle_waits']} throttled "
                  f"({planner['slow_tier_throttle_wait_seconds']:.3f}s waited)")
    resilience = stats.get("resilience")
    if resilience and resilience.get("attempts"):
        print(f"resilience: {resilience['attempts']} store attempt(s), "
              f"{resilience['retries']} retried, "
              f"{resilience['giveups']} gave up; "
              f"breaker {resilience['breaker_state']} "
              f"({resilience['breaker_opens']} open(s), "
              f"{resilience['breaker_rejections']} rejection(s))")
    if stats.get("tiers"):
        _print_tier_stats(stats["tiers"])
    if stats.get("cluster"):
        _print_cluster_stats(stats["cluster"])
    if stats.get("durability"):
        _print_durability(stats["durability"])
    return 0


def _cmd_serve(args) -> int:
    from repro.storage.resilience import wrap_with_resilience

    store = open_store(args.archive)
    store = wrap_with_resilience(store, *_resilience_from_args(args))
    if isinstance(store, TieredStore):
        store.start_transfer()
    if isinstance(store, ClusterFragmentStore):
        store.start_rebalancer()
    service = RetrievalService(
        store,
        cache_bytes=int(args.cache_mb) << 20,
        pipeline_depth=args.pipeline_depth,
        max_workers=args.fetch_workers,
        executor=args.executor,
        workers=args.workers,
        max_inflight=args.max_inflight,
        client_rate=args.client_rate,
        hedge_delay_s=None if args.hedge_ms is None else args.hedge_ms / 1000.0,
        shared_planner=not args.no_shared_planner,
        coalesce_ms=args.coalesce_ms,
        slow_trip_rate=args.slow_trips_per_s,
    )
    server = RetrievalServer(service, args.host, args.port)
    host, port = server.address
    metrics = None
    if args.metrics_port is not None:
        from repro.service.metrics import MetricsServer

        metrics = MetricsServer(service, args.host, args.metrics_port).start()
        mhost, mport = metrics.address
        print(f"metrics on http://{mhost}:{mport}/metrics "
              f"(health: http://{mhost}:{mport}/health)")
    print(f"serving {args.archive} on {host}:{port} "
          f"(cache budget {args.cache_mb} MiB); Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if metrics is not None:
            metrics.stop()
        server.server_close()
        service.close()  # stops tiered transfer / cluster rebalance threads
    return 0


def _cmd_compact(args) -> int:
    if args.archive is not None:
        store = open_store(args.archive)
        try:
            report = store.compact()
        finally:
            store.close()
        target = args.archive
    else:
        try:
            client_ctx = ServiceClient(args.host, args.port)
        except OSError as exc:
            raise SystemExit(
                f"cannot reach server at {args.host}:{args.port}: {exc} "
                f"(pass --archive DIR to compact a local archive)"
            )
        with client_ctx as client:
            from repro.storage.wal import CompactionReport

            report = CompactionReport(**client.compact())
        target = f"{args.host}:{args.port}"
    print(f"compacted {target}: {report.removed_files} dead file(s) unlinked, "
          f"{report.reclaimed_bytes} B reclaimed; "
          f"log {report.log_bytes_before} -> {report.log_bytes_after} B "
          f"({report.live_fragments} live fragment(s))")
    return 0


def _cmd_snapshot(args) -> int:
    from repro.storage.snapshot import snapshot_store

    report = snapshot_store(
        args.archive,
        args.dest,
        chunk_bytes=parse_bytes(args.chunk_bytes),
        verify=not args.no_verify,
        skip_same_size=args.resume,
    )
    verified = f", {report.verified} verified" if report.verified else ""
    skipped = f", {report.skipped} skipped" if report.skipped else ""
    print(f"snapshot {args.archive} -> {args.dest}: "
          f"{report.fragments} fragment(s) ({report.bytes_copied} B) "
          f"in {report.batches} batch(es){skipped}{verified}")
    return 0


def _cmd_restore(args) -> int:
    from repro.storage.snapshot import restore_store

    report = restore_store(
        args.snapshot,
        args.archive,
        chunk_bytes=parse_bytes(args.chunk_bytes),
        verify=not args.no_verify,
    )
    deleted = f", {report.deleted} extra fragment(s) deleted" if report.deleted else ""
    verified = f", {report.verified} verified" if report.verified else ""
    print(f"restored {args.archive} from {args.snapshot}: "
          f"{report.fragments} fragment(s) ({report.bytes_copied} B) "
          f"in {report.batches} batch(es){deleted}{verified}")
    return 0


def _cmd_client(args) -> int:
    from repro.service.server import OverloadedResponse, ServiceError

    fields = [f.strip() for f in args.fields.split(",") if f.strip()]
    try:
        client_ctx = ServiceClient(
            args.host, args.port, overload_retries=args.retries
        )
    except OSError as exc:
        raise SystemExit(
            f"cannot reach server at {args.host}:{args.port}: {exc}"
        )
    with client_ctx as client:
        try:
            response = client.retrieve(
                args.qoi, fields, args.tolerance, args.qoi_range,
                include_data=args.out is not None,
                priority=args.priority,
                deadline_ms=args.deadline_ms,
            )
        except OverloadedResponse as exc:
            raise SystemExit(
                f"server shed the request ({exc.reason}); "
                f"retry after {exc.retry_after_ms:.0f} ms "
                f"(or raise --retries to back off automatically)"
            )
        except ServiceError as exc:
            raise SystemExit(f"server rejected the request: {exc}")
        if args.out is not None:
            os.makedirs(args.out, exist_ok=True)
            for name, data in response.pop("data", {}).items():
                np.save(os.path.join(args.out, f"{name}.npy"), data)
            report = {
                "qoi": args.qoi,
                "fields": fields,
                "tolerance": args.tolerance,
                "qoi_range": args.qoi_range,
                "satisfied": response["satisfied"],
                "estimated_error": response["estimated_error"],
                "rounds": response["rounds"],
                "bytes_retrieved": response["bytes_retrieved"],
            }
            with open(os.path.join(args.out, "report.json"), "w") as fh:
                json.dump(report, fh, indent=2)
    if response.get("degraded"):
        status = f"DEGRADED ({response.get('degraded_reason')})"
    elif response["satisfied"]:
        status = "satisfied"
    else:
        status = "NOT satisfied (representation exhausted)"
    dest = f" -> {args.out}" if args.out is not None else ""
    print(f"retrieved {response['bytes_retrieved']} B in {response['rounds']} round(s); "
          f"guaranteed QoI error {response['estimated_error']:.3e} ({status}){dest}")
    return 0 if response["satisfied"] else 2


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="QoI-preserving progressive retrieval"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_archive = sub.add_parser("archive", help="refactor variables into an archive")
    p_archive.add_argument("--out", required=True,
                           help="archive directory or store URL (docs/storage.md)")
    p_archive.add_argument(
        "--method", default="pmgard_hb",
        choices=["psz3", "psz3_delta", "pmgard", "pmgard_hb", "pzfp"],
    )
    p_archive.add_argument("variables", nargs="+", metavar="name=path.npy")
    p_archive.add_argument(
        "--sharded", action="store_true",
        help="hashed fan-out directory layout with a persisted index",
    )
    p_archive.set_defaults(func=_cmd_archive)

    p_ingest = sub.add_parser(
        "ingest", help="stream variables into an existing archive in parallel"
    )
    p_ingest.add_argument("--archive", required=True,
                          help="archive directory or store URL (docs/storage.md)")
    p_ingest.add_argument(
        "--method", default="pmgard_hb",
        choices=["psz3", "psz3_delta", "pmgard", "pmgard_hb"],
    )
    p_ingest.add_argument("variables", nargs="+", metavar="name=path.npy")
    p_ingest.add_argument("--workers", type=int, default=DEFAULT_INGEST_WORKERS,
                          help="parallel transform+encode threads (0 encodes serially)")
    p_ingest.add_argument("--flush-bytes", default=str(DEFAULT_FLUSH_BYTES),
                          help="coalesced put_many flush threshold "
                               "(binary suffixes allowed, e.g. 4M)")
    p_ingest.add_argument("--timestep", type=int, default=None,
                          help="append variables as NAME@tNNNN timestep keys")
    p_ingest.add_argument("--executor", default=None,
                          choices=["serial", "thread", "process"],
                          help="kernel executor for the transform+encode stage "
                               "(default: REPRO_EXECUTOR env, else thread pool)")
    p_ingest.set_defaults(func=_cmd_ingest)

    p_info = sub.add_parser("info", help="list archived variables")
    p_info.add_argument("--archive", required=True)
    p_info.set_defaults(func=_cmd_info)

    p_ret = sub.add_parser("retrieve", help="QoI-preserved retrieval")
    p_ret.add_argument("--archive", required=True,
                       help="archive directory or store URL")
    p_ret.add_argument("--qoi", required=True,
                       help="identity | vtot | temperature | mach | product")
    p_ret.add_argument("--fields", required=True, help="comma-separated field names")
    p_ret.add_argument("--tolerance", type=float, required=True,
                       help="relative QoI tolerance (see --qoi-range)")
    p_ret.add_argument("--qoi-range", type=float, default=1.0,
                       help="QoI value range; 1.0 means --tolerance is absolute")
    p_ret.add_argument("--out", required=True, help="output directory")
    p_ret.add_argument("--pipeline-depth", type=int, default=DEFAULT_PIPELINE_DEPTH,
                       help="speculative round-prefetches in flight (0 disables)")
    p_ret.add_argument("--fetch-workers", type=int, default=DEFAULT_MAX_WORKERS,
                       help="fetch-stage threads (0 fetches synchronously)")
    p_ret.add_argument("--serial", action="store_true",
                       help="eager per-fragment loading (the pre-pipeline behavior)")
    p_ret.add_argument("--executor", default=None,
                       choices=["serial", "thread", "process"],
                       help="kernel executor for decode kernels; process reads "
                            "fragments zero-copy from shared-memory slabs "
                            "(default: REPRO_EXECUTOR env, else inline)")
    p_ret.add_argument("--workers", type=int, default=None,
                       help="kernel-executor worker count (default: CPU count)")
    p_ret.add_argument("--retry", type=int, default=0,
                       help="store attempts per operation under transient "
                            "faults (0 disables retries)")
    p_ret.add_argument("--breaker", type=int, default=0,
                       help="circuit-breaker failure threshold for the store "
                            "(0 disables the breaker)")
    p_ret.add_argument("--breaker-cooldown", type=float, default=5.0,
                       help="seconds an open breaker waits before probing")
    p_ret.add_argument("--deadline-ms", type=float, default=None,
                       help="retrieval wall-time budget; on expiry the best "
                            "bounds achieved so far are returned (degraded)")
    p_ret.add_argument("--hedge-ms", type=float, default=None,
                       help="duplicate a round's last straggler fetch after "
                            "this many ms (tail-latency hedging)")
    p_ret.set_defaults(func=_cmd_retrieve)

    p_serve = sub.add_parser(
        "serve", help="serve an archive to concurrent clients over TCP"
    )
    p_serve.add_argument("--archive", required=True,
                         help="archive directory or store URL")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7117,
                         help="TCP port (0 picks an ephemeral port)")
    p_serve.add_argument("--cache-mb", type=int,
                         default=DEFAULT_CACHE_BYTES >> 20,
                         help="shared fragment-cache budget in MiB")
    p_serve.add_argument("--pipeline-depth", type=int, default=DEFAULT_PIPELINE_DEPTH,
                         help="per-session speculative round-prefetches in flight")
    p_serve.add_argument("--fetch-workers", type=int, default=DEFAULT_MAX_WORKERS,
                         help="per-session fetch-stage threads")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         help="also serve HTTP /metrics (Prometheus) and "
                              "/health on this port (0 picks one)")
    p_serve.add_argument("--executor", default=None,
                         choices=["serial", "thread", "process"],
                         help="kernel executor every client session decodes "
                              "through (default: REPRO_EXECUTOR env, else inline)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="kernel-executor worker count (default: CPU count)")
    p_serve.add_argument("--max-inflight", type=int, default=None,
                         help="bound on concurrent retrievals; beyond it "
                              "requests are shed with a retry_after hint "
                              "(default: unbounded)")
    p_serve.add_argument("--client-rate", type=float, default=None,
                         help="per-client token-bucket rate in requests/s "
                              "(default: unlimited)")
    p_serve.add_argument("--retry", type=int, default=0,
                         help="store attempts per operation under transient "
                              "faults (0 disables retries)")
    p_serve.add_argument("--breaker", type=int, default=0,
                         help="circuit-breaker failure threshold for the "
                              "backing store (0 disables the breaker)")
    p_serve.add_argument("--breaker-cooldown", type=float, default=5.0,
                         help="seconds an open breaker waits before probing")
    p_serve.add_argument("--hedge-ms", type=float, default=None,
                         help="per-session straggler-fetch hedging delay in ms")
    p_serve.add_argument("--no-shared-planner", action="store_true",
                         help="disable the cross-request plan cache and "
                              "round-merging fetch scheduler (results are "
                              "bit-identical either way)")
    p_serve.add_argument("--coalesce-ms", type=float, default=None,
                         help="scheduler tick hold window for merging "
                              "concurrent rounds (default ~2 ms; size to "
                              "one fast-store round trip)")
    p_serve.add_argument("--slow-trips-per-s", type=float, default=None,
                         help="budget slow-tier / cluster-shard round trips "
                              "to this many per second (over-budget rounds "
                              "wait and keep merging; default unlimited)")
    p_serve.set_defaults(func=_cmd_serve)

    p_stats = sub.add_parser(
        "stats", help="store/cache counters of a server or an archive"
    )
    p_stats.add_argument("--archive", default=None,
                         help="print a static summary of this archive directory/URL")
    p_stats.add_argument("--host", default="127.0.0.1")
    p_stats.add_argument("--port", type=int, default=7117,
                         help="query a running server's live counters")
    p_stats.set_defaults(func=_cmd_stats)

    p_compact = sub.add_parser(
        "compact", help="reclaim tombstoned bytes from an archive's commit log"
    )
    p_compact.add_argument("--archive", default=None,
                           help="compact this archive directory/URL in-process")
    p_compact.add_argument("--host", default="127.0.0.1")
    p_compact.add_argument("--port", type=int, default=7117,
                           help="or ask a running server to compact its store")
    p_compact.set_defaults(func=_cmd_compact)

    p_snap = sub.add_parser(
        "snapshot", help="copy a whole archive between two store URLs"
    )
    p_snap.add_argument("--archive", required=True,
                        help="source archive directory or store URL")
    p_snap.add_argument("--dest", required=True,
                        help="destination store URL (any scheme)")
    p_snap.add_argument("--chunk-bytes", default="32M",
                        help="payload bytes per copy batch (binary suffixes)")
    p_snap.add_argument("--no-verify", action="store_true",
                        help="skip the byte-for-byte read-back verification")
    p_snap.add_argument("--resume", action="store_true",
                        help="skip fragments the destination already holds "
                             "at the source's size (re-run after interruption)")
    p_snap.set_defaults(func=_cmd_snapshot)

    p_restore = sub.add_parser(
        "restore", help="reset an archive to exactly a snapshot's contents"
    )
    p_restore.add_argument("--snapshot", required=True,
                           help="snapshot store URL to restore from")
    p_restore.add_argument("--archive", required=True,
                           help="destination archive directory or store URL")
    p_restore.add_argument("--chunk-bytes", default="32M",
                           help="payload bytes per copy batch (binary suffixes)")
    p_restore.add_argument("--no-verify", action="store_true",
                           help="skip the byte-for-byte read-back verification")
    p_restore.set_defaults(func=_cmd_restore)

    p_client = sub.add_parser(
        "client", help="QoI-preserved retrieval against a running server"
    )
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=7117)
    p_client.add_argument("--qoi", required=True,
                          help="identity | vtot | temperature | mach | product")
    p_client.add_argument("--fields", required=True, help="comma-separated field names")
    p_client.add_argument("--tolerance", type=float, required=True,
                          help="relative QoI tolerance (see --qoi-range)")
    p_client.add_argument("--qoi-range", type=float, default=1.0,
                          help="QoI value range; 1.0 means --tolerance is absolute")
    p_client.add_argument("--out", default=None,
                          help="save reconstructed fields + report here")
    p_client.add_argument("--priority", type=int, default=0,
                          help="request priority (negative = shed first "
                               "under overload)")
    p_client.add_argument("--deadline-ms", type=float, default=None,
                          help="server-side retrieval deadline; on expiry "
                               "the response is degraded with best bounds")
    p_client.add_argument("--retries", type=int, default=0,
                          help="re-issue a shed request this many times, "
                               "honoring the server's retry_after hint")
    p_client.set_defaults(func=_cmd_client)
    return parser


def main(argv=None) -> int:
    args = make_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout piped into e.g. `head`; exiting quietly is the polite
        # Unix behavior (stderr still works for real errors)
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
