"""Command-line interface: archive, inspect, and retrieve datasets.

Wires the whole pipeline into three subcommands::

    python -m repro.cli archive  --out ar/ --method pmgard_hb p=pressure.npy d=density.npy
    python -m repro.cli info     --archive ar/
    python -m repro.cli retrieve --archive ar/ --qoi product --fields p,d \\
        --tolerance 1e-4 --out rec/

``archive`` refactors each ``name=path.npy`` variable into a
fragment-addressable on-disk archive (one file per fragment) and records
the dataset manifest (shapes, value ranges) that Algorithm 2 needs.
``retrieve`` runs the QoI-preserved retrieval loop against the archive
and writes the reconstructed variables plus a JSON report of the
guaranteed errors.

QoI specs: ``identity`` (1 field), ``vtot`` (3 fields), ``temperature``
(pressure, density), ``mach`` (5 fields), ``product`` (>= 2 fields).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from repro.compressors.base import make_refactorer
from repro.core.expressions import Var
from repro.core.qois import mach_number, molar_product, temperature, total_velocity
from repro.core.retrieval import QoIRequest, QoIRetriever, refactor_dataset
from repro.storage.archive import Archive
from repro.storage.metadata import DatasetManifest, VariableMetadata
from repro.storage.store import DiskFragmentStore

_MANIFEST_VAR = "_dataset"
_MANIFEST_SEG = "manifest.json"


def build_qoi(spec: str, fields: list):
    """Construct a QoI tree from a CLI spec and its field names."""
    spec = spec.lower()
    if spec == "identity":
        if len(fields) != 1:
            raise ValueError("identity expects exactly 1 field")
        return Var(fields[0])
    if spec == "vtot":
        if len(fields) != 3:
            raise ValueError("vtot expects exactly 3 fields (vx,vy,vz)")
        return total_velocity(*fields)
    if spec == "temperature":
        if len(fields) != 2:
            raise ValueError("temperature expects 2 fields (pressure,density)")
        return temperature(*fields)
    if spec == "mach":
        if len(fields) != 5:
            raise ValueError("mach expects 5 fields (vx,vy,vz,pressure,density)")
        return mach_number(*fields)
    if spec == "product":
        if len(fields) < 2:
            raise ValueError("product expects at least 2 fields")
        return molar_product(*fields)
    raise ValueError(
        f"unknown QoI spec {spec!r}; options: identity, vtot, temperature, mach, product"
    )


def _cmd_archive(args) -> int:
    variables = {}
    for pair in args.variables:
        if "=" not in pair:
            raise SystemExit(f"expected name=path.npy, got {pair!r}")
        name, path = pair.split("=", 1)
        variables[name] = np.load(path)
    refactorer = make_refactorer(args.method)
    refactored = refactor_dataset(variables, refactorer)
    store = DiskFragmentStore(args.out)
    archive = Archive(store)
    manifest = DatasetManifest(dataset=os.path.basename(args.out.rstrip("/")) or "dataset")
    for name, data in variables.items():
        archive.save(name, refactored[name])
        manifest.add(
            VariableMetadata.from_array(
                name, data, args.method, refactored[name].total_bytes,
                segments=store.segments(name),
            )
        )
    store.put(_MANIFEST_VAR, _MANIFEST_SEG, manifest.to_json().encode())
    total = sum(m.total_bytes for m in manifest.variables.values())
    raw = sum(v.nbytes for v in variables.values())
    print(f"archived {len(variables)} variable(s) with {args.method}: "
          f"{total / 1e6:.2f} MB ({raw / 1e6:.2f} MB raw) -> {args.out}")
    return 0


def _load_manifest(archive_dir: str) -> tuple:
    store = DiskFragmentStore(archive_dir)
    # re-index existing files on disk
    for fname in sorted(os.listdir(archive_dir)):
        if not fname.endswith(".bin"):
            continue
        var, seg = fname[:-4].split("__", 1)
        store._data[(var, seg)] = None
    manifest = DatasetManifest.from_json(
        store.get(_MANIFEST_VAR, _MANIFEST_SEG).decode()
    )
    return store, manifest


def _cmd_info(args) -> int:
    _, manifest = _load_manifest(args.archive)
    print(f"dataset: {manifest.dataset}")
    for name, meta in sorted(manifest.variables.items()):
        print(f"  {name}: shape={meta.shape} dtype={meta.dtype} "
              f"compressor={meta.compressor} archived={meta.total_bytes}B "
              f"range=[{meta.value_min:.6g}, {meta.value_max:.6g}]")
    return 0


def _cmd_retrieve(args) -> int:
    store, manifest = _load_manifest(args.archive)
    fields = [f.strip() for f in args.fields.split(",") if f.strip()]
    qoi = build_qoi(args.qoi, fields)
    missing = [f for f in fields if f not in manifest.variables]
    if missing:
        raise SystemExit(f"fields not in archive: {missing}")
    archive = Archive(store)
    refactored = {name: archive.load(name) for name in fields}
    retriever = QoIRetriever(refactored, manifest.value_ranges())
    request = QoIRequest(args.qoi, qoi, args.tolerance, args.qoi_range)
    result = retriever.retrieve([request])

    os.makedirs(args.out, exist_ok=True)
    for name, data in result.data.items():
        np.save(os.path.join(args.out, f"{name}.npy"), data)
    report = {
        "qoi": args.qoi,
        "fields": fields,
        "tolerance": args.tolerance,
        "qoi_range": args.qoi_range,
        "satisfied": result.all_satisfied,
        "estimated_error": result.estimated_errors[args.qoi],
        "rounds": result.rounds,
        "bytes_retrieved": result.total_bytes,
    }
    with open(os.path.join(args.out, "report.json"), "w") as fh:
        json.dump(report, fh, indent=2)
    status = "satisfied" if result.all_satisfied else "NOT satisfied (representation exhausted)"
    print(f"retrieved {result.total_bytes} B in {result.rounds} round(s); "
          f"guaranteed QoI error {result.estimated_errors[args.qoi]:.3e} "
          f"({status}) -> {args.out}")
    return 0 if result.all_satisfied else 2


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="QoI-preserving progressive retrieval"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_archive = sub.add_parser("archive", help="refactor variables into an archive")
    p_archive.add_argument("--out", required=True, help="archive directory")
    p_archive.add_argument(
        "--method", default="pmgard_hb",
        choices=["psz3", "psz3_delta", "pmgard", "pmgard_hb", "pzfp"],
    )
    p_archive.add_argument("variables", nargs="+", metavar="name=path.npy")
    p_archive.set_defaults(func=_cmd_archive)

    p_info = sub.add_parser("info", help="list archived variables")
    p_info.add_argument("--archive", required=True)
    p_info.set_defaults(func=_cmd_info)

    p_ret = sub.add_parser("retrieve", help="QoI-preserved retrieval")
    p_ret.add_argument("--archive", required=True)
    p_ret.add_argument("--qoi", required=True,
                       help="identity | vtot | temperature | mach | product")
    p_ret.add_argument("--fields", required=True, help="comma-separated field names")
    p_ret.add_argument("--tolerance", type=float, required=True,
                       help="relative QoI tolerance (see --qoi-range)")
    p_ret.add_argument("--qoi-range", type=float, default=1.0,
                       help="QoI value range; 1.0 means --tolerance is absolute")
    p_ret.add_argument("--out", required=True, help="output directory")
    p_ret.set_defaults(func=_cmd_retrieve)
    return parser


def main(argv=None) -> int:
    args = make_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
