"""Synthetic field generators mimicking the paper's four applications.

Each generator returns ``{field name: ndarray}`` (float64, the paper's
evaluation dtype).  Fields are deterministic given the seed, smooth enough
to compress realistically, and carry the features the paper's evaluation
leans on:

* **GE CFD** — linearized unstructured turbomachinery state: swirling
  velocities with *exact-zero wall nodes* (the §V-A mask case), pressure
  around 1 bar, density around 1.2 kg/m^3.
* **NYX** — cosmological baryon velocity components as power-law Gaussian
  random fields (the standard statistical model for large-scale structure
  velocity fields).
* **Hurricane** — a translating Rankine-like vortex sampled on a 3D grid,
  matching the IEEE Vis contest data's structure (strong rotational wind
  plus weak vertical velocity).
* **S3D** — 8 reacting-species molar concentrations across a mixing
  layer: strictly positive, tanh + Gaussian reaction-zone profiles, in
  the paper's H2/O2 reaction set ordering
  (x0=H2, x1=O2, x3=H, x4=O, x5=OH).
"""

from __future__ import annotations

import numpy as np


def ge_cfd(num_nodes: int = 20000, num_blocks: int = 1, wall_fraction: float = 0.04, seed: int = 0):
    """GE-like linearized CFD state (velocities, pressure, density).

    ``num_blocks > 1`` concatenates independently seeded blocks, mirroring
    the GE data's ``200 x { }`` blocked layout.
    """
    if num_nodes < 16:
        raise ValueError("num_nodes must be >= 16")
    rng = np.random.default_rng(seed)
    fields = {k: [] for k in ("velocity_x", "velocity_y", "velocity_z", "pressure", "density")}
    for b in range(num_blocks):
        n = num_nodes
        s = np.linspace(0, 8 * np.pi, n)
        phase = rng.uniform(0, 2 * np.pi)
        swirl = 150.0 * np.sin(s + phase) * (1 + 0.2 * np.sin(0.13 * s))
        vx = swirl + 40.0 + 3.0 * rng.normal(size=n)
        vy = 90.0 * np.cos(s * 0.7 + phase) + 2.0 * rng.normal(size=n)
        vz = 35.0 * np.sin(s * 1.3) + 1.5 * rng.normal(size=n)
        pressure = 1.0e5 + 2.5e4 * np.sin(s / 3 + phase) + 300.0 * rng.normal(size=n)
        density = 1.2 + 0.25 * np.cos(s / 5) + 0.004 * rng.normal(size=n)
        if wall_fraction > 0:
            walls = rng.random(n) < wall_fraction
            vx[walls] = vy[walls] = vz[walls] = 0.0
        for name, arr in zip(fields, (vx, vy, vz, pressure, density)):
            fields[name].append(arr)
    return {k: np.concatenate(v) for k, v in fields.items()}


def _gaussian_random_field(shape, spectral_index=-2.0, rng=None):
    """Isotropic Gaussian random field with power-law spectrum ~ k^index."""
    rng = rng or np.random.default_rng(0)
    kaxes = [np.fft.fftfreq(n) * n for n in shape]
    kgrid = np.meshgrid(*kaxes, indexing="ij")
    k2 = sum(k * k for k in kgrid)
    k2.flat[0] = 1.0  # avoid the DC singularity
    amplitude = k2 ** (spectral_index / 2.0)
    amplitude.flat[0] = 0.0
    noise = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    field = np.real(np.fft.ifftn(noise * amplitude))
    field /= np.std(field)
    return field


def nyx(shape=(64, 64, 64), velocity_scale: float = 2.5e7, seed: int = 0):
    """NYX-like baryon velocity components (cm/s scale, as in the code)."""
    rng = np.random.default_rng(seed)
    return {
        f"velocity_{axis}": velocity_scale * _gaussian_random_field(shape, -2.2, rng)
        for axis in "xyz"
    }


def hurricane(shape=(20, 100, 100), max_wind: float = 70.0, seed: int = 0):
    """Hurricane-like wind components on a (z, y, x) grid (m/s)."""
    rng = np.random.default_rng(seed)
    nz, ny, nx = shape
    z = np.linspace(0, 1, nz)[:, None, None]
    y = np.linspace(-1, 1, ny)[None, :, None]
    x = np.linspace(-1, 1, nx)[None, None, :]
    # eye drifts with altitude; Rankine vortex tangential profile
    cx, cy = 0.15 * z, 0.1 * z
    dx, dy = x - cx, y - cy
    r = np.sqrt(dx * dx + dy * dy) + 1e-12
    r_eye = 0.12
    v_t = max_wind * np.where(r < r_eye, r / r_eye, r_eye / r) * (1 - 0.5 * z)
    u = -v_t * dy / r + 0.8 * rng.normal(size=shape)
    v = v_t * dx / r + 0.8 * rng.normal(size=shape)
    w = 4.0 * np.exp(-((r - r_eye) ** 2) / 0.005) * (1 - z) + 0.2 * rng.normal(size=shape)
    return {"velocity_x": u, "velocity_y": v, "velocity_z": w}


_S3D_SPECIES = ("x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7")
_S3D_BASE = {  # rough molar-concentration scales of an H2/air flame
    "x0": 3e-3,  # H2
    "x1": 7e-3,  # O2
    "x2": 2.5e-2,  # N2-ish diluent
    "x3": 4e-5,  # H
    "x4": 6e-5,  # O
    "x5": 1.2e-4,  # OH
    "x6": 1.5e-3,  # H2O
    "x7": 8e-5,  # HO2
}


def s3d(shape=(48, 40, 32), seed: int = 0):
    """S3D-like molar concentrations of 8 species across a mixing layer."""
    rng = np.random.default_rng(seed)
    axes = np.meshgrid(*[np.linspace(-1, 1, n) for n in shape], indexing="ij")
    mix = 0.5 * (1 + np.tanh(4 * axes[0] + 0.8 * np.sin(3 * axes[1])))
    flame = np.exp(-((axes[0] - 0.15 * np.sin(2 * axes[2])) ** 2) / 0.02)
    fields = {}
    for i, name in enumerate(_S3D_SPECIES):
        base = _S3D_BASE[name]
        if name in ("x3", "x4", "x5", "x7"):  # radicals live in the flame zone
            profile = flame * (0.6 + 0.4 * np.sin(1.7 * axes[1] + i))
        elif name in ("x0",):  # fuel side
            profile = (1 - mix) * (1 - 0.7 * flame)
        elif name in ("x1", "x2"):  # oxidizer side
            profile = mix * (1 - 0.5 * flame)
        else:  # products downstream
            profile = flame + 0.3 * mix
        noise = 0.02 * rng.normal(size=shape)
        fields[name] = base * np.clip(profile + noise, 1e-4, None)
    return fields
