"""Dataset registry mirroring the paper's Table III.

``TABLE3`` maps dataset names to :class:`DatasetSpec` entries carrying the
paper's metadata (dimensions, variable count, size) alongside our scaled
synthetic-generation defaults, and :func:`load_dataset` materializes the
fields plus the QoI requests each dataset is evaluated with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.qois import GE_QOIS, molar_product, total_velocity
from repro.data import generators


@dataclass
class Dataset:
    """Materialized dataset: fields plus the QoIs the paper evaluates."""

    name: str
    fields: dict
    qois: dict  # QoI name -> expression tree

    @property
    def num_elements(self) -> int:
        return int(next(iter(self.fields.values())).size)

    def value_ranges(self) -> dict:
        return {
            k: float(np.max(v) - np.min(v)) or 1.0 for k, v in self.fields.items()
        }

    def qoi_ranges(self) -> dict:
        """Value range of every QoI on the original data (§III-C metric)."""
        env = {k: (v, 0.0) for k, v in self.fields.items()}
        out = {}
        for name, qoi in self.qois.items():
            vals = qoi.value(env)
            r = float(np.max(vals) - np.min(vals))
            out[name] = r if r > 0 else 1.0
        return out


@dataclass(frozen=True)
class DatasetSpec:
    """Table III row: paper metadata + our scaled generator."""

    name: str
    paper_dimensions: str
    num_variables: int
    dtype: str
    paper_size: str
    qoi_description: str
    generator: object = field(repr=False, default=None)


#: The paper's S3D evaluation products (Fig. 6): molar concentrations of
#: species pairs in the H + O2 <-> O + OH reaction family.
S3D_PRODUCTS = {
    "x0*x1": ("x0", "x1"),
    "x1*x3": ("x1", "x3"),
    "x3*x4": ("x3", "x4"),
    "x4*x5": ("x4", "x5"),
}


def _ge_qois():
    return dict(GE_QOIS)


def _vtot_qoi():
    return {"VTOT": total_velocity()}


def _s3d_qois():
    return {name: molar_product(*species) for name, species in S3D_PRODUCTS.items()}


TABLE3 = {
    "GE-small": DatasetSpec(
        "GE-small", "200 x { }", 5, "double", "137.96 MB", "Eq.(1) - (6)",
        lambda scale=1.0, seed=0: generators.ge_cfd(
            num_nodes=max(16, int(20000 * scale)), seed=seed
        ),
    ),
    "Hurricane": DatasetSpec(
        "Hurricane", "100 x 500 x 500", 3, "double", "572.20 MB", "Total velocity",
        lambda scale=1.0, seed=0: generators.hurricane(
            shape=tuple(max(8, int(n * scale)) for n in (20, 100, 100)), seed=seed
        ),
    ),
    "NYX": DatasetSpec(
        "NYX", "512 x 512 x 512", 3, "double", "3.00 GB", "Total velocity",
        lambda scale=1.0, seed=0: generators.nyx(
            shape=tuple(max(8, int(64 * scale)) for _ in range(3)), seed=seed
        ),
    ),
    "S3D": DatasetSpec(
        "S3D", "1200 x 334 x 200", 8, "double", "4.78 GB",
        "Molar concentration multiplication",
        lambda scale=1.0, seed=0: generators.s3d(
            shape=tuple(max(8, int(n * scale)) for n in (48, 40, 32)), seed=seed
        ),
    ),
    "GE-large": DatasetSpec(
        "GE-large", "96 x { }", 5, "double", "7.79 GB", "Eq.(1) - (6)",
        lambda scale=1.0, seed=0: generators.ge_cfd(
            num_nodes=max(16, int(8000 * scale)), num_blocks=4, seed=seed
        ),
    ),
}

_QOI_BUILDERS = {
    "GE-small": _ge_qois,
    "GE-large": _ge_qois,
    "Hurricane": _vtot_qoi,
    "NYX": _vtot_qoi,
    "S3D": _s3d_qois,
}


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Dataset:
    """Materialize a Table III dataset at a given size *scale*."""
    try:
        spec = TABLE3[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; options: {sorted(TABLE3)}")
    fields = spec.generator(scale=scale, seed=seed)
    return Dataset(name=name, fields=fields, qois=_QOI_BUILDERS[name]())
