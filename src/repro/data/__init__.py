"""Synthetic dataset substrates standing in for the paper's Table III.

The GE CFD data is proprietary and the full NYX/Hurricane/S3D snapshots
are multi-GB downloads; the generators here produce fields with the same
*structure* — smoothness, value scales, zero-wall nodes, multi-species
positivity — at configurable (default laptop-scale) sizes.  DESIGN.md §1.3
documents each substitution.
"""

from repro.data.datasets import Dataset, TABLE3, load_dataset
from repro.data.generators import (
    ge_cfd,
    hurricane,
    nyx,
    s3d,
)

__all__ = [
    "Dataset",
    "TABLE3",
    "load_dataset",
    "ge_cfd",
    "hurricane",
    "nyx",
    "s3d",
]
