"""Fetch/decode pipeline of the batched progressive-retrieval engine.

The QoI retrieval loop (Algorithm 2) alternates between *fetching*
fragments and *computing* on them (decode, reconstruct, estimate).  Run
naively, those phases strictly alternate: every round blocks on one
``store.get`` per (variable, segment), decodes, and only then thinks
about the next round.  This module provides the machinery that breaks the
alternation:

* :class:`FetchPipeline.submit_round` turns a round's *planned* fragment
  set (every unsatisfied variable's ``plan_segments``) into a handful of
  byte-balanced batches, each fetched with one coalesced
  ``store.get_many`` on a worker thread.  The decode stage consumes
  batches in *completion* order, so variable A decodes while variable B's
  fragments are still in flight.
* :meth:`FetchPipeline.speculate` prefetches the fragments the *next*
  round is predicted to need (current bounds tightened by Algorithm 4's
  reduction factor, up to ``pipeline_depth`` steps ahead) while the
  current round's QoI estimation runs.  A speculative plan is always a
  subset of the next *actual* round's fetch (Algorithm 4 tightens by at
  least one factor of ``c``), so a batch the fetch stage has not reached
  by the time that round lands simply dissolves into a no-op — and
  :meth:`FetchPipeline.close` waits for whatever remains, which makes a
  retrieval's total fetched-fragment set **deterministic**: identical
  re-runs against a warm shared cache add zero store traffic.

Speculation is invisible to correctness: it only warms the per-variable
fragment memos (and, behind a service, the shared cache), while decode
consumes exactly what the plan demands — so pipelined retrieval is
bit-identical to serial retrieval, with the store traffic reshaped into
few large round trips instead of many small ones.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from time import perf_counter

from repro.storage.archive import prefetch_plans


def hedge_plans(plans) -> int:
    """Duplicate-fetch *plans* regardless of in-flight claims.

    The hedged twin of :func:`~repro.storage.archive.prefetch_plans`:
    where that claims segments atomically so cooperating prefetches
    never read a fragment twice, this *deliberately* re-reads segments a
    straggling batch has claimed but not delivered — the point of a
    hedge is racing the straggler, not queueing behind it.  Segments
    that already arrived are still skipped, results land via the same
    idempotent ``absorb``, and no claims are taken or released, so the
    straggler's own bookkeeping is untouched whichever fetch wins.
    Returns the number of fragments fetched.
    """
    by_store: dict = {}
    for source, segments in plans:
        wanted = source.unarrived(segments)
        if wanted:
            by_store.setdefault(id(source.store), (source.store, []))[1].extend(
                (source, seg) for seg in wanted
            )
    fetched = 0
    for store, entries in by_store.values():
        payloads = store.get_many([(src.variable, seg) for src, seg in entries])
        per_source: dict = {}
        for src, seg in entries:
            per_source.setdefault(id(src), (src, {}))[1][seg] = payloads[
                (src.variable, seg)
            ]
        for src, batch in per_source.values():
            src.absorb(batch)
            fetched += len(batch)
    return fetched

#: Default number of speculative round-fetches that may be in flight.
DEFAULT_PIPELINE_DEPTH = 1

#: Default width of the fetch stage's thread pool.
DEFAULT_MAX_WORKERS = 2


@dataclass(frozen=True)
class PipelineConfig:
    """Tuning knobs of the retrieval fetch/decode pipeline.

    ``pipeline_depth`` bounds the speculative prefetch queue (0 disables
    speculation; fetches are still planned and coalesced per round).
    ``max_workers`` sizes the fetch thread pool (0 disables threading
    entirely — planned batches are fetched synchronously, which still
    coalesces store round trips).  ``hedge_delay_s``, when set, bounds
    how long the decode stage waits on a round's *last* straggling batch
    before duplicating its fetch inline (see
    :meth:`FetchPipeline.iter_groups`); ``None`` disables hedging.
    """

    pipeline_depth: int = DEFAULT_PIPELINE_DEPTH
    max_workers: int = DEFAULT_MAX_WORKERS
    hedge_delay_s: float | None = None

    def __post_init__(self):
        if self.pipeline_depth < 0:
            raise ValueError("pipeline_depth must be >= 0")
        if self.max_workers < 0:
            raise ValueError("max_workers must be >= 0")
        if self.hedge_delay_s is not None and self.hedge_delay_s <= 0:
            raise ValueError("hedge_delay_s must be positive (or None)")


class FetchPipeline:
    """Drives batched fragment fetches for one retrieval call.

    Created per ``retrieve`` invocation (thread pools are cheap next to a
    retrieval) and closed in a ``finally``; all public methods are called
    from the retrieval thread only, while the pool threads touch nothing
    but :func:`~repro.storage.archive.prefetch_plans` (whose fragment
    sources are lock-protected).
    """

    def __init__(self, config: PipelineConfig, sink=None):
        self.config = config
        #: Optional *round sink* — an object with ``fetch(plans) -> int``
        #: and ``fetch_speculative(plans) -> int`` (the service layer's
        #: :class:`~repro.service.planner.FetchScheduler`).  With a sink,
        #: each round's whole plan is handed over as ONE request instead
        #: of byte-balanced private batches: the sink merges concurrent
        #: sessions' rounds, dedups them, and coalesces the store round
        #: trips itself.  Hedging still fetches directly (a hedge exists
        #: to race a straggling fetch, not to queue behind it).
        self._sink = sink
        self._pool = (
            ThreadPoolExecutor(
                max_workers=config.max_workers,
                thread_name_prefix="repro-fetch",
            )
            if config.max_workers > 0
            else None
        )
        self._speculative: deque = deque()  # in-flight speculative futures
        self._orphans: list = []  # straggler futures superseded by a hedge
        self._closed = False
        #: Absolute ``perf_counter`` deadline of the current retrieval
        #: (None = none).  Set by the retrieval loop; once passed, the
        #: pipeline stops accepting speculative prefetches — the round
        #: loop is about to stop tightening, so warming future rounds
        #: would be pure waste.
        self.deadline: float | None = None
        #: Fragments fetched ahead of decode (accounting for benchmarks).
        self.fragments_prefetched = 0
        #: Straggler batches whose fetch was duplicated inline (hedged).
        self.hedged_fetches = 0
        #: Wall seconds the decode stage spent *waiting* on fetches.
        self.io_wait_seconds = 0.0
        #: Wall seconds the decode stage spent computing (decode+reconstruct).
        self.compute_seconds = 0.0
        #: Per-round ``{"io_wait_s", "compute_s"}`` breakdown, in round order.
        self.round_breakdown: list = []

    def record_round(self, io_wait_s: float, compute_s: float) -> None:
        """Record one round's compute-vs-I/O wall-time split.

        Called by the retrieval loop after each round: *io_wait_s* is the
        time the loop blocked on the fetch iterator (submission plus
        waiting for ``get_many`` batches to land), *compute_s* the time
        spent in reader decode.  This is what makes "retrieval is
        compute-bound" a measured fact in ``repro stats`` rather than an
        inference from speedup parity.
        """
        self.io_wait_seconds += float(io_wait_s)
        self.compute_seconds += float(compute_s)
        self.round_breakdown.append(
            {"io_wait_s": float(io_wait_s), "compute_s": float(compute_s)}
        )

    # -- round fetches --------------------------------------------------------

    def submit_round(self, entries) -> list:
        """Dispatch one round's planned fetches; returns decode groups.

        *entries* is a list of ``(key, source, segments)`` triples — one
        per variable needing fragments.  Entries are packed into at most
        ``max_workers`` byte-balanced batches (planned bytes come from
        the store index, so packing never touches payloads), each batch
        becoming one coalesced ``get_many``.  The return value is a list
        of ``(keys, future)`` groups for :meth:`iter_groups`; with
        threading disabled the fetch happens inline and the groups carry
        ``None`` futures.

        Segments a previous round (or a speculative prefetch, or another
        client sharing the source) already fetched are dropped here, on
        the calling thread — a fully warmed plan costs no pool dispatch
        at all.
        """
        entries = [
            (key, source, source.missing(segments))
            for key, source, segments in entries
        ]
        entries = [e for e in entries if e[2]]
        if not entries:
            return []
        plans_of = lambda chunk: [(source, segments) for _, source, segments in chunk]  # noqa: E731
        if self._sink is not None:
            # round sink: the whole round is one request — no byte-split,
            # the scheduler merges it with other sessions' concurrent
            # rounds and coalesces per backing store itself
            plans = plans_of(entries)
            keys = [key for key, _, _ in entries]
            if self._pool is None:
                self.fragments_prefetched += self._sink.fetch(plans)
                return [(keys, None, plans)]
            return [(keys, self._pool.submit(self._sink.fetch, plans), plans)]
        if self._pool is None:
            prefetch_plans(plans_of(entries))
            return [([key for key, _, _ in entries], None, plans_of(entries))]
        width = min(self.config.max_workers, len(entries))
        bins = [[] for _ in range(width)]
        sizes = [0] * width
        sized = sorted(
            (
                (sum(source.size_of(s) for s in segments), key, source, segments)
                for key, source, segments in entries
            ),
            key=lambda e: -e[0],
        )
        for nbytes, key, source, segments in sized:
            slot = sizes.index(min(sizes))
            bins[slot].append((key, source, segments))
            sizes[slot] += nbytes
        groups = []
        for chunk in bins:
            if not chunk:
                continue
            future = self._pool.submit(prefetch_plans, plans_of(chunk))
            groups.append(([key for key, _, _ in chunk], future, plans_of(chunk)))
        return groups

    def iter_groups(self, groups):
        """Yield each group's keys as its fetch completes (decode order).

        With ``hedge_delay_s`` configured, the round's **last** pending
        batch is only waited on that long; if it is still in flight (a
        straggling backend — one slow replica, a stalled socket), its
        plan is fetched again *inline* on the decode thread and decode
        proceeds from the hedge.  The duplicate read is correctness-free
        (:meth:`~repro.storage.archive.FragmentSource.absorb` is
        idempotent) and, through a tiered/cached store, is exactly the
        "second replica" race the tail-latency literature hedges
        against; the superseded future is drained at :meth:`close`.  A
        hedge that fails simply resumes waiting on the original.
        """
        pending = {group[1]: group for group in groups if group[1] is not None}
        for keys, future, _ in groups:
            if future is None:
                yield keys
        while pending:
            hedge = self.config.hedge_delay_s
            timeout = hedge if (hedge is not None and len(pending) == 1) else None
            done, _ = wait(list(pending), timeout=timeout, return_when=FIRST_COMPLETED)
            if not done:
                # the last batch is straggling: duplicate its fetch inline
                future, (keys, _, plans) = next(iter(pending.items()))
                try:
                    self.fragments_prefetched += hedge_plans(plans)
                except Exception:
                    continue  # hedge lost too; keep waiting on the original
                self.hedged_fetches += 1
                self._orphans.append(future)
                del pending[future]
                yield keys
                continue
            for future in done:
                keys = pending.pop(future)[0]
                self.fragments_prefetched += future.result()
                yield keys

    # -- speculation ----------------------------------------------------------

    def speculate(self, plans) -> bool:
        """Queue a prefetch of a predicted future fragment set.

        Returns False (and fetches nothing) when speculation is disabled
        or every planned segment has already been fetched.  Submitted
        batches are never dropped: by the time a lagging batch runs, the
        actual round that superseded it has usually fetched its segments,
        so it dissolves via the ``missing`` filter inside
        :func:`~repro.storage.archive.prefetch_plans` — that, plus
        :meth:`close` waiting for the remainder, keeps the run's total
        store traffic deterministic.  Load failures are swallowed: a
        speculative fragment that cannot be read will be re-requested
        (and its error surfaced) by the decode stage if truly needed.
        """
        if (
            self._closed
            or self._pool is None
            or self.config.pipeline_depth == 0
        ):
            return False
        if self.deadline is not None and perf_counter() >= self.deadline:
            return False  # the loop is about to stop tightening anyway
        plans = [
            (source, missing)
            for source, segments in plans
            for missing in [source.missing(segments)]
            if missing
        ]
        if not plans:
            return False
        while self._speculative and self._speculative[0].done():
            self._harvest(self._speculative.popleft())
        self._speculative.append(self._pool.submit(self._safe_prefetch, plans))
        return True

    def _safe_prefetch(self, plans) -> int:
        try:
            if self._sink is not None:
                # the sink's speculative path dedups against the shared
                # cache's in-flight registry and swallows store errors
                return self._sink.fetch_speculative(plans)
            return prefetch_plans(plans)
        except Exception:
            return 0

    def _harvest(self, future) -> None:
        try:
            self.fragments_prefetched += future.result()
        except Exception:
            pass

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Drain speculation and release the pool.

        Outstanding speculative batches are *completed*, not cancelled:
        mid-run they have already dissolved into no-ops (their fragments
        arrived with the superseding actual round), and the final round's
        batch — the only one fetching genuinely unconsumed bytes — is
        what makes identical re-runs against a shared cache read nothing
        new from the store.  The wait is bounded by one batch per
        ``pipeline_depth`` step, small next to the retrieval itself.
        """
        if self._closed:
            return
        self._closed = True
        while self._speculative:
            self._harvest(self._speculative.popleft())
        # hedged-over stragglers: their segments were served by the hedge,
        # so a late failure here is outcome-free and swallowed
        for future in self._orphans:
            self._harvest(future)
        self._orphans.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "FetchPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def pipeline_sources(refactored: dict) -> dict:
    """Extract the archive fragment sources of lazily loaded variables.

    Maps variable name to its
    :class:`~repro.storage.archive.FragmentSource` for every variable
    that has one; eagerly loaded (or purely in-memory) representations
    are absent, and the engine simply decodes them without prefetch.
    """
    sources = {}
    for name, ref in refactored.items():
        source = getattr(ref, "fragment_source", None)
        if source is not None:
            sources[name] = source
    return sources
