"""Ready-made QoIs: GE CFD Eq.(1)–(6), total velocity, S3D products.

These are the quantities evaluated throughout the paper (§III-A, Table
III).  Each builder returns a :class:`repro.core.expressions.QoI` tree
whose evaluation yields both the QoI value and a guaranteed error bound;
§IV-D of the paper walks through exactly the ``total_velocity``
decomposition implemented here.

Physical constants follow the paper: R = 287.1, gamma = 1.4, mi = 3.5,
mu_r = 1.716e-5, T_r = 273.15, S = 110.4.
"""

from __future__ import annotations

from repro.core.expressions import Add, Div, Mul, Pow, QoI, Radical, Sqrt, Var, product

R_GAS = 287.1
GAMMA = 1.4
MACH_EXPONENT = 3.5
MU_REF = 1.716e-5
T_REF = 273.15
SUTHERLAND_S = 110.4


def total_velocity(vx: str = "velocity_x", vy: str = "velocity_y", vz: str = "velocity_z") -> QoI:
    """Eq. (1): ``Vtotal = sqrt(Vx^2 + Vy^2 + Vz^2)``.

    The composition ``f1(g1(f2(...)))`` of §IV-D: squares (Theorem 1),
    a sum (Theorem 4) and a square root (Theorem 2).
    """
    return Sqrt(Add([Pow(Var(vx), 2), Pow(Var(vy), 2), Pow(Var(vz), 2)]))


def temperature(pressure: str = "pressure", density: str = "density", r_gas: float = R_GAS) -> QoI:
    """Eq. (2): ``T = P / (D * R)``."""
    return Div(Var(pressure), Mul(Var(density), r_gas))


def speed_of_sound(
    pressure: str = "pressure",
    density: str = "density",
    gamma: float = GAMMA,
    r_gas: float = R_GAS,
) -> QoI:
    """Eq. (3): ``C = sqrt(gamma * R * T)``."""
    return Sqrt(Mul(temperature(pressure, density, r_gas), gamma * r_gas))


def mach_number(
    vx: str = "velocity_x",
    vy: str = "velocity_y",
    vz: str = "velocity_z",
    pressure: str = "pressure",
    density: str = "density",
) -> QoI:
    """Eq. (4): ``Mach = Vtotal / C``."""
    return Div(total_velocity(vx, vy, vz), speed_of_sound(pressure, density))


def total_pressure(
    vx: str = "velocity_x",
    vy: str = "velocity_y",
    vz: str = "velocity_z",
    pressure: str = "pressure",
    density: str = "density",
    gamma: float = GAMMA,
    mi: float = MACH_EXPONENT,
) -> QoI:
    """Eq. (5): ``PT = P * (1 + gamma/2 * Mach^2)^mi``.

    Decomposed as the paper prescribes: the inner polynomial of Mach and
    the half-integer power via ``u^3 * sqrt(u)`` (for mi = 3.5).
    """
    mach = mach_number(vx, vy, vz, pressure, density)
    u = Add([1.0, Mul(Mul(mach, mach), gamma / 2.0)])
    return Mul(Var(pressure), Pow(u, mi))


def viscosity(
    pressure: str = "pressure",
    density: str = "density",
    mu_ref: float = MU_REF,
    t_ref: float = T_REF,
    s: float = SUTHERLAND_S,
) -> QoI:
    """Eq. (6): Sutherland's law ``mu = mu_r (T/Tr)^1.5 (Tr + S)/(T + S)``.

    Built from a half-integer power, a radical ``1/(T + S)`` (Theorem 3)
    and constant scalings (Theorem 8).
    """
    t = temperature(pressure, density)
    t_scaled = Mul(t, 1.0 / t_ref)
    return Mul(
        Mul(Pow(t_scaled, 1.5), Radical(t, c=s)),
        mu_ref * (t_ref + s),
    )


def molar_product(*species: str) -> QoI:
    """S3D molar-concentration multiplication, e.g. ``x1 * x3``.

    The reaction-rate intermediates of Table III (products of two or more
    species concentrations; Theorem 5 chained via Theorem 9).
    """
    if len(species) < 2:
        raise ValueError("molar_product needs at least two species fields")
    return product(*(Var(name) for name in species))


def qoi_from_spec(spec: str, fields: list) -> QoI:
    """Construct a QoI tree from a textual spec and its field names.

    The vocabulary shared by the CLI and the network retrieval service:
    ``identity`` (1 field), ``vtot`` (3 fields), ``temperature``
    (pressure, density), ``mach`` (5 fields), ``product`` (>= 2 fields).
    """
    spec = spec.lower()
    if spec == "identity":
        if len(fields) != 1:
            raise ValueError("identity expects exactly 1 field")
        return Var(fields[0])
    if spec == "vtot":
        if len(fields) != 3:
            raise ValueError("vtot expects exactly 3 fields (vx,vy,vz)")
        return total_velocity(*fields)
    if spec == "temperature":
        if len(fields) != 2:
            raise ValueError("temperature expects 2 fields (pressure,density)")
        return temperature(*fields)
    if spec == "mach":
        if len(fields) != 5:
            raise ValueError("mach expects 5 fields (vx,vy,vz,pressure,density)")
        return mach_number(*fields)
    if spec == "product":
        if len(fields) < 2:
            raise ValueError("product expects at least 2 fields")
        return molar_product(*fields)
    raise ValueError(
        f"unknown QoI spec {spec!r}; options: identity, vtot, temperature, mach, product"
    )


#: The six GE QoIs keyed as the paper labels them (Figs. 4, 7).
GE_QOIS: dict = {
    "VTOT": total_velocity(),
    "T": temperature(),
    "C": speed_of_sound(),
    "Mach": mach_number(),
    "PT": total_pressure(),
    "mu": viscosity(),
}
