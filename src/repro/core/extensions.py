"""Extension operators beyond the paper's Table II basis.

§IV-D notes the theory "can extend to new operators with derivable error
control"; this module adds the natural next tier — operators with simple
Lipschitz or linear error propagation — using the same (value, bound)
node contract as :mod:`repro.core.expressions`:

* :class:`Abs` — ``|x|`` is 1-Lipschitz: ``Delta <= eps``.
* :class:`Minimum` / :class:`Maximum` — 1-Lipschitz in each argument:
  ``Delta <= max(eps_1, eps_2)``.
* :class:`Clip` — clamping to ``[lo, hi]`` is 1-Lipschitz: ``Delta <= eps``.
* :class:`MovingAverage` — a normalized box filter is a convex
  combination per point (Theorem 4 with weights 1/w), so the bound is the
  same filter applied to the per-point eps field.

Each bound is covered by a randomized-perturbation property test in
``tests/test_core_extensions.py``, the proof-obligation pattern any
further user-defined operator should follow.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter1d

from repro.core.expressions import QoI, _coerce


class Abs(QoI):
    """Absolute value: ``| |x'| - |x| | <= |x' - x| <= eps``."""

    def __init__(self, child):
        self.child = _coerce(child)

    def evaluate(self, env):
        v, e = self.child.evaluate(env)
        return np.abs(np.asarray(v, dtype=np.float64)), np.asarray(e, dtype=np.float64)

    def variables(self):
        return self.child.variables()

    def __repr__(self):
        return f"Abs({self.child!r})"


class _Binary1Lipschitz(QoI):
    """Common base for min/max: 1-Lipschitz in each argument jointly."""

    _op = None
    _name = "?"

    def __init__(self, left, right):
        self.left = _coerce(left)
        self.right = _coerce(right)

    def evaluate(self, env):
        v1, e1 = self.left.evaluate(env)
        v2, e2 = self.right.evaluate(env)
        value = self._op(np.asarray(v1, dtype=np.float64), np.asarray(v2, dtype=np.float64))
        # |min(a', b') - min(a, b)| <= max(|a'-a|, |b'-b|); same for max
        bound = np.maximum(np.asarray(e1, dtype=np.float64), np.asarray(e2, dtype=np.float64))
        return value, bound

    def variables(self):
        return self.left.variables() | self.right.variables()

    def __repr__(self):
        return f"{self._name}({self.left!r}, {self.right!r})"


class Minimum(_Binary1Lipschitz):
    """Point-wise minimum of two QoIs."""

    _op = staticmethod(np.minimum)
    _name = "Minimum"


class Maximum(_Binary1Lipschitz):
    """Point-wise maximum of two QoIs."""

    _op = staticmethod(np.maximum)
    _name = "Maximum"


class Clip(QoI):
    """Clamp to ``[lo, hi]`` — 1-Lipschitz, so the child bound passes through."""

    def __init__(self, child, lo: float | None = None, hi: float | None = None):
        if lo is None and hi is None:
            raise ValueError("Clip needs at least one of lo/hi")
        if lo is not None and hi is not None and lo > hi:
            raise ValueError("lo must be <= hi")
        self.child = _coerce(child)
        self.lo = lo
        self.hi = hi

    def evaluate(self, env):
        v, e = self.child.evaluate(env)
        value = np.clip(np.asarray(v, dtype=np.float64), self.lo, self.hi)
        return value, np.asarray(e, dtype=np.float64)

    def variables(self):
        return self.child.variables()

    def __repr__(self):
        return f"Clip({self.child!r}, lo={self.lo}, hi={self.hi})"


class DomainReduce(QoI):
    """Global weighted reduction ``sum_i w_i f(x_i)`` over the domain.

    A direct application of Theorem 4 across the whole array: the bound
    is ``sum_i |w_i| eps_i``.  ``kind="mean"`` uses uniform weights
    ``1/N`` (a domain average, e.g. total kinetic energy per cell);
    ``kind="sum"`` uses unit weights.  The result is a scalar QoI.
    """

    def __init__(self, child, kind: str = "mean", weights=None):
        if kind not in ("mean", "sum"):
            raise ValueError("kind must be 'mean' or 'sum'")
        self.child = _coerce(child)
        self.kind = kind
        self.weights = None if weights is None else np.asarray(weights, dtype=np.float64)

    def evaluate(self, env):
        v, e = self.child.evaluate(env)
        v = np.asarray(v, dtype=np.float64)
        e = np.broadcast_to(np.asarray(e, dtype=np.float64), v.shape)
        if self.weights is not None:
            if self.weights.shape != v.shape:
                raise ValueError("weights shape does not match the QoI field")
            w = self.weights
        elif self.kind == "mean":
            w = np.full(v.shape, 1.0 / v.size)
        else:
            w = np.ones(v.shape)
        value = np.float64(np.sum(w * v))
        # Theorem 4 over the domain; tiny relative guard for the float sum
        bound = np.float64(np.sum(np.abs(w) * e)) * (1 + 1e-12)
        return value, bound

    def variables(self):
        return self.child.variables()

    def __repr__(self):
        return f"DomainReduce({self.child!r}, kind={self.kind!r})"


class MovingAverage(QoI):
    """Box-filter smoothing along one axis (a common posthoc operator).

    The filter is a convex combination per output point, so by Theorem 4
    the error bound is the same filter applied to the eps field (which for
    uniform eps is just eps).  ``mode="nearest"`` keeps the combination
    convex at the boundaries.
    """

    def __init__(self, child, window: int, axis: int = -1):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.child = _coerce(child)
        self.window = int(window)
        self.axis = int(axis)

    def evaluate(self, env):
        v, e = self.child.evaluate(env)
        v = np.asarray(v, dtype=np.float64)
        e = np.broadcast_to(np.asarray(e, dtype=np.float64), v.shape)
        value = uniform_filter1d(v, self.window, axis=self.axis, mode="nearest")
        bound = uniform_filter1d(e, self.window, axis=self.axis, mode="nearest")
        # guard the filter's own float rounding so the bound stays safe
        bound = np.maximum(bound, 0.0) * (1 + 1e-12) + 1e-300
        return value, bound

    def variables(self):
        return self.child.variables()

    def __repr__(self):
        return f"MovingAverage({self.child!r}, window={self.window}, axis={self.axis})"
