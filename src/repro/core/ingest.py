"""Streaming ingestion engine: the write-side mirror of the fetch pipeline.

The paper's progressive workflow has two halves: *refactor* data into
prioritized fragments at generation time, then *retrieve* them
incrementally at analysis time.  :mod:`repro.core.pipeline` made the
retrieval half overlap fetching with decoding; this module does the same
for ingestion, which run naively is a strictly serial loop — refactor one
variable, then block on one ``store.put`` per fragment.

:class:`IngestPipeline` breaks that alternation:

* **transform+encode workers** refactor variables in parallel on a
  thread pool (the transform and entropy-coding kernels release the GIL
  in NumPy/zlib), and finished variables are consumed in *completion*
  order — variable A's fragments flush while variable B is still
  encoding;
* **byte-balanced coalesced flushes** buffer the encoded fragments and
  move them with one :meth:`~repro.storage.store.FragmentStore.put_many`
  per ``flush_bytes`` of payload — one write round trip (and, on the
  disk stores, one WAL commit record) per batch instead of one per
  fragment.  Flushes end on variable boundaries, so each batch carries
  whole variables and a crash mid-ingest leaves every variable either
  fully old or fully new (see ``docs/durability.md``);
* **incremental updates**: ingesting into a non-empty archive never
  rewrites fragments of untouched variables.  Re-ingesting an existing
  variable supersedes it — segments of the old representation the new
  one does not overwrite are deleted afterwards (tombstoned on disk
  stores) — and ``timestep`` appends each variable under a
  :func:`~repro.utils.fragment_keys.timestep_variable` qualified name,
  the continuously-updated-archive scenario (simulation steps arriving
  while analysts retrieve).

The archive the parallel path produces is **bit-identical** to the
serial ``refactor_dataset`` + ``Archive.save`` path: both write exactly
the :func:`~repro.storage.archive.encode_fragments` enumeration, each
variable's segments land in canonical order (a flush preserves buffer
order), and every variable's index segment is queued after its payload
fragments.  Parallelism reshapes the write traffic — it never changes
the bytes.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field

import numpy as np

from repro.storage.archive import encode_fragments
from repro.utils.fragment_keys import INDEX_SEGMENT, timestep_variable

#: Default width of the transform+encode worker pool.
DEFAULT_INGEST_WORKERS = 4

#: Default flush threshold: buffered fragment bytes per coalesced
#: ``put_many`` batch.  Large enough to amortize a remote round trip,
#: small enough that flushing overlaps encoding instead of trailing it.
DEFAULT_FLUSH_BYTES = 4 << 20


@dataclass(frozen=True)
class IngestConfig:
    """Tuning knobs of the streaming ingestion engine.

    ``workers`` sizes the transform+encode thread pool (0 encodes
    synchronously on the calling thread — flushes are still coalesced,
    which is what keeps the knob orthogonal to batching).
    ``flush_bytes`` is the byte-balance target of each coalesced
    ``put_many`` flush; flushes always end on a variable boundary (the
    per-variable atomicity guarantee), so a variable larger than the
    target makes one oversized batch rather than splitting.
    """

    workers: int = DEFAULT_INGEST_WORKERS
    flush_bytes: int = DEFAULT_FLUSH_BYTES

    def __post_init__(self):
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.flush_bytes < 1:
            raise ValueError("flush_bytes must be >= 1")


@dataclass
class IngestReport:
    """Outcome and accounting of one :meth:`IngestPipeline.ingest` call."""

    #: Archive variable names written, in ingest (dict) order.
    variables: list = field(default_factory=list)
    #: Fragments written (index segments included).
    fragments: int = 0
    #: Payload bytes written.
    bytes_written: int = 0
    #: Coalesced ``put_many`` flushes issued (the write round trips the
    #: engine itself cost; the store's ``put_round_trips`` agrees).
    flushes: int = 0
    #: Superseded segments of re-ingested variables deleted afterwards.
    superseded: int = 0
    #: Archived size per variable (``Refactored.total_bytes``; what the
    #: dataset manifest records).
    archived_bytes: dict = field(default_factory=dict)
    #: Wall-clock seconds of the whole ingest.
    seconds: float = 0.0
    #: Summed per-variable refactor+encode seconds (exceeds ``seconds``
    #: when workers overlap — the parallelism actually achieved).
    encode_seconds: float = 0.0
    #: Seconds the calling thread spent inside ``put_many`` flushes.
    flush_seconds: float = 0.0


class IngestPipeline:
    """Parallel refactor→encode→batched-put write path over one store.

    Created per ingest call site (thread pools are cheap next to an
    ingest); one instance may run many :meth:`ingest` calls
    sequentially.  The store may be any
    :class:`~repro.storage.store.FragmentStore` — behind a
    :class:`~repro.storage.cache.CachingFragmentStore` the batched
    writes invalidate stale cache entries, and on a
    :class:`~repro.storage.tiered.TieredStore` each flush lands with one
    ``put_many`` per tier the policy touches.
    """

    def __init__(self, store, config: IngestConfig | None = None, executor=None):
        self.store = store
        self.config = config or IngestConfig()
        #: Optional :class:`~repro.parallel.executor.KernelExecutor`.  A
        #: ``thread``/``process`` backend takes over the transform+encode
        #: stage from the built-in thread pool — with the process backend
        #: the refactor/entropy-code kernels escape the GIL entirely, and
        #: input arrays ship to workers through the executor's
        #: shared-memory arena instead of being pickled.
        self.executor = executor

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _encode(refactorer, name: str, data):
        """One worker task: refactor + enumerate one variable's fragments."""
        start = time.perf_counter()
        refactored = refactorer.refactor(data)
        fragments, index = encode_fragments(refactored)
        return (
            name,
            int(refactored.total_bytes),
            fragments,
            index,
            time.perf_counter() - start,
        )

    def _encode_via_executor(self, executor, named, refactorer, consume) -> None:
        """Run the transform+encode stage through a kernel executor.

        Input arrays travel to process workers through the executor's
        shared-memory arena when one is available (written once, never
        pickled); encoded variables still stream out in *completion*
        order, so flushing overlaps encoding exactly as with the
        built-in thread pool.  The archive bytes are identical either
        way — the kernel runs the same ``_encode``.
        """
        from repro.parallel.executor import as_completed_tasks

        arena = getattr(executor, "arena", None)
        tasks = []
        refs = {}  # id(task) -> ArenaRef to release once consumed
        for name, data in named.items():
            arr = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
            payload = arr
            if arena is not None and arr.nbytes >= getattr(arena, "min_bytes", 0):
                try:
                    payload = arena.write(arr)
                except Exception:
                    payload = arr  # arena closed/full: pickling still correct
            task = executor.submit(
                "ingest_encode", refactorer, name, payload, arr.shape
            )
            tasks.append(task)
            if payload is not arr:
                refs[id(task)] = payload
        try:
            for task in as_completed_tasks(tasks):
                consume(task.result())
        finally:
            for ref in refs.values():
                arena.decref(ref)

    def ingest(self, variables: dict, refactorer, timestep: int | None = None) -> IngestReport:
        """Refactor and archive *variables*, overlapping encode with I/O.

        Parameters
        ----------
        variables:
            ``{name: ndarray}`` of the data to ingest.
        refactorer:
            The :class:`~repro.compressors.base.Refactorer` to apply
            (shared across workers; refactorers are stateless).
        timestep:
            When given, each variable is archived under its
            :func:`~repro.utils.fragment_keys.timestep_variable`
            qualified name — appending a simulation step to a live
            archive without touching earlier steps.

        Returns an :class:`IngestReport`.  On failure the archive may
        hold a partial update, but only at variable granularity: each
        coalesced flush ends on a variable boundary (a variable's
        fragments plus its index segment always share one ``put_many``
        batch), and on the WAL-backed disk stores a batch commits with a
        single log record — so a process killed anywhere during the
        ingest leaves every variable loading bit-identically to its old
        or its new representation, never a torn mix; re-running the
        ingest is always a safe repair.  Superseded segments are only
        deleted after every new fragment and index is durably written.
        """
        config = self.config
        if timestep is not None:
            named = {
                timestep_variable(name, timestep): data
                for name, data in variables.items()
            }
        else:
            named = dict(variables)
        report = IngestReport(variables=list(named))
        t0 = time.perf_counter()
        # snapshot the segments each variable held before this ingest so
        # superseded ones can be tombstoned once the new write is durable
        old_segments = {name: list(self.store.segments(name)) for name in named}
        written: dict = {name: set() for name in named}
        buffer: list = []
        buffered = 0

        def flush() -> None:
            nonlocal buffered
            if not buffer:
                return
            start = time.perf_counter()
            self.store.put_many(buffer)
            report.flush_seconds += time.perf_counter() - start
            report.flushes += 1
            report.fragments += len(buffer)
            report.bytes_written += buffered
            buffer.clear()
            buffered = 0

        def emit(name, fragments, index) -> None:
            # canonical order per variable, index segment last — and the
            # flush decision only after the whole variable (index
            # included) is buffered: every put_many batch holds whole
            # variables, so on a WAL-backed store each variable commits
            # atomically (a crash leaves it entirely old or entirely
            # new).  A variable larger than flush_bytes makes one
            # oversized batch rather than splitting.
            nonlocal buffered
            items = list(fragments)
            items.append((INDEX_SEGMENT, json.dumps(index).encode()))
            for segment, payload in items:
                buffer.append((name, segment, payload))
                buffered += len(payload)
                written[name].add(segment)
            if buffered >= config.flush_bytes:
                flush()

        def consume(outcome) -> None:
            name, total_bytes, fragments, index, encode_s = outcome
            report.encode_seconds += encode_s
            report.archived_bytes[name] = total_bytes
            emit(name, fragments, index)

        executor = self.executor
        if (
            executor is not None
            and getattr(executor, "backend", "serial") != "serial"
            and len(named) > 1
        ):
            self._encode_via_executor(executor, named, refactorer, consume)
        elif config.workers > 0 and len(named) > 1:
            width = min(config.workers, len(named))
            with ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="repro-ingest"
            ) as pool:
                pending = {
                    pool.submit(self._encode, refactorer, name, data)
                    for name, data in named.items()
                }
                # flush stage (this thread) overlaps the encode stage
                # (pool threads): finished variables stream out in
                # completion order while the rest are still encoding
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        consume(future.result())
        else:
            for name, data in named.items():
                consume(self._encode(refactorer, name, data))
        flush()

        # supersede: everything the old representation held that the new
        # one did not overwrite stops being retrievable (tombstones on
        # disk stores keep a reopened archive consistent)
        for name, segments in old_segments.items():
            for segment in segments:
                if segment not in written[name]:
                    try:
                        self.store.delete(name, segment)
                    except KeyError:
                        pass  # superseded concurrently; not this call's tombstone
                    else:
                        report.superseded += 1
        report.seconds = time.perf_counter() - t0
        return report


def update_manifest(
    manifest,
    store,
    variables: dict,
    method: str,
    report: IngestReport,
    timestep: int | None = None,
) -> None:
    """Fold one ingest's variables into a dataset manifest.

    The shared bookkeeping every ingest surface (CLI, service,
    block-parallel driver) performs after the engine returns: each
    original array in *variables* is recorded under its archived name —
    :func:`~repro.utils.fragment_keys.timestep_variable` qualified when
    *timestep* is given — with the archived size from
    ``report.archived_bytes`` and the segment inventory from *store*.
    The caller saves the manifest (``manifest.save_to(store)``) when
    every update is in.
    """
    from repro.storage.metadata import VariableMetadata

    for name, data in variables.items():
        archived = (
            timestep_variable(name, timestep) if timestep is not None else name
        )
        manifest.add(
            VariableMetadata.from_array(
                archived, data, method, report.archived_bytes[archived],
                segments=store.segments(archived),
            )
        )


def ingest_dataset(
    store,
    variables: dict,
    refactorer,
    workers: int = DEFAULT_INGEST_WORKERS,
    flush_bytes: int = DEFAULT_FLUSH_BYTES,
    timestep: int | None = None,
    executor=None,
) -> IngestReport:
    """One-call streaming ingest (the write-side ``refactor_dataset``).

    Equivalent to ``IngestPipeline(store, IngestConfig(workers,
    flush_bytes)).ingest(variables, refactorer, timestep=timestep)`` —
    and bit-identical, archive-wise, to the serial
    :func:`~repro.core.retrieval.refactor_dataset` +
    :meth:`~repro.storage.archive.Archive.save` loop it replaces.

    *executor* selects the kernel executor for the transform+encode
    stage: an instance, a backend name (``"serial"``/``"thread"``/
    ``"process"``), or None to follow the ``REPRO_EXECUTOR`` environment
    default (unset means the built-in thread pool).
    """
    from repro.parallel.executor import make_executor

    config = IngestConfig(workers=int(workers), flush_bytes=int(flush_bytes))
    return IngestPipeline(store, config, executor=make_executor(executor)).ingest(
        variables, refactorer, timestep=timestep
    )
