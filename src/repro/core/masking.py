"""Mask-based outlier management (§V-A of the paper).

Nodes where, e.g., all velocity components are exactly zero (wall nodes in
the GE CFD data) make the square-root estimator of Theorem 2 arbitrarily
loose: tiny reconstructed values yield huge ``eps/sqrt(x)`` bounds even
though the true error is zero.  The paper records such points in a bitmap,
reconstructs them exactly, and excludes them from refactoring.

:class:`ZeroMask` implements the retrieval-side behaviour: masked points
are pinned to their exact (zero) value and their per-point error bound is
set to zero, so the QoI estimator sees ``eps = 0`` there and the bound
collapses to the truth.  The packed bitmap's byte cost is exposed so the
bitrate accounting can include it.
"""

from __future__ import annotations

import zlib

import numpy as np


class ZeroMask:
    """Bitmap of exact-zero points shared by a group of fields."""

    def __init__(self, mask: np.ndarray):
        mask = np.asarray(mask, dtype=bool)
        self.mask = mask
        self._payload = zlib.compress(np.packbits(mask).tobytes(), 6)

    @classmethod
    def from_fields(cls, *fields: np.ndarray) -> "ZeroMask":
        """Mask points where *every* given field is exactly zero."""
        if not fields:
            raise ValueError("need at least one field")
        mask = np.ones(np.asarray(fields[0]).shape, dtype=bool)
        for f in fields:
            mask &= np.asarray(f) == 0.0
        return cls(mask)

    @property
    def nbytes(self) -> int:
        """Transfer cost of the packed bitmap."""
        return len(self._payload)

    @property
    def count(self) -> int:
        """Number of masked points."""
        return int(self.mask.sum())

    def pin(self, reconstruction: np.ndarray) -> np.ndarray:
        """Force masked points to exact zero (in place; returns the array)."""
        reconstruction[self.mask] = 0.0
        return reconstruction

    def pointwise_eps(self, eps: float, shape: tuple) -> np.ndarray:
        """Per-point bound array: *eps* everywhere, 0 at masked points."""
        out = np.full(shape, float(eps))
        out[self.mask] = 0.0
        return out

    @classmethod
    def from_payload(cls, payload: bytes, shape: tuple) -> "ZeroMask":
        """Rebuild a mask from its packed representation."""
        bits = np.unpackbits(np.frombuffer(zlib.decompress(payload), dtype=np.uint8))
        n = int(np.prod(shape))
        return cls(bits[:n].astype(bool).reshape(shape))

    @property
    def payload(self) -> bytes:
        return self._payload
