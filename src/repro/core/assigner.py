"""Primary-data error-bound assignment (Algorithms 3 and 4).

``assign_eb`` seeds the first retrieval round: a variable used by several
QoIs gets the most conservative (smallest) of their relative tolerances,
scaled by the variable's value range.

``reassign_eb`` runs between rounds: at the data point exhibiting the
largest estimated QoI error, the bounds of every variable the QoI touches
are divided by the constant factor ``c`` (1.5 in the paper) until the
re-estimated point error drops below the tolerance.  Evaluating only the
worst point keeps the number of outer retrieval rounds small (§V-A).
"""

from __future__ import annotations

import numpy as np

from repro.core.expressions import QoI
from repro.utils.validation import check_positive

DEFAULT_REDUCTION_FACTOR = 1.5


def assign_eb(value_range: float, tolerances) -> float:
    """Algorithm 3: initial absolute bound for one variable.

    Parameters
    ----------
    value_range:
        Range (max - min) of the variable's original data — metadata the
        refactoring stage records.
    tolerances:
        Relative tolerances of every requested QoI involving the variable.

    Returns
    -------
    float
        Absolute L-infinity bound for the first retrieval round.
    """
    value_range = check_positive(value_range, name="value_range")
    eb = 1.0  # maximal possible relative bound
    for tau in tolerances:
        tau = float(tau)
        if tau <= 0:
            raise ValueError(f"QoI tolerance must be > 0, got {tau}")
        eb = min(eb, tau)
    return eb * value_range


def reassign_eb(
    qoi: QoI,
    tolerance: float,
    point_values: dict,
    current_ebs: dict,
    c: float = DEFAULT_REDUCTION_FACTOR,
    max_iterations: int = 200,
) -> dict:
    """Algorithm 4: tighten bounds until the worst point satisfies *tolerance*.

    Parameters
    ----------
    qoi:
        The QoI whose estimated error exceeded its tolerance.
    tolerance:
        Absolute QoI tolerance at this point.
    point_values:
        Reconstructed scalar value of each involved variable at the
        worst-error point.
    current_ebs:
        Current absolute bounds per variable (only involved ones used).
    c:
        Reduction factor (paper default 1.5).
    max_iterations:
        Safety valve for points where no finite bound is reachable (e.g.
        an exact zero that should have been masked).

    Returns
    -------
    dict
        New absolute bounds for the involved variables.
    """
    if c <= 1.0:
        raise ValueError("reduction factor c must be > 1")
    involved = sorted(qoi.variables())
    ebs = {v: float(current_ebs[v]) for v in involved}
    env = {v: (np.asarray([point_values[v]], dtype=np.float64), ebs[v]) for v in involved}
    _, est = qoi.evaluate(env)
    est = float(np.max(est))
    iterations = 0
    while est > tolerance:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError(
                "reassign_eb did not converge; the QoI is likely singular at "
                "this point (consider a ZeroMask, see §V-A)"
            )
        for v in involved:
            ebs[v] /= c
        env = {v: (env[v][0], ebs[v]) for v in involved}
        _, est = qoi.evaluate(env)
        est = float(np.max(est))
    return ebs
