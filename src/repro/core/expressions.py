"""The derivable-QoI expression system (Definitions 2–3, Theorems 7–9).

A QoI is built as a tree of basis nodes (Table II of the paper):
variables, constants, weighted sums, products, quotients, integer and
half-integer powers, square roots, and radicals ``1/(x + c)``.  Evaluating
the tree against an *environment* — reconstructed arrays plus the
L-infinity bounds they were retrieved under — propagates a
``(value, bound)`` pair bottom-up:

* leaf ``Var``: ``(x, eps)`` straight from the environment;
* interior nodes apply the corresponding Theorem-1–6 estimator to their
  children's pairs.

Feeding a child's *(value, bound)* into its parent's estimator is exactly
the composition calculus of Theorem 9 and Lemmas 1–2, so any tree built
from these nodes carries a guaranteed QoI error bound with no extra
machinery.  Additivity/multiplicativity (Theorems 7–8) correspond to
``Add`` nodes with weights.

Operator overloading makes construction read like the physics::

    vtot = Sqrt(Var("vx")**2 + Var("vy")**2 + Var("vz")**2)
    value, bound = vtot.evaluate({"vx": (vx, eps), ...})
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.estimators import (
    bound_add,
    bound_div,
    bound_mul,
    bound_power,
    bound_radical,
    bound_sqrt,
)

Env = dict  # name -> (values, eps) ; eps scalar or array


def _coerce(obj) -> "QoI":
    if isinstance(obj, QoI):
        return obj
    if isinstance(obj, (int, float)):
        return Const(float(obj))
    raise TypeError(f"cannot use {type(obj).__name__} in a QoI expression")


class QoI(abc.ABC):
    """Base class of derivable-QoI expression nodes."""

    @abc.abstractmethod
    def evaluate(self, env: Env) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(value, bound)`` arrays for the environment *env*.

        ``env`` maps variable names to ``(values, eps)`` where *values*
        are the reconstructed arrays and *eps* the guaranteed L-infinity
        bounds they satisfy (scalar or per-point).
        """

    @abc.abstractmethod
    def variables(self) -> frozenset:
        """Names of all variables the QoI depends on."""

    def value(self, env: Env) -> np.ndarray:
        """Evaluate the QoI value only (bounds ignored)."""
        exact_env = {k: (v[0] if isinstance(v, tuple) else v, 0.0) for k, v in env.items()}
        return self.evaluate(exact_env)[0]

    # -- operator sugar -----------------------------------------------------

    def __add__(self, other):
        return Add([self, _coerce(other)])

    def __radd__(self, other):
        return Add([_coerce(other), self])

    def __sub__(self, other):
        return Add([self, _coerce(other)], weights=[1.0, -1.0])

    def __rsub__(self, other):
        return Add([_coerce(other), self], weights=[1.0, -1.0])

    def __mul__(self, other):
        return Mul(self, _coerce(other))

    def __rmul__(self, other):
        return Mul(_coerce(other), self)

    def __truediv__(self, other):
        return Div(self, _coerce(other))

    def __rtruediv__(self, other):
        return Div(_coerce(other), self)

    def __pow__(self, exponent):
        return Pow(self, exponent)


class Var(QoI):
    """A primary data field, referenced by name."""

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = str(name)

    def evaluate(self, env: Env):
        try:
            values, eps = env[self.name]
        except KeyError:
            raise KeyError(f"variable {self.name!r} missing from environment")
        values = np.asarray(values, dtype=np.float64)
        eps_arr = np.broadcast_to(np.asarray(eps, dtype=np.float64), values.shape)
        return values, eps_arr

    def variables(self):
        return frozenset({self.name})

    def __repr__(self):
        return f"Var({self.name!r})"


class Const(QoI):
    """A constant: exact, zero error."""

    def __init__(self, value: float):
        self.constant = float(value)

    def evaluate(self, env: Env):
        return np.float64(self.constant), np.float64(0.0)

    def variables(self):
        return frozenset()

    def __repr__(self):
        return f"Const({self.constant})"


class Add(QoI):
    """Weighted sum (Theorems 4, 7, 8): ``sum_i a_i child_i``."""

    def __init__(self, children, weights=None):
        self.children = [_coerce(c) for c in children]
        if not self.children:
            raise ValueError("Add needs at least one child")
        self.weights = [1.0] * len(self.children) if weights is None else [float(w) for w in weights]
        if len(self.weights) != len(self.children):
            raise ValueError("weights/children length mismatch")

    def evaluate(self, env: Env):
        values, bounds = zip(*(c.evaluate(env) for c in self.children))
        total = sum(a * v for a, v in zip(self.weights, values))
        return np.asarray(total, dtype=np.float64), bound_add(bounds, self.weights)

    def variables(self):
        return frozenset().union(*(c.variables() for c in self.children))

    def __repr__(self):
        return f"Add({self.children!r}, weights={self.weights})"


class Mul(QoI):
    """Binary product (Theorem 5); chain for n-ary products (Theorem 9)."""

    def __init__(self, left, right):
        self.left = _coerce(left)
        self.right = _coerce(right)

    def evaluate(self, env: Env):
        v1, e1 = self.left.evaluate(env)
        v2, e2 = self.right.evaluate(env)
        return np.asarray(v1 * v2, dtype=np.float64), bound_mul(v1, e1, v2, e2)

    def variables(self):
        return self.left.variables() | self.right.variables()

    def __repr__(self):
        return f"Mul({self.left!r}, {self.right!r})"


class Div(QoI):
    """Quotient (Theorem 6)."""

    def __init__(self, numerator, denominator):
        self.numerator = _coerce(numerator)
        self.denominator = _coerce(denominator)

    def evaluate(self, env: Env):
        v1, e1 = self.numerator.evaluate(env)
        v2, e2 = self.denominator.evaluate(env)
        with np.errstate(divide="ignore", invalid="ignore"):
            value = np.asarray(v1 / v2, dtype=np.float64)
        return value, bound_div(v1, e1, v2, e2)

    def variables(self):
        return self.numerator.variables() | self.denominator.variables()

    def __repr__(self):
        return f"Div({self.numerator!r}, {self.denominator!r})"


class Sqrt(QoI):
    """Square root (Theorem 2, composed per Theorem 9 / Lemma 1)."""

    def __init__(self, child):
        self.child = _coerce(child)

    def evaluate(self, env: Env):
        v, e = self.child.evaluate(env)
        value = np.sqrt(np.clip(v, 0.0, None))
        return np.asarray(value, dtype=np.float64), bound_sqrt(v, e)

    def variables(self):
        return self.child.variables()

    def __repr__(self):
        return f"Sqrt({self.child!r})"


class Radical(QoI):
    """Shifted reciprocal ``1 / (child + c)`` (Theorem 3)."""

    def __init__(self, child, c: float = 0.0):
        self.child = _coerce(child)
        self.c = float(c)

    def evaluate(self, env: Env):
        v, e = self.child.evaluate(env)
        with np.errstate(divide="ignore", invalid="ignore"):
            value = np.asarray(1.0 / (v + self.c), dtype=np.float64)
        return value, bound_radical(v, e, self.c)

    def variables(self):
        return self.child.variables()

    def __repr__(self):
        return f"Radical({self.child!r}, c={self.c})"


class Pow(QoI):
    """Power with integer or half-integer exponent.

    Integer exponents use Theorem 1 directly.  Half-integer exponents
    ``n + 0.5`` decompose as ``x**n * sqrt(x)`` — the square-root/polynomial
    composition the paper uses for GE's total pressure (mi = 3.5) and
    viscosity (1.5) QoIs.
    """

    def __init__(self, child, exponent):
        self.child = _coerce(child)
        ex = float(exponent)
        if ex < 0.5 or (ex * 2) != int(ex * 2):
            raise ValueError("Pow supports positive integer or half-integer exponents")
        self.exponent = ex
        if ex == int(ex):
            self._node = None  # direct Theorem-1 path
        elif ex == 0.5:
            self._node = Sqrt(self.child)
        else:
            self._node = Mul(Pow(self.child, int(ex)), Sqrt(self.child))

    def evaluate(self, env: Env):
        if self._node is not None:
            return self._node.evaluate(env)
        n = int(self.exponent)
        v, e = self.child.evaluate(env)
        return np.asarray(v**n, dtype=np.float64), bound_power(v, e, n)

    def variables(self):
        return self.child.variables()

    def __repr__(self):
        return f"Pow({self.child!r}, {self.exponent})"


def product(*factors) -> QoI:
    """N-ary product built as a left-deep Mul chain (Theorems 5 + 9)."""
    if not factors:
        raise ValueError("product needs at least one factor")
    node = _coerce(factors[0])
    for f in factors[1:]:
        node = Mul(node, _coerce(f))
    return node


def polynomial(child, coefficients) -> QoI:
    """General polynomial ``sum_i a_i x**i`` (Theorems 1 + 7 + 8).

    *coefficients* are ordered constant-first: ``a_0 + a_1 x + a_2 x^2...``.
    """
    child = _coerce(child)
    terms = []
    weights = []
    for i, a in enumerate(coefficients):
        a = float(a)
        if a == 0.0:
            continue
        terms.append(Const(1.0) if i == 0 else Pow(child, i))
        weights.append(a)
    if not terms:
        return Const(0.0)
    return Add(terms, weights=weights)
