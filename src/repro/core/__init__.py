"""The paper's primary contribution: QoI error control during retrieval.

* :mod:`repro.core.estimators` — vectorized upper-bound estimators for the
  basis of derivable QoIs (Theorems 1–6).
* :mod:`repro.core.expressions` — the derivable-QoI expression system;
  evaluating an expression tree propagates (value, guaranteed bound) pairs
  bottom-up, which *is* the composite calculus of Theorems 7–9 and
  Lemmas 1–2.
* :mod:`repro.core.qois` — ready-made QoIs: GE Eq.(1)–(6), total velocity,
  S3D molar-concentration products.
* :mod:`repro.core.assigner` — Algorithms 3 (initial bounds) and 4
  (iterative tightening with factor c = 1.5).
* :mod:`repro.core.masking` — the zero-value bitmap outlier filter (§V-A).
* :mod:`repro.core.retrieval` — Algorithms 1 and 2: the QoI-preserved
  progressive retrieval loop.
* :mod:`repro.core.pipeline` — the batched fetch/decode pipeline the
  retrieval loop drives: coalesced ``get_many`` round fetches plus
  bounded speculative prefetch of the predicted next round.
* :mod:`repro.core.ingest` — the write-side mirror: the streaming
  ingestion engine (parallel transform+encode workers feeding
  byte-balanced coalesced ``put_many`` flushes, incremental archive
  updates).
"""

from repro.core.estimators import (
    bound_add,
    bound_div,
    bound_mul,
    bound_power,
    bound_radical,
    bound_sqrt,
)
from repro.core.expressions import (
    Add,
    Const,
    Div,
    Mul,
    Pow,
    QoI,
    Radical,
    Sqrt,
    Var,
)
from repro.core.qois import (
    GE_QOIS,
    mach_number,
    molar_product,
    qoi_from_spec,
    speed_of_sound,
    temperature,
    total_pressure,
    total_velocity,
    viscosity,
)
from repro.core.extensions import Abs, Clip, DomainReduce, Maximum, Minimum, MovingAverage
from repro.core.assigner import assign_eb, reassign_eb
from repro.core.masking import ZeroMask
from repro.core.ingest import IngestConfig, IngestPipeline, IngestReport, ingest_dataset
from repro.core.pipeline import FetchPipeline, PipelineConfig
from repro.core.retrieval import (
    QoIRequest,
    QoIRetriever,
    RetrievalResult,
    RetrievalSession,
    refactor_dataset,
)

__all__ = [
    "bound_add",
    "bound_div",
    "bound_mul",
    "bound_power",
    "bound_radical",
    "bound_sqrt",
    "QoI",
    "Var",
    "Const",
    "Add",
    "Mul",
    "Div",
    "Pow",
    "Sqrt",
    "Radical",
    "Abs",
    "Minimum",
    "Maximum",
    "Clip",
    "MovingAverage",
    "DomainReduce",
    "GE_QOIS",
    "total_velocity",
    "temperature",
    "speed_of_sound",
    "mach_number",
    "total_pressure",
    "viscosity",
    "molar_product",
    "qoi_from_spec",
    "assign_eb",
    "reassign_eb",
    "ZeroMask",
    "QoIRequest",
    "RetrievalResult",
    "QoIRetriever",
    "RetrievalSession",
    "refactor_dataset",
    "PipelineConfig",
    "FetchPipeline",
    "IngestConfig",
    "IngestPipeline",
    "IngestReport",
    "ingest_dataset",
]
