"""QoI-preserved progressive retrieval (Algorithms 1 and 2).

The retriever owns a set of progressive readers (one per variable) and
iterates:

1. request every variable at its current error bound,
2. evaluate every requested QoI over the whole domain — vectorized, this
   is lines 13–24 of Algorithm 2 — keeping the worst estimated error and
   its location,
3. if any QoI misses its tolerance, tighten the involved variables'
   bounds with Algorithm 4 at the worst point and go again.

The loop terminates when every QoI tolerance is met, when the progressive
representations bottom out (nothing left to fetch), or after
``max_rounds``.  Because readers are incremental, later rounds only move
the *additional* fragments — the property that makes the whole framework
cheaper than conservative one-shot compression.

Per the paper's quality-assessment methodology (§III-C), tolerances are
*relative*: a request with ``tolerance=1e-4`` and ``qoi_range=r`` demands
an absolute L-infinity QoI error below ``1e-4 * r``.  Pass
``qoi_range=1.0`` to work in absolute units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.compressors.base import Refactored, Refactorer
from repro.core.assigner import DEFAULT_REDUCTION_FACTOR, reassign_eb
from repro.core.estimators import fetch_mask, seed_bounds
from repro.core.expressions import QoI
from repro.core.masking import ZeroMask
from repro.core.pipeline import (
    DEFAULT_MAX_WORKERS,
    DEFAULT_PIPELINE_DEPTH,
    FetchPipeline,
    PipelineConfig,
    pipeline_sources,
)
from repro.storage.resilience import DegradedError, TRANSIENT_ERRORS
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class QoIRequest:
    """One entry of an analysis request: a QoI and its tolerance.

    Parameters
    ----------
    name:
        Label used in results.
    qoi:
        The derivable-QoI expression tree.
    tolerance:
        Relative tolerance (absolute when ``qoi_range`` is 1.0).
    qoi_range:
        Value range of the QoI (§III-C's relative-error denominator).
    region:
        Optional boolean mask (QoI-output shaped): the tolerance is
        enforced only where the mask is True — region-of-interest
        retrieval in the spirit of the RoI-preserving compressors the
        paper cites [23].  Bounds outside the region are ignored.
    """

    name: str
    qoi: QoI
    tolerance: float
    qoi_range: float = 1.0
    region: object = None

    @property
    def absolute_tolerance(self) -> float:
        return float(self.tolerance) * float(self.qoi_range)

    def masked_bound(self, bound):
        """Bound array restricted to the region (flat view)."""
        bound = np.asarray(bound)
        if self.region is None:
            return bound.ravel()
        region = np.asarray(self.region, dtype=bool)
        if region.shape != bound.shape:
            raise ValueError(
                f"region shape {region.shape} does not match QoI shape {bound.shape}"
            )
        return bound[region]

    def region_indices(self, shape):
        """Flat indices of the region (all indices when unrestricted)."""
        if self.region is None:
            return None
        return np.flatnonzero(np.asarray(self.region, dtype=bool).ravel())


@dataclass
class RetrievalResult:
    """Outcome of one QoI-preserved retrieval.

    A *degraded* result is still a **valid** one — the progressive
    representation's defining property.  When the round loop stops early
    (deadline reached, or a backend became unavailable after at least
    one full decode round), ``degraded`` is True, ``degraded_reason``
    says why, and ``estimated_errors`` holds the bounds actually
    *achieved*: the data is correct to those (looser) tolerances, and
    ``satisfied`` says per QoI whether the requested tolerance was met
    anyway.
    """

    data: dict
    bytes_per_variable: dict
    estimated_errors: dict  # QoI name -> max estimated absolute error
    satisfied: dict  # QoI name -> bool
    rounds: int
    final_ebs: dict
    stopwatch: Stopwatch = field(default_factory=Stopwatch)
    #: True when the loop stopped before meeting every tolerance for an
    #: operational reason (deadline, backend outage) — the bounds in
    #: ``estimated_errors`` are the looser-but-valid achieved ones.
    degraded: bool = False
    #: Why the result is degraded (None when it is not).
    degraded_reason: str | None = None
    #: Straggler fetches the pipeline hedged with a duplicate read.
    hedged_fetches: int = 0

    @property
    def total_bytes(self) -> int:
        return int(sum(self.bytes_per_variable.values()))

    @property
    def all_satisfied(self) -> bool:
        return all(self.satisfied.values())


def refactor_dataset(variables: dict, refactorer: Refactorer) -> dict:
    """Algorithm 1: refactor every variable of a dataset.

    Returns ``{name: Refactored}``; value ranges needed by Algorithm 3 can
    be computed from the originals before archiving.
    """
    return {name: refactorer.refactor(data) for name, data in variables.items()}


class QoIRetriever:
    """Algorithm 2: iterative QoI-error-controlled data retrieval.

    Parameters
    ----------
    refactored:
        ``{variable name: Refactored}`` progressive representations.
    value_ranges:
        ``{variable name: max - min}`` of the original data (refactoring
        metadata; required by Algorithm 3).
    masks:
        Optional ``{variable name: ZeroMask}`` pinning known-exact points
        (§V-A).  Masked points get ``eps = 0`` in QoI estimation and their
        bitmap cost is charged to the retrieval size.
    reduction_factor:
        Algorithm 4's ``c`` (paper default 1.5).
    pipeline_depth / max_workers:
        Fetch/decode pipeline knobs (see
        :class:`~repro.core.pipeline.PipelineConfig`), effective for
        variables loaded lazily from an archive: each round's fragment
        set is fetched in coalesced batches and the predicted next
        round's set is prefetched while QoI estimation runs.  For purely
        in-memory representations the pipeline is inert — the loop is
        identical either way, which is what keeps pipelined and serial
        retrieval bit-identical.
    executor / workers:
        Kernel executor for the *decode* stage (see
        :mod:`repro.parallel.executor`): ``"serial"``, ``"thread"``,
        ``"process"``, an executor instance, or None (the default) to
        decode inline — subject to the ``REPRO_EXECUTOR`` environment
        variable.  ``workers`` sizes the kernel pool (defaults to the
        core count).  All backends are bit-identical; ``process`` breaks
        the GIL compute ceiling on multi-core hosts.
    """

    def __init__(
        self,
        refactored: dict,
        value_ranges: dict,
        masks: dict | None = None,
        reduction_factor: float = DEFAULT_REDUCTION_FACTOR,
        pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
        max_workers: int = DEFAULT_MAX_WORKERS,
        hedge_delay_s: float | None = None,
        executor=None,
        workers: int | None = None,
    ):
        from repro.parallel.executor import make_executor

        for name in refactored:
            if name not in value_ranges:
                raise ValueError(f"missing value range for variable {name!r}")
            check_positive(value_ranges[name], name=f"range of {name}")
        self._refactored = dict(refactored)
        self._ranges = {k: float(v) for k, v in value_ranges.items()}
        self._masks = dict(masks or {})
        self.reduction_factor = float(reduction_factor)
        self.executor = make_executor(executor, workers=workers)
        self.pipeline = PipelineConfig(
            pipeline_depth=int(pipeline_depth),
            max_workers=int(max_workers),
            hedge_delay_s=None if hedge_delay_s is None else float(hedge_delay_s),
        )
        #: Optional shared :class:`~repro.service.planner.QueryPlanner`
        #: memoizing estimation seeds and ``plan_segments`` results
        #: across sessions; the service layer wires it (duck-typed so
        #: the core never imports the service tier).
        self.planner = None
        #: Per-variable generation the planner keys its memos on (the
        #: service aliases its session's generation map here).
        self.plan_generations: dict = {}
        #: Optional round sink for the fetch pipeline (the service's
        #: :class:`~repro.service.planner.FetchScheduler`) merging this
        #: session's round fetches with other sessions' concurrently.
        self.fetch_sink = None

    def add_variable(
        self, name: str, refactored, value_range: float, mask=None
    ) -> None:
        """Register another archived variable after construction.

        The service layer resolves variables lazily — a client session may
        reference variables its first request never touched — so the
        retriever must be extensible.  Sessions opened earlier see the new
        variable on their next ``retrieve``.
        """
        check_positive(value_range, name=f"range of {name}")
        self._refactored[name] = refactored
        self._ranges[name] = float(value_range)
        if mask is not None:
            self._masks[name] = mask

    def session(self) -> "RetrievalSession":
        """Open a stateful session: successive retrievals reuse fragments.

        This is the progressive workflow end to end — an analyst starts
        with a loose tolerance and tightens later; already-fetched
        fragments are never re-transferred (except by PSZ3, whose
        snapshot redundancy is the point of comparing against it).
        """
        return RetrievalSession(self)

    def retrieve(
        self,
        requests,
        max_rounds: int = 100,
        deadline_s: float | None = None,
    ) -> RetrievalResult:
        """Run one retrieval from scratch (a fresh single-use session)."""
        return self.session().retrieve(
            requests, max_rounds=max_rounds, deadline_s=deadline_s
        )

    # -- helpers -------------------------------------------------------------

    def _environment(self, recon: dict, achieved: dict) -> dict:
        """Environment for QoI evaluation: masked points carry eps = 0."""
        env = {}
        for v, rec in recon.items():
            eps = achieved[v]
            mask = self._masks.get(v)
            if mask is not None and np.isfinite(eps):
                env[v] = (rec, mask.pointwise_eps(eps, rec.shape))
            else:
                env[v] = (rec, eps)
        return env


class RetrievalSession:
    """Stateful retrieval: readers persist across ``retrieve`` calls.

    Opened via :meth:`QoIRetriever.session`.  Each call runs Algorithm 2
    against the *current* reader state, so a later, tighter request only
    moves the incremental fragments (the defining economy of progressive
    retrieval).  ``bytes_retrieved`` totals are cumulative per variable.
    """

    def __init__(self, retriever: QoIRetriever):
        self._retriever = retriever
        self._readers: dict = {}
        self._ebs: dict = {}
        self._achieved: dict = {}

    def _reader(self, variable: str):
        if variable not in self._readers:
            reader = self._retriever._refactored[variable].reader()
            if self._retriever.executor is not None:
                reader.use_executor(self._retriever.executor)
            self._readers[variable] = reader
            self._achieved[variable] = np.inf
        return self._readers[variable]

    def bytes_retrieved(self, variable: str | None = None) -> int:
        """Cumulative bytes fetched in this session."""
        if variable is not None:
            return self._readers[variable].bytes_retrieved if variable in self._readers else 0
        return sum(r.bytes_retrieved for r in self._readers.values())

    def reset_variable(self, variable: str) -> None:
        """Forget this session's reader state for one variable.

        Used by the service layer when a live ingest replaces a
        variable: the old reader decodes fragments of the superseded
        representation, so the next retrieve must open a fresh reader
        (paying the variable's fragments again) rather than mix
        representations.  Also drops it from the cumulative
        ``bytes_retrieved`` totals.
        """
        self._readers.pop(variable, None)
        self._ebs.pop(variable, None)
        self._achieved.pop(variable, None)

    def _plan_segments(self, variable: str, reader, eb: float):
        """One variable's round plan, through the shared planner when wired.

        The planner memoizes on ``(variable, generation, reader state
        token, exact eb)`` — bit-identical to asking the reader, just
        shared across every session of a service.
        """
        planner = self._retriever.planner
        if planner is None:
            return reader.plan_segments(eb)
        return planner.plan_segments(
            reader, variable,
            self._retriever.plan_generations.get(variable, 0), eb,
        )

    def retrieve(
        self,
        requests,
        max_rounds: int = 100,
        pipeline_depth: int | None = None,
        max_workers: int | None = None,
        deadline_s: float | None = None,
        hedge_delay_s: float | None = None,
    ) -> RetrievalResult:
        """Run the QoI-preserved retrieval loop for *requests*.

        ``pipeline_depth`` / ``max_workers`` / ``hedge_delay_s`` override
        the retriever's fetch/decode pipeline knobs for this call only.

        *deadline_s* bounds this call's wall time: the loop always runs
        at least one round, then stops tightening once the deadline has
        passed (or the next round's predicted cost would overshoot it)
        and returns the best bounds achieved so far flagged
        ``degraded=True`` — a valid looser answer, never an unbounded
        wait.  The same degraded path absorbs a backend that becomes
        unavailable (:class:`~repro.storage.resilience.DegradedError`,
        an open circuit breaker, exhausted retries) after the first
        complete round; an outage before any data arrives still raises.
        """
        retriever = self._retriever
        requests = list(requests)
        if not requests:
            raise ValueError("at least one QoIRequest is required")
        involved = sorted(set().union(*(r.qoi.variables() for r in requests)))
        missing = [v for v in involved if v not in retriever._refactored]
        if missing:
            raise ValueError(f"QoIs reference unknown variables: {missing}")
        sw = Stopwatch()

        readers = {v: self._reader(v) for v in involved}
        # Algorithm 3, vectorized across variables; the minimum with the
        # session's existing bounds seeds only what is not tightened yet
        request_vars = [r.qoi.variables() for r in requests]
        if retriever.planner is not None:
            # memoized across sessions: the value ranges are part of the
            # key, so a live ingest changing one can never serve stale
            # seeds (and identical request ladders hit without recompute)
            seeds = retriever.planner.seed_bounds(
                tuple(float(retriever._ranges[v]) for v in involved),
                tuple(tuple(v in rv for v in involved) for rv in request_vars),
                tuple(float(r.tolerance) for r in requests),
            )
        else:
            seeds = seed_bounds(
                [retriever._ranges[v] for v in involved],
                [[v in rv for v in involved] for rv in request_vars],
                [r.tolerance for r in requests],
            )
        for v, seed in zip(involved, seeds):
            self._ebs[v] = min(self._ebs.get(v, np.inf), float(seed))
        ebs = self._ebs
        achieved = self._achieved

        config = retriever.pipeline
        if pipeline_depth is not None or max_workers is not None or hedge_delay_s is not None:
            config = PipelineConfig(
                pipeline_depth=config.pipeline_depth if pipeline_depth is None else int(pipeline_depth),
                max_workers=config.max_workers if max_workers is None else int(max_workers),
                hedge_delay_s=config.hedge_delay_s if hedge_delay_s is None else float(hedge_delay_s),
            )
        sources = pipeline_sources({v: retriever._refactored[v] for v in involved})
        pipe = (
            FetchPipeline(config, sink=retriever.fetch_sink) if sources else None
        )
        c = retriever.reduction_factor
        deadline = None if deadline_s is None else perf_counter() + float(deadline_s)
        if pipe is not None:
            pipe.deadline = deadline

        recon: dict = {}
        estimated = {r.name: np.inf for r in requests}
        satisfied = {r.name: False for r in requests}
        requested: dict = {}  # eb each reader was last asked for, this call
        try:
            rounds, degraded_reason = self._run_rounds(
                requests, involved, readers, ebs, achieved, requested,
                recon, estimated, satisfied, sources, pipe, c, sw, max_rounds,
                deadline,
            )
        finally:
            if pipe is not None:
                pipe.close()

        bytes_per_var = {v: readers[v].bytes_retrieved for v in involved}
        for v, mask in retriever._masks.items():
            if v in bytes_per_var:
                bytes_per_var[v] += mask.nbytes
        degraded = degraded_reason is not None and not all(satisfied.values())
        return RetrievalResult(
            data=recon,
            bytes_per_variable=bytes_per_var,
            estimated_errors=estimated,
            satisfied=satisfied,
            rounds=rounds,
            final_ebs={v: ebs[v] for v in involved},
            stopwatch=sw,
            degraded=degraded,
            degraded_reason=degraded_reason if degraded else None,
            hedged_fetches=pipe.hedged_fetches if pipe is not None else 0,
        )

    def _run_rounds(
        self, requests, involved, readers, ebs, achieved, requested,
        recon, estimated, satisfied, sources, pipe, c, sw, max_rounds,
        deadline=None,
    ) -> tuple:
        """Algorithm 2's round loop over the fetch/decode pipeline.

        Returns ``(rounds, degraded_reason)``.  *deadline* (absolute
        ``perf_counter`` time, or None) stops the loop from starting a
        round once passed — or once the previous round's duration
        predicts the next would overshoot it.  A store outage
        (:class:`DegradedError`, open breaker, exhausted retries) after
        every involved variable has decoded at least once ends the loop
        the same way; the interrupted round's partial decodes keep their
        tighter bounds and the final estimation pass prices the answer
        actually being returned.
        """
        retriever = self._retriever
        rounds = 0
        progressed = False
        degraded_reason = None
        last_round_s = 0.0

        def decode(v: str) -> None:
            # a reader only moves when asked for a *tighter* bound, and by
            # construction it finds the round's planned fragments already
            # memoized (batch-fetched), so this stage is pure compute
            nonlocal progressed
            reader = readers[v]
            rec = reader.request(ebs[v])
            requested[v] = ebs[v]
            bound = reader.current_error_bound
            if bound < achieved[v]:
                progressed = True
            achieved[v] = bound
            mask = retriever._masks.get(v)
            recon[v] = mask.pin(rec.copy()) if mask is not None else rec

        def degradable(exc: BaseException) -> bool:
            # a backend outage degrades (valid looser answer) only once
            # every involved variable has at least one reconstruction;
            # before that there is nothing valid to serve, so re-raise
            if not isinstance(exc, (DegradedError,) + TRANSIENT_ERRORS):
                return False
            return all(v in recon for v in involved)

        while rounds < max_rounds:
            if deadline is not None and rounds >= 1:
                now = perf_counter()
                if now >= deadline or now + last_round_s > deadline:
                    degraded_reason = (
                        f"deadline reached after {rounds} round(s); "
                        f"serving bounds achieved so far"
                    )
                    break
            round_started = perf_counter()
            rounds += 1
            progressed = False
            # plan the full fragment set of every variable this round
            # must move — never asked, or tightened by Algorithm 4
            need = fetch_mask(
                [ebs[v] for v in involved],
                [requested.get(v, np.nan) for v in involved],
            )
            fetch_vars = [v for v, m in zip(involved, need) if m]
            # the fetch/decode interleaving is timed by hand: "fetch" is
            # the wall time this loop blocked on the fetch iterator (pure
            # I/O wait), "decode" the reader compute — the per-round split
            # surfaces in FetchPipeline stats and ServiceStats
            io_wait_s = 0.0
            compute_s = 0.0
            decoded = set()
            if pipe is not None:
                try:
                    mark = perf_counter()
                    entries = []
                    for v in fetch_vars:
                        source = sources.get(v)
                        if source is None:
                            continue
                        segments = self._plan_segments(v, readers[v], ebs[v])
                        if segments is not None:
                            entries.append((v, source, segments))
                    # fetch stage: coalesced, byte-balanced get_many batches;
                    # decode stage: consume variables in completion order
                    group_iter = pipe.iter_groups(pipe.submit_round(entries))
                    io_wait_s += perf_counter() - mark
                    while True:
                        mark = perf_counter()
                        keys = next(group_iter, None)
                        io_wait_s += perf_counter() - mark
                        if keys is None:
                            break
                        mark = perf_counter()
                        for v in keys:
                            decode(v)
                            decoded.add(v)
                        compute_s += perf_counter() - mark
                except Exception as exc:
                    if not degradable(exc):
                        raise
                    io_wait_s += perf_counter() - mark
                    degraded_reason = f"store unavailable: {exc}"
            if degraded_reason is None:
                try:
                    mark = perf_counter()
                    for v in fetch_vars:
                        if v not in decoded:
                            decode(v)
                    compute_s += perf_counter() - mark
                except Exception as exc:
                    if not degradable(exc):
                        raise
                    compute_s += perf_counter() - mark
                    degraded_reason = f"store unavailable: {exc}"
            sw.add("fetch", io_wait_s)
            sw.add("decode", compute_s)
            if pipe is not None:
                pipe.record_round(io_wait_s, compute_s)
            if pipe is not None and degraded_reason is None:
                # speculation: while estimation runs on this thread, the
                # fetch stage pulls the fragments the next round(s) would
                # need if Algorithm 4 tightens every bound by c**depth —
                # a warm-up that cannot change any result
                with sw.section("speculate"):
                    for depth in range(1, pipe.config.pipeline_depth + 1):
                        factor = c**depth
                        plans = []
                        for v in involved:
                            source = sources.get(v)
                            spec_eb = ebs[v] / factor
                            if source is None or not spec_eb > 0.0:
                                continue
                            segments = self._plan_segments(v, readers[v], spec_eb)
                            if segments:
                                plans.append((source, segments))
                        if not plans or not pipe.speculate(plans):
                            break

            env = retriever._environment(recon, {v: achieved[v] for v in involved})
            all_met = True
            worst: dict = {}
            with sw.section("estimate"):
                for req in requests:
                    _, bound = req.qoi.evaluate(env)
                    bound = np.asarray(bound)
                    masked = req.masked_bound(bound)
                    est = float(np.max(masked)) if masked.size else 0.0
                    estimated[req.name] = est
                    met = est <= req.absolute_tolerance
                    satisfied[req.name] = met
                    if not met:
                        all_met = False
                        region_idx = req.region_indices(bound.shape)
                        local = int(np.argmax(masked))
                        worst[req.name] = (
                            int(region_idx[local]) if region_idx is not None else
                            int(np.argmax(bound.ravel()))
                        )
            if all_met or degraded_reason is not None:
                break
            if not progressed and rounds > 1:
                break  # representations exhausted; cannot improve further
            with sw.section("assign"):
                for req in requests:
                    if satisfied[req.name]:
                        continue
                    idx = worst[req.name]
                    point = {
                        v: float(np.ravel(recon[v])[idx]) for v in req.qoi.variables()
                    }
                    current = {v: min(ebs[v], achieved[v]) for v in req.qoi.variables()}
                    new_ebs = reassign_eb(
                        req.qoi,
                        req.absolute_tolerance,
                        point,
                        current,
                        c=retriever.reduction_factor,
                    )
                    for v, e in new_ebs.items():
                        ebs[v] = min(ebs[v], e)
            last_round_s = perf_counter() - round_started

        return rounds, degraded_reason
