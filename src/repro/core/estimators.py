"""Vectorized QoI error-bound estimators (Theorems 1–6 of the paper).

Every function takes *reconstructed* values ``x`` and the L-infinity
bounds ``eps`` used during retrieval, and returns a per-point upper bound
``Delta`` on the QoI error:

    sup_{|x' - x| <= eps} |f(x') - f(x)|  <=  Delta(f, x, eps).

Crucially, nothing here touches the original data — the bounds are
computable mid-retrieval, which is what lets the retrieval loop decide
whether it has fetched enough (§IV of the paper).

Domain failures (radical/division whose denominator interval straddles
zero — the ``eps >= |x + c|`` case Theorem 3 excludes) return ``inf``;
the error-bound assigner reacts by tightening the primary-data bounds.
All functions broadcast and never loop over elements.
"""

from __future__ import annotations

from math import comb

import numpy as np


def bound_power(x: np.ndarray, eps, n: int) -> np.ndarray:
    """Theorem 1: bound for ``f(x) = x**n`` (integer ``n >= 1``).

    ``Delta <= sum_{i=1..n} C(n,i) |x|^(n-i) eps^i``.
    """
    if int(n) != n or n < 1:
        raise ValueError(f"power must be a positive integer, got {n!r}")
    n = int(n)
    x = np.asarray(x, dtype=np.float64)
    eps = np.asarray(eps, dtype=np.float64)
    ax = np.abs(x)
    total = np.zeros(np.broadcast(x, eps).shape, dtype=np.float64)
    for i in range(1, n + 1):
        total += comb(n, i) * ax ** (n - i) * eps**i
    return total


def bound_sqrt(x: np.ndarray, eps) -> np.ndarray:
    """Theorem 2: bound for ``f(x) = sqrt(x)``.

    ``Delta <= eps / (sqrt(max(x - eps, 0)) + sqrt(x))`` for ``x > 0``.
    At ``x == 0`` the formula degenerates (the near-zero looseness the
    paper handles with the zero bitmap); there the exact supremum
    ``sqrt(eps)`` is used, and non-positive reconstructions fall back to
    ``sqrt(max(x,0) + eps)`` (the worst case over the clipped domain).
    """
    x = np.asarray(x, dtype=np.float64)
    eps = np.asarray(eps, dtype=np.float64)
    x_b, eps_b = np.broadcast_arrays(x, eps)
    pos = x_b > 0.0
    out = np.sqrt(np.clip(x_b, 0.0, None) + eps_b)  # x <= 0 fallback (incl. sqrt(eps) at 0)
    denom = np.sqrt(np.clip(x_b - eps_b, 0.0, None)) + np.sqrt(np.clip(x_b, 0.0, None))
    with np.errstate(divide="ignore", invalid="ignore"):
        formula = np.where(denom > 0.0, eps_b / denom, np.inf)
    out = np.where(pos, formula, out)
    return out


def bound_radical(x: np.ndarray, eps, c: float = 0.0) -> np.ndarray:
    """Theorem 3: bound for ``f(x) = 1 / (x + c)``.

    Valid only when ``eps < |x + c|``; otherwise the reconstructed
    denominator interval contains 0 and the bound is ``inf`` (the case the
    theorem excludes and retrieval avoids by tightening ``eps``).
    """
    x = np.asarray(x, dtype=np.float64)
    eps = np.asarray(eps, dtype=np.float64)
    s = x + float(c)
    abs_s = np.abs(s)
    lo = np.minimum(np.abs(s - eps), np.abs(s + eps))
    with np.errstate(divide="ignore", invalid="ignore"):
        out = eps / (lo * abs_s)
    return np.where((eps < abs_s) & (abs_s > 0.0), out, np.inf)


def bound_add(eps_list, weights=None) -> np.ndarray:
    """Theorem 4: bound for ``g(x) = sum a_i x_i`` is ``sum |a_i| eps_i``.

    Vectorized across the summed variables: the per-variable eps arrays
    are broadcast to a common shape, stacked, and contracted with
    ``|a|`` in a single ``tensordot`` — no Python accumulation loop,
    whatever the number of variables in the sum.
    """
    if not eps_list:
        return None
    if weights is None:
        weights = [1.0] * len(eps_list)
    if len(weights) != len(eps_list):
        raise ValueError("weights/eps length mismatch")
    stack = np.stack(
        np.broadcast_arrays(*(np.asarray(e, dtype=np.float64) for e in eps_list))
    )
    return np.tensordot(np.abs(np.asarray(weights, dtype=np.float64)), stack, axes=1)


def bound_mul(x1, eps1, x2, eps2) -> np.ndarray:
    """Theorem 5: bound for ``g = x1 * x2`` is ``|x1| e2 + |x2| e1 + e1 e2``."""
    x1 = np.asarray(x1, dtype=np.float64)
    x2 = np.asarray(x2, dtype=np.float64)
    eps1 = np.asarray(eps1, dtype=np.float64)
    eps2 = np.asarray(eps2, dtype=np.float64)
    return np.abs(x1) * eps2 + np.abs(x2) * eps1 + eps1 * eps2


def seed_bounds(value_ranges, incidence, tolerances) -> np.ndarray:
    """Algorithm 3 across *all* variables of a request set at once.

    Parameters
    ----------
    value_ranges:
        ``(V,)`` value range of each variable.
    incidence:
        ``(R, V)`` boolean matrix; entry ``[r, v]`` is True when request
        *r*'s QoI involves variable *v*.
    tolerances:
        ``(R,)`` relative tolerance of each request.

    Returns
    -------
    ``(V,)`` initial absolute bounds: each variable takes the most
    conservative tolerance among the requests that involve it (capped at
    the maximal relative bound 1.0), scaled by its value range — the
    same arithmetic as per-variable :func:`repro.core.assigner.assign_eb`
    but as two vector reductions instead of a Python loop per variable.
    """
    value_ranges = np.asarray(value_ranges, dtype=np.float64)
    incidence = np.asarray(incidence, dtype=bool)
    tolerances = np.asarray(tolerances, dtype=np.float64)
    if np.any(tolerances <= 0.0):
        bad = float(tolerances[tolerances <= 0.0][0])
        raise ValueError(f"QoI tolerance must be > 0, got {bad}")
    if np.any(~(value_ranges > 0.0)):
        bad = float(value_ranges[~(value_ranges > 0.0)][0])
        raise ValueError(f"value_range must be positive, got {bad}")
    per_var = np.where(incidence, tolerances[:, None], np.inf).min(axis=0)
    return np.minimum(per_var, 1.0) * value_ranges


def fetch_mask(ebs, requested) -> np.ndarray:
    """Which variables a retrieval round must (re-)request, vectorized.

    ``ebs`` are the current target bounds, ``requested`` the bounds each
    reader was last asked for (``nan`` = never asked this call).  A
    reader only moves when asked for a strictly tighter bound, so the
    round fetches exactly the never-asked or newly tightened variables.
    """
    ebs = np.asarray(ebs, dtype=np.float64)
    requested = np.asarray(requested, dtype=np.float64)
    return np.isnan(requested) | (ebs < requested)


def bound_div(x1, eps1, x2, eps2) -> np.ndarray:
    """Theorem 6: bound for ``g = x1 / x2``.

    ``(|x1| e2 + |x2| e1) / (|x2| min(|x2 - e2|, |x2 + e2|))`` when
    ``e2 < |x2|``; ``inf`` otherwise.
    """
    x1 = np.asarray(x1, dtype=np.float64)
    x2 = np.asarray(x2, dtype=np.float64)
    eps1 = np.asarray(eps1, dtype=np.float64)
    eps2 = np.asarray(eps2, dtype=np.float64)
    ax2 = np.abs(x2)
    lo = np.minimum(np.abs(x2 - eps2), np.abs(x2 + eps2))
    num = np.abs(x1) * eps2 + ax2 * eps1
    with np.errstate(divide="ignore", invalid="ignore"):
        out = num / (ax2 * lo)
    return np.where((eps2 < ax2) & (ax2 > 0.0), out, np.inf)
